"""Collecting topology/config analyzers.

Every structural invariant the library used to enforce with raise-first
checks in :mod:`repro.topos.validate` lives here as a *collecting* rule,
joined by new static invariants (tier-3 oversubscription, per-switch
port budgets, addressing uniqueness, LACP bond symmetry, uplink-mesh
completeness) and by the deep wiring/forwarding analyses from
:mod:`repro.telemetry` and :mod:`repro.routing.verify`.

Rules run against a live :class:`~repro.core.topology.Topology`; a
serialized one (``core.serialize``) is rebuilt first, including its
builder spec, so the same gate covers fabrics loaded from JSON.

Suppression: ``topo.meta["suppress"] = ["TOPO006", ...]`` records a
finding but keeps it out of ``Report.ok`` and the exit code.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..core.entities import PortKind, SwitchRole
from ..core.topology import Topology
from .diagnostics import Diagnostic, Location, Report, Severity
from .registry import TOPOLOGY_RULES, topology_rule

#: architectures that intentionally single-home their NICs
SINGLE_HOMED_ARCHS = ("singletor", "fattree", "threetier")

#: relative tolerance for capacity-ratio comparisons
RATIO_TOLERANCE = 0.01


def resolve_spec(topo: Topology) -> Optional[object]:
    """The builder spec from ``topo.meta``, live or reconstructed.

    Serialization stores specs as ``{"type": name, "fields": {...}}``;
    rebuild the frozen dataclass so spec-aware rules work on loaded
    fabrics too. Returns None when no (known) spec is recorded.
    """
    raw = topo.meta.get("spec")
    if raw is None:
        return None
    if isinstance(raw, dict):
        type_name = raw.get("type")
        fields = raw.get("fields")
        if not isinstance(type_name, str) or not isinstance(fields, dict):
            return None
        from ..topos import spec as spec_module

        cls = getattr(spec_module, type_name, None)
        if cls is None:
            return None
        try:
            return cls(**fields)
        except Exception:
            return None
    return raw


@dataclass
class TopoContext:
    """Everything a topology rule needs, plus the collecting report."""

    topo: Topology
    arch: Optional[str]
    spec: Optional[object]
    report: Report
    suppress: frozenset = frozenset()
    #: scratch shared between rules (e.g. one forwarding walk, four rules)
    cache: Dict[str, object] = field(default_factory=dict)

    def emit(
        self,
        rule_id: str,
        message: str,
        obj: Optional[str] = None,
        severity: Optional[Severity] = None,
    ) -> Diagnostic:
        info = TOPOLOGY_RULES[rule_id].info
        return self.report.add(
            Diagnostic(
                rule_id=rule_id,
                severity=severity or info.severity,
                message=message,
                location=Location(obj=obj),
                suppressed=rule_id in self.suppress,
            )
        )


# ----------------------------------------------------------------------
# structural rules (refactored from topos/validate.py)
# ----------------------------------------------------------------------
@topology_rule("TOPO001", "link consistency", Severity.ERROR)
def rule_link_consistency(ctx: TopoContext) -> None:
    """Every link references two existing, mutually wired ports."""
    topo = ctx.topo
    for link in topo.links.values():
        for ref in link.endpoints():
            if not topo.has_node(ref.node) or ref.index >= len(topo.ports[ref.node]):
                ctx.emit(
                    "TOPO001",
                    f"link {link.link_id} references unknown port {ref}",
                    obj=str(ref),
                )
                continue
            port = topo.port(ref)
            if port.link_id != link.link_id:
                ctx.emit(
                    "TOPO001",
                    f"port {ref} does not point back at link {link.link_id}",
                    obj=str(ref),
                )


def _nic_tors(topo: Topology, host_name: str, nic) -> List[str]:
    """Distinct ToR names reached by a NIC's wired ports, in port order."""
    tors: List[str] = []
    for pref in nic.ports:
        port = topo.port(pref)
        if port.link_id is None:
            continue
        peer = topo.links[port.link_id].other(host_name).node
        if peer not in tors:
            tors.append(peer)
    return tors


@topology_rule("TOPO002", "dual-ToR access", Severity.ERROR)
def rule_dual_tor(ctx: TopoContext) -> None:
    """Each wired dual-port backend NIC reaches two distinct ToRs."""
    if ctx.arch in SINGLE_HOMED_ARCHS:
        return
    for host in ctx.topo.hosts.values():
        for nic in host.backend_nics():
            tors = _nic_tors(ctx.topo, host.name, nic)
            if len(tors) not in (0, 2):
                reached = ", ".join(tors) if tors else "none"
                ctx.emit(
                    "TOPO002",
                    f"{nic.name} reaches {len(tors)} ToR(s) [{reached}], "
                    "expected 2 distinct (dual-ToR)",
                    obj=nic.name,
                )


@topology_rule("TOPO003", "dual-plane isolation", Severity.ERROR,
               architectures=("hpn",))
def rule_dual_plane(ctx: TopoContext) -> None:
    """No link crosses planes above tier 1; NIC port k lands in plane k."""
    topo = ctx.topo
    for link in topo.links.values():
        a, b = link.a.node, link.b.node
        if a in topo.switches and b in topo.switches:
            pa, pb = topo.switches[a].plane, topo.switches[b].plane
            if pa is not None and pb is not None and pa != pb:
                ctx.emit(
                    "TOPO003",
                    f"cross-plane link {a} (plane {pa}) <-> {b} (plane {pb})",
                    obj=f"link{link.link_id}",
                )
    for host in topo.hosts.values():
        for nic in host.backend_nics():
            for plane_idx, pref in enumerate(nic.ports):
                port = topo.port(pref)
                if port.link_id is None:
                    continue
                tor = topo.links[port.link_id].other(host.name).node
                actual = topo.switches[tor].plane
                if actual != plane_idx:
                    ctx.emit(
                        "TOPO003",
                        f"{nic.name} port {plane_idx} lands in plane {actual} "
                        f"(via {tor})",
                        obj=nic.name,
                    )


@topology_rule("TOPO004", "rail-optimized wiring", Severity.ERROR,
               architectures=("hpn",))
def rule_rail_optimized(ctx: TopoContext) -> None:
    """Within a segment, NICs of rail r across hosts share the same ToRs."""
    topo = ctx.topo
    by_seg_rail: Dict[tuple, set] = defaultdict(set)
    for host in topo.hosts.values():
        for nic in host.backend_nics():
            tors = frozenset(_nic_tors(topo, host.name, nic))
            if tors:
                by_seg_rail[(host.pod, host.segment, nic.rail)].add(tors)
    for (pod, segment, rail), torsets in sorted(by_seg_rail.items()):
        if len(torsets) != 1:
            sets = " vs ".join(
                "{" + ", ".join(sorted(ts)) + "}" for ts in sorted(torsets, key=sorted)
            )
            ctx.emit(
                "TOPO004",
                f"rail {rail} of pod{pod}/seg{segment} is served by "
                f"{len(torsets)} ToR sets: {sets}",
                obj=f"pod{pod}/seg{segment}/rail{rail}",
            )


@topology_rule("TOPO005", "rail isolation", Severity.ERROR,
               architectures=("railonly",))
def rule_rail_isolation(ctx: TopoContext) -> None:
    """Rail-only: aggregation planes never mix rails."""
    topo = ctx.topo
    for link in topo.links.values():
        a, b = link.a.node, link.b.node
        if a in topo.switches and b in topo.switches:
            ra, rb = topo.switches[a].rail, topo.switches[b].rail
            if ra is not None and rb is not None and ra != rb:
                ctx.emit(
                    "TOPO005",
                    f"cross-rail link {a} (rail {ra}) <-> {b} (rail {rb})",
                    obj=f"link{link.link_id}",
                )


# ----------------------------------------------------------------------
# new static invariants
# ----------------------------------------------------------------------
@topology_rule("TOPO006", "tier-3 oversubscription", Severity.WARNING,
               architectures=("hpn",))
def rule_tier3_oversubscription(ctx: TopoContext) -> None:
    """Each agg switch's down:up ratio matches the spec (paper: 15:1)."""
    spec = ctx.spec
    if spec is None or not getattr(spec, "cores_per_plane", 0):
        return
    expected = spec.agg_core_oversubscription
    for sw in ctx.topo.switches_by_role(SwitchRole.AGG):
        down = sum(p.gbps for p in ctx.topo.down_ports(sw.name))
        up = sum(p.gbps for p in ctx.topo.up_ports(sw.name))
        if up == 0:
            ctx.emit(
                "TOPO006",
                f"{sw.name} has no core uplinks but the spec provisions "
                f"{spec.agg_core_uplinks}",
                obj=sw.name,
            )
            continue
        ratio = down / up
        if abs(ratio - expected) > RATIO_TOLERANCE * expected:
            ctx.emit(
                "TOPO006",
                f"{sw.name} oversubscription {ratio:.2f}:1 deviates from "
                f"spec {expected:.2f}:1",
                obj=sw.name,
            )


@topology_rule("TOPO007", "port budget", Severity.ERROR)
def rule_port_budget(ctx: TopoContext) -> None:
    """Connected port capacity never exceeds the switch chip; ToR port
    counts stay within the segment budget derived from the spec."""
    topo = ctx.topo
    for sw in topo.switches.values():
        wired = sum(p.gbps for p in topo.ports[sw.name] if p.connected)
        if wired > sw.chip_gbps * (1 + 1e-9):
            ctx.emit(
                "TOPO007",
                f"{sw.name} wires {wired:.0f} Gbps across its ports but the "
                f"chip provides {sw.chip_gbps:.0f} Gbps",
                obj=sw.name,
            )
    spec = ctx.spec
    tor_down = getattr(spec, "tor_downlinks", None)
    tor_up = getattr(spec, "tor_uplinks", None)
    if tor_down is None and tor_up is None:
        return
    for sw in topo.switches_by_role(SwitchRole.TOR):
        n_down = len(topo.down_ports(sw.name))
        n_up = len(topo.up_ports(sw.name))
        if tor_down is not None and n_down > tor_down:
            ctx.emit(
                "TOPO007",
                f"{sw.name} has {n_down} downlinks, segment budget is {tor_down}",
                obj=sw.name,
            )
        if tor_up is not None and n_up > tor_up:
            ctx.emit(
                "TOPO007",
                f"{sw.name} has {n_up} uplinks, spec budget is {tor_up}",
                obj=sw.name,
            )


@topology_rule("TOPO008", "addressing uniqueness", Severity.ERROR)
def rule_addressing_unique(ctx: TopoContext) -> None:
    """No two NICs share an IP; no two NICs share a MAC."""
    by_ip: Dict[str, List[str]] = defaultdict(list)
    by_mac: Dict[str, List[str]] = defaultdict(list)
    for host in ctx.topo.hosts.values():
        for nic in host.nics:
            if nic.ip is not None:
                by_ip[nic.ip].append(nic.name)
            if nic.mac is not None:
                by_mac[nic.mac].append(nic.name)
    for ip, nics in sorted(by_ip.items()):
        if len(nics) > 1:
            ctx.emit(
                "TOPO008",
                f"IP {ip} assigned to {len(nics)} NICs: {', '.join(nics)}",
                obj=nics[0],
            )
    for mac, nics in sorted(by_mac.items()):
        if len(nics) > 1:
            ctx.emit(
                "TOPO008",
                f"MAC {mac} assigned to {len(nics)} NICs: {', '.join(nics)}",
                obj=nics[0],
            )


@topology_rule("TOPO009", "LACP bond symmetry", Severity.ERROR)
def rule_bond_symmetry(ctx: TopoContext) -> None:
    """A NIC's two member links must be able to aggregate into one bond:
    both wired, equal speed, and the non-stacked LACP negotiation with
    its dual-ToR pair must bundle."""
    if ctx.arch in SINGLE_HOMED_ARCHS:
        return
    from ..access.lacp import (
        MAX_PHYSICAL_PORTS,
        SwitchLacpActor,
        configure_non_stacked_pair,
        negotiate,
    )

    topo = ctx.topo
    for host in topo.hosts.values():
        for nic in host.nics:
            wired = [
                (i, topo.port(pref))
                for i, pref in enumerate(nic.ports)
                if topo.port(pref).link_id is not None
            ]
            if not wired:
                continue
            if len(wired) == 1 and len(nic.ports) > 1:
                ctx.emit(
                    "TOPO009",
                    f"{nic.name} has only port {wired[0][0]} wired; the bond "
                    "cannot aggregate a single member",
                    obj=nic.name,
                    severity=Severity.WARNING,
                )
                continue
            speeds = {port.gbps for _, port in wired}
            if len(speeds) > 1:
                ctx.emit(
                    "TOPO009",
                    f"{nic.name} bond members run at different speeds: "
                    f"{sorted(speeds)} Gbps",
                    obj=nic.name,
                )
                continue
            far = [topo.links[port.link_id].other(host.name) for _, port in wired]
            peers = [ref.node for ref in far]
            if len(set(peers)) != 2 or any(p not in topo.switches for p in peers):
                continue  # single-/zero-ToR wiring is TOPO002's finding
            if any(ref.index >= MAX_PHYSICAL_PORTS for ref in far):
                ports = ", ".join(str(ref) for ref in far)
                ctx.emit(
                    "TOPO009",
                    f"{nic.name} lands on physical port(s) beyond the "
                    f"{MAX_PHYSICAL_PORTS}-port chip: {ports}",
                    obj=nic.name,
                )
                continue
            actor_a = SwitchLacpActor(peers[0], chassis_mac="02:00:00:00:00:aa")
            actor_b = SwitchLacpActor(peers[1], chassis_mac="02:00:00:00:00:bb")
            configure_non_stacked_pair(actor_a, actor_b)
            nego = negotiate(far[0].index, far[1].index, actor_a, actor_b)
            if not nego.aggregated:
                ctx.emit(
                    "TOPO009",
                    f"{nic.name} LACP bundling across {peers[0]} + {peers[1]} "
                    f"fails: {nego.failure_reason()}",
                    obj=nic.name,
                )


@topology_rule("TOPO010", "aggregation uplink mesh", Severity.WARNING,
               architectures=("hpn",))
def rule_uplink_mesh(ctx: TopoContext) -> None:
    """Each ToR reaches every agg of its plane (and only its plane)."""
    topo = ctx.topo
    spec = ctx.spec
    planes: Dict[Optional[int], set] = defaultdict(set)
    for sw in topo.switches_by_role(SwitchRole.AGG):
        planes[sw.plane].add(sw.name)
    for tor in topo.switches_by_role(SwitchRole.TOR):
        peers = set()
        for port in topo.up_ports(tor.name):
            peers.add(topo.links[port.link_id].other(tor.name).node)
        agg_peers = {p for p in peers if p in topo.switches}
        foreign = sorted(
            p for p in agg_peers if topo.switches[p].plane != tor.plane
        )
        if foreign:
            ctx.emit(
                "TOPO010",
                f"{tor.name} (plane {tor.plane}) uplinks leave its plane via "
                f"{', '.join(foreign)}",
                obj=tor.name,
                severity=Severity.ERROR,
            )
        expected = (
            getattr(spec, "aggs_per_plane", None)
            if spec is not None
            else None
        )
        if expected is None:
            expected = len(planes.get(tor.plane, ())) or None
        in_plane = agg_peers - set(foreign)
        if expected and len(in_plane) < expected:
            ctx.emit(
                "TOPO010",
                f"{tor.name} reaches {len(in_plane)} of {expected} aggregation "
                "switches in its plane (incomplete uplink mesh)",
                obj=tor.name,
            )


# ----------------------------------------------------------------------
# deep analyses (wiring blueprint + forwarding walks) -- expensive
# ----------------------------------------------------------------------
@topology_rule("WIRE001", "blueprint wiring", Severity.ERROR, expensive=True)
def rule_blueprint_wiring(ctx: TopoContext) -> None:
    """INT-style wiring sweep: every access leg terminates where the
    rail-optimized blueprint says it should."""
    from ..telemetry import verify_wiring

    for fault in verify_wiring(ctx.topo):
        ctx.emit("WIRE001", f"[{fault.kind}] {fault.detail}")


def _forwarding_report(ctx: TopoContext):
    if "forwarding" not in ctx.cache:
        from ..routing.verify import verify_forwarding

        kwargs = dict(ctx.cache.get("forwarding_kwargs", {}))
        fwd = verify_forwarding(ctx.topo, **kwargs)
        ctx.cache["forwarding"] = fwd
        ctx.report.stats["fwd_pairs_checked"] = fwd.pairs_checked
        ctx.report.stats["fwd_flows_walked"] = fwd.flows_walked
        ctx.report.stats["fwd_unreachable_pairs"] = fwd.unreachable_pairs
    return ctx.cache["forwarding"]


def _emit_forwarding(ctx: TopoContext, rule_id: str, kind: str) -> None:
    report = _forwarding_report(ctx)
    for v in report.violations:
        if v.kind == kind:
            ctx.emit(
                rule_id,
                f"{v.src} -> {v.dst}: {v.detail}",
                obj=f"{v.src}->{v.dst}",
            )


@topology_rule("FWD001", "forwarding loops", Severity.ERROR, expensive=True)
def rule_forwarding_loops(ctx: TopoContext) -> None:
    _emit_forwarding(ctx, "FWD001", "loop")


@topology_rule("FWD002", "black holes", Severity.ERROR, expensive=True)
def rule_black_holes(ctx: TopoContext) -> None:
    _emit_forwarding(ctx, "FWD002", "blackhole")


@topology_rule("FWD003", "diameter bound", Severity.ERROR, expensive=True)
def rule_diameter(ctx: TopoContext) -> None:
    _emit_forwarding(ctx, "FWD003", "diameter")


@topology_rule("FWD004", "plane leakage", Severity.ERROR, expensive=True)
def rule_plane_leak(ctx: TopoContext) -> None:
    _emit_forwarding(ctx, "FWD004", "plane-leak")


# ----------------------------------------------------------------------
# runner
# ----------------------------------------------------------------------
def run_topology_rules(
    topo: Topology,
    rule_ids: Optional[Sequence[str]] = None,
    include_expensive: bool = False,
    forwarding_kwargs: Optional[Dict[str, object]] = None,
) -> Report:
    """Run the registered topology rules against ``topo``, collecting.

    ``rule_ids`` restricts the run to an explicit subset (architecture
    filtering still applies); ``include_expensive`` adds the wiring and
    forwarding walks; ``forwarding_kwargs`` is forwarded to
    :func:`repro.routing.verify.verify_forwarding` (``max_pairs``,
    ``expect_reachable``...).
    """
    arch = topo.meta.get("architecture")
    suppress = frozenset(topo.meta.get("suppress", ()) or ())
    ctx = TopoContext(
        topo=topo,
        arch=arch if isinstance(arch, str) else None,
        spec=resolve_spec(topo),
        report=Report(),
        suppress=suppress,
    )
    if forwarding_kwargs:
        ctx.cache["forwarding_kwargs"] = dict(forwarding_kwargs)
    wanted = set(rule_ids) if rule_ids is not None else None
    for rid in sorted(TOPOLOGY_RULES):
        rule = TOPOLOGY_RULES[rid]
        if wanted is not None:
            if rid not in wanted:
                continue
        elif rule.info.expensive and not include_expensive:
            continue
        if not rule.info.applies_to(ctx.arch):
            continue
        rule.impl(ctx)
        ctx.report.bump("topology_rules_run")
    return ctx.report
