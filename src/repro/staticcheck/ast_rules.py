"""Codebase AST lint rules: simulator-specific hygiene.

A small :class:`ast.NodeVisitor` framework enforcing the conventions a
deterministic network simulator lives or dies by:

* ``LINT001`` -- no ``==``/``!=`` on float-valued bandwidth/latency
  expressions (float literals or unit-suffixed names);
* ``LINT002`` -- no mutable default arguments;
* ``LINT003`` -- no unseeded module-level :mod:`random` calls; all
  randomness flows through an injected, seeded ``random.Random``;
* ``LINT004`` -- numeric quantity fields carry a unit suffix
  (``_gbps``, ``_bytes``, ``_s``...), so 200 can never silently mean
  200 *milliseconds* to one reader and 200 *gigabits* to another;
* ``LINT005`` -- no bare ``print()`` in library code under
  ``src/repro/``; route output through :mod:`repro.obs`'s logger (the
  CLI module, whose job *is* printing, is exempt).

Suppression: append ``# repro: noqa`` (all rules) or
``# repro: noqa[LINT001,LINT003]`` (specific rules) to the offending
line. Suppressed findings are still recorded, marked, and reported.
"""

from __future__ import annotations

import ast
import os
import re
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from .diagnostics import Diagnostic, Location, Report, Severity
from .registry import AST_RULES, lint_rule

#: matches ``# repro: noqa`` with an optional bracketed rule list
_NOQA_RE = re.compile(r"#\s*repro:\s*noqa(?:\[(?P<rules>[A-Z0-9,\s]+)\])?")

#: suffixes that mark a name as float-valued line-rate / time math
FLOAT_UNIT_SUFFIXES = (
    "_gbps", "_bps", "_gbit", "_gb", "_mb",
    "_seconds", "_secs", "_s", "_ms", "_us", "_ns",
    "_latency", "_bw", "_ratio", "_frac", "_pct",
)

#: recognized unit suffixes that satisfy the naming rule
UNIT_SUFFIXES = FLOAT_UNIT_SUFFIXES + (
    "_bytes", "_b", "_kb", "_tb", "_gbps_per_port", "_per_month",
    "_per_sec", "_per_day", "_months", "_days", "_hours", "_hops",
    "_x",
)

#: field-name stems that denote a physical quantity needing a unit
QUANTITY_STEMS = (
    "bandwidth", "latency", "delay", "duration", "timeout",
    "interval", "capacity", "period",
)

#: module-level random functions whose global state is unseeded
RANDOM_MODULE_FNS = frozenset({
    "random", "randint", "randrange", "uniform", "gauss",
    "normalvariate", "lognormvariate", "expovariate", "betavariate",
    "gammavariate", "paretovariate", "vonmisesvariate", "weibullvariate",
    "triangular", "choice", "choices", "shuffle", "sample", "seed",
    "getrandbits", "randbytes",
})


def _noqa_lines(source: str) -> Dict[int, Optional[Set[str]]]:
    """Map 1-based line number -> suppressed rule ids (None = all)."""
    out: Dict[int, Optional[Set[str]]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        m = _NOQA_RE.search(line)
        if not m:
            continue
        rules = m.group("rules")
        if rules is None:
            out[lineno] = None
        else:
            out[lineno] = {r.strip() for r in rules.split(",") if r.strip()}
    return out


@dataclass
class LintContext:
    """One file being linted."""

    path: str
    tree: ast.AST
    noqa: Dict[int, Optional[Set[str]]]
    report: Report

    def emit(self, rule_id: str, lineno: int, message: str) -> Diagnostic:
        info = AST_RULES[rule_id].info
        allowed = self.noqa.get(lineno, _MISSING)
        suppressed = allowed is None or (
            allowed is not _MISSING and rule_id in allowed
        )
        return self.report.add(
            Diagnostic(
                rule_id=rule_id,
                severity=info.severity,
                message=message,
                location=Location(file=self.path, line=lineno),
                suppressed=suppressed,
            )
        )


_MISSING = object()


class LintRule(ast.NodeVisitor):
    """Base class: one visitor instance per (rule, file) pass."""

    info = None  # set by the @lint_rule decorator

    def __init__(self, ctx: LintContext) -> None:
        self.ctx = ctx

    def emit(self, node: ast.AST, message: str) -> None:
        self.ctx.emit(self.info.rule_id, getattr(node, "lineno", 1), message)

    def run(self) -> None:
        self.visit(self.ctx.tree)


# ----------------------------------------------------------------------
# LINT001: float equality
# ----------------------------------------------------------------------
def _name_of(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _is_floatish(node: ast.AST) -> bool:
    """Heuristic: does this expression smell like float rate/time math?"""
    if isinstance(node, ast.Constant) and isinstance(node.value, float):
        return True
    if isinstance(node, ast.UnaryOp):
        return _is_floatish(node.operand)
    name = _name_of(node)
    if name is None:
        return False
    lowered = name.lower()
    return lowered in ("gbps", "latency", "bandwidth") or lowered.endswith(
        FLOAT_UNIT_SUFFIXES
    )


@lint_rule("LINT001", "no float equality in bandwidth/latency math",
           Severity.ERROR)
class FloatEqualityRule(LintRule):
    """``a == 1.5`` or ``x.gbps != y_gbps`` never does what you hope on
    accumulated float math; compare with a tolerance instead."""

    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left] + list(node.comparators)
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if isinstance(op, (ast.Eq, ast.NotEq)):
                culprit = next(
                    (o for o in (left, right) if _is_floatish(o)), None
                )
                if culprit is not None:
                    what = _name_of(culprit)
                    if what is None and isinstance(culprit, ast.Constant):
                        what = repr(culprit.value)
                    sym = "==" if isinstance(op, ast.Eq) else "!="
                    self.emit(
                        node,
                        f"float {sym} on {what or 'expression'}; use a "
                        "tolerance (math.isclose) for rate/time comparisons",
                    )
        self.generic_visit(node)


# ----------------------------------------------------------------------
# LINT002: mutable default arguments
# ----------------------------------------------------------------------
_MUTABLE_CALLS = frozenset({"list", "dict", "set", "defaultdict", "deque"})


def _is_mutable_default(node: ast.AST) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                         ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = _name_of(node.func)
        return name in _MUTABLE_CALLS
    return False


@lint_rule("LINT002", "no mutable default arguments", Severity.ERROR)
class MutableDefaultRule(LintRule):
    """A mutable default is shared across every call -- state leaks
    between simulations. Use ``None`` (or ``field(default_factory=...)``)."""

    def _check(self, node) -> None:
        args = node.args
        for default in list(args.defaults) + [
            d for d in args.kw_defaults if d is not None
        ]:
            if _is_mutable_default(default):
                self.emit(
                    default,
                    f"mutable default argument in {node.name}(); "
                    "default to None and construct inside the function",
                )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check(node)
        self.generic_visit(node)


# ----------------------------------------------------------------------
# LINT003: unseeded random
# ----------------------------------------------------------------------
@lint_rule("LINT003", "no unseeded random-module calls", Severity.ERROR)
class UnseededRandomRule(LintRule):
    """Module-level :mod:`random` calls share hidden global state and
    make runs irreproducible; thread a seeded ``random.Random`` in."""

    def __init__(self, ctx: LintContext) -> None:
        super().__init__(ctx)
        self._from_imports: Set[str] = set()

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "random":
            for alias in node.names:
                if alias.name in RANDOM_MODULE_FNS:
                    self._from_imports.add(alias.asname or alias.name)
                    self.emit(
                        node,
                        f"importing random.{alias.name} binds the shared "
                        "global generator; inject a random.Random(seed)",
                    )
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "random"
        ):
            if func.attr in RANDOM_MODULE_FNS:
                self.emit(
                    node,
                    f"random.{func.attr}() uses the unseeded global "
                    "generator; use an injected random.Random(seed)",
                )
            elif func.attr == "Random" and not node.args and not node.keywords:
                self.emit(
                    node,
                    "random.Random() without a seed is irreproducible; "
                    "pass an explicit seed",
                )
        elif isinstance(func, ast.Name) and func.id in self._from_imports:
            self.emit(
                node,
                f"{func.id}() is bound to the unseeded global generator",
            )
        self.generic_visit(node)


# ----------------------------------------------------------------------
# LINT004: unit-suffix naming on numeric quantity fields
# ----------------------------------------------------------------------
@lint_rule("LINT004", "unit-suffixed quantity field names", Severity.WARNING)
class UnitSuffixRule(LintRule):
    """``bandwidth: float`` says nothing about Gbps vs GB/s; annotated
    numeric quantity fields must carry a unit suffix."""

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        for stmt in node.body:
            if not isinstance(stmt, ast.AnnAssign):
                continue
            target = stmt.target
            if not isinstance(target, ast.Name):
                continue
            ann = stmt.annotation
            ann_name = _name_of(ann)
            if ann_name not in ("float", "int"):
                continue
            name = target.id.lower()
            if name.endswith(UNIT_SUFFIXES):
                continue
            if any(stem in name for stem in QUANTITY_STEMS):
                self.emit(
                    stmt,
                    f"{node.name}.{target.id} is a numeric quantity without "
                    "a unit suffix (_gbps, _bytes, _s, ...)",
                )
        self.generic_visit(node)


# ----------------------------------------------------------------------
# LINT005: no print() in library code
# ----------------------------------------------------------------------
#: basenames whose whole purpose is terminal output
PRINT_EXEMPT_FILES = frozenset({"cli.py"})


@lint_rule("LINT005", "no print() in library code", Severity.ERROR)
class NoPrintRule(LintRule):
    """Library modules must not write to stdout behind callers' backs;
    use ``repro.obs.get_logger(...)`` (which also mirrors warnings into
    the active recorder). ``cli.py`` is exempt -- printing is its job."""

    def run(self) -> None:
        if os.path.basename(self.ctx.path) in PRINT_EXEMPT_FILES:
            return
        super().run()

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Name) and func.id == "print":
            self.emit(
                node,
                "print() in library code; use repro.obs.get_logger() "
                "(or move the output to the CLI layer)",
            )
        self.generic_visit(node)


# ----------------------------------------------------------------------
# LINT006: no direct Router construction outside the routing package
# ----------------------------------------------------------------------
#: constructor names steered to the shared cached router
ROUTER_CONSTRUCTORS = frozenset({"Router", "CachedRouter"})


def _router_rule_exempt(path: str) -> bool:
    """Routing internals, tests and benchmarks may build routers."""
    norm = path.replace(os.sep, "/")
    if "/routing/" in norm or norm.startswith("routing/"):
        return True
    if "/tests/" in norm or "/benchmarks/" in norm:
        return True
    base = os.path.basename(norm)
    return base.startswith("test_") or base == "conftest.py"


@lint_rule("LINT006", "no direct Router construction outside routing",
           Severity.ERROR)
class DirectRouterRule(LintRule):
    """``Router(topo)`` at a call site builds a cold adjacency index and
    throws away every cached route; use
    ``repro.routing.shared_router(topo)`` so call sites share one
    compiled FIB and one warm route cache per topology. The routing
    package itself, tests and benchmarks are exempt."""

    def run(self) -> None:
        if _router_rule_exempt(self.ctx.path):
            return
        super().run()

    def visit_Call(self, node: ast.Call) -> None:
        name = _name_of(node.func)
        if name in ROUTER_CONSTRUCTORS:
            self.emit(
                node,
                f"direct {name}() construction; use "
                "repro.routing.shared_router(topo) to share the "
                "compiled FIB and route cache",
            )
        self.generic_visit(node)


# ----------------------------------------------------------------------
# runner
# ----------------------------------------------------------------------
def iter_python_files(paths: Sequence[str]) -> Iterator[str]:
    """Expand files/directories into a sorted stream of ``.py`` paths."""
    for path in paths:
        if os.path.isdir(path):
            for root, dirs, files in os.walk(path):
                dirs[:] = sorted(
                    d for d in dirs
                    if not d.startswith(".") and d != "__pycache__"
                )
                for fname in sorted(files):
                    if fname.endswith(".py"):
                        yield os.path.join(root, fname)
        else:
            yield path


def lint_source(
    source: str,
    path: str = "<string>",
    rule_ids: Optional[Sequence[str]] = None,
    report: Optional[Report] = None,
) -> Report:
    """Lint one source blob; syntax errors become LINT diagnostics."""
    report = report if report is not None else Report()
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        report.add(
            Diagnostic(
                rule_id="LINT000",
                severity=Severity.ERROR,
                message=f"syntax error: {exc.msg}",
                location=Location(file=path, line=exc.lineno),
            )
        )
        return report
    ctx = LintContext(
        path=path, tree=tree, noqa=_noqa_lines(source), report=report
    )
    wanted = set(rule_ids) if rule_ids is not None else None
    for rid in sorted(AST_RULES):
        if wanted is not None and rid not in wanted:
            continue
        AST_RULES[rid].impl(ctx).run()
        report.bump("lint_rules_run")
    return report


def lint_paths(
    paths: Sequence[str], rule_ids: Optional[Sequence[str]] = None
) -> Report:
    """Lint every ``.py`` file under ``paths``, collecting one report."""
    report = Report()
    for fpath in iter_python_files(paths):
        try:
            with open(fpath, encoding="utf-8") as fh:
                source = fh.read()
        except OSError as exc:
            report.add(
                Diagnostic(
                    rule_id="LINT000",
                    severity=Severity.ERROR,
                    message=f"cannot read file: {exc}",
                    location=Location(file=fpath),
                )
            )
            continue
        lint_source(source, path=fpath, rule_ids=rule_ids, report=report)
        report.bump("files_scanned")
    return report
