"""Best-effort static call graph over the :class:`ProjectIndex`.

Resolution is *conservative by construction*: an edge is added only
when the callee is locally evident --

* a bare name resolving through the module's (or function's own
  nested) import bindings, or to a def/class in the same module;
* ``self.m()`` / ``cls.m()`` inside a class, resolved through the
  class then its named bases;
* ``obj.m()`` where ``obj`` was assigned a constructor call of a known
  class *in the same function* (local type inference), or is a
  parameter annotated with a known class name;
* ``module.f()`` through a module-alias binding;
* constructing a known class adds an edge to its ``__init__``.

Opaque dynamic dispatch (``self.thing.run()``, callbacks, getattr) is
**not** followed; rules built on reachability (SEM002) therefore
under-approximate rather than drowning the report in false positives.
The tradeoff is documented in ``docs/static_analysis.md``.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set, Tuple

from .index import FunctionInfo, ModuleInfo, ProjectIndex


def _annotation_name(node: Optional[ast.AST]) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        # string annotations: take the head identifier
        return node.value.split("[")[0].split(".")[-1].strip() or None
    return None


class CallGraph:
    """``qualname -> set(qualname)`` call edges plus reachability."""

    def __init__(self, index: ProjectIndex) -> None:
        self.index = index
        self.edges: Dict[str, Set[str]] = {}
        #: call sites that could not be resolved (for diagnostics/tests)
        self.unresolved: Dict[str, List[str]] = {}
        for fn in index.functions.values():
            self.edges[fn.qualname] = self._edges_of(fn)

    # -- queries -------------------------------------------------------
    def callees(self, qualname: str) -> Set[str]:
        return self.edges.get(qualname, set())

    def reachable_from(self, roots: Iterable[str]) -> Set[str]:
        """Transitive closure of call edges from ``roots``."""
        seen: Set[str] = set()
        stack = [r for r in roots if r in self.edges]
        while stack:
            cur = stack.pop()
            if cur in seen:
                continue
            seen.add(cur)
            stack.extend(self.edges.get(cur, ()))
        return seen

    # -- edge construction ---------------------------------------------
    def _edges_of(self, fn: FunctionInfo) -> Set[str]:
        index = self.index
        mod = index.modules[fn.module]
        local_types = self._local_types(fn, mod)
        out: Set[str] = set()
        missed: List[str] = []
        for node in ast.walk(fn.node):
            if not isinstance(node, ast.Call):
                continue
            target = self._resolve_call(node.func, fn, mod, local_types)
            if target is None:
                name = ast.dump(node.func)[:40]
                if isinstance(node.func, ast.Attribute):
                    name = node.func.attr
                elif isinstance(node.func, ast.Name):
                    name = node.func.id
                missed.append(name)
                continue
            if target in index.classes:
                init = index.classes[target].methods.get("__init__")
                if init is not None:
                    out.add(init)
                continue
            if target in index.functions:
                out.add(target)
        if missed:
            self.unresolved[fn.qualname] = missed
        return out

    def _local_types(
        self, fn: FunctionInfo, mod: ModuleInfo
    ) -> Dict[str, str]:
        """var name -> class qualname, from constructors and annotations."""
        index = self.index
        types: Dict[str, str] = {}
        args = getattr(fn.node, "args", None)
        if args is not None:
            for arg in list(args.args) + list(args.kwonlyargs):
                ann = _annotation_name(arg.annotation)
                if ann is None:
                    continue
                resolved = index.resolve_binding(mod, ann, fn)
                if resolved in index.classes:
                    types[arg.arg] = resolved
        for node in ast.walk(fn.node):
            if not isinstance(node, ast.Assign) or len(node.targets) != 1:
                continue
            tgt = node.targets[0]
            if not isinstance(tgt, ast.Name):
                continue
            if isinstance(node.value, ast.Call) and isinstance(
                node.value.func, ast.Name
            ):
                resolved = index.resolve_binding(mod, node.value.func.id, fn)
                if resolved in index.classes:
                    types[tgt.id] = resolved
        return types

    def _resolve_call(
        self,
        func: ast.AST,
        fn: FunctionInfo,
        mod: ModuleInfo,
        local_types: Dict[str, str],
    ) -> Optional[str]:
        index = self.index
        if isinstance(func, ast.Name):
            return index.resolve_binding(mod, func.id, fn)
        if not isinstance(func, ast.Attribute):
            return None
        base = func.value
        if isinstance(base, ast.Name):
            if base.id in ("self", "cls") and fn.cls is not None:
                return self._method(fn.cls, func.attr, mod)
            if base.id in local_types:
                return self._method(local_types[base.id], func.attr, mod)
            bound = index.resolve_binding(mod, base.id, fn)
            if bound is not None:
                return index.resolve(f"{bound}.{func.attr}")
            # module alias bound at module level (``from .. import x``)
            target = fn.local_imports.get(base.id) or mod.bindings.get(base.id)
            if target is not None:
                return index.resolve(f"{target}.{func.attr}")
        return None

    def _method(self, cls_qual: str, name: str,
                mod: ModuleInfo) -> Optional[str]:
        """Look up a method on a class, then its named bases (by MRO-ish
        left-to-right search through resolvable base names)."""
        index = self.index
        seen: Set[str] = set()
        stack = [cls_qual]
        while stack:
            cur = stack.pop(0)
            if cur in seen or cur not in index.classes:
                continue
            seen.add(cur)
            info = index.classes[cur]
            if name in info.methods:
                return info.methods[name]
            for base in info.bases:
                resolved = index.resolve_binding(index.modules[info.module],
                                                 base)
                if resolved is not None:
                    stack.append(resolved)
        return None


def experiment_entry_points(index: ProjectIndex) -> List[str]:
    """Qualnames of functions registered as engine experiments.

    Matches the ``@experiment(...)`` decorator by (resolved or bare)
    name, so both the real ``repro.engine.spec.experiment`` and fixture
    packages using the same convention are found.
    """
    out = []
    for fn in index.functions.values():
        if "experiment" in fn.decorators:
            out.append(fn.qualname)
    return sorted(out)
