"""Grandfathering: a committed baseline of known findings.

A baseline lets ``repro check`` gate CI on *new* diagnostics while an
existing debt list is paid down incrementally. Entries are fingerprinted
by ``(rule_id, normalized file path, message)`` -- deliberately **not**
by line number, so unrelated edits above a finding don't churn the file.
Two identical findings in one file need two baseline entries (matching
is multiset-style), so debt can't silently grow behind one entry.

The repo policy (ISSUE 6): the baseline stays **empty for
ERROR-severity rules** -- errors get fixed or ``# repro: noqa[...]``-ed
with a comment at the site, never grandfathered wholesale.
"""

from __future__ import annotations

import json
import os
from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..diagnostics import Diagnostic, Report

BASELINE_VERSION = 1
#: default committed location, relative to the repo root
DEFAULT_BASELINE = "SEM_BASELINE.json"

Fingerprint = Tuple[str, str, str]


def normalize_path(path: Optional[str]) -> str:
    """Stable, checkout-independent form of a diagnostic's file path.

    Absolute prefixes differ per machine; everything from the last
    ``src/`` component (or the basename chain from the package dir) is
    identical everywhere, so fingerprints survive CI/dev/worktree moves.
    """
    if not path:
        return "<none>"
    norm = path.replace(os.sep, "/")
    marker = "/src/"
    pos = norm.rfind(marker)
    if pos >= 0:
        return norm[pos + len(marker):]
    return norm.lstrip("/")


def fingerprint(diag: Diagnostic) -> Fingerprint:
    return (diag.rule_id, normalize_path(diag.location.file), diag.message)


@dataclass
class Baseline:
    """A multiset of grandfathered fingerprints."""

    entries: Counter  # type: Counter[Fingerprint]

    @classmethod
    def empty(cls) -> "Baseline":
        return cls(entries=Counter())

    @classmethod
    def from_report(cls, report: Report) -> "Baseline":
        return cls(entries=Counter(
            fingerprint(d) for d in report.diagnostics if not d.suppressed
        ))

    # -- persistence ---------------------------------------------------
    @classmethod
    def load(cls, path: str) -> "Baseline":
        """Load a baseline file; a missing file is an empty baseline."""
        if not os.path.exists(path):
            return cls.empty()
        with open(path, encoding="utf-8") as fh:
            data = json.load(fh)
        if data.get("version") != BASELINE_VERSION:
            raise ValueError(
                f"unsupported baseline version {data.get('version')!r} "
                f"in {path}"
            )
        entries: Counter = Counter()
        for item in data.get("entries", []):
            key = (item["rule_id"], item["file"], item["message"])
            entries[key] += int(item.get("count", 1))
        return cls(entries=entries)

    def save(self, path: str) -> None:
        items: List[Dict[str, object]] = []
        for (rule_id, file, message), count in sorted(self.entries.items()):
            item: Dict[str, object] = {
                "rule_id": rule_id, "file": file, "message": message,
            }
            if count != 1:
                item["count"] = count
            items.append(item)
        payload = {"version": BASELINE_VERSION, "entries": items}
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=False)
            fh.write("\n")

    # -- application ---------------------------------------------------
    def apply(self, report: Report) -> int:
        """Mark baselined findings in ``report`` as suppressed.

        Matching is multiset-style and in report order: an entry with
        count N absorbs at most N identical findings. Returns how many
        diagnostics were baselined out.
        """
        budget = Counter(self.entries)
        hit = 0
        for diag in report.diagnostics:
            if diag.suppressed:
                continue
            key = fingerprint(diag)
            if budget.get(key, 0) > 0:
                budget[key] -= 1
                diag.suppressed = True
                hit += 1
        report.stats["baselined"] = report.stats.get("baselined", 0) + hit
        return hit

    def stale_entries(self, report: Report) -> List[Fingerprint]:
        """Entries no longer matched by any finding (debt paid down --
        these should be deleted from the committed file)."""
        present = Counter(fingerprint(d) for d in report.diagnostics)
        return sorted(
            key for key, count in self.entries.items()
            if present.get(key, 0) < count
        )
