"""Project-wide semantic analysis: index, call graph, SEM rules.

The per-file LINT rules see one AST at a time; the SEM family sees the
whole package -- module/symbol tables, the import graph, a conservative
call graph, and attribute-assignment dataflow -- so it can check the
cross-module contracts the incremental hot paths (PRs 4-5) rely on:
epoch discipline, engine determinism, cache coherence, layering.

Entry point::

    from repro.staticcheck.semantics import analyze_project
    report = analyze_project(["src/repro"])
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..diagnostics import Report
from .baseline import DEFAULT_BASELINE, Baseline, fingerprint, normalize_path
from .callgraph import CallGraph, experiment_entry_points
from .index import BACKEND_MARKER, ProjectIndex, build_project_index
from .rules import SemContext, run_semantic_rules


def analyze_project(
    paths: Optional[Sequence[str]] = None,
    rule_ids: Optional[Sequence[str]] = None,
    baseline: Optional[Baseline] = None,
) -> Report:
    """Index the tree once, run the SEM family, apply the baseline."""
    index = build_project_index(paths)
    report = run_semantic_rules(index, rule_ids=rule_ids)
    if baseline is not None:
        baseline.apply(report)
    return report


__all__ = [
    "BACKEND_MARKER",
    "Baseline",
    "CallGraph",
    "DEFAULT_BASELINE",
    "ProjectIndex",
    "SemContext",
    "analyze_project",
    "build_project_index",
    "experiment_entry_points",
    "fingerprint",
    "normalize_path",
    "run_semantic_rules",
]
