"""Project-wide symbol/import index: the substrate every SEM rule reads.

One :class:`ProjectIndex` parses an entire package tree (``src/repro``)
exactly once and exposes:

* a **module table** -- dotted name -> :class:`ModuleInfo` (source, AST,
  noqa lines);
* a **symbol table** -- fully-qualified name -> :class:`FunctionInfo` /
  :class:`ClassInfo` for every def/class in the tree, including
  methods and nested (function-local) imports;
* an **import graph** -- which project modules each module imports,
  with per-module *name bindings* (``shared_router`` ->
  ``repro.routing.shared_router``) that survive re-exports: resolving a
  dotted target chases ``from .montecarlo import FleetSimulation``
  style package re-exports back to the defining module;
* raw material for the call graph (:mod:`.callgraph`): per-function
  call sites with best-effort receiver typing.

The index is deliberately *syntactic*: no imports are executed, so it
indexes broken or cyclic code the same way it indexes healthy code, and
a full pass over the ~100-module tree stays well under a second.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..ast_rules import _noqa_lines

#: module-source marker that registers a module as a sanctioned
#: topology backend (see SEM001); declarative on purpose, so pluggable
#: fabric backends can opt in without the rule growing a hard-coded list
BACKEND_MARKER = "# repro: topology-backend"


@dataclass
class FunctionInfo:
    """One function or method definition."""

    qualname: str  #: e.g. ``repro.fabric.solver.IncrementalMaxMinSolver.solve``
    module: str
    name: str
    cls: Optional[str]  #: owning class qualname, None for module-level defs
    node: ast.AST
    lineno: int
    #: decorator call/name heads as written (``experiment``, ``lint_rule``...)
    decorators: Tuple[str, ...] = ()
    #: name bindings from imports *inside* the function body
    local_imports: Dict[str, str] = field(default_factory=dict)


@dataclass
class ClassInfo:
    """One class definition with its attribute surface."""

    qualname: str
    module: str
    name: str
    node: ast.ClassDef
    bases: Tuple[str, ...] = ()
    methods: Dict[str, str] = field(default_factory=dict)  #: name -> qualname
    #: attributes assigned via ``self.X = ...`` anywhere in the class,
    #: plus annotated/assigned class-body attributes
    attrs: Set[str] = field(default_factory=set)


@dataclass
class ModuleInfo:
    """One parsed module."""

    name: str  #: dotted, e.g. ``repro.fabric.solver``
    path: str
    source: str
    tree: ast.Module
    is_package: bool = False
    #: local binding -> dotted target (module, or module.symbol)
    bindings: Dict[str, str] = field(default_factory=dict)
    #: project modules this module imports (module- and function-level)
    import_edges: Set[str] = field(default_factory=set)
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    noqa: Dict[int, Optional[Set[str]]] = field(default_factory=dict)
    is_backend: bool = False

    @property
    def package(self) -> str:
        """Top subpackage within the project (``repro.fabric.solver`` ->
        ``fabric``); top-level modules map to their own stem."""
        parts = self.name.split(".")
        return parts[1] if len(parts) > 1 else parts[0]


def _decorator_head(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Call):
        node = node.func
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _resolve_relative(module: ModuleInfo, level: int,
                      target: Optional[str]) -> Optional[str]:
    """``from ..core.topology import X`` inside a module -> dotted base."""
    parts = module.name.split(".")
    # the package containing this module; packages contain themselves
    base = parts if module.is_package else parts[:-1]
    if level - 1 > len(base):
        return None
    if level > 1:
        base = base[: len(base) - (level - 1)]
    if target:
        base = base + target.split(".")
    return ".".join(base) if base else None


class ProjectIndex:
    """Whole-tree module/symbol/import index (see module docstring)."""

    def __init__(self, root: str, project: Optional[str] = None) -> None:
        #: filesystem root of the package (the dir holding ``__init__.py``)
        self.root = os.path.abspath(root)
        #: dotted name of the root package (defaults to the dir name)
        self.project = project or os.path.basename(self.root)
        self.modules: Dict[str, ModuleInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        #: simple class name -> qualnames (for local constructor typing)
        self.classes_by_name: Dict[str, List[str]] = {}
        self.import_graph: Dict[str, Set[str]] = {}
        self.stats: Dict[str, int] = {}
        self._build()

    # -- construction --------------------------------------------------
    def _build(self) -> None:
        for path, dotted, is_pkg in self._walk():
            try:
                with open(path, encoding="utf-8") as fh:
                    source = fh.read()
                tree = ast.parse(source, filename=path)
            except (OSError, SyntaxError):
                # unparseable files are LINT000's problem, not the index's
                continue
            mod = ModuleInfo(
                name=dotted, path=path, source=source, tree=tree,
                is_package=is_pkg, noqa=_noqa_lines(source),
                is_backend=BACKEND_MARKER in source,
            )
            self.modules[dotted] = mod
        for mod in self.modules.values():
            self._index_module(mod)
        for mod in self.modules.values():
            self.import_graph[mod.name] = set(mod.import_edges)
        self.stats["modules"] = len(self.modules)
        self.stats["functions"] = len(self.functions)
        self.stats["classes"] = len(self.classes)

    def _walk(self):
        for dirpath, dirnames, filenames in os.walk(self.root):
            dirnames[:] = sorted(
                d for d in dirnames
                if not d.startswith(".") and d != "__pycache__"
            )
            rel = os.path.relpath(dirpath, self.root)
            parts = [] if rel == "." else rel.split(os.sep)
            for fname in sorted(filenames):
                if not fname.endswith(".py"):
                    continue
                path = os.path.join(dirpath, fname)
                if fname == "__init__.py":
                    dotted = ".".join([self.project] + parts)
                    yield path, dotted, True
                else:
                    dotted = ".".join([self.project] + parts + [fname[:-3]])
                    yield path, dotted, False

    # -- per-module indexing -------------------------------------------
    def _index_module(self, mod: ModuleInfo) -> None:
        for stmt in mod.tree.body:
            self._bind_import(mod, stmt, mod.bindings)
        for node in mod.tree.body:
            if isinstance(node, ast.ClassDef):
                self._index_class(mod, node)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._index_function(mod, node, cls=None)

    def _bind_import(self, mod: ModuleInfo, stmt: ast.stmt,
                     into: Dict[str, str]) -> None:
        if isinstance(stmt, ast.Import):
            for alias in stmt.names:
                bound = alias.asname or alias.name.split(".")[0]
                into[bound] = alias.name if alias.asname else alias.name.split(".")[0]
                if alias.name.split(".")[0] == self.project:
                    mod.import_edges.add(self._nearest_module(alias.name))
        elif isinstance(stmt, ast.ImportFrom):
            if stmt.level:
                base = _resolve_relative(mod, stmt.level, stmt.module)
            else:
                base = stmt.module
            if base is None:
                return
            for alias in stmt.names:
                bound = alias.asname or alias.name
                into[bound] = f"{base}.{alias.name}"
                if base.split(".")[0] == self.project:
                    mod.import_edges.add(
                        self._nearest_module(f"{base}.{alias.name}")
                    )

    def _nearest_module(self, dotted: str) -> str:
        """Longest prefix of ``dotted`` that is (or will be) a module."""
        parts = dotted.split(".")
        while len(parts) > 1 and ".".join(parts) not in self.modules:
            parts.pop()
        return ".".join(parts)

    def _index_class(self, mod: ModuleInfo, node: ast.ClassDef) -> None:
        qual = f"{mod.name}.{node.name}"
        info = ClassInfo(
            qualname=qual, module=mod.name, name=node.name, node=node,
            bases=tuple(
                b for b in (_decorator_head(base) for base in node.bases)
                if b is not None
            ),
        )
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                fn = self._index_function(mod, stmt, cls=qual)
                info.methods[stmt.name] = fn.qualname
            elif isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                info.attrs.add(stmt.target.id)
            elif isinstance(stmt, ast.Assign):
                for tgt in stmt.targets:
                    if isinstance(tgt, ast.Name):
                        info.attrs.add(tgt.id)
        # every ``self.X = ...`` anywhere in the class body
        for sub in ast.walk(node):
            if isinstance(sub, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                targets = (
                    sub.targets if isinstance(sub, ast.Assign)
                    else [sub.target]
                )
                for tgt in targets:
                    if (
                        isinstance(tgt, ast.Attribute)
                        and isinstance(tgt.value, ast.Name)
                        and tgt.value.id == "self"
                    ):
                        info.attrs.add(tgt.attr)
        mod.classes[qual] = info
        self.classes[qual] = info
        self.classes_by_name.setdefault(node.name, []).append(qual)

    def _index_function(self, mod: ModuleInfo, node, cls: Optional[str]):
        owner = cls if cls is not None else mod.name
        qual = f"{owner}.{node.name}"
        info = FunctionInfo(
            qualname=qual, module=mod.name, name=node.name, cls=cls,
            node=node, lineno=node.lineno,
            decorators=tuple(
                d for d in (
                    _decorator_head(dec) for dec in node.decorator_list
                ) if d is not None
            ),
        )
        for sub in ast.walk(node):
            if isinstance(sub, (ast.Import, ast.ImportFrom)):
                self._bind_import(mod, sub, info.local_imports)
        mod.functions[qual] = info
        self.functions[qual] = info
        return info

    # -- resolution ----------------------------------------------------
    def resolve(self, dotted: str, _depth: int = 0) -> Optional[str]:
        """Chase a dotted target through package re-exports.

        Returns the defining qualname for a function/class (or the
        module name itself) when the target lives in this project;
        ``None`` for stdlib/third-party names.
        """
        if _depth > 8 or not dotted.startswith(self.project):
            return None
        if dotted in self.functions or dotted in self.classes:
            return dotted
        if dotted in self.modules:
            return dotted
        head, _, leaf = dotted.rpartition(".")
        if not head:
            return None
        owner = self.resolve(head, _depth + 1)
        if owner is None:
            return None
        if owner in self.classes:
            meth = self.classes[owner].methods.get(leaf)
            return meth
        if owner in self.modules:
            mod = self.modules[owner]
            direct = f"{owner}.{leaf}"
            if direct in self.functions or direct in self.classes:
                return direct
            # re-export: ``from .montecarlo import FleetSimulation``
            target = mod.bindings.get(leaf)
            if target is not None and target != dotted:
                return self.resolve(target, _depth + 1)
        return None

    def resolve_binding(self, mod: ModuleInfo, name: str,
                        fn: Optional[FunctionInfo] = None) -> Optional[str]:
        """Resolve a bare name used in ``mod`` (function scope first)."""
        if fn is not None and name in fn.local_imports:
            return self.resolve(fn.local_imports[name])
        if name in mod.bindings:
            return self.resolve(mod.bindings[name])
        local = f"{mod.name}.{name}"
        if local in self.functions or local in self.classes:
            return local
        return None

    # -- aggregate views ----------------------------------------------
    def package_graph(self) -> Dict[str, Set[str]]:
        """Import edges collapsed to top-level subpackages."""
        out: Dict[str, Set[str]] = {}
        for src, targets in self.import_graph.items():
            src_pkg = self.modules[src].package
            bucket = out.setdefault(src_pkg, set())
            for tgt in targets:
                if tgt in self.modules:
                    tgt_pkg = self.modules[tgt].package
                elif tgt == self.project:
                    tgt_pkg = self.project
                else:
                    tgt_pkg = tgt.split(".")[1] if "." in tgt else tgt
                if tgt_pkg != src_pkg:
                    bucket.add(tgt_pkg)
        return out


def build_project_index(
    paths: Optional[Sequence[str]] = None,
) -> ProjectIndex:
    """Build the index for the project tree.

    ``paths`` follows the CLI convention: the first entry should be the
    package root (``src/repro``). With no argument the installed
    ``repro`` package's own directory is indexed -- which is what
    ``repro check`` does in CI.
    """
    if paths:
        root = paths[0]
    else:
        import repro

        root = repro.__path__[0]
    return ProjectIndex(root)
