"""The SEM rule family: project-wide semantic invariants.

These rules encode the contracts PRs 4-5 made load-bearing but the type
system cannot see:

* ``SEM001`` **epoch discipline** -- every link/switch state mutation
  flows through the ``Topology`` mutators (``set_link_state`` /
  ``fail_node`` / ``recover_node``) so ``state_epoch`` bumps and the
  compiled forwarding plane invalidates; every wiring mutation either
  goes through ``wire()`` or is followed by
  ``notify_structure_changed()`` in the same function. Sanctioned:
  the ``core`` mutators themselves and modules carrying the
  ``# repro: topology-backend`` marker (pluggable fabric backends).
* ``SEM002`` **determinism in engine-cached paths** -- functions
  reachable (via the call graph) from ``@experiment`` entry points
  must not read wall clocks (``time.time``), OS entropy
  (``os.urandom``, ``uuid.uuid4``) or the unseeded global ``random``;
  iteration directly over a set is a warning (hash-seed order leaks
  into payload bytes). ``time.perf_counter`` is allowed: benchmark
  experiments measure wall time on purpose.
* ``SEM003`` **cache coherence** -- in a class carrying an
  ``*_epoch``/``*_cursor`` field, any method reading a memoized
  structure must consult an epoch field or call a refresh/sync helper
  on the same path.
* ``SEM004`` **layering** -- a declarative allowed-edges table over
  the import graph; ``core`` imports nothing above it.
* ``SEM005`` **obs-recorder hot-path discipline** -- recorders
  collapse to ``None`` when disabled; guards must be written
  ``if rec is not None``, never truthiness (`if rec:`), so the hot
  path stays one identity check (extends ``LINT005``).
* ``SEM006`` **dirlink/dense index hygiene** -- the flat solver
  vectors (``cap``/``weight``/``dirlinks``/``link_flows``) are keyed
  by *dense* ids; indexing them with a raw dirlink name, or with an
  index no dominator established, is flagged.

Suppression: the same ``# repro: noqa[SEM001]`` line markers the LINT
family uses, plus the committed baseline file (see :mod:`.baseline`).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

from ..ast_rules import RANDOM_MODULE_FNS, _MISSING
from ..diagnostics import Diagnostic, Location, Report, Severity
from ..registry import SEMANTIC_RULES, semantic_rule
from .callgraph import CallGraph, experiment_entry_points
from .index import FunctionInfo, ModuleInfo, ProjectIndex


@dataclass
class SemContext:
    """One semantic-analysis run over a built index."""

    index: ProjectIndex
    report: Report = field(default_factory=Report)
    _callgraph: Optional[CallGraph] = None

    @property
    def callgraph(self) -> CallGraph:
        """The call graph, built once and shared by every rule."""
        if self._callgraph is None:
            self._callgraph = CallGraph(self.index)
        return self._callgraph

    def relname(self, mod: ModuleInfo) -> str:
        """Module name with the project prefix stripped (``core.topology``)."""
        prefix = self.index.project + "."
        return mod.name[len(prefix):] if mod.name.startswith(prefix) else mod.name

    def emit(
        self,
        rule_id: str,
        mod: ModuleInfo,
        lineno: int,
        message: str,
        severity: Optional[Severity] = None,
    ) -> Diagnostic:
        info = SEMANTIC_RULES[rule_id].info
        allowed = mod.noqa.get(lineno, _MISSING)
        suppressed = allowed is None or (
            allowed is not _MISSING and rule_id in allowed
        )
        return self.report.add(
            Diagnostic(
                rule_id=rule_id,
                severity=severity if severity is not None else info.severity,
                message=message,
                location=Location(file=mod.path, line=lineno),
                suppressed=suppressed,
            )
        )


# ----------------------------------------------------------------------
# SEM001: epoch discipline
# ----------------------------------------------------------------------
#: modules (project-relative) that ARE the sanctioned mutation surface
EPOCH_SANCTIONED_MODULES = frozenset({
    "core.topology",   # the mutators themselves
    "core.entities",   # dataclass definitions of Link/Switch state
    "core.serialize",  # deserialization constructs state wholesale
})

#: attribute names whose assignment flips link/switch *state*
STATE_ATTRS = frozenset({"up"})
#: attribute names whose assignment rewires *structure*
STRUCTURE_ATTRS = frozenset({"link_id"})
#: container attributes owned by Topology (subscript/del/pop mutations)
ADJACENCY_ATTRS = frozenset({"links", "ports"})
_MUTATING_METHODS = frozenset({"pop", "clear", "update", "setdefault",
                               "popitem", "__setitem__", "__delitem__"})
#: calling one of these inside a function sanctions its structure rewires
_STRUCTURE_NOTIFIERS = frozenset({"notify_structure_changed", "wire"})


def _assign_targets(node: ast.AST) -> List[ast.AST]:
    if isinstance(node, ast.Assign):
        return list(node.targets)
    if isinstance(node, (ast.AnnAssign, ast.AugAssign)):
        return [node.target]
    return []


def _calls_structure_notifier(fn_node: ast.AST) -> bool:
    for node in ast.walk(fn_node):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _STRUCTURE_NOTIFIERS
        ):
            return True
    return False


def _receiver_text(node: ast.AST) -> str:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return f"{_receiver_text(node.value)}.{node.attr}"
    if isinstance(node, ast.Subscript):
        return f"{_receiver_text(node.value)}[...]"
    return "<expr>"


@semantic_rule("SEM001", "topology state mutations flow through the "
               "Topology mutators (epoch discipline)", Severity.ERROR)
def rule_epoch_discipline(ctx: SemContext) -> None:
    for mod in ctx.index.modules.values():
        rel = ctx.relname(mod)
        if rel in EPOCH_SANCTIONED_MODULES or mod.is_backend:
            continue
        for fn in mod.functions.values():
            sanctioned_structure = _calls_structure_notifier(fn.node)
            for node in ast.walk(fn.node):
                # attribute stores: x.up = ..., port.link_id = ...
                for tgt in _assign_targets(node):
                    if not isinstance(tgt, ast.Attribute):
                        continue
                    recv = _receiver_text(tgt.value)
                    if tgt.attr in STATE_ATTRS:
                        ctx.emit(
                            "SEM001", mod, tgt.lineno,
                            f"direct state write `{recv}.{tgt.attr} = ...` "
                            "bypasses Topology.set_link_state/fail_node/"
                            "recover_node: state_epoch never bumps and "
                            "compiled routers/caches serve stale paths",
                        )
                    elif tgt.attr in STRUCTURE_ATTRS and not sanctioned_structure:
                        ctx.emit(
                            "SEM001", mod, tgt.lineno,
                            f"structure rewire `{recv}.{tgt.attr} = ...` "
                            "without Topology.wire() or "
                            "notify_structure_changed() in the same "
                            "function: structure_epoch never bumps",
                        )
                # adjacency container mutations: topo.links.pop(...),
                # topo.ports[x] = ..., del topo.links[k]
                if isinstance(node, ast.Call) and isinstance(
                    node.func, ast.Attribute
                ):
                    inner = node.func.value
                    if (
                        node.func.attr in _MUTATING_METHODS
                        and isinstance(inner, ast.Attribute)
                        and inner.attr in ADJACENCY_ATTRS
                        and not sanctioned_structure
                    ):
                        ctx.emit(
                            "SEM001", mod, node.lineno,
                            f"adjacency mutation `{_receiver_text(inner)}"
                            f".{node.func.attr}(...)` outside the Topology "
                            "mutators; wire()/notify_structure_changed() "
                            "must accompany out-of-band rewiring",
                        )
                if isinstance(node, (ast.Assign, ast.Delete)):
                    for tgt in (
                        node.targets if isinstance(node, (ast.Assign,
                                                          ast.Delete))
                        else []
                    ):
                        if (
                            isinstance(tgt, ast.Subscript)
                            and isinstance(tgt.value, ast.Attribute)
                            and tgt.value.attr in ADJACENCY_ATTRS
                            and not sanctioned_structure
                        ):
                            ctx.emit(
                                "SEM001", mod, tgt.lineno,
                                f"adjacency mutation on "
                                f"`{_receiver_text(tgt.value)}[...]` outside "
                                "the Topology mutators; use wire() or call "
                                "notify_structure_changed()",
                            )


# ----------------------------------------------------------------------
# SEM002: determinism in engine-cached paths
# ----------------------------------------------------------------------
#: ``module attr`` pairs that read wall clocks / OS entropy
_NONDET_ATTR_CALLS = {
    ("time", "time"): "time.time() reads the wall clock",
    ("time", "time_ns"): "time.time_ns() reads the wall clock",
    ("os", "urandom"): "os.urandom() reads OS entropy",
    ("uuid", "uuid4"): "uuid.uuid4() reads OS entropy",
}
_NONDET_BOUND = {
    "time.time": "time.time() reads the wall clock",
    "time.time_ns": "time.time_ns() reads the wall clock",
    "os.urandom": "os.urandom() reads OS entropy",
    "uuid.uuid4": "uuid.uuid4() reads OS entropy",
}


def _is_set_expr(node: ast.AST, set_locals: Set[str]) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("set", "frozenset")
    ):
        return True
    return isinstance(node, ast.Name) and node.id in set_locals


@semantic_rule("SEM002", "no nondeterminism reachable from engine "
               "experiments (cache/parallel-equivalence contract)",
               Severity.ERROR)
def rule_engine_determinism(ctx: SemContext) -> None:
    index = ctx.index
    roots = experiment_entry_points(index)
    if not roots:
        return
    reachable = ctx.callgraph.reachable_from(roots)
    ctx.report.stats["sem002_entry_points"] = len(roots)
    ctx.report.stats["sem002_reachable_functions"] = len(reachable)
    for qual in sorted(reachable):
        fn = index.functions[qual]
        mod = index.modules[fn.module]
        # locals assigned a set in this function (for iteration checks)
        set_locals: Set[str] = set()
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                tgt = node.targets[0]
                if isinstance(tgt, ast.Name) and _is_set_expr(
                    node.value, set()
                ):
                    set_locals.add(tgt.id)
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Call):
                self_msg = self_msg_for_call(node, fn, mod)
                if self_msg is not None:
                    ctx.emit(
                        "SEM002", mod, node.lineno,
                        f"{self_msg} inside {fn.name}(), reachable from "
                        "an @experiment entry point: payloads stop being "
                        "a pure function of (params, seed), poisoning the "
                        "content-addressed cache and the parallel==serial "
                        "byte-equivalence guarantee",
                    )
            iters: List[ast.AST] = []
            if isinstance(node, ast.For):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                iters.extend(gen.iter for gen in node.generators)
            for it in iters:
                if _is_set_expr(it, set_locals):
                    ctx.emit(
                        "SEM002", mod, node.lineno,
                        f"iteration over a set inside {fn.name}(), "
                        "reachable from an @experiment entry point: "
                        "hash-seed-dependent order can leak into cached "
                        "payload bytes; iterate sorted(...) instead",
                        severity=Severity.WARNING,
                    )


def self_msg_for_call(node: ast.Call, fn: FunctionInfo,
                      mod: ModuleInfo) -> Optional[str]:
    """Nondeterminism description for a call node, or None."""
    func = node.func
    if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
        key = (func.value.id, func.attr)
        if key in _NONDET_ATTR_CALLS:
            return _NONDET_ATTR_CALLS[key]
        if func.value.id == "random":
            if func.attr in RANDOM_MODULE_FNS:
                return (f"random.{func.attr}() uses the unseeded global "
                        "generator")
            if func.attr == "Random" and not node.args and not node.keywords:
                return "random.Random() without a seed"
    elif isinstance(func, ast.Name):
        target = fn.local_imports.get(func.id) or mod.bindings.get(func.id)
        if target in _NONDET_BOUND:
            return _NONDET_BOUND[target]
    return None


# ----------------------------------------------------------------------
# SEM003: cache coherence
# ----------------------------------------------------------------------
_EPOCHISH = re.compile(r"(_epoch|_cursor)s?$")
_MEMOISH_NAME = re.compile(r"(cache|memo)", re.IGNORECASE)
_SYNCISH = re.compile(
    r"(sync|refresh|invalidate|reset|clear|compile|rebuild|flush)",
    re.IGNORECASE,
)


def _memo_fields(cls_node: ast.ClassDef) -> Set[str]:
    """Instance attrs that hold memoized structures.

    Matched by name (contains cache/memo) or by construction: assigned
    a call whose constructor name contains Cache/Memo.
    """
    out: Set[str] = set()
    for node in ast.walk(cls_node):
        if not isinstance(node, ast.Assign):
            continue
        for tgt in node.targets:
            if not (
                isinstance(tgt, ast.Attribute)
                and isinstance(tgt.value, ast.Name)
                and tgt.value.id == "self"
            ):
                continue
            if _MEMOISH_NAME.search(tgt.attr):
                out.add(tgt.attr)
            elif isinstance(node.value, ast.Call):
                head = node.value.func
                name = head.attr if isinstance(head, ast.Attribute) else (
                    head.id if isinstance(head, ast.Name) else ""
                )
                if _MEMOISH_NAME.search(name):
                    out.add(tgt.attr)
    return out


def _method_touches_epoch(fn_node: ast.AST) -> bool:
    """Does the body read/write any ``*_epoch``/``*_cursor`` attribute?"""
    for node in ast.walk(fn_node):
        if isinstance(node, ast.Attribute) and _EPOCHISH.search(node.attr):
            return True
    return False


def _self_calls(fn_node: ast.AST) -> Set[str]:
    out: Set[str] = set()
    for node in ast.walk(fn_node):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == "self"
        ):
            out.add(node.func.attr)
    return out


@semantic_rule("SEM003", "memoized reads in epoch-carrying classes check "
               "the epoch (cache coherence)", Severity.WARNING)
def rule_cache_coherence(ctx: SemContext) -> None:
    index = ctx.index
    for cls in index.classes.values():
        epochs = {a for a in cls.attrs if _EPOCHISH.search(a)}
        if not epochs:
            continue
        memos = _memo_fields(cls.node)
        if not memos:
            continue
        mod = index.modules[cls.module]
        # pass 1: which methods themselves touch an epoch / are syncish
        checks: Dict[str, bool] = {}
        nodes: Dict[str, ast.AST] = {}
        for name, qual in cls.methods.items():
            fn = index.functions[qual]
            nodes[name] = fn.node
            checks[name] = (
                bool(_SYNCISH.search(name))
                or _method_touches_epoch(fn.node)
            )
        # pass 2: methods reading a memo need a check on the path
        for name, qual in cls.methods.items():
            if name.startswith("__") or checks[name]:
                continue
            fn = index.functions[qual]
            reads = [
                node for node in ast.walk(fn.node)
                if isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"
                and node.attr in memos
                and isinstance(node.ctx, ast.Load)
            ]
            if not reads:
                continue
            if any(checks.get(callee, False) for callee in _self_calls(fn.node)):
                continue
            memo_names = sorted({r.attr for r in reads})
            ctx.emit(
                "SEM003", mod, reads[0].lineno,
                f"{cls.name}.{name}() reads memoized "
                f"{'/'.join(memo_names)} without consulting "
                f"{'/'.join(sorted(epochs))} or calling a refresh/sync "
                "helper: a stale epoch serves stale entries",
            )


# ----------------------------------------------------------------------
# SEM004: layering (declarative allowed-edges over the import graph)
# ----------------------------------------------------------------------
#: who may import whom, by subpackage. Keys are dotted package paths
#: relative to the project root; a module is governed by its *longest*
#: matching key (``repro.obs.health.detectors`` -> ``obs.health`` if
#: present, else ``obs``). ``core`` is the foundation: it imports
#: nothing else. The table is the architecture doc the import graph is
#: checked against -- extend it consciously.
ALLOWED_IMPORTS: Dict[str, Set[str]] = {
    "core": set(),
    "hardware": {"core"},
    "obs": {"core", "engine"},  # engine: the obs-overhead benchmark
    # the health engine's detectors/replay must work anywhere a trace
    # dir exists -- ``engine`` is deliberately absent (the engine layer
    # calls *into* obs.health, never the reverse); the simulation-layer
    # edges are for the seeded fault-injection scenario body
    "obs.health": {"core", "obs", "topos", "access", "routing", "fabric",
                   "collective", "cluster", "fleet", "workloads",
                   "training"},
    "topos": {"core", "obs", "staticcheck"},  # staticcheck: validate gate
    "access": {"core", "obs", "topos", "routing"},
    "routing": {"core", "obs", "topos", "access", "staticcheck"},
    "telemetry": {"core", "obs", "topos", "routing"},
    # fabric -> engine: the sharded solver dispatches component shards
    # through the Runner process pool (runner/spec only; experiment
    # bodies in engine.builtin call back *into* fabric lazily, which
    # keeps the module graph acyclic at import time)
    "fabric": {"core", "obs", "topos", "routing", "cluster", "engine"},
    "collective": {"core", "obs", "topos", "routing", "fabric"},
    "training": {"core", "obs", "topos", "routing", "fabric", "collective"},
    "workloads": {"core", "obs", "topos", "routing", "fabric", "collective",
                  "training", "cluster"},
    "reliability": {"core", "obs", "topos", "routing", "fabric",
                    "collective", "training"},
    "analysis": {"core", "obs", "topos", "routing", "fabric", "collective",
                 "training", "reliability", "engine", "cluster", "hardware"},
    "cluster": {"core", "obs", "topos", "access", "routing", "fabric",
                "collective", "training", "telemetry", "reliability"},
    "engine": {"core", "obs", "cluster", "collective", "fabric",
               "reliability", "routing", "topos", "training", "analysis",
               "fleet", "serve"},
    # fleet composes the substrates into multi-job cluster scenarios;
    # engine is allowed for derive_seed only (spec module, no cycle)
    "fleet": {"core", "obs", "topos", "routing", "fabric", "collective",
              "training", "workloads", "cluster", "engine"},
    "staticcheck": {"core", "obs", "topos", "telemetry", "routing",
                    "access"},
    # the serving layer fronts warm routing state over HTTP; topos is
    # for the bench's fabric builder only
    "serve": {"core", "obs", "topos", "routing"},
    "viz": {"core", "obs", "topos", "routing", "fabric"},
    "cli": {"core", "obs", "topos", "routing", "cluster", "training",
            "reliability", "engine", "staticcheck", "viz", "collective",
            "fleet", "serve"},
    # top-level modules: the package root re-exports the user-facing
    # surface; __main__ just dispatches into the CLI
    "repro": {"core", "topos", "cluster"},
    "__main__": {"cli"},
}


def _layering_key(mod: ModuleInfo) -> str:
    """Most specific ALLOWED_IMPORTS key governing ``mod``.

    Walks the module's package path (project root stripped, module leaf
    excluded for plain modules) from longest dotted prefix down; falls
    back to the top-level subpackage (``mod.package``).
    """
    parts = mod.name.split(".")
    rel = parts[1:] if len(parts) > 1 else parts
    pkg_parts = rel if mod.is_package else rel[:-1]
    for depth in range(len(pkg_parts), 1, -1):
        key = ".".join(pkg_parts[:depth])
        if key in ALLOWED_IMPORTS:
            return key
    return mod.package


@semantic_rule("SEM004", "package layering follows the declared "
               "allowed-edges table", Severity.ERROR)
def rule_layering(ctx: SemContext) -> None:
    index = ctx.index
    for mod in index.modules.values():
        src_pkg = _layering_key(mod)
        allowed = ALLOWED_IMPORTS.get(src_pkg)
        if allowed is None:
            # a package the table has never heard of: require an
            # explicit entry before it may import anything project-side
            if any(t.startswith(index.project) for t in mod.import_edges):
                ctx.emit(
                    "SEM004", mod, 1,
                    f"package {src_pkg!r} is not in the SEM004 "
                    "allowed-imports table; add a conscious entry in "
                    "staticcheck/semantics/rules.py",
                    severity=Severity.WARNING,
                )
            continue
        for tgt in sorted(mod.import_edges):
            if tgt in index.modules:
                tgt_pkg = index.modules[tgt].package
            else:
                parts = tgt.split(".")
                tgt_pkg = parts[1] if len(parts) > 1 else parts[0]
            if tgt_pkg == src_pkg or tgt_pkg in allowed:
                continue
            if tgt == index.project or tgt_pkg == index.project:
                continue  # importing the bare package root
            lineno = _import_lineno(mod, tgt)
            ctx.emit(
                "SEM004", mod, lineno,
                f"layering violation: {src_pkg!r} imports {tgt_pkg!r} "
                f"({mod.name} -> {tgt}), not an allowed edge in "
                "ALLOWED_IMPORTS",
            )


def _import_lineno(mod: ModuleInfo, target: str) -> int:
    """Best-effort line of the import statement that pulls ``target``."""
    leaf = target.split(".")[-1]
    for node in ast.walk(mod.tree):
        if isinstance(node, ast.ImportFrom):
            names = {a.name for a in node.names}
            if (node.module or "").endswith(leaf) or leaf in names:
                return node.lineno
        elif isinstance(node, ast.Import):
            if any(a.name == target or a.name.endswith("." + leaf)
                   for a in node.names):
                return node.lineno
    return 1


# ----------------------------------------------------------------------
# SEM005: obs-recorder hot-path discipline
# ----------------------------------------------------------------------
_RECORDERISH = re.compile(r"(^|_)(rec|recorder)$")


def _recorderish(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Name) and _RECORDERISH.search(node.id):
        return node.id
    if isinstance(node, ast.Attribute) and _RECORDERISH.search(node.attr):
        return _receiver_text(node)
    return None


@semantic_rule("SEM005", "recorder guards use `is not None`, never "
               "truthiness (hot-path discipline)", Severity.ERROR)
def rule_recorder_guard(ctx: SemContext) -> None:
    for mod in ctx.index.modules.values():
        if ctx.relname(mod).startswith("obs"):
            continue  # the obs package defines the recorder's own API
        for fn in mod.functions.values():
            for node in ast.walk(fn.node):
                tests: List[ast.AST] = []
                if isinstance(node, (ast.If, ast.While, ast.IfExp)):
                    tests.append(node.test)
                elif isinstance(node, ast.Assert):
                    tests.append(node.test)
                for test in tests:
                    exprs = [test]
                    if isinstance(test, ast.BoolOp):
                        exprs = list(test.values)
                    for expr in exprs:
                        if isinstance(expr, ast.UnaryOp) and isinstance(
                            expr.op, ast.Not
                        ):
                            expr = expr.operand
                        name = _recorderish(expr)
                        if name is not None:
                            ctx.emit(
                                "SEM005", mod, expr.lineno,
                                f"truthiness test on recorder `{name}`; "
                                "disabled recorders collapse to None -- "
                                "write `is not None` so the hot path "
                                "stays one identity check (see "
                                "docs/observability.md)",
                            )


# ----------------------------------------------------------------------
# SEM006: dirlink/dense index hygiene in the solver core
# ----------------------------------------------------------------------
#: flat vectors keyed by *dense* ids in fabric.incidence / fabric.solver
FLAT_FIELDS = frozenset({"cap", "weight", "dirlinks", "link_flows"})
_SOLVER_MODULES = frozenset({"fabric.incidence", "fabric.solver",
                             "fabric.kernel", "fabric.sharded"})
#: index names that smell like *raw* (sparse) dirlink ids
_RAWISH = re.compile(r"(^|_)(raw|dirlink|dl)(_|$)")
#: parameter names trusted to carry dense ids by convention
_DENSEISH = re.compile(r"(^|_)dense(_|$)|^(d|idx)$")


def _established_names(fn_node: ast.AST) -> Set[str]:
    """Names bound by dominators that establish bounds: loop and
    comprehension targets, unpacking, and assignments from calls /
    subscripts / constants / already-established names."""
    est: Set[str] = set()

    def bind(target: ast.AST) -> None:
        if isinstance(target, ast.Name):
            est.add(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                bind(elt)

    changed = True
    while changed:
        changed = False
        before = len(est)
        for node in ast.walk(fn_node):
            if isinstance(node, ast.For):
                bind(node.target)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                for gen in node.generators:
                    bind(gen.target)
            elif isinstance(node, ast.Assign):
                value = node.value
                ok = isinstance(value, (ast.Call, ast.Subscript, ast.Constant))
                if isinstance(value, ast.Name) and value.id in est:
                    ok = True
                if isinstance(value, ast.BinOp):
                    frees = {
                        n.id for n in ast.walk(value)
                        if isinstance(n, ast.Name)
                    }
                    ok = frees <= est
                if ok:
                    for tgt in node.targets:
                        bind(tgt)
        changed = len(est) > before
    return est


@semantic_rule("SEM006", "flat solver vectors are indexed by dense ids "
               "established by a dominator", Severity.WARNING)
def rule_dense_index_hygiene(ctx: SemContext) -> None:
    index = ctx.index
    for mod in index.modules.values():
        if ctx.relname(mod) not in _SOLVER_MODULES:
            continue
        for fn in mod.functions.values():
            params = {
                a.arg for a in getattr(fn.node, "args",
                                       ast.arguments(
                                           posonlyargs=[], args=[],
                                           kwonlyargs=[], kw_defaults=[],
                                           defaults=[])).args
            }
            established = _established_names(fn.node)
            # locals aliasing flat vectors (residual = array("d", idx.cap))
            aliases: Set[str] = set()
            for node in ast.walk(fn.node):
                if isinstance(node, ast.Assign) and len(node.targets) == 1:
                    tgt = node.targets[0]
                    if not isinstance(tgt, ast.Name):
                        continue
                    val = node.value
                    if isinstance(val, ast.Attribute) and val.attr in FLAT_FIELDS:
                        aliases.add(tgt.id)
                    elif (
                        isinstance(val, ast.Call)
                        and isinstance(val.func, ast.Name)
                        and val.func.id == "array"
                    ):
                        aliases.add(tgt.id)
            for node in ast.walk(fn.node):
                if not isinstance(node, ast.Subscript):
                    continue
                value = node.value
                is_flat = (
                    isinstance(value, ast.Attribute)
                    and value.attr in FLAT_FIELDS
                ) or (isinstance(value, ast.Name) and value.id in aliases)
                if not is_flat:
                    continue
                idx_expr = node.slice
                if not isinstance(idx_expr, ast.Name):
                    continue  # slices/constants/computed: other rules' turf
                name = idx_expr.id
                vec = (value.attr if isinstance(value, ast.Attribute)
                       else value.id)
                if _RAWISH.search(name) and name != "dense":
                    ctx.emit(
                        "SEM006", mod, node.lineno,
                        f"`{vec}[{name}]` indexes a dense flat vector "
                        "with a raw dirlink id; map it through "
                        "IncidenceIndex.dense()/dense_of first",
                        severity=Severity.ERROR,
                    )
                elif name not in established and not (
                    name in params and _DENSEISH.search(name)
                ):
                    ctx.emit(
                        "SEM006", mod, node.lineno,
                        f"`{vec}[{name}]` index has no bounds-establishing "
                        "dominator (loop over the index, .dense()/dense_of "
                        "lookup, or a dense-named parameter)",
                    )


# ----------------------------------------------------------------------
# runner
# ----------------------------------------------------------------------
def run_semantic_rules(
    index: ProjectIndex,
    rule_ids: Optional[Sequence[str]] = None,
    report: Optional[Report] = None,
) -> Report:
    """Run the SEM family over a built index, one shared context."""
    report = report if report is not None else Report()
    ctx = SemContext(index=index, report=report)
    wanted = set(rule_ids) if rule_ids is not None else None
    for rid in sorted(SEMANTIC_RULES):
        if wanted is not None and rid not in wanted:
            continue
        SEMANTIC_RULES[rid].impl(ctx)
        report.bump("semantic_rules_run")
    for key, val in index.stats.items():
        report.stats[f"index_{key}"] = val
    return report
