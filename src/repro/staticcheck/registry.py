"""Rule registry shared by both analyzer families.

Every analyzer -- topology/config rules and codebase AST lint rules --
registers itself here under a stable rule id, so the CLI, the docs and
the test suite can enumerate one catalogue. Topology rules are plain
functions ``fn(ctx)`` decorated with :func:`topology_rule`; lint rules
are :class:`~repro.staticcheck.ast_rules.LintRule` subclasses decorated
with :func:`lint_rule`.

Rule ids are namespaced by family:

* ``TOPO###`` -- structural topology invariants (cheap, always run);
* ``WIRE###`` / ``FWD###`` -- deep wiring/forwarding analyses (sampled
  walks; run by ``validate --all`` or on request);
* ``LINT###`` -- codebase AST hygiene rules.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from .diagnostics import Severity


@dataclass(frozen=True)
class RuleInfo:
    """Catalogue entry for one rule."""

    rule_id: str
    title: str
    severity: Severity
    kind: str  # "topology" | "ast"
    #: architectures the rule applies to; None means every architecture
    architectures: Optional[frozenset] = None
    #: expensive rules (flow walks) only run when explicitly requested
    expensive: bool = False

    def applies_to(self, architecture: Optional[str]) -> bool:
        if self.architectures is None:
            return True
        return architecture in self.architectures


@dataclass
class RegisteredRule:
    info: RuleInfo
    impl: Callable = field(repr=False, default=None)  # type: ignore[assignment]


TOPOLOGY_RULES: Dict[str, RegisteredRule] = {}
AST_RULES: Dict[str, RegisteredRule] = {}


class RuleRegistrationError(Exception):
    """A rule id was registered twice or malformed."""


def _register(
    table: Dict[str, RegisteredRule], info: RuleInfo, impl: Callable
) -> Callable:
    if info.rule_id in table:
        raise RuleRegistrationError(f"duplicate rule id {info.rule_id!r}")
    table[info.rule_id] = RegisteredRule(info=info, impl=impl)
    return impl


def topology_rule(
    rule_id: str,
    title: str,
    severity: Severity = Severity.ERROR,
    architectures: Optional[Sequence[str]] = None,
    expensive: bool = False,
) -> Callable:
    """Register ``fn(ctx)`` as a collecting topology rule."""

    def deco(fn: Callable) -> Callable:
        info = RuleInfo(
            rule_id=rule_id,
            title=title,
            severity=severity,
            kind="topology",
            architectures=(
                frozenset(architectures) if architectures is not None else None
            ),
            expensive=expensive,
        )
        return _register(TOPOLOGY_RULES, info, fn)

    return deco


def lint_rule(
    rule_id: str, title: str, severity: Severity = Severity.ERROR
) -> Callable:
    """Register a :class:`LintRule` subclass."""

    def deco(cls: type) -> type:
        info = RuleInfo(
            rule_id=rule_id, title=title, severity=severity, kind="ast"
        )
        cls.info = info
        _register(AST_RULES, info, cls)
        return cls

    return deco


def all_rules() -> List[RuleInfo]:
    """The full catalogue, topology rules first, sorted by id."""
    infos = [r.info for r in TOPOLOGY_RULES.values()]
    infos += [r.info for r in AST_RULES.values()]
    return sorted(infos, key=lambda i: (i.kind != "topology", i.rule_id))


def get_rule(rule_id: str) -> RegisteredRule:
    if rule_id in TOPOLOGY_RULES:
        return TOPOLOGY_RULES[rule_id]
    if rule_id in AST_RULES:
        return AST_RULES[rule_id]
    raise KeyError(f"unknown rule {rule_id!r}")
