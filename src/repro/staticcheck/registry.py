"""Rule registry shared by both analyzer families.

Every analyzer -- topology/config rules and codebase AST lint rules --
registers itself here under a stable rule id, so the CLI, the docs and
the test suite can enumerate one catalogue. Topology rules are plain
functions ``fn(ctx)`` decorated with :func:`topology_rule`; lint rules
are :class:`~repro.staticcheck.ast_rules.LintRule` subclasses decorated
with :func:`lint_rule`.

Rule ids are namespaced by family:

* ``TOPO###`` -- structural topology invariants (cheap, always run);
* ``WIRE###`` / ``FWD###`` -- deep wiring/forwarding analyses (sampled
  walks; run by ``validate --all`` or on request);
* ``LINT###`` -- codebase AST hygiene rules (per-file);
* ``SEM###`` -- project-wide semantic rules over the
  :class:`~repro.staticcheck.semantics.ProjectIndex` (import graph,
  call graph, dataflow); registered with :func:`semantic_rule`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from .diagnostics import Severity


@dataclass(frozen=True)
class RuleInfo:
    """Catalogue entry for one rule."""

    rule_id: str
    title: str
    severity: Severity
    kind: str  # "topology" | "ast" | "semantic"
    #: architectures the rule applies to; None means every architecture
    architectures: Optional[frozenset] = None
    #: expensive rules (flow walks) only run when explicitly requested
    expensive: bool = False

    def applies_to(self, architecture: Optional[str]) -> bool:
        if self.architectures is None:
            return True
        return architecture in self.architectures


@dataclass
class RegisteredRule:
    info: RuleInfo
    impl: Callable = field(repr=False, default=None)  # type: ignore[assignment]


TOPOLOGY_RULES: Dict[str, RegisteredRule] = {}
AST_RULES: Dict[str, RegisteredRule] = {}
SEMANTIC_RULES: Dict[str, RegisteredRule] = {}

#: family prefix -> the registry table its rules live in (the CLI's
#: ``--family`` option and the docs enumerate exactly these)
FAMILIES: Dict[str, str] = {
    "TOPO": "topology",
    "WIRE": "topology",
    "FWD": "topology",
    "LINT": "ast",
    "SEM": "semantic",
}


def family_of(rule_id: str) -> str:
    """The family prefix of a rule id (``"SEM001"`` -> ``"SEM"``)."""
    return rule_id.rstrip("0123456789")


class RuleRegistrationError(Exception):
    """A rule id was registered twice or malformed."""


def _register(
    table: Dict[str, RegisteredRule], info: RuleInfo, impl: Callable
) -> Callable:
    if info.rule_id in table:
        raise RuleRegistrationError(f"duplicate rule id {info.rule_id!r}")
    table[info.rule_id] = RegisteredRule(info=info, impl=impl)
    return impl


def topology_rule(
    rule_id: str,
    title: str,
    severity: Severity = Severity.ERROR,
    architectures: Optional[Sequence[str]] = None,
    expensive: bool = False,
) -> Callable:
    """Register ``fn(ctx)`` as a collecting topology rule."""

    def deco(fn: Callable) -> Callable:
        info = RuleInfo(
            rule_id=rule_id,
            title=title,
            severity=severity,
            kind="topology",
            architectures=(
                frozenset(architectures) if architectures is not None else None
            ),
            expensive=expensive,
        )
        return _register(TOPOLOGY_RULES, info, fn)

    return deco


def lint_rule(
    rule_id: str, title: str, severity: Severity = Severity.ERROR
) -> Callable:
    """Register a :class:`LintRule` subclass."""

    def deco(cls: type) -> type:
        info = RuleInfo(
            rule_id=rule_id, title=title, severity=severity, kind="ast"
        )
        cls.info = info
        _register(AST_RULES, info, cls)
        return cls

    return deco


def semantic_rule(
    rule_id: str, title: str, severity: Severity = Severity.ERROR
) -> Callable:
    """Register ``fn(ctx)`` as a project-wide semantic rule.

    ``ctx`` is a :class:`~repro.staticcheck.semantics.rules.SemContext`
    wrapping the shared :class:`ProjectIndex`; the rule walks indexed
    modules/graphs and emits diagnostics through the context.
    """

    def deco(fn: Callable) -> Callable:
        info = RuleInfo(
            rule_id=rule_id, title=title, severity=severity, kind="semantic"
        )
        return _register(SEMANTIC_RULES, info, fn)

    return deco


_KIND_ORDER = {"topology": 0, "ast": 1, "semantic": 2}


def all_rules() -> List[RuleInfo]:
    """The full catalogue: topology, then ast, then semantic rules."""
    infos = [r.info for r in TOPOLOGY_RULES.values()]
    infos += [r.info for r in AST_RULES.values()]
    infos += [r.info for r in SEMANTIC_RULES.values()]
    return sorted(infos, key=lambda i: (_KIND_ORDER[i.kind], i.rule_id))


def get_rule(rule_id: str) -> RegisteredRule:
    for table in (TOPOLOGY_RULES, AST_RULES, SEMANTIC_RULES):
        if rule_id in table:
            return table[rule_id]
    raise KeyError(f"unknown rule {rule_id!r}")
