"""Shared diagnostic model for every static analyzer in the repo.

A :class:`Diagnostic` is one finding: a stable rule id, a severity, a
human message, and a :class:`Location` that points either at a file/line
(AST lint rules) or at a topology object (topology/config rules). A
:class:`Report` collects many of them in one pass -- the point of the
whole subsystem is that an operator sees *every* violation at once
instead of whichever one happened to raise first.

Suppression is first-class: a diagnostic can be recorded but marked
``suppressed`` (``# repro: noqa[RULE]`` for lint rules,
``topo.meta["suppress"]`` for topology rules); suppressed findings stay
in the report for auditing but never affect ``ok`` or the exit code.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional


class Severity(enum.Enum):
    """How bad a finding is; only errors gate deployments by default."""

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    @property
    def rank(self) -> int:
        return {"error": 0, "warning": 1, "info": 2}[self.value]

    def __lt__(self, other: "Severity") -> bool:
        return self.rank < other.rank


@dataclass(frozen=True)
class Location:
    """Where a finding lives: a source position and/or a topology object."""

    file: Optional[str] = None
    line: Optional[int] = None
    obj: Optional[str] = None

    def __str__(self) -> str:
        if self.file is not None:
            pos = self.file if self.line is None else f"{self.file}:{self.line}"
            return pos if self.obj is None else f"{pos} ({self.obj})"
        return self.obj if self.obj is not None else "<global>"

    def to_dict(self) -> Dict[str, Any]:
        return {"file": self.file, "line": self.line, "obj": self.obj}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Location":
        return cls(file=data.get("file"), line=data.get("line"),
                   obj=data.get("obj"))


@dataclass
class Diagnostic:
    """One finding from one rule."""

    rule_id: str
    severity: Severity
    message: str
    location: Location = field(default_factory=Location)
    suppressed: bool = False

    def render(self) -> str:
        tag = " (suppressed)" if self.suppressed else ""
        return f"{self.severity.value}[{self.rule_id}] {self.location}: {self.message}{tag}"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rule_id": self.rule_id,
            "severity": self.severity.value,
            "message": self.message,
            "location": self.location.to_dict(),
            "suppressed": self.suppressed,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Diagnostic":
        return cls(
            rule_id=data["rule_id"],
            severity=Severity(data["severity"]),
            message=data["message"],
            location=Location.from_dict(data.get("location", {})),
            suppressed=bool(data.get("suppressed", False)),
        )


@dataclass
class Report:
    """Collected diagnostics from one analysis run."""

    diagnostics: List[Diagnostic] = field(default_factory=list)
    #: bookkeeping: rules run, files scanned, nodes visited...
    stats: Dict[str, int] = field(default_factory=dict)

    # -- collection ----------------------------------------------------
    def add(self, diag: Diagnostic) -> Diagnostic:
        self.diagnostics.append(diag)
        return diag

    def extend(self, diags: Iterable[Diagnostic]) -> None:
        self.diagnostics.extend(diags)

    def merge(self, other: "Report") -> "Report":
        self.diagnostics.extend(other.diagnostics)
        for key, val in other.stats.items():
            self.stats[key] = self.stats.get(key, 0) + val
        return self

    def bump(self, stat: str, by: int = 1) -> None:
        self.stats[stat] = self.stats.get(stat, 0) + by

    # -- queries -------------------------------------------------------
    @property
    def active(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if not d.suppressed]

    def by_severity(self, severity: Severity) -> List[Diagnostic]:
        return [d for d in self.active if d.severity is severity]

    @property
    def errors(self) -> List[Diagnostic]:
        return self.by_severity(Severity.ERROR)

    @property
    def warnings(self) -> List[Diagnostic]:
        return self.by_severity(Severity.WARNING)

    @property
    def ok(self) -> bool:
        return not self.errors

    def rule_ids(self) -> List[str]:
        """Distinct rule ids with active findings, in first-seen order."""
        seen, out = set(), []
        for d in self.active:
            if d.rule_id not in seen:
                seen.add(d.rule_id)
                out.append(d.rule_id)
        return out

    def exit_code(self, strict: bool = False) -> int:
        if self.errors:
            return 1
        if strict and self.warnings:
            return 1
        return 0

    def sorted(self) -> List[Diagnostic]:
        return sorted(
            self.diagnostics,
            key=lambda d: (d.severity.rank, str(d.location), d.rule_id),
        )

    # -- rendering -----------------------------------------------------
    def summary_line(self) -> str:
        sup = sum(1 for d in self.diagnostics if d.suppressed)
        parts = [
            f"{len(self.errors)} error(s)",
            f"{len(self.warnings)} warning(s)",
            f"{len(self.by_severity(Severity.INFO))} info",
        ]
        if sup:
            parts.append(f"{sup} suppressed")
        return ", ".join(parts)

    def render_text(self, max_findings: Optional[int] = None) -> str:
        lines = [d.render() for d in self.sorted()]
        if max_findings is not None and len(lines) > max_findings:
            extra = len(lines) - max_findings
            lines = lines[:max_findings] + [f"... and {extra} more"]
        lines.append(self.summary_line())
        return "\n".join(lines)

    # -- serialization -------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "ok": self.ok,
            "summary": {
                "errors": len(self.errors),
                "warnings": len(self.warnings),
                "info": len(self.by_severity(Severity.INFO)),
                "suppressed": sum(1 for d in self.diagnostics if d.suppressed),
            },
            "stats": dict(self.stats),
            "diagnostics": [d.to_dict() for d in self.sorted()],
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Report":
        report = cls(stats=dict(data.get("stats", {})))
        for d in data.get("diagnostics", []):
            report.add(Diagnostic.from_dict(d))
        return report


# ----------------------------------------------------------------------
# shared rendering: every family, every CLI command, one code path
# ----------------------------------------------------------------------
#: severity -> SARIF result level
_SARIF_LEVEL = {"error": "error", "warning": "warning", "info": "note"}

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"


def _sarif_uri(path: Optional[str]) -> str:
    """Repo-relative, forward-slash artifact URI for a finding."""
    if not path:
        return "<none>"
    norm = path.replace("\\", "/")
    pos = norm.rfind("/src/")
    if pos >= 0:
        return norm[pos + 1:]
    return norm.lstrip("/")


def to_sarif(
    report: Report,
    tool_name: str = "repro-check",
    rules: Optional[Iterable[Any]] = None,
) -> Dict[str, Any]:
    """Project a report into a SARIF 2.1.0 log (one run).

    ``rules`` is an optional iterable of catalogue entries (anything
    with ``rule_id``/``title``/``severity`` attributes, i.e.
    :class:`~repro.staticcheck.registry.RuleInfo`); when given, the
    tool driver advertises them so SARIF viewers show titles and
    default levels. Suppressed findings are emitted with an in-source
    suppression record instead of being dropped -- SARIF consumers
    treat those as audit trail, same as :attr:`Report.active` does.
    """
    driver: Dict[str, Any] = {
        "name": tool_name,
        "informationUri": "https://github.com/alibaba/hpn",
        "rules": [],
    }
    emitted_ids = {d.rule_id for d in report.diagnostics}
    if rules is not None:
        for info in rules:
            if info.rule_id not in emitted_ids:
                continue
            driver["rules"].append({
                "id": info.rule_id,
                "shortDescription": {"text": info.title},
                "defaultConfiguration": {
                    "level": _SARIF_LEVEL[info.severity.value]
                },
            })
    results: List[Dict[str, Any]] = []
    for diag in report.sorted():
        result: Dict[str, Any] = {
            "ruleId": diag.rule_id,
            "level": _SARIF_LEVEL[diag.severity.value],
            "message": {"text": diag.message},
        }
        loc = diag.location
        if loc.file is not None:
            region: Dict[str, Any] = {}
            if loc.line is not None:
                region["startLine"] = loc.line
            physical: Dict[str, Any] = {
                "artifactLocation": {"uri": _sarif_uri(loc.file)},
            }
            if region:
                physical["region"] = region
            result["locations"] = [{"physicalLocation": physical}]
        elif loc.obj is not None:
            result["locations"] = [{
                "logicalLocations": [{"fullyQualifiedName": loc.obj}],
            }]
        if diag.suppressed:
            result["suppressions"] = [{"kind": "inSource"}]
        results.append(result)
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{"tool": {"driver": driver}, "results": results}],
    }


def render_report(
    report: Report,
    fmt: str = "text",
    rules: Optional[Iterable[Any]] = None,
    max_findings: Optional[int] = None,
) -> str:
    """One renderer for every analyzer family and output format.

    ``fmt`` is ``"text"`` | ``"json"`` | ``"sarif"``; every CLI entry
    point (``validate``, ``lint``, ``check``) funnels through here so
    formats never drift between families again.
    """
    if fmt == "json":
        return report.to_json()
    if fmt == "sarif":
        return json.dumps(to_sarif(report, rules=rules), indent=2)
    if fmt == "text":
        return report.render_text(max_findings=max_findings)
    raise ValueError(f"unknown report format {fmt!r}")
