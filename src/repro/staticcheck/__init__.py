"""Unified static-analysis layer.

Two analyzer families behind one registry and one diagnostic model:

* **topology/config rules** (``TOPO*``/``WIRE*``/``FWD*``) -- collecting
  invariant checks over a live or serialized
  :class:`~repro.core.topology.Topology`;
* **codebase lint rules** (``LINT*``) -- AST hygiene checks over the
  simulator's own sources.

Entry points: :func:`analyze_topology`, :func:`lint_paths`, and the CLI
commands ``repro validate --all`` / ``repro lint``. See
``docs/static_analysis.md`` for the rule catalogue and suppression
syntax.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Union

from ..core.serialize import load_topology, topology_from_dict
from ..core.topology import Topology
from .ast_rules import LintRule, lint_paths, lint_source
from .diagnostics import Diagnostic, Location, Report, Severity
from .registry import (
    AST_RULES,
    TOPOLOGY_RULES,
    RuleInfo,
    RuleRegistrationError,
    all_rules,
    get_rule,
    lint_rule,
    topology_rule,
)
from .topo_rules import TopoContext, resolve_spec, run_topology_rules


def analyze_topology(
    topo: Union[Topology, Dict, str],
    include_expensive: bool = False,
    rule_ids: Optional[Sequence[str]] = None,
    forwarding_kwargs: Optional[Dict[str, object]] = None,
) -> Report:
    """Run the topology analyzers over a live or serialized fabric.

    ``topo`` may be a :class:`Topology`, a dict produced by
    :func:`repro.core.serialize.topology_to_dict`, or a path to a
    topology JSON file. ``include_expensive=True`` adds the blueprint
    wiring sweep and the forwarding walks (``WIRE*``/``FWD*``).
    """
    if isinstance(topo, str):
        topo = load_topology(topo)
    elif isinstance(topo, dict):
        topo = topology_from_dict(topo)
    return run_topology_rules(
        topo,
        rule_ids=rule_ids,
        include_expensive=include_expensive,
        forwarding_kwargs=forwarding_kwargs,
    )


__all__ = [
    "AST_RULES",
    "TOPOLOGY_RULES",
    "Diagnostic",
    "LintRule",
    "Location",
    "Report",
    "RuleInfo",
    "RuleRegistrationError",
    "Severity",
    "TopoContext",
    "all_rules",
    "analyze_topology",
    "get_rule",
    "lint_paths",
    "lint_rule",
    "lint_source",
    "resolve_spec",
    "run_topology_rules",
    "topology_rule",
]
