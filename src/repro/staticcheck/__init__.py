"""Unified static-analysis layer.

Three analyzer families behind one registry and one diagnostic model:

* **topology/config rules** (``TOPO*``/``WIRE*``/``FWD*``) -- collecting
  invariant checks over a live or serialized
  :class:`~repro.core.topology.Topology`;
* **codebase lint rules** (``LINT*``) -- per-file AST hygiene checks
  over the simulator's own sources;
* **semantic rules** (``SEM*``) -- project-wide contracts (epoch
  discipline, engine determinism, cache coherence, layering) over the
  whole-tree :class:`~repro.staticcheck.semantics.ProjectIndex`.

Entry points: :func:`analyze_topology`, :func:`lint_paths`,
:func:`repro.staticcheck.semantics.analyze_project`, and the unified
:func:`run_check` behind the ``repro check`` CLI. See
``docs/static_analysis.md`` for the rule catalogue and suppression
syntax.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional, Sequence, Set, Union

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .semantics import Baseline

from ..core.serialize import load_topology, topology_from_dict
from ..core.topology import Topology
from .ast_rules import LintRule, lint_paths, lint_source
from .diagnostics import (
    Diagnostic,
    Location,
    Report,
    Severity,
    render_report,
    to_sarif,
)
from .registry import (
    AST_RULES,
    FAMILIES,
    SEMANTIC_RULES,
    TOPOLOGY_RULES,
    RuleInfo,
    RuleRegistrationError,
    all_rules,
    family_of,
    get_rule,
    lint_rule,
    semantic_rule,
    topology_rule,
)
from .topo_rules import TopoContext, resolve_spec, run_topology_rules


def analyze_topology(
    topo: Union[Topology, Dict, str],
    include_expensive: bool = False,
    rule_ids: Optional[Sequence[str]] = None,
    forwarding_kwargs: Optional[Dict[str, object]] = None,
) -> Report:
    """Run the topology analyzers over a live or serialized fabric.

    ``topo`` may be a :class:`Topology`, a dict produced by
    :func:`repro.core.serialize.topology_to_dict`, or a path to a
    topology JSON file. ``include_expensive=True`` adds the blueprint
    wiring sweep and the forwarding walks (``WIRE*``/``FWD*``).
    """
    if isinstance(topo, str):
        topo = load_topology(topo)
    elif isinstance(topo, dict):
        topo = topology_from_dict(topo)
    return run_topology_rules(
        topo,
        rule_ids=rule_ids,
        include_expensive=include_expensive,
        forwarding_kwargs=forwarding_kwargs,
    )


#: the topology-bound families within the unified gate
_TOPOLOGY_FAMILIES = frozenset({"TOPO", "WIRE", "FWD"})


def run_check(
    families: Optional[Sequence[str]] = None,
    paths: Optional[Sequence[str]] = None,
    topo: Optional[Union[Topology, Dict, str]] = None,
    forwarding_kwargs: Optional[Dict[str, object]] = None,
    baseline: Optional["Baseline"] = None,
) -> Report:
    """The unified gate: run every requested rule family into one report.

    * ``TOPO``/``WIRE``/``FWD`` run when ``topo`` is given (the
      expensive wiring/forwarding walks only when their family is
      requested);
    * ``LINT`` lints ``paths`` per file;
    * ``SEM`` indexes the project tree under ``paths[0]`` once and runs
      the project-wide semantic rules.

    A :class:`~repro.staticcheck.semantics.Baseline` (when given) is
    applied to the merged report, so grandfathered findings of any
    family stop gating while staying visible as suppressed.
    """
    wanted: Set[str] = set(families) if families else set(FAMILIES)
    unknown = wanted - set(FAMILIES)
    if unknown:
        raise ValueError(
            f"unknown rule families: {sorted(unknown)} "
            f"(known: {sorted(FAMILIES)})"
        )
    if not paths:
        import repro as _repro

        paths = [_repro.__path__[0]]
    report = Report()
    if wanted & _TOPOLOGY_FAMILIES and topo is not None:
        topo_report = analyze_topology(
            topo,
            include_expensive=bool(wanted & {"WIRE", "FWD"}),
            forwarding_kwargs=forwarding_kwargs,
        )
        topo_report.diagnostics = [
            d for d in topo_report.diagnostics
            if family_of(d.rule_id) in wanted
        ]
        report.merge(topo_report)
    if "LINT" in wanted:
        report.merge(lint_paths(paths))
    if "SEM" in wanted:
        from . import semantics

        index = semantics.build_project_index(paths)
        semantics.run_semantic_rules(index, report=report)
    if baseline is not None:
        baseline.apply(report)
    return report


__all__ = [
    "AST_RULES",
    "FAMILIES",
    "SEMANTIC_RULES",
    "TOPOLOGY_RULES",
    "Diagnostic",
    "LintRule",
    "Location",
    "Report",
    "RuleInfo",
    "RuleRegistrationError",
    "Severity",
    "TopoContext",
    "all_rules",
    "analyze_topology",
    "family_of",
    "get_rule",
    "lint_paths",
    "lint_rule",
    "lint_source",
    "render_report",
    "resolve_spec",
    "run_check",
    "run_topology_rules",
    "semantic_rule",
    "to_sarif",
    "topology_rule",
]
