"""repro: a reproduction of Alibaba HPN (SIGCOMM 2024).

A flow-level simulation library for LLM-training datacenter networks:
topology generators (HPN's dual-plane/dual-ToR fabric, the DCN+ Clos
baseline and others), deterministic ECMP routing with hash-polarization
modeling, a max-min-fair fluid simulator, the non-stacked dual-ToR
access layer, NCCL-style collectives with the paper's optimized path
selection, and an LLM training-iteration model.

Quick start::

    from repro import Cluster, HpnSpec
    from repro.collective import allreduce
    from repro.core.units import GB

    cluster = Cluster.hpn(HpnSpec(segments_per_pod=1, hosts_per_segment=16,
                                  backup_hosts_per_segment=0, aggs_per_plane=8))
    comm = cluster.communicator(cluster.place(16))
    print(allreduce(comm, 1 * GB).busbw_gb_per_sec, "GB/s")
"""

from .cluster import Cluster
from .core import (
    Host,
    Link,
    Nic,
    Port,
    ReproError,
    RoutingError,
    Switch,
    Topology,
    TopologyError,
)
from .topos import (
    DcnPlusSpec,
    FatTreeSpec,
    FrontendSpec,
    HpnSpec,
    RailOnlySpec,
    SingleTorSpec,
    build_dcnplus,
    build_fattree,
    build_frontend,
    build_hpn,
    build_railonly,
    build_singletor,
    validate,
)

__version__ = "1.0.0"

__all__ = [
    "Cluster",
    "DcnPlusSpec",
    "FatTreeSpec",
    "FrontendSpec",
    "Host",
    "HpnSpec",
    "Link",
    "Nic",
    "Port",
    "RailOnlySpec",
    "ReproError",
    "RoutingError",
    "SingleTorSpec",
    "Switch",
    "Topology",
    "TopologyError",
    "build_dcnplus",
    "build_fattree",
    "build_frontend",
    "build_hpn",
    "build_railonly",
    "build_singletor",
    "validate",
    "__version__",
]
