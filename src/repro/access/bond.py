"""Host-side bonding (Linux bond mode 4, dynamic link aggregation).

The bond load-balances flows over its two member ports with a
layer-3+4 transmit hash and reroutes to the surviving member when a
link dies. Because both ports share one IP/MAC/QP context, rerouting is
transparent to RDMA -- the property dual-ToR leans on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..core.entities import Nic
from ..core.errors import AccessError
from ..core.topology import Topology
from ..routing.hashing import FiveTuple, hash_five_tuple

#: default miimon-style detection latency for a member-link failure
DEFAULT_MII_DELAY_S = 0.1


@dataclass
class Bond:
    """An 802.3ad bond over one NIC's two ports."""

    topo: Topology
    nic: Nic
    mii_delay_s: float = DEFAULT_MII_DELAY_S
    #: failure times per member port (None = healthy), set by injector
    member_down_since: List[Optional[float]] = field(default_factory=lambda: [None, None])

    def _member_link_up(self, idx: int) -> bool:
        pref = self.nic.ports[idx]
        port = self.topo.port(pref)
        if port.link_id is None:
            return False
        return self.topo.links[port.link_id].up

    def member_usable(self, idx: int, now: float) -> bool:
        """Whether the bond *believes* member ``idx`` is usable at ``now``.

        A dead member keeps receiving traffic for ``mii_delay_s`` seconds
        until detection kicks in.
        """
        if self._member_link_up(idx):
            return True
        since = self.member_down_since[idx]
        if since is None:
            # link is down but the bond was never told: treat as fresh
            return False
        return now < since + self.mii_delay_s

    def notice_failure(self, idx: int, now: float) -> None:
        self.member_down_since[idx] = now

    def notice_recovery(self, idx: int) -> None:
        self.member_down_since[idx] = None

    # ------------------------------------------------------------------
    def select_port(self, ft: FiveTuple, now: float = 0.0) -> int:
        """Transmit member for a flow: layer-3+4 hash with failover."""
        wired = [i for i in range(len(self.nic.ports)) if self._has_wire(i)]
        if not wired:
            raise AccessError(f"{self.nic.name}: no wired ports")
        preferred = wired[hash_five_tuple(ft, seed=0x5EED) % len(wired)]
        if self.member_usable(preferred, now) and self._member_link_up(preferred):
            return preferred
        alive = [i for i in wired if self._member_link_up(i)]
        if not alive:
            raise AccessError(f"{self.nic.name}: all bond members down")
        return alive[0]

    def _has_wire(self, idx: int) -> bool:
        return self.topo.port(self.nic.ports[idx]).link_id is not None

    @property
    def capacity_gbps(self) -> float:
        """Current usable transmit capacity of the bond."""
        total = 0.0
        for idx, pref in enumerate(self.nic.ports):
            port = self.topo.port(pref)
            if port.link_id is None:
                continue
            if self.topo.links[port.link_id].up:
                total += port.gbps
        return total
