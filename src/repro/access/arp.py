"""ARP handling on non-stacked dual-ToR switches (paper 4.2).

Three mechanisms cooperate so layer-2 state never black-holes traffic:

* the **host duplicates every ARP announcement to both NIC ports** so
  both ToRs of the set learn the binding without syncing each other;
* the ToR converts each learned ARP entry into a **/32 BGP host route**
  (see :mod:`repro.access.bgp`);
* the ToR runs an **ARP proxy**: it answers any ARP request with its own
  MAC and layer-2 broadcast is disabled, so even intra-segment traffic
  terminates at the ToR and follows layer-3 routes -- avoiding the
  5-minute MAC-table aging black hole during access-link failures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Set, Tuple


@dataclass
class ArpEntry:
    ip: str
    mac: str
    port: int


@dataclass
class TorArpTable:
    """ARP state on one ToR with proxy behaviour."""

    name: str
    switch_mac: str
    proxy_enabled: bool = True
    l2_broadcast_enabled: bool = False
    entries: Dict[str, ArpEntry] = field(default_factory=dict)

    def learn(self, ip: str, mac: str, port: int) -> ArpEntry:
        entry = ArpEntry(ip, mac, port)
        self.entries[ip] = entry
        return entry

    def withdraw_port(self, port: int) -> Set[str]:
        """Access link died: drop every entry learned on that port."""
        gone = {ip for ip, e in self.entries.items() if e.port == port}
        for ip in gone:
            del self.entries[ip]
        return gone

    def resolve(self, requested_ip: str) -> Optional[str]:
        """MAC returned to a host ARPing for ``requested_ip``.

        With the proxy on, the switch's own MAC is returned for *any*
        target, forcing layer-3 forwarding at the ToR.
        """
        if self.proxy_enabled:
            return self.switch_mac
        entry = self.entries.get(requested_ip)
        if entry is not None:
            return entry.mac
        if self.l2_broadcast_enabled:
            return None  # would flood; disabled in HPN
        return None


@dataclass
class HostArpAnnouncer:
    """Host side: duplicate ARP announcements to both NIC ports."""

    ip: str
    mac: str

    def announce(self, tors: Tuple[TorArpTable, ...], ports: Tuple[int, ...]) -> None:
        """Send a gratuitous ARP out of every port (ARP Broadcast module)."""
        if len(tors) != len(ports):
            raise ValueError("one physical port per ToR required")
        for tor, port in zip(tors, ports):
            tor.learn(self.ip, self.mac, port)
