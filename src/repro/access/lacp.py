"""LACP actor model and the non-stacked bundling trick (paper 4.2).

A host bonds its NIC's two ports with IEEE 802.3ad LACP. The bond
aggregates two links only when the partner information in the LACPDUs
says they terminate on *one* device: same system ID, different port IDs.

* **Stacked dual-ToR** negotiates a shared sysID over the inter-switch
  stack link -- the dependency the paper removes.
* **Non-stacked dual-ToR** pre-configures both switches with the
  RFC 3768 virtual-router MAC ``00:00:5E:00:01:01`` (same sysID without
  talking to each other) and has each switch add a distinct
  ``portid_offset > 256`` so port IDs never collide -- neither with each
  other (different offsets) nor with real ports (a single chip has fewer
  than 256 ports).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..core.addressing import VIRTUAL_ROUTER_MAC
from ..core.errors import AccessError

#: ports per chip never exceed this, so offsets > 256 cannot collide
MAX_PHYSICAL_PORTS = 256


def sys_id_from_mac(mac: str) -> int:
    """System ID derived from a MAC address (priority bits elided)."""
    return int(mac.replace(":", ""), 16)


@dataclass
class Lacpdu:
    """The actor fields of a LACP data unit that matter to bundling."""

    sys_id: int
    port_id: int
    key: int = 1


@dataclass
class SwitchLacpActor:
    """The LACP responder on one ToR switch.

    ``configured_mac``/``portid_offset`` model the customized module the
    paper built with its switch vendors; when unset the switch behaves
    like stock firmware and uses its own chassis MAC with raw port IDs.
    """

    name: str
    chassis_mac: str
    configured_mac: Optional[str] = None
    portid_offset: int = 0

    def __post_init__(self) -> None:
        if self.portid_offset and self.portid_offset <= MAX_PHYSICAL_PORTS:
            raise AccessError(
                f"portid_offset must exceed {MAX_PHYSICAL_PORTS} to avoid "
                f"colliding with physical port numbers, got {self.portid_offset}"
            )

    def respond(self, physical_port: int) -> Lacpdu:
        """LACPDU sent to the host attached at ``physical_port``."""
        if not 0 <= physical_port < MAX_PHYSICAL_PORTS:
            raise AccessError(f"physical port {physical_port} out of range")
        mac = self.configured_mac or self.chassis_mac
        return Lacpdu(
            sys_id=sys_id_from_mac(mac),
            port_id=physical_port + self.portid_offset,
        )


def configure_non_stacked_pair(
    tor_a: SwitchLacpActor,
    tor_b: SwitchLacpActor,
    offset_a: int = 300,
    offset_b: int = 600,
) -> None:
    """Apply the paper's customization to one dual-ToR set."""
    if offset_a == offset_b:
        raise AccessError("the two switches of a set need distinct offsets")
    tor_a.configured_mac = VIRTUAL_ROUTER_MAC
    tor_b.configured_mac = VIRTUAL_ROUTER_MAC
    tor_a.portid_offset = offset_a
    tor_b.portid_offset = offset_b


@dataclass
class HostBondNegotiation:
    """Host-side LACP: decides whether two links aggregate into one bond."""

    received: List[Lacpdu] = field(default_factory=list)

    def offer(self, pdu: Lacpdu) -> None:
        self.received.append(pdu)

    @property
    def aggregated(self) -> bool:
        """True when all partners present one system with unique ports."""
        if len(self.received) < 2:
            return False
        sys_ids = {p.sys_id for p in self.received}
        port_ids = [p.port_id for p in self.received]
        return len(sys_ids) == 1 and len(set(port_ids)) == len(port_ids)

    def failure_reason(self) -> Optional[str]:
        if self.aggregated:
            return None
        if len(self.received) < 2:
            return "fewer than two LACPDUs received"
        if len({p.sys_id for p in self.received}) != 1:
            return "partners present different system IDs"
        return "duplicate port IDs"


def negotiate(host_port_on_a: int, host_port_on_b: int,
              tor_a: SwitchLacpActor, tor_b: SwitchLacpActor) -> HostBondNegotiation:
    """Run one LACP negotiation between a host and a ToR pair."""
    nego = HostBondNegotiation()
    nego.offer(tor_a.respond(host_port_on_a))
    nego.offer(tor_b.respond(host_port_on_b))
    return nego
