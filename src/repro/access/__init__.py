"""Dual-ToR access layer: LACP, ARP, BGP host routes, bonding."""

from .arp import ArpEntry, HostArpAnnouncer, TorArpTable
from .bgp import (
    DEFAULT_CONVERGENCE_DELAY_S,
    DEFAULT_DETECT_DELAY_S,
    FailoverTimeline,
)
from .bond import Bond
from .lacp import (
    HostBondNegotiation,
    Lacpdu,
    SwitchLacpActor,
    configure_non_stacked_pair,
    negotiate,
    sys_id_from_mac,
)
from .nonstacked import NonStackedDualTor
from .stacked import StackedPair, StackedTor, TorHealth, make_pair

__all__ = [
    "ArpEntry",
    "Bond",
    "DEFAULT_CONVERGENCE_DELAY_S",
    "DEFAULT_DETECT_DELAY_S",
    "FailoverTimeline",
    "HostArpAnnouncer",
    "HostBondNegotiation",
    "Lacpdu",
    "NonStackedDualTor",
    "StackedPair",
    "StackedTor",
    "SwitchLacpActor",
    "TorArpTable",
    "TorHealth",
    "configure_non_stacked_pair",
    "make_pair",
    "negotiate",
    "sys_id_from_mac",
]
