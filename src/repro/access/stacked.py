"""Stacked dual-ToR state machine and its failure modes (paper 4.1).

A stacked pair couples two switches through a direct stack link (data-
plane state sync: ARP/MAC) and an out-of-band channel (controller
election). The paper reports that over 40% of critical datacenter
failures traced back to two mechanisms this model reproduces:

* **stack failure** -- the primary's data plane dies silently (e.g. MMU
  overflow) while its control plane stays healthy. Sync over the stack
  link stops; the secondary cannot distinguish "peer data plane dead"
  from "stale forwarding about to diverge" and self-isolates to avoid
  inconsistent forwarding. Both ToRs are now effectively gone: the
  whole rack drops.
* **upgrade incompatibility** -- a rolling upgrade leaves the two peers
  on RPC-incompatible versions; state sync fails and takes the pair
  down. In-service upgrades (ISSU) only help when the version diff is
  small, which the paper measured true for just 30% of their upgrades.

The model is deterministic: drive it with events and read which hosts
still have connectivity.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Tuple


class TorHealth(enum.Enum):
    HEALTHY = "healthy"
    DATA_PLANE_DOWN = "data-plane-down"     # silent data-plane loss
    SELF_ISOLATED = "self-isolated"         # secondary protective shutdown
    OFFLINE = "offline"


@dataclass
class StackedTor:
    name: str
    role: str                       # "primary" | "secondary"
    version: str = "v1"
    health: TorHealth = TorHealth.HEALTHY
    #: ISSU works only when the version diff is small
    issu_compatible_with: Tuple[str, ...] = ()

    @property
    def forwarding(self) -> bool:
        return self.health is TorHealth.HEALTHY


@dataclass
class StackedPair:
    """One stacked dual-ToR set."""

    primary: StackedTor
    secondary: StackedTor
    stack_link_up: bool = True
    oob_up: bool = True
    #: log of state transitions for post-mortems
    events: list = field(default_factory=list)

    # ------------------------------------------------------------------
    def _log(self, msg: str) -> None:
        self.events.append(msg)

    def sync_healthy(self) -> bool:
        """Whether ARP/MAC sync over the stack link is functioning."""
        return (
            self.stack_link_up
            and self.primary.health is TorHealth.HEALTHY
            and self.secondary.health is TorHealth.HEALTHY
            and self._versions_compatible()
        )

    def _versions_compatible(self) -> bool:
        if self.primary.version == self.secondary.version:
            return True
        return (
            self.secondary.version in self.primary.issu_compatible_with
            or self.primary.version in self.secondary.issu_compatible_with
        )

    # ------------------------------------------------------------------
    # events
    # ------------------------------------------------------------------
    def silent_data_plane_failure(self) -> None:
        """Primary's data plane dies; control planes keep negotiating."""
        self.primary.health = TorHealth.DATA_PLANE_DOWN
        self._log(f"{self.primary.name}: data plane down (control plane unaware)")
        self._resolve_sync_loss()

    def upgrade(self, tor: str, new_version: str) -> None:
        """Upgrade one member; incompatibility can take the pair down."""
        target = self.primary if tor == self.primary.name else self.secondary
        target.version = new_version
        self._log(f"{target.name}: upgraded to {new_version}")
        if not self._versions_compatible():
            self._log("RPC field mismatch during state sync")
            self._resolve_sync_loss()

    def stack_link_failure(self) -> None:
        self.stack_link_up = False
        self._log("stack link down")
        self._resolve_sync_loss()

    def _resolve_sync_loss(self) -> None:
        """The paper's pathology: sync loss with healthy OOB channel.

        The secondary sees the primary alive over OOB but cannot sync
        forwarding state, so it shuts itself down to avoid inconsistent
        forwarding -- even if the primary's data plane is dead.
        """
        if self.sync_healthy():
            return
        if self.oob_up and self.secondary.health is TorHealth.HEALTHY:
            self.secondary.health = TorHealth.SELF_ISOLATED
            self._log(
                f"{self.secondary.name}: self-isolated (primary claims healthy "
                "over OOB, forwarding state cannot be synced)"
            )

    # ------------------------------------------------------------------
    @property
    def rack_has_connectivity(self) -> bool:
        """Whether hosts under this pair can still forward traffic."""
        return self.primary.forwarding or self.secondary.forwarding

    def outcome(self) -> str:
        if self.rack_has_connectivity:
            return "degraded" if not self.sync_healthy() else "healthy"
        return "rack-offline"


def make_pair(name_a: str = "tor1", name_b: str = "tor2",
              version: str = "v1") -> StackedPair:
    """A healthy stacked pair."""
    return StackedPair(
        primary=StackedTor(name_a, "primary", version),
        secondary=StackedTor(name_b, "secondary", version),
    )
