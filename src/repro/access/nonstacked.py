"""Non-stacked dual-ToR controller (paper 4.2).

Ties the pieces together for one dual-ToR set:

* LACP customization (shared virtual-router MAC + distinct port-ID
  offsets) so hosts bond two *independent* switches;
* host ARP announcements duplicated to both ToRs, converted to /32 BGP
  host routes;
* the failure drill: an access-link loss withdraws the /32 from the
  affected ToR and the fabric converges onto the survivor, with no
  inter-switch synchronization anywhere.

Unlike :class:`~repro.access.stacked.StackedPair`, there is no shared
fate: one switch's death never propagates to its sibling.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.entities import Nic
from ..core.errors import AccessError
from ..core.topology import Topology
from .arp import HostArpAnnouncer, TorArpTable
from .bgp import FailoverTimeline
from .lacp import (
    HostBondNegotiation,
    SwitchLacpActor,
    configure_non_stacked_pair,
    negotiate,
)


@dataclass
class NonStackedDualTor:
    """One non-stacked dual-ToR set serving one rail of one segment."""

    topo: Topology
    tor_a: str
    tor_b: str
    timeline: FailoverTimeline
    lacp_a: SwitchLacpActor = field(init=False)
    lacp_b: SwitchLacpActor = field(init=False)
    arp_a: TorArpTable = field(init=False)
    arp_b: TorArpTable = field(init=False)
    #: nic name -> (port index on tor_a, port index on tor_b)
    attachments: Dict[str, Tuple[int, int]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.tor_a == self.tor_b:
            raise AccessError("a dual-ToR set needs two distinct switches")
        self.lacp_a = SwitchLacpActor(self.tor_a, chassis_mac="02:aa:00:00:00:01")
        self.lacp_b = SwitchLacpActor(self.tor_b, chassis_mac="02:bb:00:00:00:02")
        configure_non_stacked_pair(self.lacp_a, self.lacp_b)
        self.arp_a = TorArpTable(self.tor_a, switch_mac="02:aa:00:00:00:01")
        self.arp_b = TorArpTable(self.tor_b, switch_mac="02:bb:00:00:00:02")

    # ------------------------------------------------------------------
    def attach(self, nic: Nic) -> HostBondNegotiation:
        """Bring one NIC up under the set: LACP + ARP + host routes."""
        legs = self._legs(nic)
        if set(legs) != {self.tor_a, self.tor_b}:
            raise AccessError(
                f"{nic.name} is not wired to this dual-ToR set "
                f"({legs} vs {(self.tor_a, self.tor_b)})"
            )
        port_on_a = self._physical_port(nic, self.tor_a)
        port_on_b = self._physical_port(nic, self.tor_b)
        nego = negotiate(port_on_a, port_on_b, self.lacp_a, self.lacp_b)
        if not nego.aggregated:
            raise AccessError(f"LACP bundling failed: {nego.failure_reason()}")
        announcer = HostArpAnnouncer(nic.ip, nic.mac)
        announcer.announce((self.arp_a, self.arp_b), (port_on_a, port_on_b))
        self.attachments[nic.name] = (port_on_a, port_on_b)
        return nego

    def _legs(self, nic: Nic) -> List[str]:
        out = []
        for pref in nic.ports:
            port = self.topo.port(pref)
            if port.link_id is None:
                continue
            out.append(self.topo.links[port.link_id].other(nic.host).node)
        return out

    def _physical_port(self, nic: Nic, tor: str) -> int:
        for pref in nic.ports:
            port = self.topo.port(pref)
            if port.link_id is None:
                continue
            link = self.topo.links[port.link_id]
            if link.other(nic.host).node == tor:
                far = link.a if link.a.node == tor else link.b
                return far.index % 128
        raise AccessError(f"{nic.name} has no leg on {tor}")

    # ------------------------------------------------------------------
    def host_routes(self, tor: str) -> List[str]:
        """/32 prefixes the given ToR currently advertises."""
        table = self.arp_a if tor == self.tor_a else self.arp_b
        return sorted(table.entries)

    def fail_leg(self, nic: Nic, tor: str, now: float) -> float:
        """Access-link failure: withdraw ARP + /32; returns converge time."""
        table = self.arp_a if tor == self.tor_a else self.arp_b
        idx = 0 if tor == self.tor_a else 1
        phys = self.attachments[nic.name][idx]
        table.withdraw_port(phys)
        link = self._leg_link(nic, tor)
        self.topo.set_link_state(link, up=False)
        return self.timeline.fail_access_link(link, now)

    def recover_leg(self, nic: Nic, tor: str, now: float) -> float:
        table = self.arp_a if tor == self.tor_a else self.arp_b
        idx = 0 if tor == self.tor_a else 1
        phys = self.attachments[nic.name][idx]
        table.learn(nic.ip, nic.mac, phys)
        link = self._leg_link(nic, tor)
        self.topo.set_link_state(link, up=True)
        return self.timeline.recover_access_link(link, now)

    def _leg_link(self, nic: Nic, tor: str) -> int:
        for pref in nic.ports:
            port = self.topo.port(pref)
            if port.link_id is None:
                continue
            link = self.topo.links[port.link_id]
            if link.other(nic.host).node == tor:
                return link.link_id
        raise AccessError(f"{nic.name} has no leg on {tor}")

    def surviving_tor(self, nic: Nic, now: float) -> Optional[str]:
        """Which ToR the fabric has converged on for this /32, if any."""
        tors = self.timeline.advertising_tors(nic, now)
        return tors[0] if tors else None
