"""BGP host-route model for dual-ToR failover (paper 4.2).

Every ARP entry a ToR learns is converted to a /32 host route and
advertised into BGP; the rest of the fabric prefers the longest prefix,
so while both access legs are alive both ToRs attract traffic (ECMP in
DCN+, plane-pinned in HPN). When an access link fails:

1. the ToR detects the loss (LFS/BFD, ``detect_delay_s``);
2. it withdraws the /32, and the withdrawal propagates
   (``convergence_delay_s``);
3. only the surviving ToR advertises the /32 -- every sender converges
   onto it.

Until step 3 completes, traffic hashed towards the dead leg is
black-holed; that window is what :class:`FailoverTimeline` exposes and
what the fault-injection benchmarks charge against training throughput.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.entities import Nic
from ..core.topology import Topology
from ..obs import RingBuffer
from ..obs import resolve as _obs_resolve

#: defaults calibrated to production-style timers
DEFAULT_DETECT_DELAY_S = 0.05     # link-fault signaling / BFD
DEFAULT_CONVERGENCE_DELAY_S = 0.5  # /32 withdrawal propagation


@dataclass
class RouteState:
    """Advertisement state of one (tor, /32) pair."""

    advertised: bool = True
    #: when the current transition completes (None = stable)
    transition_at: Optional[float] = None


@dataclass
class FailoverTimeline:
    """Tracks /32 advertisements per access leg over simulated time."""

    topo: Topology
    detect_delay_s: float = DEFAULT_DETECT_DELAY_S
    convergence_delay_s: float = DEFAULT_CONVERGENCE_DELAY_S
    #: (link_id) -> RouteState for the /32 riding that access link
    _state: Dict[int, RouteState] = field(default_factory=dict)
    #: ``(time, message)`` lines, newest-N retained via the shared ring
    log: RingBuffer = field(default_factory=RingBuffer)
    #: bound on retained log lines (None = unbounded); long engine-driven
    #: fault campaigns set this so the log cannot grow without limit --
    #: oldest lines roll off and are counted in ``rolled_up_entries``
    max_entries: Optional[int] = None
    #: injectable recorder; None defers to the process-wide one
    recorder: Optional[object] = None

    @property
    def rolled_up_entries(self) -> int:
        """Log lines that aged past ``max_entries`` and were dropped."""
        return self.log.rolled_off

    def _ensure(self, link_id: int) -> RouteState:
        return self._state.setdefault(link_id, RouteState())

    def _log(self, at_s: float, message: str) -> None:
        # the shared ring buffer owns the bounding logic; sync the bound
        # each append so callers may tighten max_entries mid-run
        self.log.max_entries = self.max_entries
        self.log.append((at_s, message))

    @property
    def blackhole_window(self) -> float:
        """Seconds a failed leg keeps attracting (and dropping) traffic."""
        return self.detect_delay_s + self.convergence_delay_s

    # ------------------------------------------------------------------
    def fail_access_link(self, link_id: int, now: float) -> float:
        """Access link died at ``now``; returns convergence completion time."""
        state = self._ensure(link_id)
        done = now + self.blackhole_window
        state.advertised = False
        state.transition_at = done
        self._log(now, f"link {link_id} down, /32 withdrawal by {done:.3f}")
        rec = _obs_resolve(self.recorder)
        if rec is not None:
            rec.metrics.counter("bgp.withdrawals").inc()
            rec.events.span(
                "bgp.blackhole", now, done, track="failover",
                link_id=link_id, detect_delay_s=self.detect_delay_s,
                convergence_delay_s=self.convergence_delay_s,
            )
        return done

    def recover_access_link(self, link_id: int, now: float) -> float:
        """Link repaired; /32 re-advertised after convergence."""
        state = self._ensure(link_id)
        done = now + self.convergence_delay_s
        state.advertised = True
        state.transition_at = done
        self._log(now, f"link {link_id} up, /32 restored by {done:.3f}")
        rec = _obs_resolve(self.recorder)
        if rec is not None:
            rec.metrics.counter("bgp.restorations").inc()
            rec.events.span(
                "bgp.restore", now, done, track="failover",
                link_id=link_id,
                convergence_delay_s=self.convergence_delay_s,
            )
        return done

    # ------------------------------------------------------------------
    def converged(self, link_id: int, now: float) -> bool:
        """Whether the fabric's view of this leg is stable at ``now``."""
        state = self._state.get(link_id)
        if state is None or state.transition_at is None:
            return True
        return now >= state.transition_at

    def leg_attracts_traffic(self, link_id: int, now: float) -> bool:
        """Whether senders still route towards this leg at ``now``.

        A freshly dead leg attracts (and drops) traffic until the
        withdrawal converges -- the black-hole window.
        """
        state = self._state.get(link_id)
        if state is None:
            return True
        if state.advertised:
            return True
        return now < (state.transition_at or 0.0)

    def advertising_tors(self, nic: Nic, now: float) -> List[str]:
        """ToRs currently advertising this NIC's /32 (converged view)."""
        out = []
        for pref in nic.ports:
            port = self.topo.port(pref)
            if port.link_id is None:
                continue
            link = self.topo.links[port.link_id]
            state = self._state.get(link.link_id)
            advertised = link.up if state is None else state.advertised
            if advertised:
                out.append(link.other(nic.host).node)
        return out
