"""Cooling solutions and junction-temperature model (Figures 9b-10).

The 51.2T chip's power exceeds what heat pipes or the vendor's stock
vapor chamber can remove before the junction hits 105 C, at which point
over-temperature protection kills forwarding. The customized vapor
chamber (more wicked pillars at the die center, section 5.1) raises
cooling capacity by 15% and is the only solution with headroom at full
power.

First-order model: junction temperature rises linearly with power over
ambient through the solution's thermal resistance; a solution "allows"
an operating power equal to the power at which the junction reaches
``t_jmax``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from .switchchip import ChipGeneration, generation

#: chips shut down above this junction temperature (unchanged across gens)
T_JMAX_CELSIUS = 105.0
AMBIENT_CELSIUS = 35.0


@dataclass(frozen=True)
class CoolingSolution:
    """One heat-sink option."""

    name: str
    #: power (W) removable before the junction reaches T_jmax
    allowed_power_watts: float

    def junction_celsius(self, power_watts: float) -> float:
        """Linear junction-temperature estimate at ``power_watts``."""
        headroom = T_JMAX_CELSIUS - AMBIENT_CELSIUS
        if self.allowed_power_watts <= 0:
            raise ValueError("cooling capacity must be positive")
        return AMBIENT_CELSIUS + headroom * (power_watts / self.allowed_power_watts)

    def supports(self, chip: ChipGeneration) -> bool:
        """Whether the chip can run at full power without tripping OTP."""
        return self.junction_celsius(chip.power_watts) <= T_JMAX_CELSIUS

    def shutdown_under_load(self, chip: ChipGeneration, load_factor: float = 1.0) -> bool:
        return self.junction_celsius(chip.power_watts * load_factor) > T_JMAX_CELSIUS


#: calibrated so heat pipe and stock VC fall short of 551 W while the
#: optimized VC (stock +15%) clears it -- matching Figure 9b's bars
HEAT_PIPE = CoolingSolution("Heat Pipe", allowed_power_watts=460.0)
ORIGINAL_VC = CoolingSolution("Original VC", allowed_power_watts=500.0)
OPTIMIZED_VC = CoolingSolution("Optimized VC", allowed_power_watts=500.0 * 1.15)

SOLUTIONS: Tuple[CoolingSolution, ...] = (HEAT_PIPE, ORIGINAL_VC, OPTIMIZED_VC)


def cooling_report(chip_name: str = "51.2T") -> Dict[str, Dict[str, float]]:
    """Figure 9b as data: allowed power vs the chip's draw per solution."""
    chip = generation(chip_name)
    out = {}
    for sol in SOLUTIONS:
        out[sol.name] = {
            "allowed_power_watts": sol.allowed_power_watts,
            "chip_power_watts": chip.power_watts,
            "supports_full_power": sol.supports(chip),
            "junction_at_full_power": sol.junction_celsius(chip.power_watts),
        }
    return out


def optimization_gain() -> float:
    """Cooling-efficiency gain of the optimized VC (paper: 15%)."""
    return OPTIMIZED_VC.allowed_power_watts / ORIGINAL_VC.allowed_power_watts - 1.0
