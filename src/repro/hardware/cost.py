"""Build-cost models (paper section 10 lessons).

Two cost claims are modeled:

* keeping one Pod inside one 18 MW building keeps all fibers under
  100 m, allowing multi-mode transceivers that cost ~30% of single-mode
  ones (a 70% saving per optic);
* covering 15K GPUs with a single Pod instead of several smaller pods
  removes the core-layer links/switches those pods would need, saving
  ~30% of the network build cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..core.topology import Topology

#: relative optic prices (single-mode = 1.0)
SINGLE_MODE_COST = 1.0
MULTI_MODE_COST = 0.3

#: relative cost units per element
SWITCH_COST = 40.0
LINK_COST_MM = 2 * MULTI_MODE_COST   # two transceivers per link
LINK_COST_SM = 2 * SINGLE_MODE_COST


@dataclass(frozen=True)
class BuildingConstraint:
    """Datacenter building envelope (section 10)."""

    power_megawatts: float = 18.0
    gpus_supported: int = 15_360
    intra_building_fiber_meters: float = 100.0

    def pods_per_building(self, gpus_per_pod: int) -> int:
        return max(1, self.gpus_supported // gpus_per_pod)


def transceiver_saving() -> float:
    """Fractional cost cut of multi-mode vs single-mode (paper: 70%)."""
    return 1.0 - MULTI_MODE_COST / SINGLE_MODE_COST


def network_cost(
    topo: Topology,
    cross_building_fraction: float = 0.0,
) -> float:
    """Relative build cost: switches + optics, mixed by fiber reach."""
    switches = len(topo.switches)
    links = len(topo.links)
    long_links = links * cross_building_fraction
    short_links = links - long_links
    return (
        switches * SWITCH_COST
        + short_links * LINK_COST_MM
        + long_links * LINK_COST_SM
    )


def single_pod_vs_multi_pod_saving(
    single_pod_cost: float, multi_pod_cost: float
) -> float:
    """Fractional saving of one big pod over several small pods."""
    if multi_pod_cost <= 0:
        raise ValueError("multi-pod cost must be positive")
    return 1.0 - single_pod_cost / multi_pod_cost


def cost_report(topo: Topology) -> Dict[str, float]:
    return {
        "switches": float(len(topo.switches)),
        "links": float(len(topo.links)),
        "relative_cost": network_cost(topo),
    }
