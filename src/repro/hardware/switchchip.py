"""Switch-chip generations: capacity, port configs, power (Figure 9a).

The paper's choice of the 51.2 Tbps *single-chip* switch rests on two
observations modeled here:

* power per chip grows sub-linearly with capacity -- the 51.2T part
  draws ~45% more than the 25.6T part while doubling capacity;
* multi-chip chassis fail ~3.8x more often per unit than single-chip
  switches, so single-chip is the only option at this radix.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple


@dataclass(frozen=True)
class ChipGeneration:
    """One Ethernet switch ASIC generation."""

    name: str
    capacity_gbps: float
    power_watts: float
    year: int
    max_junction_celsius: float = 105.0

    @property
    def watts_per_tbps(self) -> float:
        return self.power_watts / (self.capacity_gbps / 1000.0)


#: generation series; power follows the paper's relative curve
#: (the 51.2T chip draws 45% more than the 25.6T one)
GENERATIONS: Tuple[ChipGeneration, ...] = (
    ChipGeneration("3.2T", 3_200, 180.0, 2015),
    ChipGeneration("6.4T", 6_400, 230.0, 2017),
    ChipGeneration("12.8T", 12_800, 300.0, 2019),
    ChipGeneration("25.6T", 25_600, 380.0, 2021),
    ChipGeneration("51.2T", 51_200, 551.0, 2023),  # = 380 * 1.45
    ChipGeneration("102.4T", 102_400, 800.0, 2025),
)


def generation(name: str) -> ChipGeneration:
    for gen in GENERATIONS:
        if gen.name == name:
            return gen
    raise KeyError(f"unknown chip generation {name!r}")


def power_increase(older: str, newer: str) -> float:
    """Fractional power growth between two generations (paper: 0.45)."""
    a, b = generation(older), generation(newer)
    return b.power_watts / a.power_watts - 1.0


def capacity_doubling_years(history: Tuple[ChipGeneration, ...] = GENERATIONS) -> float:
    """Average years per capacity doubling (paper: ~2 years)."""
    import math

    first, last = history[0], history[-1]
    doublings = math.log2(last.capacity_gbps / first.capacity_gbps)
    return (last.year - first.year) / doublings


@dataclass(frozen=True)
class PortConfig:
    """Port layout of a switch role built from one chip."""

    chip: ChipGeneration
    down_ports: int
    down_gbps: float
    up_ports: int
    up_gbps: float
    backup_down_ports: int = 0

    def used_gbps(self) -> float:
        return (
            (self.down_ports + self.backup_down_ports) * self.down_gbps
            + self.up_ports * self.up_gbps
        )

    def fits_chip(self) -> bool:
        return self.used_gbps() <= self.chip.capacity_gbps + 1e-6


#: HPN's ToR layout on the 51.2T chip (section 5.1)
HPN_TOR_PORTS = PortConfig(
    chip=generation("51.2T"),
    down_ports=128,
    down_gbps=200.0,
    up_ports=60,
    up_gbps=400.0,
    backup_down_ports=8,
)


@dataclass(frozen=True)
class ReliabilityComparison:
    """Single-chip vs multi-chip fleet reliability (section 5.1)."""

    single_chip_units: float = 32.6   # relative fleet size
    multi_chip_units: float = 1.0
    single_chip_critical_failures: float = 1.0
    multi_chip_critical_failures: float = 3.77

    @property
    def per_unit_failure_ratio(self) -> float:
        """How much more often one multi-chip unit fails vs single-chip."""
        single = self.single_chip_critical_failures / self.single_chip_units
        multi = self.multi_chip_critical_failures / self.multi_chip_units
        return multi / single
