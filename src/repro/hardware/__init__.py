"""Hardware models: switch chips, cooling, and build cost."""

from .cost import (
    BuildingConstraint,
    cost_report,
    network_cost,
    single_pod_vs_multi_pod_saving,
    transceiver_saving,
)
from .switchchip import (
    ChipGeneration,
    GENERATIONS,
    HPN_TOR_PORTS,
    PortConfig,
    ReliabilityComparison,
    capacity_doubling_years,
    generation,
    power_increase,
)
from .thermal import (
    AMBIENT_CELSIUS,
    CoolingSolution,
    HEAT_PIPE,
    OPTIMIZED_VC,
    ORIGINAL_VC,
    SOLUTIONS,
    T_JMAX_CELSIUS,
    cooling_report,
    optimization_gain,
)

__all__ = [
    "AMBIENT_CELSIUS",
    "BuildingConstraint",
    "ChipGeneration",
    "CoolingSolution",
    "GENERATIONS",
    "HEAT_PIPE",
    "HPN_TOR_PORTS",
    "OPTIMIZED_VC",
    "ORIGINAL_VC",
    "PortConfig",
    "ReliabilityComparison",
    "SOLUTIONS",
    "T_JMAX_CELSIUS",
    "capacity_doubling_years",
    "cooling_report",
    "cost_report",
    "generation",
    "network_cost",
    "optimization_gain",
    "power_increase",
    "single_pod_vs_multi_pod_saving",
    "transceiver_saving",
]
