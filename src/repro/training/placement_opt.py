"""Placement optimization: ordering hosts to minimize fabric traffic.

Section 7's "proper cooperation with the worker scheduler" generalizes
to a placement problem: given the hosts a job received, order them so

* DP-group rings cross as few segment (and pod) boundaries as possible;
* only PP boundaries land on the most expensive (cross-pod) hops.

``optimize_order`` is a deterministic heuristic: sort hosts by
(pod, segment, index) and lay pipeline-stage blocks contiguously so DP
peers (which stride by ``pp`` host-blocks) stay within a segment when
capacity allows. ``placement_cost`` counts boundary crossings so the
improvement is measurable and testable.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..core.topology import Topology
from .parallelism import ParallelismPlan, Placement


def _block_key(topo: Topology, host: str) -> Tuple[int, int, int]:
    h = topo.hosts[host]
    return (h.pod, h.segment, h.index)


def placement_cost(topo: Topology, placement: Placement) -> Tuple[int, int]:
    """(segment crossings, pod crossings) summed over all DP rings and
    PP boundaries -- the traffic the aggregation/core layers must carry."""
    seg_cross = 0
    pod_cross = 0

    def crossings(a: str, b: str) -> Tuple[int, int]:
        ha, hb = topo.hosts[a], topo.hosts[b]
        seg = int((ha.pod, ha.segment) != (hb.pod, hb.segment))
        pod = int(ha.pod != hb.pod)
        return seg, pod

    for _rail, hosts in placement.dp_group_hosts():
        if len(hosts) < 2:
            continue
        for i, src in enumerate(hosts):
            s, p = crossings(src, hosts[(i + 1) % len(hosts)])
            seg_cross += s
            pod_cross += p
    for src, dst in placement.pp_boundary_host_pairs():
        s, p = crossings(src, dst)
        seg_cross += s
        pod_cross += p
    return seg_cross, pod_cross


def optimize_order(
    topo: Topology, plan: ParallelismPlan, hosts: Sequence[str]
) -> List[str]:
    """Reorder ``hosts`` to minimize DP-ring boundary crossings.

    With the tp-fastest rank layout, DP replica ``d`` occupies the host
    block ``[d*B .. d*B+B-1]`` (``B = pp*tp/gpus_per_host``) and the DP
    group of stage ``p`` connects hosts ``{d*B + p}`` across replicas.
    DP carries ~1000x PP's bytes (Table 3), so the right goal is to
    keep each *stage pool* -- the hosts at the same block offset --
    inside one segment, letting the thin PP edges absorb the segment
    crossings instead.

    Heuristic: sort hosts by (pod, segment, index), slice the sorted
    list into ``B`` contiguous stage pools of ``dp`` hosts each, and
    emit ``out[d*B + p] = pool[p][d]``.
    """
    hosts = sorted(hosts, key=lambda name: _block_key(topo, name))
    block = max(1, plan.pp * plan.tp // plan.gpus_per_host)
    replicas = len(hosts) // block
    if block <= 1 or replicas * block != len(hosts):
        return list(hosts)
    pools = [hosts[p * replicas : (p + 1) * replicas] for p in range(block)]
    out: List[str] = []
    for d in range(replicas):
        for p in range(block):
            out.append(pools[p][d])
    return out


def compare_orderings(
    topo: Topology, plan: ParallelismPlan, hosts: Sequence[str]
) -> dict:
    """Cost of the naive (given) ordering vs the optimized one."""
    naive = Placement(plan=plan, hosts=list(hosts))
    optimized = Placement(plan=plan, hosts=optimize_order(topo, plan, hosts))
    n_seg, n_pod = placement_cost(topo, naive)
    o_seg, o_pod = placement_cost(topo, optimized)
    return {
        "naive": {"segment_crossings": n_seg, "pod_crossings": n_pod},
        "optimized": {"segment_crossings": o_seg, "pod_crossings": o_pod},
    }
