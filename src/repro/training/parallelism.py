"""Parallelism plans: TP x PP x DP group construction and placement.

Megatron-style 3D parallelism on 8-GPU hosts:

* **TP** groups live inside one host (tp <= 8), riding NVLink;
* **PP** stages follow consecutive host blocks (and are the traffic the
  paper schedules across pods, section 7);
* **DP** replicas of the same (tp rank, pp stage) GPU sit on different
  hosts at the *same local GPU index* -- i.e. the same rail -- which is
  what makes gradient synchronization a per-rail Multi-AllReduce.

Rank layout (tp fastest, then pp, then dp)::

    global_rank = dp_idx * (pp * tp) + pp_idx * tp + tp_idx
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from ..core.errors import PlacementError


@dataclass(frozen=True)
class ParallelismPlan:
    """A (tp, pp, dp) decomposition."""

    tp: int = 8
    pp: int = 8
    dp: int = 4
    gpus_per_host: int = 8

    def __post_init__(self) -> None:
        if min(self.tp, self.pp, self.dp) < 1:
            raise PlacementError("tp/pp/dp must all be >= 1")
        if self.tp > self.gpus_per_host:
            raise PlacementError(
                f"tp={self.tp} exceeds {self.gpus_per_host} GPUs per host "
                "(TP must stay on NVLink)"
            )
        if self.gpus_per_host % self.tp:
            raise PlacementError("tp must divide gpus_per_host")

    @property
    def world_size(self) -> int:
        return self.tp * self.pp * self.dp

    @property
    def num_hosts(self) -> int:
        if self.world_size % self.gpus_per_host:
            raise PlacementError(
                f"world size {self.world_size} not a multiple of "
                f"{self.gpus_per_host} GPUs per host"
            )
        return self.world_size // self.gpus_per_host


@dataclass(frozen=True)
class GpuSlot:
    """Physical placement of one rank."""

    host: str
    gpu: int  # local index == rail


@dataclass
class Placement:
    """Ranks mapped to GPU slots, with all communication groups."""

    plan: ParallelismPlan
    hosts: List[str]
    slots: List[GpuSlot] = field(default_factory=list)

    def __post_init__(self) -> None:
        need = self.plan.num_hosts
        if len(self.hosts) != need:
            raise PlacementError(
                f"plan needs {need} hosts, got {len(self.hosts)}"
            )
        if not self.slots:
            g = self.plan.gpus_per_host
            self.slots = [
                GpuSlot(self.hosts[r // g], r % g)
                for r in range(self.plan.world_size)
            ]

    # ------------------------------------------------------------------
    def rank_coords(self, rank: int) -> Tuple[int, int, int]:
        """(dp_idx, pp_idx, tp_idx) of a global rank."""
        tp, pp = self.plan.tp, self.plan.pp
        tp_idx = rank % tp
        pp_idx = (rank // tp) % pp
        dp_idx = rank // (tp * pp)
        return dp_idx, pp_idx, tp_idx

    def rank_of(self, dp_idx: int, pp_idx: int, tp_idx: int) -> int:
        tp, pp = self.plan.tp, self.plan.pp
        return dp_idx * (pp * tp) + pp_idx * tp + tp_idx

    def slot(self, rank: int) -> GpuSlot:
        return self.slots[rank]

    # ------------------------------------------------------------------
    def tp_groups(self) -> List[List[int]]:
        """Ranks sharing one TP group (all co-resident on one host)."""
        groups = []
        for dp_idx in range(self.plan.dp):
            for pp_idx in range(self.plan.pp):
                groups.append(
                    [self.rank_of(dp_idx, pp_idx, t) for t in range(self.plan.tp)]
                )
        return groups

    def pp_groups(self) -> List[List[int]]:
        """Ranks forming one pipeline (fixed dp_idx, tp_idx)."""
        groups = []
        for dp_idx in range(self.plan.dp):
            for tp_idx in range(self.plan.tp):
                groups.append(
                    [self.rank_of(dp_idx, p, tp_idx) for p in range(self.plan.pp)]
                )
        return groups

    def dp_groups(self) -> List[List[int]]:
        """Ranks sharing one DP group (fixed pp_idx, tp_idx)."""
        groups = []
        for pp_idx in range(self.plan.pp):
            for tp_idx in range(self.plan.tp):
                groups.append(
                    [self.rank_of(d, pp_idx, tp_idx) for d in range(self.plan.dp)]
                )
        return groups

    # ------------------------------------------------------------------
    def dp_group_hosts(self) -> List[Tuple[int, List[str]]]:
        """Per DP group: (rail carrying it, ordered distinct member hosts).

        Each member of a DP group sits on local GPU ``tp_idx % 8`` of its
        host, so the group's gradient ring rides that rail.
        """
        out = []
        for group in self.dp_groups():
            hosts: List[str] = []
            for rank in group:
                h = self.slots[rank].host
                if h not in hosts:
                    hosts.append(h)
            rail = self.slots[group[0]].gpu
            out.append((rail, hosts))
        return out

    def pp_boundary_host_pairs(self) -> List[Tuple[str, str]]:
        """Distinct (sender, receiver) host pairs across stage boundaries."""
        pairs: List[Tuple[str, str]] = []
        seen = set()
        for group in self.pp_groups():
            for a, b in zip(group, group[1:]):
                ha, hb = self.slots[a].host, self.slots[b].host
                if ha != hb and (ha, hb) not in seen:
                    seen.add((ha, hb))
                    pairs.append((ha, hb))
        return pairs

    def tp_groups_intra_host(self) -> bool:
        """Whether every TP group is fully contained in one host."""
        for group in self.tp_groups():
            if len({self.slots[r].host for r in group}) != 1:
                return False
        return True
