"""Training-job orchestration on one cluster.

:class:`TrainingJob` binds a model, a parallelism plan, a placement and
a communicator, and answers throughput queries before and after network
events -- the object the end-to-end benchmarks (Figures 15, 16, 18)
drive.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..collective.comm import Communicator
from ..core.topology import Topology
from ..routing.ecmp import Router
from .iteration import IterationBreakdown, simulate_iteration
from .models import GpuSpec, H800, LlmConfig
from .parallelism import ParallelismPlan, Placement


@dataclass
class TrainingJob:
    """One LLM training job placed on a cluster."""

    topo: Topology
    router: Router
    config: LlmConfig
    placement: Placement
    gpu: GpuSpec = H800
    micro_batch: int = 1
    microbatches: Optional[int] = None
    overlap: float = 0.3
    num_conns: int = 2
    disjoint_paths: bool = True
    _comm: Optional[Communicator] = field(default=None, init=False, repr=False)

    @property
    def comm(self) -> Communicator:
        if self._comm is None:
            self._comm = Communicator(
                self.topo,
                self.router,
                self.placement.hosts,
                num_conns=self.num_conns,
                disjoint_paths=self.disjoint_paths,
            )
        return self._comm

    # ------------------------------------------------------------------
    def iteration(self) -> IterationBreakdown:
        """Simulate one iteration under the current link state."""
        return simulate_iteration(
            self.comm,
            self.placement,
            self.config,
            gpu=self.gpu,
            micro_batch=self.micro_batch,
            microbatches=self.microbatches,
            overlap=self.overlap,
        )

    def samples_per_sec(self) -> float:
        return self.iteration().samples_per_sec

    def refresh_connections(self) -> None:
        """Re-establish connections after a topology/link-state change."""
        if self._comm is not None:
            self._comm.invalidate_connections()

    # ------------------------------------------------------------------
    def segments_spanned(self) -> int:
        """How many (pod, segment) blocks the job occupies."""
        blocks = {
            (self.topo.hosts[h].pod, self.topo.hosts[h].segment)
            for h in self.placement.hosts
        }
        return len(blocks)


def make_job(
    topo: Topology,
    router: Router,
    config: LlmConfig,
    plan: ParallelismPlan,
    hosts: Sequence[str],
    **kwargs,
) -> TrainingJob:
    """Convenience constructor from a host list."""
    placement = Placement(plan=plan, hosts=list(hosts))
    return TrainingJob(
        topo=topo, router=router, config=config, placement=placement, **kwargs
    )
