"""Storage-cluster placement analysis (paper sections 8 and 10).

The paper weighs putting the CPFS/OSS storage cluster in the backend
(3.2 Tbps per host, attractive for checkpoints) against the frontend
(400 Gbps, but isolated from training) and chooses the frontend for
three reasons, all modeled here:

1. external data (datasets, images) cannot reach the backend without a
   proxy -- an extra component and stability risk;
2. storage bursts in the backend perturb training collectives;
3. backend storage hosts consume ToR ports that would otherwise serve
   GPUs.

:func:`checkpoint_write_time` answers how long a checkpoint burst takes
through each network; :func:`training_perturbation` quantifies reason 2
by co-scheduling a checkpoint flow with a gradient ring.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..collective.comm import Communicator
from ..collective.model import ring_allreduce_edge_bytes
from ..core.units import gbps_to_bytes_per_sec
from ..fabric.simulator import run_flows
from .checkpoint import CheckpointSpec


@dataclass(frozen=True)
class StoragePlacement:
    """One placement option's first-order characteristics."""

    name: str
    host_bandwidth_gbps: float
    needs_external_proxy: bool
    perturbs_training: bool
    tor_ports_consumed_per_host: int


BACKEND_PLACEMENT = StoragePlacement(
    name="backend",
    host_bandwidth_gbps=3200.0,
    needs_external_proxy=True,
    perturbs_training=True,
    tor_ports_consumed_per_host=16,
)

FRONTEND_PLACEMENT = StoragePlacement(
    name="frontend",
    host_bandwidth_gbps=400.0,
    needs_external_proxy=False,
    perturbs_training=False,
    tor_ports_consumed_per_host=0,  # frontend ports exist anyway
)


def checkpoint_write_time(
    placement: StoragePlacement,
    spec: CheckpointSpec,
    gpus_per_host: int = 8,
    storage_efficiency: float = 0.6,
) -> float:
    """Seconds to push one host's checkpoint shard to storage."""
    shard = spec.bytes_per_gpu * gpus_per_host
    rate = gbps_to_bytes_per_sec(placement.host_bandwidth_gbps) * storage_efficiency
    return shard / rate


def training_perturbation(
    comm: Communicator,
    grad_bytes: float,
    checkpoint_bytes_per_host: float,
    storage_rail: int = 0,
) -> float:
    """Fractional slowdown of a gradient ring when checkpoint traffic
    shares the backend network (reason 2 for the frontend choice).

    Simulates the per-rail gradient rings alone, then again with every
    host simultaneously streaming its checkpoint shard to a storage
    target on ``storage_rail``'s network.
    """
    hosts = comm.hosts
    per_edge = ring_allreduce_edge_bytes(grad_bytes, len(hosts))
    baseline_flows = comm.all_rails_ring_flows(per_edge, tag="grad")
    baseline = run_flows(comm.topo, baseline_flows).finish_time

    for f in baseline_flows:
        f.reset()
    mixed = list(baseline_flows)
    # checkpoint streams: host i -> host (i + len/2) standing in for a
    # backend-resident storage node
    half = max(1, len(hosts) // 2)
    for i, src in enumerate(hosts):
        dst = hosts[(i + half) % len(hosts)]
        if dst == src:
            continue
        mixed.extend(
            comm.edge_flows(
                src, dst, storage_rail, checkpoint_bytes_per_host,
                tag=f"ckpt/{i}",
            )
        )
    grad_ids = {f.flow_id for f in baseline_flows}
    result = run_flows(comm.topo, mixed)
    perturbed = max(result.flow_finish[fid] for fid in grad_ids)
    return perturbed / baseline - 1.0


def placement_report(spec: CheckpointSpec = CheckpointSpec()) -> List[dict]:
    """The section-10 decision table as data."""
    rows = []
    for placement in (BACKEND_PLACEMENT, FRONTEND_PLACEMENT):
        rows.append(
            {
                "placement": placement.name,
                "checkpoint_write_seconds": checkpoint_write_time(placement, spec),
                "needs_external_proxy": placement.needs_external_proxy,
                "perturbs_training": placement.perturbs_training,
                "tor_ports_per_storage_host": placement.tor_ports_consumed_per_host,
            }
        )
    return rows
