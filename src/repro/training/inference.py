"""Inference serving over the frontend network (paper section 8).

The frontend's 2x200G per host was sized so training hosts can serve
inference too ("a unified platform supporting users' various
demands"). The model answers the sizing question: given a model's
token sizes and a request mix, how many requests/s can one host's
frontend NIC carry, and does a mixed training+inference deployment fit?
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.units import gbps_to_bytes_per_sec
from .models import GpuSpec, H800, LlmConfig


@dataclass(frozen=True)
class InferenceWorkload:
    """One serving workload's shape."""

    prompt_tokens: int = 512
    output_tokens: int = 256
    bytes_per_token: int = 4          # request/response wire encoding
    kv_bytes_per_token: float = 0.0   # nonzero when KV is shipped (disagg)

    def request_bytes(self) -> float:
        return self.prompt_tokens * self.bytes_per_token

    def response_bytes(self) -> float:
        return self.output_tokens * self.bytes_per_token

    def wire_bytes(self) -> float:
        total_kv = self.kv_bytes_per_token * (self.prompt_tokens + self.output_tokens)
        return self.request_bytes() + self.response_bytes() + total_kv


@dataclass(frozen=True)
class ServingHost:
    """A training host moonlighting as an inference server."""

    frontend_gbps: float = 400.0
    gpu: GpuSpec = H800
    gpus: int = 8
    #: fraction of frontend bandwidth reserved for storage/management
    reserved_fraction: float = 0.25

    def network_requests_per_sec(self, wl: InferenceWorkload) -> float:
        """Request rate the frontend NIC supports."""
        usable = gbps_to_bytes_per_sec(self.frontend_gbps) * (
            1.0 - self.reserved_fraction
        )
        return usable / wl.wire_bytes()

    def compute_requests_per_sec(self, config: LlmConfig, wl: InferenceWorkload) -> float:
        """Request rate the GPUs support (2 FLOPs/param/token decode)."""
        flops_per_request = 2.0 * config.params * (wl.prompt_tokens + wl.output_tokens)
        total = self.gpu.sustained_flops * self.gpus
        return total / flops_per_request

    def bottleneck(self, config: LlmConfig, wl: InferenceWorkload) -> str:
        net = self.network_requests_per_sec(wl)
        comp = self.compute_requests_per_sec(config, wl)
        return "network" if net < comp else "compute"

    def requests_per_sec(self, config: LlmConfig, wl: InferenceWorkload) -> float:
        return min(
            self.network_requests_per_sec(wl),
            self.compute_requests_per_sec(config, wl),
        )


def frontend_supports_inference(
    config: LlmConfig,
    wl: InferenceWorkload = InferenceWorkload(),
    host: ServingHost = ServingHost(),
    headroom: float = 2.0,
) -> bool:
    """The section-8 design check: the frontend NIC must not be the
    bottleneck (with ``headroom``x margin) for realistic serving."""
    return (
        host.network_requests_per_sec(wl)
        >= headroom * host.compute_requests_per_sec(config, wl)
    )
