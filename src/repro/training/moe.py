"""Mixture-of-Experts training traffic (paper section 10 discussion).

MoE layers route tokens to experts with all-to-all exchanges whose
source and destination GPUs inherently live on different rails -- the
pattern that breaks the rail-only tier-2 assumption and justified
HPN's any-to-any aggregation layer.

The model adds expert-parallel all-to-all volumes to the dense
iteration model and exposes the comparison the paper's discussion
implies: the same MoE job on an any-to-any fabric vs a rail-only one.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..collective.alltoall import all_to_all
from ..collective.comm import Communicator
from .models import LlmConfig


@dataclass(frozen=True)
class MoeConfig:
    """Expert-parallel extension of a dense model."""

    base: LlmConfig
    num_experts: int = 64
    top_k: int = 2
    #: fraction of layers that are MoE layers
    moe_layer_fraction: float = 0.5
    #: dimensionless expert-buffer multiplier (standard MoE terminology)
    capacity_factor: float = 1.25  # repro: noqa[LINT004]

    @property
    def name(self) -> str:
        return f"{self.base.name}-MoE{self.num_experts}"

    def alltoall_bytes_per_layer(self, tokens: int) -> float:
        """Bytes each rank exchanges per MoE layer (dispatch + combine).

        Each token's hidden state travels to its top-k experts and
        back: ``2 * top_k * capacity * tokens * hidden * 2B``.
        """
        hidden_bytes = self.base.hidden * self.base.bytes_per_param
        return 2.0 * self.top_k * self.capacity_factor * tokens * hidden_bytes

    def moe_layers(self) -> int:
        return max(1, int(self.base.layers * self.moe_layer_fraction))


@dataclass
class MoeIterationComm:
    """Simulated expert-parallel communication of one iteration."""

    alltoall_seconds: float
    relay_seconds: float
    layers: int

    @property
    def total_seconds(self) -> float:
        return self.alltoall_seconds + self.relay_seconds


def simulate_moe_exchange(
    comm: Communicator,
    config: MoeConfig,
    tokens_per_rank: int = 2048,
) -> MoeIterationComm:
    """Run one iteration's worth of MoE all-to-all on the fabric.

    The per-layer exchange is simulated once and scaled by the MoE
    layer count (layers are sequential, so times add).
    """
    per_layer = config.alltoall_bytes_per_layer(tokens_per_rank)
    result = all_to_all(comm, per_layer)
    layers = config.moe_layers()
    return MoeIterationComm(
        alltoall_seconds=result.network_seconds * layers,
        relay_seconds=result.relay_seconds * layers,
        layers=layers,
    )


def rail_only_penalty(
    any_to_any: MoeIterationComm, rail_only: MoeIterationComm
) -> float:
    """Fractional slowdown of the rail-only fabric on MoE traffic."""
    if any_to_any.total_seconds <= 0:
        return 0.0
    return rail_only.total_seconds / any_to_any.total_seconds - 1.0
