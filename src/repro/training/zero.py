"""ZeRO-style sharded data parallelism (DeepSpeed, paper section 2.1).

ZeRO changes *what* DP moves per iteration:

* stage 1/2 -- gradients are Reduce-Scattered (each member owns 1/dp of
  them) and updated parameters All-Gathered back: the same total bytes
  as AllReduce but in two half-volume phases, each pipelinable;
* stage 3 -- parameters are also sharded; every forward/backward
  additionally All-Gathers the parameter shards layer by layer,
  trading memory for sustained network traffic *during* compute.

The model extends Table 3's accounting and simulates the phases on the
fabric, so the HPN-vs-DCN+ comparison can be rerun under a ZeRO
workload (an extension the paper does not evaluate but its framework
mentions).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..collective.comm import Communicator
from ..collective.model import ring_allgather_edge_bytes
from ..fabric.simulator import run_flows
from .models import LlmConfig
from .parallelism import ParallelismPlan, Placement


class ZeroStage(enum.Enum):
    NONE = 0     # plain AllReduce DP (Megatron default)
    STAGE_1 = 1  # optimizer-state sharding: RS + AG of gradients/params
    STAGE_3 = 3  # parameter sharding: + per-layer parameter AllGather


@dataclass(frozen=True)
class ZeroTraffic:
    """Per-iteration DP bytes per rank under a ZeRO stage."""

    reduce_scatter_bytes: float
    allgather_bytes: float
    param_gather_bytes: float  # stage 3 only, overlappable with compute

    @property
    def total_bytes(self) -> float:
        return (
            self.reduce_scatter_bytes
            + self.allgather_bytes
            + self.param_gather_bytes
        )


def zero_traffic(
    config: LlmConfig, plan: ParallelismPlan, stage: ZeroStage
) -> ZeroTraffic:
    """DP bytes each rank moves per iteration under ``stage``."""
    shard = config.param_bytes / (plan.tp * plan.pp)
    if stage is ZeroStage.NONE:
        # plain AllReduce: accounted as RS+AG halves for uniformity
        return ZeroTraffic(shard, shard, 0.0)
    if stage is ZeroStage.STAGE_1:
        return ZeroTraffic(shard, shard, 0.0)
    # stage 3: parameters are re-gathered for forward and backward
    return ZeroTraffic(shard, shard, 2.0 * shard)


def simulate_zero_sync(
    comm: Communicator,
    placement: Placement,
    config: LlmConfig,
    stage: ZeroStage = ZeroStage.STAGE_1,
) -> float:
    """Seconds of exposed DP synchronization under ZeRO.

    RS and AG phases run back to back across all DP groups
    concurrently; stage 3's parameter gathers are overlapped with
    compute and excluded here (they raise *sustained* utilization
    instead, which is what Figure 2's bursts become under ZeRO-3).
    """
    traffic = zero_traffic(config, placement.plan, stage)
    total = 0.0
    for phase_bytes, tag in (
        (traffic.reduce_scatter_bytes, "zero-rs"),
        (traffic.allgather_bytes, "zero-ag"),
    ):
        flows = []
        for gidx, (rail, hosts) in enumerate(placement.dp_group_hosts()):
            if len(hosts) < 2:
                continue
            per_edge = ring_allgather_edge_bytes(phase_bytes, len(hosts))
            flows.extend(
                comm.ring_flows(rail, per_edge, tag=f"{tag}/g{gidx}", hosts=hosts)
            )
        if not flows:
            continue
        total += run_flows(comm.topo, flows).finish_time
    return total
