"""Checkpointing and failure-recovery economics (paper 2.3, Figure 4).

Customers checkpoint every 2-4 hours because a checkpoint costs ~100 s
of stalled training and ~30 GB per GPU of storage; the paper cites
~5% steady-state overhead at those intervals and a 30K USD loss per
crash of a 3K-GPU job (20K USD/hour).

The module provides both the forward model (overhead/loss for a given
interval) and the Young-Daly optimum, plus the cost accounting the
paper quotes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core.units import GB, HOUR


@dataclass(frozen=True)
class CheckpointSpec:
    """Cost parameters of checkpointing one job."""

    write_seconds: float = 100.0
    restore_seconds: float = 300.0
    bytes_per_gpu: float = 30 * GB

    def storage_bytes(self, num_gpus: int) -> float:
        return self.bytes_per_gpu * num_gpus


def steady_state_overhead(interval_seconds: float, spec: CheckpointSpec) -> float:
    """Fraction of wall-clock lost to checkpoint writes."""
    if interval_seconds <= 0:
        raise ValueError("interval must be positive")
    return spec.write_seconds / (interval_seconds + spec.write_seconds)


def expected_loss_per_failure(interval_seconds: float, spec: CheckpointSpec) -> float:
    """Expected seconds of lost work when a crash hits: half an interval
    of rollback plus the restore time."""
    return interval_seconds / 2.0 + spec.restore_seconds


def young_daly_interval(mtbf_seconds: float, spec: CheckpointSpec) -> float:
    """Young's approximation of the optimal checkpoint interval."""
    if mtbf_seconds <= 0:
        raise ValueError("MTBF must be positive")
    return math.sqrt(2.0 * spec.write_seconds * mtbf_seconds)


def total_overhead(
    interval_seconds: float, mtbf_seconds: float, spec: CheckpointSpec
) -> float:
    """Checkpoint overhead + expected rollback loss, as a fraction."""
    ckpt = steady_state_overhead(interval_seconds, spec)
    loss = expected_loss_per_failure(interval_seconds, spec) / mtbf_seconds
    return ckpt + loss


@dataclass(frozen=True)
class FailureCost:
    """Dollar accounting of one crash (paper's 30K USD example)."""

    dollars_per_hour: float = 20_000.0
    rollback_seconds: float = 1.5 * HOUR

    @property
    def dollars_lost(self) -> float:
        return self.dollars_per_hour * self.rollback_seconds / HOUR


def representative_intervals_hours() -> dict:
    """Checkpoint intervals of the paper's four representative LLM jobs
    (Figure 4, read off the bars)."""
    return {"LLM1": 2.0, "LLM2": 3.0, "LLM3": 3.5, "LLM4": 4.0}
