"""Training-iteration time model.

One iteration = forward/backward compute (with the pipeline bubble),
TP AllReduces on NVLink, PP Send/Recv at stage boundaries, and the DP
gradient synchronization. Only the last two touch the Ethernet fabric;
DP dominates (Table 3) and is simulated as *all DP groups reducing
concurrently* -- the flow pattern that exposes ECMP collisions and
drives every end-to-end figure (15, 16, 18).

Gradient AllReduce overlaps with backward compute; only the excess
beyond ``overlap * t_backward`` extends the iteration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..collective.comm import Communicator
from ..collective.model import ring_allreduce_edge_bytes
from ..core.units import gbps_to_bytes_per_sec
from ..fabric.simulator import run_flows
from .models import GpuSpec, H800, LlmConfig, compute_seconds_per_sample
from .parallelism import Placement
from .traffic import iteration_traffic


@dataclass
class IterationBreakdown:
    """Where one iteration's time goes."""

    compute_seconds: float
    tp_seconds: float
    pp_seconds: float
    dp_seconds: float          # raw DP AllReduce time on the fabric
    dp_exposed_seconds: float  # the part not hidden behind backward
    global_batch: int

    @property
    def total_seconds(self) -> float:
        return (
            self.compute_seconds
            + self.tp_seconds
            + self.pp_seconds
            + self.dp_exposed_seconds
        )

    @property
    def samples_per_sec(self) -> float:
        return self.global_batch / self.total_seconds


def dp_sync_flows(comm: Communicator, placement: Placement, dp_bytes: float):
    """Flows of all DP groups synchronizing gradients concurrently."""
    flows = []
    for gidx, (rail, hosts) in enumerate(placement.dp_group_hosts()):
        if len(hosts) < 2:
            continue  # group is intra-host: NVLink, not the fabric
        per_edge = ring_allreduce_edge_bytes(dp_bytes, len(hosts))
        flows.extend(
            comm.ring_flows(rail, per_edge, tag=f"dp-sync/g{gidx}", hosts=hosts)
        )
    return flows


def simulate_iteration(
    comm: Communicator,
    placement: Placement,
    config: LlmConfig,
    gpu: GpuSpec = H800,
    micro_batch: int = 1,
    microbatches: Optional[int] = None,
    overlap: float = 0.3,
) -> IterationBreakdown:
    """Simulate one training iteration end to end.

    ``comm`` must span all of ``placement.hosts`` on the target
    topology. ``overlap`` is the fraction of backward compute the DP
    AllReduce can hide behind.
    """
    plan = placement.plan
    m = microbatches if microbatches is not None else max(plan.pp * 2, 4)
    global_batch = plan.dp * micro_batch * m
    traffic = iteration_traffic(config, plan, micro_batch, m)

    # compute with pipeline bubble (1F1B schedule: bubble = (pp-1)/m)
    base = global_batch * compute_seconds_per_sample(config, gpu, plan.world_size)
    bubble = (plan.pp - 1) / m if m else 0.0
    compute = base * (1.0 + bubble)

    # TP on NVLink: NVLS-assisted AllReduce rate per GPU
    tp = 0.0
    if plan.tp > 1:
        tp = traffic.tp_bytes / gbps_to_bytes_per_sec(
            comm.profile.nvls_allreduce_gbps
        )

    # PP: all stage-boundary exchanges concurrently, all microbatches
    pp_seconds = 0.0
    pairs = placement.pp_boundary_host_pairs()
    if pairs and traffic.pp_bytes_total > 0:
        flows = []
        for src, dst in pairs:
            flows.extend(
                comm.edge_flows(src, dst, 0, traffic.pp_bytes_total, tag="pp")
            )
        pp_seconds = run_flows(comm.topo, flows).finish_time

    # DP: all groups concurrently (the heavyweight pattern)
    dp_seconds = 0.0
    flows = dp_sync_flows(comm, placement, traffic.dp_bytes)
    if flows:
        dp_seconds = run_flows(comm.topo, flows).finish_time

    backward = compute * 2.0 / 3.0
    dp_exposed = max(0.0, dp_seconds - overlap * backward)
    return IterationBreakdown(
        compute_seconds=compute,
        tp_seconds=tp,
        pp_seconds=pp_seconds,
        dp_seconds=dp_seconds,
        dp_exposed_seconds=dp_exposed,
        global_batch=global_batch,
    )
