"""LLM training workload model: models, parallelism, traffic, iterations."""

from .checkpoint import (
    CheckpointSpec,
    FailureCost,
    expected_loss_per_failure,
    representative_intervals_hours,
    steady_state_overhead,
    total_overhead,
    young_daly_interval,
)
from .inference import (
    InferenceWorkload,
    ServingHost,
    frontend_supports_inference,
)
from .iteration import IterationBreakdown, dp_sync_flows, simulate_iteration
from .job import TrainingJob, make_job
from .moe import (
    MoeConfig,
    MoeIterationComm,
    rail_only_penalty,
    simulate_moe_exchange,
)
from .storage import (
    BACKEND_PLACEMENT,
    FRONTEND_PLACEMENT,
    StoragePlacement,
    checkpoint_write_time,
    placement_report,
    training_perturbation,
)
from .models import (
    GPT3_175B,
    GpuSpec,
    H800,
    LLAMA_13B,
    LLAMA_7B,
    LlmConfig,
    compute_seconds_per_sample,
)
from .parallelism import GpuSlot, ParallelismPlan, Placement
from .placement_opt import compare_orderings, optimize_order, placement_cost
from .scheduler import Scheduler
from .zero import (
    ZeroStage,
    ZeroTraffic,
    simulate_zero_sync,
    zero_traffic,
)
from .traffic import (
    IterationTraffic,
    dp_gradient_bytes,
    iteration_traffic,
    pp_boundary_bytes,
    tp_activation_bytes,
)

__all__ = [
    "compare_orderings",
    "optimize_order",
    "placement_cost",
    "ZeroStage",
    "ZeroTraffic",
    "simulate_zero_sync",
    "zero_traffic",
    "InferenceWorkload",
    "ServingHost",
    "frontend_supports_inference",
    "BACKEND_PLACEMENT",
    "FRONTEND_PLACEMENT",
    "MoeConfig",
    "MoeIterationComm",
    "StoragePlacement",
    "checkpoint_write_time",
    "placement_report",
    "rail_only_penalty",
    "simulate_moe_exchange",
    "training_perturbation",
    "CheckpointSpec",
    "FailureCost",
    "GPT3_175B",
    "GpuSlot",
    "GpuSpec",
    "H800",
    "IterationBreakdown",
    "IterationTraffic",
    "LLAMA_13B",
    "LLAMA_7B",
    "LlmConfig",
    "ParallelismPlan",
    "Placement",
    "Scheduler",
    "TrainingJob",
    "compute_seconds_per_sample",
    "dp_gradient_bytes",
    "dp_sync_flows",
    "expected_loss_per_failure",
    "iteration_traffic",
    "make_job",
    "pp_boundary_bytes",
    "representative_intervals_hours",
    "simulate_iteration",
    "steady_state_overhead",
    "total_overhead",
    "tp_activation_bytes",
    "young_daly_interval",
]
