"""Job placement onto a cluster.

The scheduler reproduces the placement behaviours the paper contrasts:

* **HPN**: fill segments contiguously; 96.3% of production jobs take
  <= 1K GPUs and land entirely inside one segment (the best case);
* **DCN+**: segments hold only 16 hosts, and production fragmentation
  scatters a job across more segments than strictly necessary (the
  2300-GPU job of Figure 15 spanned 19 segments where 18 would fit);
* **cross-pod jobs** (section 7): only pipeline-parallel boundaries may
  cross pods, so hosts are allocated in per-pod blocks sized to whole
  PP stages.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.errors import PlacementError
from ..core.topology import Topology


def _segment_blocks(topo: Topology) -> "OrderedDict[Tuple[int, int], List[str]]":
    blocks: "OrderedDict[Tuple[int, int], List[str]]" = OrderedDict()
    hosts = sorted(
        topo.active_hosts(), key=lambda h: (h.pod, h.segment, h.index)
    )
    for h in hosts:
        blocks.setdefault((h.pod, h.segment), []).append(h.name)
    return blocks


@dataclass
class Scheduler:
    """Allocates hosts for jobs, tracking occupancy and ownership.

    Every successful :meth:`place`/:meth:`place_cross_pod` call records
    an *allocation*: the set of hosts it handed out, under a fresh
    allocation id. :meth:`release` only accepts hosts this scheduler
    actually placed -- releasing a host twice, or a host some other
    tenant marked ``occupied``, is a :class:`PlacementError` (the
    silent-acceptance behaviour it replaces corrupted fleet occupancy
    accounting).
    """

    topo: Topology
    #: host names already taken by other tenants (foreign: never
    #: releasable through this scheduler)
    occupied: set = field(default_factory=set)
    #: host -> allocation id, for hosts placed by *this* scheduler
    owners: Dict[str, int] = field(default_factory=dict)
    _next_allocation: int = field(default=0, repr=False)

    def _claim(self, hosts: Sequence[str]) -> int:
        """Record one allocation over ``hosts``; returns its id."""
        alloc = self._next_allocation
        self._next_allocation += 1
        for h in hosts:
            self.owners[h] = alloc
        self.occupied.update(hosts)
        return alloc

    def allocation_of(self, host: str) -> Optional[int]:
        """Allocation id that owns ``host``, or None if not placed here."""
        return self.owners.get(host)

    def free_hosts_by_segment(self) -> Dict[Tuple[int, int], List[str]]:
        out = {}
        for seg, hosts in _segment_blocks(self.topo).items():
            free = [h for h in hosts if h not in self.occupied]
            if free:
                out[seg] = free
        return out

    # ------------------------------------------------------------------
    def place(
        self,
        num_hosts: int,
        max_hosts_per_segment: Optional[int] = None,
        interleave: bool = False,
        pods: Optional[Sequence[int]] = None,
    ) -> List[str]:
        """Allocate ``num_hosts`` hosts.

        ``max_hosts_per_segment`` models fragmentation: the scheduler
        may take at most that many hosts from each segment, spreading
        the job wider than necessary. ``interleave=True`` additionally
        round-robins host order across segments (worst-case ring
        locality, for ablations). ``pods`` restricts placement to the
        given pod ids -- the section-7 rule that only pipeline stages
        may cross pods is enforced by callers placing one pod at a
        time (see :meth:`place_cross_pod` for the multi-pod path).
        """
        free = self.free_hosts_by_segment()
        chosen: List[str] = []
        per_seg: List[List[str]] = []
        for (pod, _seg), hosts in free.items():
            if pods is not None and pod not in pods:
                continue
            take = hosts if max_hosts_per_segment is None else hosts[:max_hosts_per_segment]
            need = num_hosts - sum(len(s) for s in per_seg)
            if need <= 0:
                break
            per_seg.append(take[:need])
        total = sum(len(s) for s in per_seg)
        if total < num_hosts:
            raise PlacementError(
                f"cannot place {num_hosts} hosts; only {total} available "
                "under the given constraints"
            )
        if interleave:
            idx = 0
            while len(chosen) < num_hosts:
                seg = per_seg[idx % len(per_seg)]
                if seg:
                    chosen.append(seg.pop(0))
                idx += 1
        else:
            for seg in per_seg:
                chosen.extend(seg)
        chosen = chosen[:num_hosts]
        self._claim(chosen)
        return chosen

    def release(self, hosts: Sequence[str]) -> None:
        """Return hosts placed by this scheduler to the free pool.

        Raises :class:`PlacementError` if any host was never placed by
        this scheduler (foreign host, or already released): silently
        accepting such hosts would let one tenant free another's
        capacity and double-count the freed hosts.
        """
        hosts = list(dict.fromkeys(hosts))
        unknown = sorted(h for h in hosts if h not in self.owners)
        if unknown:
            shown = ", ".join(unknown[:5])
            raise PlacementError(
                f"release of {len(unknown)} host(s) this scheduler never "
                f"placed (double release or foreign host): {shown}"
                + ("..." if len(unknown) > 5 else "")
            )
        for h in hosts:
            del self.owners[h]
        self.occupied.difference_update(hosts)

    # ------------------------------------------------------------------
    def place_cross_pod(
        self, hosts_per_stage: int, pp: int, pods: Sequence[int]
    ) -> List[str]:
        """Place a PP=|pp| job so each pod holds whole pipeline stages.

        Only PP traffic (the smallest, least bandwidth-sensitive volume,
        Table 3) crosses the core layer -- the paper's section 7 rule.
        """
        if pp % len(pods):
            raise PlacementError("pp must divide evenly across pods")
        stages_per_pod = pp // len(pods)
        free = self.free_hosts_by_segment()
        out: List[str] = []
        for pod in pods:
            need = stages_per_pod * hosts_per_stage
            pool = [
                h
                for (p, _seg), hosts in free.items()
                if p == pod
                for h in hosts
                if h not in self.occupied
            ]
            if len(pool) < need:
                raise PlacementError(f"pod {pod} lacks {need} free hosts")
            out.extend(pool[:need])
        self._claim(out)
        return out

    def segments_spanned(self, hosts: Sequence[str]) -> int:
        return len(
            {
                (self.topo.hosts[h].pod, self.topo.hosts[h].segment)
                for h in hosts
            }
        )
