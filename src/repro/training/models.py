"""LLM model configurations and FLOPs accounting.

The three models the paper evaluates (Figure 16) plus the GPT-3 175B
variant used for Table 3 and the production run in Figure 15. FLOPs
use the standard ``6 * params * tokens`` estimate for forward+backward;
compute time divides by per-GPU sustained throughput.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.units import GB


@dataclass(frozen=True)
class LlmConfig:
    """Transformer decoder configuration."""

    name: str
    params: float           # total parameter count
    layers: int
    hidden: int
    seq_len: int = 2048
    vocab: int = 51200
    bytes_per_param: int = 2  # bf16

    @property
    def param_bytes(self) -> float:
        return self.params * self.bytes_per_param

    def flops_per_token(self) -> float:
        """Forward+backward FLOPs per trained token (6N rule)."""
        return 6.0 * self.params

    def flops_per_sample(self) -> float:
        return self.flops_per_token() * self.seq_len

    def activation_bytes_per_token(self) -> float:
        """Hidden-state bytes per token (what PP ships per boundary)."""
        return self.hidden * self.bytes_per_param


GPT3_175B = LlmConfig(name="GPT3-175B", params=175e9, layers=96, hidden=12288)
LLAMA_7B = LlmConfig(name="LLaMa-7B", params=7e9, layers=32, hidden=4096)
LLAMA_13B = LlmConfig(name="LLaMa-13B", params=13e9, hidden=5120, layers=40)


@dataclass(frozen=True)
class GpuSpec:
    """Per-GPU compute capability."""

    name: str = "H800"
    peak_flops: float = 990e12          # bf16 tensor core peak
    efficiency: float = 0.42            # sustained MFU in large training
    hbm_bytes: float = 80 * GB

    @property
    def sustained_flops(self) -> float:
        return self.peak_flops * self.efficiency


H800 = GpuSpec()


def compute_seconds_per_sample(
    config: LlmConfig, gpu: GpuSpec, world_size: int
) -> float:
    """Pure-compute seconds one sample costs the whole cluster."""
    if world_size < 1:
        raise ValueError("world_size must be positive")
    return config.flops_per_sample() / (gpu.sustained_flops * world_size)
