"""Per-parallelism traffic volumes (paper Table 3).

Derivations, using GPT-3 175B with TP=8, PP=8, DP=512 as the paper
does:

* **DP** -- each GPU owns ``params / (tp * pp)`` parameters; gradients
  are synchronized in bf16: ``175e9 / 64 * 2 B = 5.5 GB`` per iteration
  per DP-group member, via (Multi-)AllReduce.
* **TP** -- each transformer layer AllReduces activations twice in
  forward and twice in backward across the TP group; with sequence
  sharding the per-operation payload is ``seq * mbs * hidden * 2 B``.
  For 12 layers per stage this lands at roughly 560 MB per iteration,
  via AllReduce/AllGather over NVLink.
* **PP** -- each microbatch boundary ships the TP-sharded activation,
  ``seq * mbs * hidden * 2 / tp`` bytes -- about 6 MB -- via Send/Recv.
"""

from __future__ import annotations

from dataclasses import dataclass

from .models import LlmConfig
from .parallelism import ParallelismPlan


@dataclass(frozen=True)
class IterationTraffic:
    """Bytes each parallelism dimension moves per iteration (per rank)."""

    dp_bytes: float
    tp_bytes: float
    pp_bytes_per_boundary: float
    microbatches: int

    @property
    def pp_bytes_total(self) -> float:
        """Per pipeline boundary per iteration (all microbatches)."""
        return self.pp_bytes_per_boundary * self.microbatches


def dp_gradient_bytes(config: LlmConfig, plan: ParallelismPlan) -> float:
    """Gradient bytes one DP-group member synchronizes per iteration."""
    shards = plan.tp * plan.pp
    return config.param_bytes / shards


def tp_activation_bytes(
    config: LlmConfig, plan: ParallelismPlan, micro_batch: int = 1,
    allreduces_per_layer: int = 4,
) -> float:
    """Activation bytes TP moves per iteration within one host."""
    layers_per_stage = max(1, config.layers // plan.pp)
    per_op = config.seq_len * micro_batch * config.hidden * config.bytes_per_param
    # ring factor 2(n-1)/n ~= 2 folded into allreduces_per_layer estimate
    return layers_per_stage * allreduces_per_layer * per_op / 4.0


def pp_boundary_bytes(
    config: LlmConfig, plan: ParallelismPlan, micro_batch: int = 1
) -> float:
    """Bytes one microbatch ships across one pipeline boundary."""
    act = config.seq_len * micro_batch * config.hidden * config.bytes_per_param
    return act / plan.tp  # activations are TP/sequence sharded


def iteration_traffic(
    config: LlmConfig,
    plan: ParallelismPlan,
    micro_batch: int = 1,
    microbatches: int = 8,
) -> IterationTraffic:
    """Table 3's three rows for a given model and plan."""
    return IterationTraffic(
        dp_bytes=dp_gradient_bytes(config, plan),
        tp_bytes=tp_activation_bytes(config, plan, micro_batch),
        pp_bytes_per_boundary=pp_boundary_bytes(config, plan, micro_batch),
        microbatches=microbatches,
    )
