"""Operational telemetry: INT wiring probes, LFS/asymmetric links."""

from .lfs import DirectionalLinkState, LfsModel, LfsOutcome
from .probes import (
    Blueprint,
    HopRecord,
    ProbeTrace,
    WiringFault,
    probe_path,
    swap_access_links,
    verify_wiring,
)

__all__ = [
    "Blueprint",
    "DirectionalLinkState",
    "HopRecord",
    "LfsModel",
    "LfsOutcome",
    "ProbeTrace",
    "WiringFault",
    "probe_path",
    "swap_access_links",
    "verify_wiring",
]
