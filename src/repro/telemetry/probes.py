"""INT-based wiring verification (paper section 10, "HPN complicates
wiring").

HPN's rail-optimized + dual-plane design multiplies cabling mistakes at
build-out. Before end-to-end testing, Alibaba runs INT-style probes
that record every hop's (switch ID, port ID) and compares the trace
against the blueprint definition. This module reimplements that check:

* :func:`probe_path` produces the hop trace a probe would record;
* :class:`Blueprint` derives the *expected* trace set from the spec;
* :func:`verify_wiring` sweeps probes across the fabric and reports
  every deviation.

Mis-wirings are injected with :func:`swap_access_links`, which models
the classic on-site mistake of crossing two NICs' cables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..core.entities import Nic
from ..core.errors import TopologyError
from ..core.topology import Topology
from ..routing.ecmp import Router
from ..routing.hashing import FiveTuple


@dataclass(frozen=True)
class HopRecord:
    """One INT record: the switch and its egress port index."""

    switch: str
    egress_port: int


@dataclass
class ProbeTrace:
    """The full path trace of one probe packet."""

    src_nic: str
    dst_nic: str
    plane: Optional[int]
    hops: Tuple[HopRecord, ...]


def probe_path(
    router: Router, src_nic: Nic, dst_nic: Nic, plane: int, sport: int = 61000
) -> ProbeTrace:
    """Send one INT probe and record per-hop (switch, egress port)."""
    ft = FiveTuple(src_nic.ip, dst_nic.ip, sport, 4791)
    path = router.path_for(src_nic, dst_nic, ft, plane=plane)
    topo = router.topo
    hops: List[HopRecord] = []
    for node, dirlink in zip(path.nodes[1:-1], path.dirlinks[1:]):
        link = topo.links[dirlink // 2]
        egress = link.a if (dirlink % 2 == 0) else link.b
        hops.append(HopRecord(node, egress.index))
    return ProbeTrace(src_nic.name, dst_nic.name, path.plane, tuple(hops))


@dataclass
class WiringFault:
    """One detected deviation from the blueprint."""

    kind: str
    detail: str


@dataclass
class Blueprint:
    """Expected wiring rules derived from the architecture."""

    topo: Topology

    def expected_tor(self, nic: Nic, plane: int) -> Optional[str]:
        """The ToR a rail-optimized dual-plane NIC port must land on."""
        host = self.topo.hosts[nic.host]
        arch = self.topo.meta.get("architecture")
        if arch != "hpn":
            return None
        from ..topos.hpn import tor_name

        return tor_name(host.pod, host.segment, nic.rail, plane)

    def check_access(self, nic: Nic) -> List[WiringFault]:
        """Verify both access legs of one NIC against the blueprint."""
        faults: List[WiringFault] = []
        for plane, pref in enumerate(nic.ports):
            port = self.topo.port(pref)
            if port.link_id is None:
                continue
            actual = self.topo.links[port.link_id].other(nic.host).node
            expected = self.expected_tor(nic, plane)
            if expected is not None and actual != expected:
                faults.append(
                    WiringFault(
                        kind="access-miswire",
                        detail=(
                            f"{nic.name} port {plane}: wired to {actual}, "
                            f"blueprint says {expected}"
                        ),
                    )
                )
        return faults


def verify_wiring(
    topo: Topology,
    router: Optional[Router] = None,
    hosts: Optional[Sequence[str]] = None,
) -> List[WiringFault]:
    """Sweep the blueprint check across hosts; returns all faults."""
    blueprint = Blueprint(topo)
    faults: List[WiringFault] = []
    names = list(hosts) if hosts is not None else list(topo.hosts)
    for name in names:
        for nic in topo.hosts[name].backend_nics():
            faults.extend(blueprint.check_access(nic))
    return faults


def swap_access_links(topo: Topology, nic_a: Nic, nic_b: Nic, port: int = 0) -> None:
    """Inject the classic wiring mistake: cross two NICs' cables.

    The two NICs' ``port`` legs are re-terminated on each other's ToR
    ports, exactly what happens when on-site staff swap two fibers.
    """
    pa = topo.port(nic_a.ports[port])
    pb = topo.port(nic_b.ports[port])
    if pa.link_id is None or pb.link_id is None:
        raise TopologyError("both NIC ports must be wired to swap them")
    link_a = topo.links[pa.link_id]
    link_b = topo.links[pb.link_id]
    far_a = link_a.other(nic_a.host)
    far_b = link_b.other(nic_b.host)
    # re-point each link's far end at the other NIC's ToR port
    if link_a.a == far_a:
        link_a.a = far_b
    else:
        link_a.b = far_b
    if link_b.a == far_b:
        link_b.a = far_a
    else:
        link_b.b = far_a
    topo.port(far_a).link_id = link_b.link_id
    topo.port(far_b).link_id = link_a.link_id
    # links were re-terminated behind wire()'s back: compiled routers
    # (FIBs, route caches, access-leg memos) must rebuild
    topo.notify_structure_changed()
