"""Asymmetric link states and Link Fault Signaling (paper section 10).

A production lesson: optical degradation can be *directional*. The
NIC->ToR direction goes bad while ToR->NIC stays clean; the switch
detects it and signals the fault via LFS, but a NIC firmware bug can
swallow the notification -- the NIC keeps transmitting into a lossy
link. Dual-ToR turns this from a job crash into a performance dip.

The model tracks per-direction quality and the LFS negotiation outcome;
:func:`effective_loss` answers what a sender actually experiences.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..core.entities import Link
from ..core.topology import Topology


class LfsOutcome(enum.Enum):
    """Result of a Link Fault Signaling exchange."""

    NOT_NEEDED = "not-needed"            # both directions clean
    SIGNALED_AND_ACTED = "acted"         # peer stopped using the link
    SIGNALED_BUT_IGNORED = "ignored"     # the firmware-bug case


@dataclass
class DirectionalLinkState:
    """Per-direction quality of one physical link (loss fractions)."""

    link_id: int
    loss_a_to_b: float = 0.0
    loss_b_to_a: float = 0.0
    #: whether each endpoint's firmware honours LFS notifications
    a_honours_lfs: bool = True
    b_honours_lfs: bool = True

    def degrade(self, direction: int, loss: float) -> None:
        if not 0.0 <= loss <= 1.0:
            raise ValueError("loss must be a fraction in [0, 1]")
        if direction == 0:
            self.loss_a_to_b = loss
        else:
            self.loss_b_to_a = loss

    def is_asymmetric(self) -> bool:
        return (self.loss_a_to_b > 0) != (self.loss_b_to_a > 0)


@dataclass
class LfsModel:
    """Tracks directional states and runs the LFS protocol."""

    topo: Topology
    states: Dict[int, DirectionalLinkState] = field(default_factory=dict)

    def state(self, link_id: int) -> DirectionalLinkState:
        return self.states.setdefault(link_id, DirectionalLinkState(link_id))

    def inject_asymmetric_fault(
        self, link_id: int, bad_direction: int, loss: float,
        victim_honours_lfs: bool = True,
    ) -> DirectionalLinkState:
        """Degrade one direction; the *sender* of that direction is the
        endpoint whose firmware must react to the peer's LFS."""
        st = self.state(link_id)
        st.degrade(bad_direction, loss)
        if bad_direction == 0:
            st.a_honours_lfs = victim_honours_lfs
        else:
            st.b_honours_lfs = victim_honours_lfs
        return st

    def negotiate(self, link_id: int) -> LfsOutcome:
        """Run LFS: the clean-side receiver notifies the lossy sender."""
        st = self.states.get(link_id)
        if st is None or (st.loss_a_to_b == 0 and st.loss_b_to_a == 0):
            return LfsOutcome.NOT_NEEDED
        if st.loss_a_to_b > 0 and not st.a_honours_lfs:
            return LfsOutcome.SIGNALED_BUT_IGNORED
        if st.loss_b_to_a > 0 and not st.b_honours_lfs:
            return LfsOutcome.SIGNALED_BUT_IGNORED
        return LfsOutcome.SIGNALED_AND_ACTED

    def apply(self, link_id: int) -> LfsOutcome:
        """Resolve the fault's operational effect on the topology.

        * honoured LFS -> the link is taken down cleanly (dual-ToR
          failover handles it, as for any link failure);
        * ignored LFS -> the link stays "up" but lossy: senders keep
          pushing packets into it (the paper's degradation case).
        """
        outcome = self.negotiate(link_id)
        if outcome is LfsOutcome.SIGNALED_AND_ACTED:
            self.topo.set_link_state(link_id, up=False)
        return outcome

    def effective_loss(self, link_id: int, direction: int) -> float:
        st = self.states.get(link_id)
        if st is None:
            return 0.0
        return st.loss_a_to_b if direction == 0 else st.loss_b_to_a

    def goodput_factor(self, link_id: int, direction: int) -> float:
        """Throughput multiplier a sender sees through the lossy link.

        Loss hits RDMA goodput super-linearly (go-back-N retransmits);
        we use a quadratic penalty as a first-order model.
        """
        loss = self.effective_loss(link_id, direction)
        if loss <= 0:
            return 1.0
        return max(0.0, (1.0 - loss) ** 2)
