"""Core entity model: units, errors, entities, topology container."""

from .entities import (
    Gpu,
    Host,
    Link,
    Nic,
    NodeKind,
    Port,
    PortKind,
    PortRef,
    Switch,
    SwitchRole,
)
from .errors import (
    AccessError,
    CollectiveError,
    PlacementError,
    ReproError,
    RoutingError,
    SimulationError,
    SpecError,
    TopologyError,
)
from .serialize import (
    load_topology,
    save_topology,
    topology_from_dict,
    topology_from_json,
    topology_to_dict,
    topology_to_json,
)
from .topology import Topology

__all__ = [
    "load_topology",
    "save_topology",
    "topology_from_dict",
    "topology_from_json",
    "topology_to_dict",
    "topology_to_json",
    "Gpu",
    "Host",
    "Link",
    "Nic",
    "NodeKind",
    "Port",
    "PortKind",
    "PortRef",
    "Switch",
    "SwitchRole",
    "Topology",
    "ReproError",
    "TopologyError",
    "SpecError",
    "RoutingError",
    "SimulationError",
    "AccessError",
    "PlacementError",
    "CollectiveError",
]
