"""Exception hierarchy for the repro library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch one base class at integration boundaries.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library errors."""


class TopologyError(ReproError):
    """The topology is malformed (port budget exceeded, dangling link...)."""


class SpecError(ReproError):
    """An architecture spec is internally inconsistent."""


class RoutingError(ReproError):
    """No route exists, or routing state is inconsistent."""


class SimulationError(ReproError):
    """The fluid simulator reached an invalid state."""


class AccessError(ReproError):
    """Dual-ToR access-layer protocol error (LACP/ARP/BGP model)."""


class PlacementError(ReproError):
    """A training job cannot be placed on the cluster."""


class CollectiveError(ReproError):
    """A collective operation was configured inconsistently."""


class EngineError(ReproError):
    """The experiment engine was misused (unknown experiment, bad
    backend, malformed spec or manifest)."""
