"""IP and MAC address assignment.

HPN forwards purely at layer 3 between dual-ToR sets (BGP with /32 host
routes); each backend NIC gets one IP shared by both of its ports. We
assign addresses deterministically from the topology coordinates:

* backend NIC of rail ``r`` on host ``i`` of segment ``s`` in pod ``p``
  gets ``10.{p}.{s * 8 + r}.{i}`` -- one /24 per (segment, rail), which
  also matches the paper's property that different dual-ToR sets sit in
  different layer-2 subnets (so the reserved virtual-router MAC used by
  non-stacked LACP never collides);
* MACs are derived from a host counter.

The frontend NIC gets addresses from ``172.16.0.0/12``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Tuple

from .entities import Nic
from .errors import TopologyError
from .topology import Topology

#: RFC 3768 virtual-router MAC used as the shared LACP system MAC on both
#: switches of a non-stacked dual-ToR set (paper section 4.2).
VIRTUAL_ROUTER_MAC = "00:00:5E:00:01:01"


def _mac_from_counter(counter: int) -> str:
    if counter >= 1 << 40:
        raise TopologyError("MAC counter overflow")
    octets = [0x02] + [(counter >> shift) & 0xFF for shift in (32, 24, 16, 8, 0)]
    return ":".join(f"{o:02x}" for o in octets)


def backend_ip(pod: int, segment: int, rail: int, host_index: int) -> str:
    """Deterministic backend NIC IP for the given coordinates."""
    if not 0 <= rail < 8:
        raise TopologyError(f"rail out of range: {rail}")
    third = segment * 8 + rail
    return f"10.{pod % 256}.{third % 256}.{host_index % 250 + 1}"


def frontend_ip(pod: int, segment: int, host_index: int) -> str:
    return f"172.16.{(pod * 16 + segment) % 256}.{host_index % 250 + 1}"


@dataclass(frozen=True)
class SubnetKey:
    """Identifies the /24 shared by one dual-ToR set."""

    pod: int
    segment: int
    rail: int

    def cidr(self) -> str:
        return f"10.{self.pod % 256}.{(self.segment * 8 + self.rail) % 256}.0/24"


def assign_addresses(topo: Topology) -> Dict[str, str]:
    """Assign IPs/MACs to every NIC in ``topo``; returns ip -> NIC name."""
    ip_index: Dict[str, str] = {}
    mac_counter = 0
    for host in topo.hosts.values():
        for nic in host.nics:
            if nic.is_frontend:
                nic.ip = frontend_ip(host.pod, host.segment, host.index)
            else:
                nic.ip = backend_ip(host.pod, host.segment, nic.rail, host.index)
            nic.mac = _mac_from_counter(mac_counter)
            mac_counter += 1
            if nic.ip in ip_index:
                raise TopologyError(
                    f"IP collision: {nic.ip} on {nic.name} and {ip_index[nic.ip]}"
                )
            ip_index[nic.ip] = nic.name
    return ip_index


def iter_subnets(topo: Topology) -> Iterator[Tuple[SubnetKey, list]]:
    """Group backend NICs by their dual-ToR /24 subnet."""
    groups: Dict[SubnetKey, list] = {}
    for host in topo.hosts.values():
        for nic in host.backend_nics():
            key = SubnetKey(host.pod, host.segment, nic.rail)
            groups.setdefault(key, []).append(nic)
    yield from groups.items()


def nic_by_ip(topo: Topology, ip: str) -> Nic:
    """Linear lookup of a NIC by IP (tests/examples convenience)."""
    for host in topo.hosts.values():
        for nic in host.nics:
            if nic.ip == ip:
                return nic
    raise KeyError(f"no NIC with ip {ip}")
