"""Typed entities making up a datacenter network topology.

The model mirrors the hardware inventory in the HPN paper:

* a :class:`Host` carries 8 GPUs, 8 backend NICs (one per *rail*) and one
  frontend NIC; each backend NIC exposes two 200 Gbps ports wired to two
  different ToR switches (dual-ToR);
* a :class:`Switch` is a single-chip Ethernet switch whose role (ToR,
  aggregation, core) and tier place it in the Clos;
* a :class:`Link` is a full-duplex cable between two :class:`Port` objects.

Entities are plain dataclasses; the containing :class:`~repro.core.topology.
Topology` owns identity and lookup.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Tuple


class NodeKind(enum.Enum):
    """Top-level node classification."""

    HOST = "host"
    SWITCH = "switch"


class SwitchRole(enum.Enum):
    """Where a switch sits in the fabric."""

    TOR = "tor"
    AGG = "agg"
    CORE = "core"


class PortKind(enum.Enum):
    """Orientation of a switch port relative to the Clos hierarchy."""

    DOWN = "down"  # towards hosts
    UP = "up"      # towards higher tier
    HOST = "host"  # a NIC port on a host


@dataclass(frozen=True)
class PortRef:
    """Stable reference to a port: ``(node name, port index)``."""

    node: str
    index: int

    def __str__(self) -> str:  # pragma: no cover - repr sugar
        return f"{self.node}#{self.index}"


@dataclass
class Port:
    """One physical port on a node."""

    ref: PortRef
    gbps: float
    kind: PortKind
    #: link id this port is wired into, or None when unconnected
    link_id: Optional[int] = None
    #: for NIC ports: which NIC and which of its two ports this is
    nic_index: Optional[int] = None
    nic_port: Optional[int] = None

    @property
    def connected(self) -> bool:
        return self.link_id is not None


@dataclass
class Link:
    """Full-duplex link between two ports, symmetric capacity."""

    link_id: int
    a: PortRef
    b: PortRef
    gbps: float
    #: operational state; failures flip this to False
    up: bool = True

    def other(self, node: str) -> PortRef:
        """The endpoint on the far side of ``node``."""
        if self.a.node == node:
            return self.b
        if self.b.node == node:
            return self.a
        raise ValueError(f"link {self.link_id} does not touch {node}")

    def endpoints(self) -> Tuple[PortRef, PortRef]:
        return (self.a, self.b)


@dataclass
class Gpu:
    """A GPU inside a host; ``rail`` is its index within the host (0-7)."""

    host: str
    rail: int

    @property
    def name(self) -> str:
        return f"{self.host}/gpu{self.rail}"


@dataclass
class Nic:
    """A dual-port NIC.

    Backend NICs (``rail >= 0``) serve exactly one GPU; the frontend NIC
    has ``rail == -1``. Both ports share one IP and one MAC -- this is the
    property dual-ToR relies on to keep RDMA QP state valid across a port
    failover.
    """

    host: str
    index: int          # NIC number on the host (0..8); 0 may be frontend
    rail: int           # GPU rail served, or -1 for frontend
    ports: Tuple[PortRef, ...] = ()
    ip: Optional[str] = None
    mac: Optional[str] = None

    @property
    def name(self) -> str:
        return f"{self.host}/nic{self.index}"

    @property
    def is_frontend(self) -> bool:
        return self.rail < 0


@dataclass
class Host:
    """A GPU server."""

    name: str
    kind: NodeKind = field(default=NodeKind.HOST, init=False)
    pod: int = 0
    segment: int = 0
    index: int = 0            # host index within its segment
    backup: bool = False      # backup hosts hang off ToR backup ports
    gpus: list = field(default_factory=list)
    nics: list = field(default_factory=list)
    #: intra-host GPU interconnect bandwidth, GBps per direction (NVLink)
    nvlink_gbps: float = 3200.0

    def backend_nics(self):
        return [n for n in self.nics if not n.is_frontend]

    def frontend_nic(self) -> Optional[Nic]:
        for nic in self.nics:
            if nic.is_frontend:
                return nic
        return None

    def nic_for_rail(self, rail: int) -> Nic:
        for nic in self.nics:
            if nic.rail == rail:
                return nic
        raise KeyError(f"{self.name} has no NIC for rail {rail}")


@dataclass
class Switch:
    """A single-chip switch."""

    name: str
    role: SwitchRole
    kind: NodeKind = field(default=NodeKind.SWITCH, init=False)
    tier: int = 1             # 1=ToR, 2=Agg, 3=Core
    pod: int = 0
    segment: Optional[int] = None   # ToR only
    plane: Optional[int] = None     # dual-plane membership (0/1), None=n/a
    rail: Optional[int] = None      # ToR only: which rail it serves
    #: chip capacity in Gbps (e.g. 51200 for the 51.2T chip)
    chip_gbps: float = 51200.0
    #: ECMP hash seed; switches sharing a seed hash identically (polarization)
    hash_seed: int = 0
    up: bool = True

    @property
    def is_tor(self) -> bool:
        return self.role is SwitchRole.TOR
