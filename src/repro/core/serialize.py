"""Topology serialization to/from plain dictionaries (JSON-safe).

Lets users persist built fabrics, diff them against blueprints, or load
them into other tools. Round-trips every entity: hosts (with GPUs and
NICs, including assigned IPs/MACs), switches (role/tier/plane/rail),
ports and links (including operational state), and builder metadata.
"""

from __future__ import annotations

import dataclasses
import enum
import json
from dataclasses import asdict
from typing import Any, Dict

from .entities import (
    Gpu,
    Host,
    Link,
    Nic,
    Port,
    PortKind,
    PortRef,
    Switch,
    SwitchRole,
)
from .errors import TopologyError
from .topology import Topology

#: bumped on wire-format changes
SCHEMA_VERSION = 1


def topology_to_dict(topo: Topology) -> Dict[str, Any]:
    """Serialize a topology into a JSON-safe dict."""
    spec = topo.meta.get("spec")
    meta = {k: v for k, v in topo.meta.items() if k != "spec"}
    if spec is not None:
        meta["spec"] = {"type": type(spec).__name__, "fields": asdict(spec)}
    return {
        "schema": SCHEMA_VERSION,
        "name": topo.name,
        "meta": meta,
        "hosts": [
            {
                "name": h.name,
                "pod": h.pod,
                "segment": h.segment,
                "index": h.index,
                "backup": h.backup,
                "nvlink_gbps": h.nvlink_gbps,
                "gpus": [g.rail for g in h.gpus],
                "nics": [
                    {
                        "index": n.index,
                        "rail": n.rail,
                        "ip": n.ip,
                        "mac": n.mac,
                        "ports": [[p.node, p.index] for p in n.ports],
                    }
                    for n in h.nics
                ],
            }
            for h in topo.hosts.values()
        ],
        "switches": [
            {
                "name": s.name,
                "role": s.role.value,
                "tier": s.tier,
                "pod": s.pod,
                "segment": s.segment,
                "plane": s.plane,
                "rail": s.rail,
                "chip_gbps": s.chip_gbps,
                "hash_seed": s.hash_seed,
                "up": s.up,
            }
            for s in topo.switches.values()
        ],
        "ports": {
            node: [
                {
                    "gbps": p.gbps,
                    "kind": p.kind.value,
                    "nic_index": p.nic_index,
                    "nic_port": p.nic_port,
                }
                for p in plist
            ]
            for node, plist in topo.ports.items()
        },
        "links": [
            {
                "id": l.link_id,
                "a": [l.a.node, l.a.index],
                "b": [l.b.node, l.b.index],
                "gbps": l.gbps,
                "up": l.up,
            }
            for l in topo.links.values()
        ],
    }


def topology_from_dict(data: Dict[str, Any]) -> Topology:
    """Rebuild a topology from :func:`topology_to_dict` output."""
    if data.get("schema") != SCHEMA_VERSION:
        raise TopologyError(
            f"unsupported schema {data.get('schema')!r}, expected {SCHEMA_VERSION}"
        )
    topo = Topology(name=data["name"])
    topo.meta.update(data.get("meta", {}))

    for s in data["switches"]:
        topo.add_switch(
            Switch(
                name=s["name"],
                role=SwitchRole(s["role"]),
                tier=s["tier"],
                pod=s["pod"],
                segment=s["segment"],
                plane=s["plane"],
                rail=s["rail"],
                chip_gbps=s["chip_gbps"],
                hash_seed=s["hash_seed"],
                up=s["up"],
            )
        )
    for h in data["hosts"]:
        host = topo.add_host(
            Host(
                name=h["name"],
                pod=h["pod"],
                segment=h["segment"],
                index=h["index"],
                backup=h["backup"],
                nvlink_gbps=h["nvlink_gbps"],
            )
        )
        host.gpus = [Gpu(host=host.name, rail=r) for r in h["gpus"]]
        for n in h["nics"]:
            nic = Nic(
                host=host.name,
                index=n["index"],
                rail=n["rail"],
                ip=n["ip"],
                mac=n["mac"],
                ports=tuple(PortRef(node, idx) for node, idx in n["ports"]),
            )
            host.nics.append(nic)

    # ports (in index order; link ids patched below)
    for node, plist in data["ports"].items():
        if not topo.has_node(node):
            raise TopologyError(f"ports listed for unknown node {node!r}")
        for i, p in enumerate(plist):
            port = Port(
                ref=PortRef(node, i),
                gbps=p["gbps"],
                kind=PortKind(p["kind"]),
                nic_index=p["nic_index"],
                nic_port=p["nic_port"],
            )
            topo.ports[node].append(port)

    max_id = -1
    for l in data["links"]:
        link = Link(
            link_id=l["id"],
            a=PortRef(l["a"][0], l["a"][1]),
            b=PortRef(l["b"][0], l["b"][1]),
            gbps=l["gbps"],
            up=l["up"],
        )
        topo.links[link.link_id] = link
        topo.port(link.a).link_id = link.link_id
        topo.port(link.b).link_id = link.link_id
        max_id = max(max_id, link.link_id)
    topo._next_link_id = max_id + 1
    return topo


def to_jsonable(value: Any) -> Any:
    """Recursively convert a value into plain JSON-safe types.

    Dataclasses become dicts, enums their values, mappings plain dicts
    (string keys), and tuples/sets/sequences lists. Anything already
    JSON-native passes through; everything else falls back to ``str``
    so callers never have to special-case exotic leaf types.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, enum.Enum):
        return to_jsonable(value.value)
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: to_jsonable(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    if isinstance(value, dict):
        return {str(k): to_jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        items = sorted(value) if isinstance(value, (set, frozenset)) else value
        return [to_jsonable(v) for v in items]
    return str(value)


def stable_json_dumps(value: Any) -> str:
    """Deterministic JSON encoding: sorted keys, compact separators.

    Two equal values always produce the same byte string, which makes
    the output safe to hash (the experiment engine's cache keys) and to
    diff (run manifests).
    """
    return json.dumps(to_jsonable(value), sort_keys=True,
                      separators=(",", ":"))


def topology_to_json(topo: Topology) -> str:
    """Serialize a topology to a JSON string."""
    return json.dumps(topology_to_dict(topo))


def topology_from_json(text: str) -> Topology:
    """Rebuild a topology from :func:`topology_to_json` output."""
    return topology_from_dict(json.loads(text))


def save_topology(topo: Topology, path: str) -> None:
    """Write a topology to a JSON file."""
    with open(path, "w") as fh:
        json.dump(topology_to_dict(topo), fh)


def load_topology(path: str) -> Topology:
    """Read a topology from a JSON file."""
    with open(path) as fh:
        return topology_from_dict(json.load(fh))
