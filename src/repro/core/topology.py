"""Topology container.

A :class:`Topology` owns all hosts, switches, ports and links of one
network (backend or frontend), provides wiring primitives for the
builders in :mod:`repro.topos`, and answers the structural queries used
by routing and the fluid simulator.

The container deliberately stores adjacency in plain dictionaries rather
than a general graph library: route computation in a Clos exploits tier
structure (up/down) and never needs generic shortest paths. An export to
:mod:`networkx` is provided for analysis and visualization.
"""

from __future__ import annotations

from collections import defaultdict
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Tuple, Union

from .entities import (
    Gpu,
    Host,
    Link,
    Nic,
    NodeKind,
    Port,
    PortKind,
    PortRef,
    Switch,
    SwitchRole,
)
from .errors import TopologyError

Node = Union[Host, Switch]


@dataclass
class Topology:
    """Mutable network topology with typed nodes."""

    name: str = "topology"
    hosts: Dict[str, Host] = field(default_factory=dict)
    switches: Dict[str, Switch] = field(default_factory=dict)
    links: Dict[int, Link] = field(default_factory=dict)
    #: ports per node: node name -> list of Port (index == position)
    ports: Dict[str, List[Port]] = field(default_factory=dict)
    _next_link_id: int = 0
    #: free-form metadata recorded by builders (spec echo, plane count...)
    meta: Dict[str, object] = field(default_factory=dict)
    #: monotonic link-state epoch: one bump per actual up/down transition
    #: (``set_link_state``/``fail_node``/``recover_node``); consumers such
    #: as the route cache diff against it to invalidate precisely
    state_epoch: int = 0
    #: monotonic wiring epoch: bumped whenever links/ports are added or
    #: re-terminated; compiled forwarding state (FIBs, access-leg maps)
    #: must be rebuilt when it moves
    structure_epoch: int = 0
    #: link id per state transition, in epoch order (len == state_epoch)
    _state_log: List[int] = field(default_factory=list)

    # ------------------------------------------------------------------
    # node management
    # ------------------------------------------------------------------
    def add_host(self, host: Host) -> Host:
        if host.name in self.hosts or host.name in self.switches:
            raise TopologyError(f"duplicate node name {host.name!r}")
        self.hosts[host.name] = host
        self.ports.setdefault(host.name, [])
        return host

    def add_switch(self, switch: Switch) -> Switch:
        if switch.name in self.switches or switch.name in self.hosts:
            raise TopologyError(f"duplicate node name {switch.name!r}")
        self.switches[switch.name] = switch
        self.ports.setdefault(switch.name, [])
        return switch

    def node(self, name: str) -> Node:
        if name in self.hosts:
            return self.hosts[name]
        if name in self.switches:
            return self.switches[name]
        raise KeyError(f"unknown node {name!r}")

    def has_node(self, name: str) -> bool:
        return name in self.hosts or name in self.switches

    def nodes(self) -> Iterator[Node]:
        yield from self.hosts.values()
        yield from self.switches.values()

    # ------------------------------------------------------------------
    # ports & links
    # ------------------------------------------------------------------
    def alloc_port(
        self,
        node: str,
        gbps: float,
        kind: PortKind,
        nic_index: Optional[int] = None,
        nic_port: Optional[int] = None,
    ) -> Port:
        """Create a new port on ``node`` and return it."""
        if not self.has_node(node):
            raise TopologyError(f"cannot allocate port on unknown node {node!r}")
        plist = self.ports[node]
        port = Port(
            ref=PortRef(node, len(plist)),
            gbps=gbps,
            kind=kind,
            nic_index=nic_index,
            nic_port=nic_port,
        )
        plist.append(port)
        return port

    def port(self, ref: PortRef) -> Port:
        return self.ports[ref.node][ref.index]

    def wire(self, a: PortRef, b: PortRef, gbps: Optional[float] = None) -> Link:
        """Connect two free ports with a full-duplex link."""
        pa, pb = self.port(a), self.port(b)
        if pa.connected or pb.connected:
            raise TopologyError(f"port already wired: {a if pa.connected else b}")
        rate = gbps if gbps is not None else min(pa.gbps, pb.gbps)
        if rate > min(pa.gbps, pb.gbps):
            raise TopologyError(
                f"link rate {rate} exceeds port speed on {a}<->{b}"
            )
        link = Link(self._next_link_id, a, b, rate)
        self.links[link.link_id] = link
        pa.link_id = link.link_id
        pb.link_id = link.link_id
        self._next_link_id += 1
        self.structure_epoch += 1
        return link

    def link_between(self, node_a: str, node_b: str) -> List[Link]:
        """All (possibly parallel) links between two nodes."""
        out = []
        for link in self.links.values():
            ends = {link.a.node, link.b.node}
            if ends == {node_a, node_b}:
                out.append(link)
        return out

    def neighbors(self, node: str) -> Iterator[Tuple[Port, Link, str]]:
        """Yield ``(local port, link, peer node name)`` for each wired port."""
        for port in self.ports[node]:
            if port.link_id is None:
                continue
            link = self.links[port.link_id]
            yield port, link, link.other(node).node

    def up_ports(self, switch: str) -> List[Port]:
        return [p for p in self.ports[switch] if p.kind is PortKind.UP and p.connected]

    def down_ports(self, switch: str) -> List[Port]:
        return [p for p in self.ports[switch] if p.kind is PortKind.DOWN and p.connected]

    # ------------------------------------------------------------------
    # host construction helper
    # ------------------------------------------------------------------
    def build_host(
        self,
        name: str,
        pod: int,
        segment: int,
        index: int,
        num_gpus: int = 8,
        nic_gbps: float = 200.0,
        with_frontend_nic: bool = True,
        nvlink_gbps: float = 3200.0,
        backup: bool = False,
    ) -> Host:
        """Create a host with its GPUs, NICs and NIC ports (unwired)."""
        host = self.add_host(
            Host(
                name=name,
                pod=pod,
                segment=segment,
                index=index,
                nvlink_gbps=nvlink_gbps,
                backup=backup,
            )
        )
        host.gpus = [Gpu(host=name, rail=r) for r in range(num_gpus)]
        nic_index = 0
        if with_frontend_nic:
            fe = Nic(host=name, index=nic_index, rail=-1)
            p0 = self.alloc_port(name, nic_gbps, PortKind.HOST, nic_index, 0)
            p1 = self.alloc_port(name, nic_gbps, PortKind.HOST, nic_index, 1)
            fe.ports = (p0.ref, p1.ref)
            host.nics.append(fe)
            nic_index += 1
        for rail in range(num_gpus):
            nic = Nic(host=name, index=nic_index, rail=rail)
            p0 = self.alloc_port(name, nic_gbps, PortKind.HOST, nic_index, 0)
            p1 = self.alloc_port(name, nic_gbps, PortKind.HOST, nic_index, 1)
            nic.ports = (p0.ref, p1.ref)
            host.nics.append(nic)
            nic_index += 1
        return host

    # ------------------------------------------------------------------
    # structural queries
    # ------------------------------------------------------------------
    def tors_of_host(self, host: str) -> List[str]:
        """All distinct ToR switches this host's backend NICs reach."""
        tors = []
        seen = set()
        h = self.hosts[host]
        for nic in h.backend_nics():
            for pref in nic.ports:
                port = self.port(pref)
                if port.link_id is None:
                    continue
                peer = self.links[port.link_id].other(host).node
                if peer not in seen:
                    seen.add(peer)
                    tors.append(peer)
        return tors

    def hosts_of_tor(self, tor: str) -> List[str]:
        """Host names attached below a ToR."""
        out, seen = [], set()
        for port in self.down_ports(tor):
            peer = self.links[port.link_id].other(tor).node
            if peer in self.hosts and peer not in seen:
                seen.add(peer)
                out.append(peer)
        return out

    def switches_by_role(self, role: SwitchRole) -> List[Switch]:
        return [s for s in self.switches.values() if s.role is role]

    def tor_for_nic_port(self, host: str, nic_index: int, nic_port: int) -> Optional[str]:
        """ToR name reached by a specific NIC port, or None if unwired."""
        nic = self.hosts[host].nics[nic_index]
        pref = nic.ports[nic_port]
        port = self.port(pref)
        if port.link_id is None:
            return None
        return self.links[port.link_id].other(host).node

    def active_hosts(self) -> List[Host]:
        return [h for h in self.hosts.values() if not h.backup]

    def gpu_count(self, include_backup: bool = False) -> int:
        hosts: Iterable[Host] = (
            self.hosts.values() if include_backup else self.active_hosts()
        )
        return sum(len(h.gpus) for h in hosts)

    # ------------------------------------------------------------------
    # link state (failures)
    # ------------------------------------------------------------------
    def set_link_state(self, link_id: int, up: bool) -> None:
        link = self.links[link_id]
        if link.up != up:
            link.up = up
            self.state_epoch += 1
            self._state_log.append(link_id)

    def fail_node(self, name: str) -> List[int]:
        """Mark a switch down and all its links down; returns link ids."""
        sw = self.switches.get(name)
        if sw is None:
            raise TopologyError(f"only switches can be failed, got {name!r}")
        sw.up = False
        failed = []
        for port in self.ports[name]:
            if port.link_id is not None and self.links[port.link_id].up:
                self.set_link_state(port.link_id, False)
                failed.append(port.link_id)
        return failed

    def recover_node(self, name: str) -> None:
        sw = self.switches[name]
        sw.up = True
        for port in self.ports[name]:
            if port.link_id is not None:
                self.set_link_state(port.link_id, True)

    def link_state_changes(self, since: int) -> List[int]:
        """Link ids that transitioned up/down after epoch ``since``.

        One entry per transition, in order; the caller advances its
        cursor to :attr:`state_epoch` after consuming them.
        """
        return self._state_log[since:]

    @contextmanager
    def transient_state(self) -> Iterator["Topology"]:
        """Scoped what-if failures: snapshot link/switch state, restore
        on exit.

        Inside the block, callers use the normal mutators
        (:meth:`set_link_state` / :meth:`fail_node`), so every
        transition bumps :attr:`state_epoch` and lands in the state log
        -- epoch-diffing consumers (route caches, compiled FIBs) observe
        both the failure and the restore. This is the sanctioned way to
        write failure sweeps (SPOF analysis, Monte-Carlo what-ifs);
        flipping ``link.up`` directly bypasses the epoch and poisons
        caches (flagged by SEM001).

        Restore cost is O(transitions inside the block), not O(links):
        ``state_epoch`` indexes the state log, so the links to undo are
        exactly those with an odd transition count since entry. A probe
        that fails k links therefore costs 2k log entries total, which
        net-change cache invalidation then recognises as zero -- warm
        routers survive fork-and-probe untouched.
        """
        switch_state = {name: sw.up for name, sw in self.switches.items()}
        enter_epoch = self.state_epoch
        try:
            yield self
        finally:
            for name, up in switch_state.items():
                sw = self.switches[name]
                if sw.up != up:
                    sw.up = up
            pending: Dict[int, int] = {}
            for lid in self._state_log[enter_epoch:]:
                pending[lid] = pending.get(lid, 0) + 1
            for lid, n in pending.items():
                if n % 2:
                    self.set_link_state(lid, not self.links[lid].up)

    def notify_structure_changed(self) -> None:
        """Record out-of-band rewiring (e.g. moving a link endpoint).

        Mutating ``Link``/``Port`` objects directly bypasses
        :meth:`wire`, so callers must bump the structure epoch by hand
        for compiled forwarding state (FIBs, access-leg maps) to be
        rebuilt.
        """
        self.structure_epoch += 1

    # ------------------------------------------------------------------
    # export & stats
    # ------------------------------------------------------------------
    def to_networkx(self):
        """Export as a networkx MultiGraph (optional dependency)."""
        import networkx as nx

        g = nx.MultiGraph()
        for host in self.hosts.values():
            g.add_node(host.name, kind="host", pod=host.pod, segment=host.segment)
        for sw in self.switches.values():
            g.add_node(
                sw.name,
                kind="switch",
                role=sw.role.value,
                tier=sw.tier,
                pod=sw.pod,
                plane=sw.plane,
            )
        for link in self.links.values():
            g.add_edge(
                link.a.node, link.b.node, key=link.link_id, gbps=link.gbps, up=link.up
            )
        return g

    def summary(self) -> Dict[str, object]:
        """Inventory counts, handy for logging and tests."""
        role_counts = defaultdict(int)
        for sw in self.switches.values():
            role_counts[sw.role.value] += 1
        return {
            "name": self.name,
            "hosts": len(self.hosts),
            "active_hosts": len(self.active_hosts()),
            "gpus": self.gpu_count(),
            "switches": dict(role_counts),
            "links": len(self.links),
        }
