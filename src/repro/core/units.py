"""Unit constants and conversion helpers.

Internally the library uses:

* bandwidth -- gigabits per second (Gbps), stored as ``float``
* data size -- bytes, stored as ``int`` or ``float``
* time      -- seconds, stored as ``float``

These helpers keep unit conversions explicit at API boundaries so that
callers never pass a raw magic number whose unit is ambiguous.
"""

from __future__ import annotations

# --- data sizes (bytes) ------------------------------------------------
KB = 1_000
MB = 1_000_000
GB = 1_000_000_000
TB = 1_000_000_000_000

KIB = 1 << 10
MIB = 1 << 20
GIB = 1 << 30

# --- bandwidth (Gbps) ---------------------------------------------------
GBPS_200 = 200.0
GBPS_400 = 400.0

#: Bits per byte; used when converting sizes to transfer times.
BITS_PER_BYTE = 8

# --- time (seconds) -----------------------------------------------------
US = 1e-6
MS = 1e-3
MINUTE = 60.0
HOUR = 3600.0


def gbps_to_bytes_per_sec(gbps: float) -> float:
    """Convert a Gbps link rate into bytes/second."""
    return gbps * 1e9 / BITS_PER_BYTE


def bytes_per_sec_to_gbps(bps: float) -> float:
    """Convert bytes/second into Gbps."""
    return bps * BITS_PER_BYTE / 1e9


def transfer_time(size_bytes: float, gbps: float) -> float:
    """Seconds needed to move ``size_bytes`` at a steady ``gbps`` rate."""
    if gbps <= 0:
        raise ValueError(f"rate must be positive, got {gbps}")
    return size_bytes / gbps_to_bytes_per_sec(gbps)


def gb_per_sec(gbps: float) -> float:
    """Gbps expressed as gigaBYTES per second (NCCL busbw convention)."""
    return gbps / BITS_PER_BYTE
