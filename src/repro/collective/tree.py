"""Tree AllReduce and ring/tree auto-selection.

NCCL switches from ring to double-binary-tree AllReduce below a size
threshold: a tree finishes in ``O(log n)`` latency steps instead of the
ring's ``O(n)``, at the cost of moving the full buffer on every tree
edge. The auto-selector reproduces that crossover, which is what keeps
small-message busbw from collapsing at large scale (left side of
Figure 17a).
"""

from __future__ import annotations

import math
from typing import List, Tuple

from ..core.errors import CollectiveError
from ..fabric.simulator import run_flows
from .allreduce import CollectiveResult, allreduce as ring_allreduce
from .comm import Communicator


def _tree_edges(hosts: List[str]) -> List[Tuple[str, str]]:
    """Parent links of a binary tree over the hosts (index heap order)."""
    edges = []
    for i in range(1, len(hosts)):
        parent = (i - 1) // 2
        edges.append((hosts[i], hosts[parent]))
    return edges


def tree_allreduce(comm: Communicator, size_bytes: float) -> CollectiveResult:
    """Simulate a reduce-to-root + broadcast tree AllReduce.

    Each tree edge carries the full (per-rail) shard once up and once
    down; the latency cost is ``2 * ceil(log2 h)`` steps instead of the
    ring's ``2 (h-1)``.
    """
    if size_bytes <= 0:
        raise CollectiveError("AllReduce size must be positive")
    g = comm.gpus_per_host
    h = comm.num_hosts
    profile = comm.profile

    intra = 2 * profile.intra_reduce_scatter_time(size_bytes, g)
    inter = 0.0
    if h > 1:
        shard = size_bytes / g if g else size_bytes
        flows = []
        for rail in range(g):
            for child, parent in _tree_edges(comm.hosts):
                # reduce up + broadcast down = 2x the shard per edge
                flows.extend(
                    comm.edge_flows(child, parent, rail, shard, tag="tree-up")
                )
                flows.extend(
                    comm.edge_flows(parent, child, rail, shard, tag="tree-down")
                )
        depth = max(1, math.ceil(math.log2(h)))
        steps = 2 * depth
        alpha = steps * (
            profile.step_overhead_seconds + 4 * profile.hop_latency_seconds
        )
        inter = run_flows(comm.topo, flows).finish_time + alpha
    return CollectiveResult(
        op="allreduce",
        size_bytes=size_bytes,
        world_size=comm.world_size,
        intra_seconds=intra,
        inter_seconds=inter,
    )


def auto_allreduce(
    comm: Communicator, size_bytes: float
) -> Tuple[str, CollectiveResult]:
    """Pick ring or tree the way NCCL's tuner would: simulate cheaply by
    the alpha-beta estimate, run the winner, and return (algo, result)."""
    h = comm.num_hosts
    if h <= 2:
        return "ring", ring_allreduce(comm, size_bytes)
    # alpha-beta estimates: ring beta is optimal, tree alpha is optimal
    profile = comm.profile
    beta = 1.0 / 50e9  # seconds per byte at 400 Gbps
    shard = size_bytes / max(1, comm.gpus_per_host)
    ring_cost = profile.ring_latency_seconds(h) + 2 * (h - 1) / h * shard * beta
    depth = max(1, math.ceil(math.log2(h)))
    tree_alpha = 2 * depth * (
        profile.step_overhead_seconds + 4 * profile.hop_latency_seconds
    )
    # a tree parent receives from two children through one NIC: the
    # effective per-edge bandwidth halves (incast), doubling beta
    tree_cost = tree_alpha + 2 * shard * (2 * beta)
    if tree_cost < ring_cost:
        return "tree", tree_allreduce(comm, size_bytes)
    return "ring", ring_allreduce(comm, size_bytes)
