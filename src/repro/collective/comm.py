"""Communicators: rank groups mapped onto hosts and their connections.

A :class:`Communicator` owns the set of hosts participating in a
collective, one rank per (host, GPU). It establishes and caches the
multi-connection sets (Algorithm 1) between peer NICs and turns
per-edge byte volumes into simulator :class:`~repro.fabric.flow.Flow`
objects, splitting each edge's bytes across its connections with the
configured scheduling policy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.errors import CollectiveError
from ..core.topology import Topology
from ..fabric.flow import Flow
from ..routing.ecmp import Router
from .lb import (
    Connection,
    LeastLoadedPolicy,
    MessageScheduler,
    SchedulingPolicy,
    establish_conns,
)
from .model import H800_BOX, GpuBoxProfile

#: RoCEv2 destination port
RDMA_DPORT = 4791

#: message granularity when splitting an edge across connections
DEFAULT_CHUNK_BYTES = 4 * 1024 * 1024


@dataclass(frozen=True)
class Rank:
    """One GPU's place in a communicator."""

    index: int
    host: str
    gpu: int  # rail


class Communicator:
    """A group of GPUs spanning one or more hosts."""

    def __init__(
        self,
        topo: Topology,
        router: Router,
        hosts: Sequence[str],
        gpus_per_host: Optional[int] = None,
        profile: GpuBoxProfile = H800_BOX,
        num_conns: int = 2,
        policy: Optional[SchedulingPolicy] = None,
        chunk_bytes: float = DEFAULT_CHUNK_BYTES,
        disjoint_paths: bool = True,
    ):
        if not hosts:
            raise CollectiveError("communicator needs at least one host")
        if len(set(hosts)) != len(hosts):
            raise CollectiveError("duplicate hosts in communicator")
        self.topo = topo
        self.router = router
        self.hosts = list(hosts)
        first = topo.hosts[self.hosts[0]]
        self.gpus_per_host = gpus_per_host or len(first.gpus)
        self.profile = profile
        self.num_conns = num_conns
        self.policy = policy or LeastLoadedPolicy()
        self.chunk_bytes = chunk_bytes
        #: True = HPN's optimized path selection (RePaC disjoint paths);
        #: False = blind ECMP, the traditional baseline behaviour
        self.disjoint_paths = disjoint_paths
        self.ranks: List[Rank] = [
            Rank(i * self.gpus_per_host + g, h, g)
            for i, h in enumerate(self.hosts)
            for g in range(self.gpus_per_host)
        ]
        self._conn_cache: Dict[Tuple[str, str], List[Connection]] = {}
        self._conn_epoch = (topo.state_epoch, topo.structure_epoch)

    # ------------------------------------------------------------------
    @property
    def world_size(self) -> int:
        return len(self.ranks)

    @property
    def num_hosts(self) -> int:
        return len(self.hosts)

    def nic(self, host: str, rail: int):
        return self.topo.hosts[host].nic_for_rail(rail)

    # ------------------------------------------------------------------
    def connections(self, src_host: str, dst_host: str, rail: int) -> List[Connection]:
        """Cached multi-connection set between two hosts' rail NICs.

        The set is dropped wholesale when the topology's epochs move (a
        link flap can shift ECMP selection of any pair); re-establishing
        is cheap when the router is a
        :class:`~repro.routing.cache.CachedRouter`, which re-routes only
        the epoch-dirtied pairs and serves the rest from its cache.
        """
        epoch = (self.topo.state_epoch, self.topo.structure_epoch)
        if epoch != self._conn_epoch:
            self._conn_cache.clear()
            self._conn_epoch = epoch
        src_nic = self.nic(src_host, rail)
        dst_nic = self.nic(dst_host, rail)
        key = (src_nic.name, dst_nic.name)
        conns = self._conn_cache.get(key)
        if conns is None:
            conns = establish_conns(
                self.router, src_nic, dst_nic,
                dport=RDMA_DPORT, num_conns=self.num_conns,
                disjoint=self.disjoint_paths,
            )
            self._conn_cache[key] = conns
        return conns

    def invalidate_connections(self) -> None:
        """Drop cached connections (topology/link state changed)."""
        self._conn_cache.clear()
        self._conn_epoch = (self.topo.state_epoch, self.topo.structure_epoch)

    # ------------------------------------------------------------------
    def edge_flows(
        self,
        src_host: str,
        dst_host: str,
        rail: int,
        nbytes: float,
        tag: str,
        start_time: float = 0.0,
        drain_weights: Optional[Sequence[float]] = None,
    ) -> List[Flow]:
        """Split ``nbytes`` of one logical edge into per-connection flows."""
        if nbytes <= 0:
            return []
        conns = [
            Connection(c.sport, c.path) for c in self.connections(src_host, dst_host, rail)
        ]
        scheduler = MessageScheduler(conns, self.policy)
        n_msgs = max(1, int(round(nbytes / self.chunk_bytes)))
        msg = nbytes / n_msgs
        scheduler.send_all([msg] * n_msgs, drain_weights=drain_weights)
        flows = []
        for conn in conns:
            if conn.total_bytes <= 0:
                continue
            ft_src = self.nic(src_host, rail)
            ft_dst = self.nic(dst_host, rail)
            from ..routing.hashing import FiveTuple

            ft = FiveTuple(ft_src.ip, ft_dst.ip, conn.sport, RDMA_DPORT)
            flows.append(
                Flow(
                    five_tuple=ft,
                    size_bytes=conn.total_bytes,
                    path=conn.path,
                    start_time=start_time,
                    tag=tag,
                )
            )
        return flows

    def ring_flows(
        self,
        rail: int,
        bytes_per_edge: float,
        tag: str,
        hosts: Optional[Sequence[str]] = None,
        start_time: float = 0.0,
    ) -> List[Flow]:
        """Flows of one directed ring over ``hosts`` on one rail."""
        hosts = list(hosts) if hosts is not None else self.hosts
        if len(hosts) < 2:
            return []
        flows: List[Flow] = []
        for i, src in enumerate(hosts):
            dst = hosts[(i + 1) % len(hosts)]
            flows.extend(
                self.edge_flows(
                    src, dst, rail, bytes_per_edge,
                    tag=f"{tag}/rail{rail}/edge{i}", start_time=start_time,
                )
            )
        return flows

    def all_rails_ring_flows(
        self, bytes_per_edge: float, tag: str, start_time: float = 0.0
    ) -> List[Flow]:
        """Per-rail rings across all hosts (the rail-optimized pattern)."""
        flows: List[Flow] = []
        for rail in range(self.gpus_per_host):
            flows.extend(
                self.ring_flows(rail, bytes_per_edge, tag, start_time=start_time)
            )
        return flows
