"""Analytic collective-communication cost model.

Volume factors follow the NCCL conventions:

* ring AllReduce moves ``2*(n-1)/n * S`` bytes across each ring edge;
* ring AllGather / ReduceScatter move ``(n-1)/n * S``;
* *bus bandwidth* (busbw) normalizes measured time so results are
  comparable across operations: ``busbw = factor * S / t``.

Intra-host stages ride NVLink/NVSwitch. :class:`GpuBoxProfile` captures
the three effective intra-host rates that matter to the paper's
figures: plain NVLink p2p, NVSwitch-aggregated AllReduce (NVLS), and
the AllGather ceiling (NVLS cannot accelerate AllGather, so AllGather
is NVSwitch-bound on both architectures -- the parity in Figure 17b).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.units import gbps_to_bytes_per_sec


def ring_allreduce_edge_bytes(size_bytes: float, n: int) -> float:
    """Bytes crossing each ring edge for an ``n``-rank AllReduce."""
    if n < 2:
        return 0.0
    return 2.0 * (n - 1) / n * size_bytes


def ring_allgather_edge_bytes(size_bytes: float, n: int) -> float:
    """Bytes crossing each ring edge for an n-rank AllGather.

    ``size_bytes`` is the *total* output size (NCCL convention), each
    rank contributing ``size/n``.
    """
    if n < 2:
        return 0.0
    return (n - 1) / n * size_bytes


def allreduce_busbw(size_bytes: float, n: int, seconds: float) -> float:
    """NCCL busbw (bytes/s) for an AllReduce of ``size_bytes``."""
    if seconds <= 0:
        raise ValueError("elapsed time must be positive")
    return ring_allreduce_edge_bytes(size_bytes, n) / seconds


def allgather_busbw(size_bytes: float, n: int, seconds: float) -> float:
    if seconds <= 0:
        raise ValueError("elapsed time must be positive")
    return ring_allgather_edge_bytes(size_bytes, n) / seconds


@dataclass(frozen=True)
class GpuBoxProfile:
    """Effective intra-host rates of one 8-GPU server (Gbps per GPU).

    Defaults approximate an H800 box with 400 GBps bidirectional
    NVLink: ``nvlink_gbps`` is the per-GPU point-to-point rate;
    ``nvls_allreduce_gbps`` the per-GPU effective rate when NVSwitch
    aggregates reductions in-fabric (NVLS); ``allgather_cap_gbps`` the
    NVSwitch ceiling that bounds AllGather on any network (Figure 17b).

    ``hop_latency_seconds`` and ``step_overhead_seconds`` feed the
    alpha-beta cost model: each ring step pays a fixed latency on top
    of the bandwidth term, which is what bends the busbw curves down at
    small message sizes (the left side of Figure 17).
    """

    nvlink_gbps: float = 1600.0
    nvls_allreduce_gbps: float = 3200.0
    allgather_cap_gbps: float = 800.0
    #: one-way network hop latency (switch + serialization + cable)
    hop_latency_seconds: float = 2e-6
    #: per-ring-step software/NIC overhead (launch, completion)
    step_overhead_seconds: float = 6e-6

    def ring_latency_seconds(self, hosts: int, hops_per_edge: int = 4) -> float:
        """Fixed (size-independent) cost of an inter-host ring pass.

        A ring AllReduce runs ``2*(hosts-1)`` steps; each step crosses
        ``hops_per_edge`` links and pays the per-step overhead.
        """
        if hosts < 2:
            return 0.0
        steps = 2 * (hosts - 1)
        return steps * (
            self.step_overhead_seconds + hops_per_edge * self.hop_latency_seconds
        )

    def intra_reduce_scatter_time(self, size_bytes: float, gpus: int) -> float:
        """NVLS-assisted intra-host reduce-scatter of ``size_bytes``."""
        if gpus < 2:
            return 0.0
        moved = (gpus - 1) / gpus * size_bytes
        return moved / gbps_to_bytes_per_sec(self.nvls_allreduce_gbps)

    def intra_allgather_time(self, size_bytes: float, gpus: int) -> float:
        if gpus < 2:
            return 0.0
        moved = (gpus - 1) / gpus * size_bytes
        return moved / gbps_to_bytes_per_sec(self.allgather_cap_gbps)

    def intra_p2p_time(self, size_bytes: float) -> float:
        """One NVLink hop (used for cross-rail relays)."""
        return size_bytes / gbps_to_bytes_per_sec(self.nvlink_gbps)


#: default profile shared by examples/benchmarks
H800_BOX = GpuBoxProfile()
