"""Point-to-point Send/Recv (pipeline-parallel traffic).

PP exchanges activations/gradients between consecutive stages with
plain Send/Recv over few connections and modest volume (Table 3: ~6 MB
per iteration), which is why the paper routes PP across the
oversubscribed core layer (section 7).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..core.errors import CollectiveError
from ..fabric.simulator import run_flows
from .comm import Communicator


@dataclass
class SendRecvResult:
    size_bytes: float
    seconds: float

    @property
    def goodput_gbps(self) -> float:
        return self.size_bytes * 8 / 1e9 / self.seconds if self.seconds > 0 else 0.0


def send_recv(
    comm: Communicator,
    src_host: str,
    dst_host: str,
    rail: int,
    size_bytes: float,
) -> SendRecvResult:
    """Simulate one Send/Recv between two hosts on one rail."""
    if size_bytes <= 0:
        raise CollectiveError("message size must be positive")
    flows = comm.edge_flows(src_host, dst_host, rail, size_bytes, tag="sendrecv")
    return SendRecvResult(size_bytes, run_flows(comm.topo, flows).finish_time)


def pipeline_exchange(
    comm: Communicator,
    stage_pairs: Sequence[Tuple[str, str]],
    size_bytes: float,
    rails: Optional[Sequence[int]] = None,
) -> SendRecvResult:
    """All stage boundaries exchange activations concurrently.

    ``stage_pairs`` lists (sender host, receiver host) per boundary;
    ``rails`` selects which NICs carry it (default: rail 0).
    """
    rails = list(rails) if rails is not None else [0]
    flows: List = []
    for src, dst in stage_pairs:
        for rail in rails:
            flows.extend(
                comm.edge_flows(
                    src, dst, rail, size_bytes / len(rails), tag="pp-exchange"
                )
            )
    if not flows:
        return SendRecvResult(size_bytes, 0.0)
    return SendRecvResult(size_bytes, run_flows(comm.topo, flows).finish_time)
