"""Step-boundary tracing for collective operations.

Each collective returns a timing breakdown; these helpers render that
breakdown as spans on the ``collective`` track of the active (or
injected) recorder, so a Chrome trace shows where a step's wall-clock
went -- intra-host NVLink time vs inter-host fabric time, and for
all-to-all the rail-only relay penalty.

Span geometry follows the result's own composition rule: pipelined
operations overlap their stages (both spans start at 0), serialized
ones lay them end to end.
"""

from __future__ import annotations

from ..obs import resolve as _obs_resolve


def record_stages(result, recorder=None, start_s: float = 0.0) -> None:
    """Record a :class:`CollectiveResult`'s stages as spans.

    No-op when observability is disabled. ``start_s`` offsets the whole
    operation, letting callers lay successive steps on one timeline.
    """
    rec = _obs_resolve(recorder)
    if rec is None:
        return
    op = result.op
    intra = result.intra_seconds
    inter = result.inter_seconds
    if result.pipelined:
        inter_start = start_s
    else:
        inter_start = start_s + intra
    ev = rec.events
    ev.span(
        f"{op}.intra", start_s, start_s + intra, track="collective",
        size_bytes=result.size_bytes, world_size=result.world_size,
    )
    ev.span(
        f"{op}.inter", inter_start, inter_start + inter, track="collective",
        size_bytes=result.size_bytes, world_size=result.world_size,
        pipelined=result.pipelined,
    )
    m = rec.metrics
    m.counter("collective.ops", op=op).inc()
    m.gauge("collective.busbw_gbps", op=op).set(
        result.busbw_gb_per_sec, ts_s=start_s + result.seconds
    )


def record_alltoall(result, recorder=None, start_s: float = 0.0) -> None:
    """Record an :class:`AllToAllResult` as network + relay spans."""
    rec = _obs_resolve(recorder)
    if rec is None:
        return
    ev = rec.events
    net_end = start_s + result.network_seconds
    ev.span(
        "alltoall.network", start_s, net_end, track="collective",
        size_bytes=result.size_bytes, world_size=result.world_size,
    )
    if result.relay_seconds > 0:
        ev.span(
            "alltoall.relay", net_end, net_end + result.relay_seconds,
            track="collective", size_bytes=result.size_bytes,
        )
    m = rec.metrics
    m.counter("collective.ops", op="alltoall").inc()
    m.gauge("collective.busbw_gbps", op="alltoall").set(
        result.busbw_gb_per_sec, ts_s=start_s + result.seconds
    )
