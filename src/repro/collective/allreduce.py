"""AllReduce on the simulated fabric.

The hierarchical (rail-optimized) algorithm NCCL runs on these boxes:

1. intra-host reduce-scatter over NVLink/NVSwitch (NVLS-assisted), after
   which GPU ``r`` of every host owns shard ``r`` (``S / gpus``);
2. per-rail inter-host ring AllReduce of each shard -- this is the only
   stage that touches the Ethernet fabric, and the stage where HPN and
   DCN+ diverge (ECMP collisions stretch the slowest ring edge);
3. intra-host AllGather of the reduced shards.

``allreduce`` returns a timing breakdown plus NCCL-convention busbw.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.errors import CollectiveError
from ..fabric.simulator import run_flows
from .comm import Communicator
from .model import allreduce_busbw, ring_allreduce_edge_bytes
from .tracing import record_stages


@dataclass
class CollectiveResult:
    """Timing breakdown of one collective operation.

    ``pipelined`` operations overlap the intra-host and inter-host
    stages chunk by chunk (plain ring AllGather), so the slower stage
    sets the pace; non-pipelined ones (NVLS AllReduce, whose in-switch
    reduction must complete before shards leave the host) serialize.
    """

    op: str
    size_bytes: float
    world_size: int
    intra_seconds: float
    inter_seconds: float
    pipelined: bool = False

    @property
    def seconds(self) -> float:
        if self.pipelined:
            return max(self.intra_seconds, self.inter_seconds)
        return self.intra_seconds + self.inter_seconds

    @property
    def busbw_bytes_per_sec(self) -> float:
        if self.op == "allreduce":
            return allreduce_busbw(self.size_bytes, self.world_size, self.seconds)
        from .model import allgather_busbw

        return allgather_busbw(self.size_bytes, self.world_size, self.seconds)

    @property
    def busbw_gb_per_sec(self) -> float:
        return self.busbw_bytes_per_sec / 1e9


def allreduce(comm: Communicator, size_bytes: float) -> CollectiveResult:
    """Simulate one AllReduce of ``size_bytes`` over the communicator."""
    if size_bytes <= 0:
        raise CollectiveError("AllReduce size must be positive")
    g = comm.gpus_per_host
    h = comm.num_hosts
    profile = comm.profile

    intra = profile.intra_reduce_scatter_time(size_bytes, g)
    inter = 0.0
    if h > 1:
        shard = size_bytes / g if g else size_bytes
        per_edge = ring_allreduce_edge_bytes(shard, h)
        flows = comm.all_rails_ring_flows(per_edge, tag="allreduce")
        # bandwidth term from the fluid sim + fixed alpha term per step
        inter = run_flows(comm.topo, flows).finish_time \
            + profile.ring_latency_seconds(h)
    # the closing intra-host AllGather also rides NVLS
    intra += profile.intra_reduce_scatter_time(size_bytes, g)
    result = CollectiveResult(
        op="allreduce",
        size_bytes=size_bytes,
        world_size=comm.world_size,
        intra_seconds=intra,
        inter_seconds=inter,
    )
    record_stages(result)
    return result
