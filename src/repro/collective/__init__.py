"""Collective communication on the simulated fabric."""

from .allgather import allgather
from .allreduce import CollectiveResult, allreduce
from .alltoall import AllToAllResult, all_to_all
from .comm import Communicator, Rank, RDMA_DPORT
from .lb import (
    Connection,
    LeastLoadedPolicy,
    MessageScheduler,
    RoundRobinPolicy,
    SchedulingPolicy,
    SingleConnectionPolicy,
    establish_conns,
)
from .model import (
    GpuBoxProfile,
    H800_BOX,
    allgather_busbw,
    allreduce_busbw,
    ring_allgather_edge_bytes,
    ring_allreduce_edge_bytes,
)
from .multiallreduce import MultiAllReduceResult, multi_allreduce
from .reducescatter import reduce_scatter
from .sendrecv import SendRecvResult, pipeline_exchange, send_recv
from .tracing import record_alltoall, record_stages
from .tree import auto_allreduce, tree_allreduce

__all__ = [
    "auto_allreduce",
    "tree_allreduce",
    "reduce_scatter",
    "AllToAllResult",
    "CollectiveResult",
    "Communicator",
    "Connection",
    "GpuBoxProfile",
    "H800_BOX",
    "LeastLoadedPolicy",
    "MessageScheduler",
    "MultiAllReduceResult",
    "RDMA_DPORT",
    "Rank",
    "RoundRobinPolicy",
    "SchedulingPolicy",
    "SendRecvResult",
    "SingleConnectionPolicy",
    "all_to_all",
    "allgather",
    "allgather_busbw",
    "allreduce",
    "allreduce_busbw",
    "establish_conns",
    "multi_allreduce",
    "pipeline_exchange",
    "record_alltoall",
    "record_stages",
    "ring_allgather_edge_bytes",
    "ring_allreduce_edge_bytes",
    "send_recv",
]
