"""Connection-level load balancing (paper Algorithms 1-2, Appendix B).

``EstablishConns`` builds several RDMA connections per logical peer,
each riding a *disjoint* network path found with RePaC-style hash
prediction. ``PathSelection`` then steers each message onto the
connection with the fewest outstanding WQE bytes -- a congested path
drains its work queue slower, so its counter stays high and new
messages avoid it.

Three policies are provided so the ablation bench can compare them:

* :class:`LeastLoadedPolicy` -- the paper's scheme (disjoint paths +
  WQE counter);
* :class:`RoundRobinPolicy` -- naive spreading over the same paths;
* :class:`SingleConnectionPolicy` -- classic one-QP-per-peer ECMP.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..core.entities import Nic
from ..core.errors import CollectiveError
from ..routing.ecmp import Router
from ..routing.path import FlowPath
from ..routing.repac import find_paths


@dataclass
class Connection:
    """One RDMA connection: a 5-tuple pinned to one predicted path."""

    sport: int
    path: FlowPath
    #: bytes of WQEs posted and not yet completed (Algorithm 2 counter)
    wqe_bytes: float = 0.0
    #: cumulative bytes assigned (for telemetry / flow construction)
    total_bytes: float = 0.0

    def post(self, nbytes: float) -> None:
        self.wqe_bytes += nbytes
        self.total_bytes += nbytes

    def complete(self, nbytes: float) -> None:
        self.wqe_bytes = max(0.0, self.wqe_bytes - nbytes)


def establish_conns(
    router: Router,
    src_nic: Nic,
    dst_nic: Nic,
    dport: int = 4791,
    num_conns: int = 2,
    plane: Optional[int] = None,
    alternate_planes: bool = True,
    disjoint: bool = True,
) -> List[Connection]:
    """Algorithm 1: build ``num_conns`` connections per logical peer.

    With ``disjoint=True`` (HPN's optimized scheme) source ports are
    probed RePaC-style until the predicted paths are link-disjoint in
    the fabric interior. With ``disjoint=False`` (the DCN+ baseline)
    source ports are picked blindly and the paths land wherever ECMP
    hashing sends them -- collisions included.

    With ``alternate_planes`` (dual-plane fabrics), consecutive
    connections use alternating NIC ports so one logical peer can drive
    both 200G ports -- the full 400G rail.
    """
    conns: List[Connection] = []
    planes = router.usable_planes(src_nic, dst_nic)
    if not planes:
        raise CollectiveError(f"no plane from {src_nic.name} to {dst_nic.name}")
    plane_seq: List[int] = []
    for i in range(num_conns):
        if alternate_planes and len(planes) > 1:
            plane_seq.append(planes[i % len(planes)])
        else:
            plane_seq.append(plane if plane in planes else planes[0])

    if disjoint:
        per_plane: Dict[int, int] = {}
        for p in plane_seq:
            per_plane[p] = per_plane.get(p, 0) + 1
        base = 49152
        for p, count in per_plane.items():
            found = find_paths(
                router, src_nic, dst_nic, dport, num_paths=count,
                plane=p, sport_base=base,
            )
            for probe in found.probes:
                conns.append(Connection(sport=probe.sport, path=probe.path))
            base += found.attempts + 1
        return conns

    # blind ECMP: a pseudo-random but deterministic sport per connection
    from ..routing.hashing import FiveTuple, hash_five_tuple

    sports: List[int] = []
    requests = []
    for i, p in enumerate(plane_seq):
        probe_ft = FiveTuple(src_nic.ip, dst_nic.ip, i, dport)
        sport = 49152 + (hash_five_tuple(probe_ft, seed=0xC0FFEE) + i) % 16384
        sports.append(sport)
        requests.append(
            (src_nic, dst_nic, FiveTuple(src_nic.ip, dst_nic.ip, sport, dport), p)
        )
    route_many = getattr(router, "route_many", None)
    if route_many is not None:
        paths = route_many(requests)
    else:
        paths = [router.path_for(s, d, ft, plane=p) for s, d, ft, p in requests]
    conns.extend(
        Connection(sport=sport, path=path) for sport, path in zip(sports, paths)
    )
    return conns


class SchedulingPolicy:
    """Chooses the connection carrying the next message."""

    def pick(self, conns: Sequence[Connection], msg_index: int) -> Connection:
        raise NotImplementedError


class LeastLoadedPolicy(SchedulingPolicy):
    """Algorithm 2: the connection with minimal outstanding WQE bytes."""

    def pick(self, conns: Sequence[Connection], msg_index: int) -> Connection:
        return min(conns, key=lambda c: c.wqe_bytes)


class RoundRobinPolicy(SchedulingPolicy):
    def pick(self, conns: Sequence[Connection], msg_index: int) -> Connection:
        return conns[msg_index % len(conns)]


class SingleConnectionPolicy(SchedulingPolicy):
    def pick(self, conns: Sequence[Connection], msg_index: int) -> Connection:
        return conns[0]


@dataclass
class MessageScheduler:
    """Drives a message stream over a connection set (Algorithm 2 loop).

    ``drain_weights`` lets the caller model heterogeneous path quality:
    a connection's counter is drained proportionally to its weight
    between messages, so congested (low-weight) connections accumulate
    backlog and the least-loaded policy naturally avoids them.
    """

    conns: List[Connection]
    policy: SchedulingPolicy = field(default_factory=LeastLoadedPolicy)

    def send_all(
        self,
        message_sizes: Sequence[float],
        drain_weights: Optional[Sequence[float]] = None,
    ) -> List[int]:
        """Assign each message to a connection; returns chosen indices."""
        if not self.conns:
            raise CollectiveError("no connections established")
        weights = list(drain_weights) if drain_weights is not None else [1.0] * len(self.conns)
        if len(weights) != len(self.conns):
            raise CollectiveError("one drain weight per connection required")
        chosen = []
        total_w = sum(weights)
        for i, size in enumerate(message_sizes):
            conn = self.policy.pick(self.conns, i)
            conn.post(size)
            chosen.append(self.conns.index(conn))
            # model service between postings: each connection drains in
            # proportion to its current path quality
            drain_budget = size
            for c, w in zip(self.conns, weights):
                c.complete(drain_budget * (w / total_w))
        return chosen

    def assigned_bytes(self) -> List[float]:
        return [c.total_bytes for c in self.conns]
