"""All-to-all (MoE expert-parallel traffic, paper section 10).

Every rank sends ``size / world`` bytes to every other rank. Source and
destination GPUs inherently live on *different rails*, which is exactly
the pattern that breaks the rail-only tier-2 assumption: on a rail-only
fabric cross-rail bytes must first relay over NVLink to the destination
rail's NIC, burning intra-host bandwidth and serializing behind it.

``all_to_all`` handles both fabrics: on any-to-any networks cross-rail
pairs ride the aggregation layer directly; on rail-only networks they
are relayed (modeled as a same-rail network flow plus an NVLink hop).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..core.errors import CollectiveError
from ..fabric.simulator import run_flows
from ..topos.railonly import cross_rail_reachable
from .comm import Communicator
from .tracing import record_alltoall


@dataclass
class AllToAllResult:
    size_bytes: float
    world_size: int
    network_seconds: float
    relay_seconds: float

    @property
    def seconds(self) -> float:
        return self.network_seconds + self.relay_seconds

    @property
    def busbw_gb_per_sec(self) -> float:
        if self.seconds <= 0:
            return 0.0
        moved = (self.world_size - 1) / self.world_size * self.size_bytes
        return moved / self.seconds / 1e9


def all_to_all(comm: Communicator, size_bytes: float) -> AllToAllResult:
    """Simulate an all-to-all of total ``size_bytes`` per rank."""
    if size_bytes <= 0:
        raise CollectiveError("all-to-all size must be positive")
    world = comm.world_size
    if world < 2:
        raise CollectiveError("all-to-all needs at least 2 ranks")
    per_pair = size_bytes / world
    railonly = comm.topo.meta.get("architecture") == "railonly"

    flows: List = []
    relay_bytes_per_host = 0.0
    for src in comm.ranks:
        for dst in comm.ranks:
            if src.host == dst.host:
                continue  # NVLink, negligible next to network time
            if railonly and not cross_rail_reachable(comm.topo, src.gpu, dst.gpu):
                # relay: NVLink to dst-rail NIC on the source host, then
                # the network on the destination rail
                relay_bytes_per_host += per_pair
                flows.extend(
                    comm.edge_flows(
                        src.host, dst.host, dst.gpu, per_pair,
                        tag=f"a2a-relay/{src.index}->{dst.index}",
                    )
                )
            else:
                flows.extend(
                    comm.edge_flows(
                        src.host, dst.host, src.gpu, per_pair,
                        tag=f"a2a/{src.index}->{dst.index}",
                    )
                )
    network_seconds = run_flows(comm.topo, flows).finish_time
    relay_seconds = 0.0
    if relay_bytes_per_host:
        # relayed bytes traverse NVLink once per host on average
        relay_seconds = comm.profile.intra_p2p_time(
            relay_bytes_per_host / max(1, comm.num_hosts)
        )
    result = AllToAllResult(
        size_bytes=size_bytes,
        world_size=world,
        network_seconds=network_seconds,
        relay_seconds=relay_seconds,
    )
    record_alltoall(result)
    return result
