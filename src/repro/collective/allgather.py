"""AllGather on the simulated fabric.

Same hierarchical structure as AllReduce, but NVLS cannot aggregate
gathers in the NVSwitch, so the intra-host stage runs at the NVSwitch
ceiling (``allgather_cap_gbps``). That ceiling binds on both HPN and
DCN+, which is why Figure 17b shows near-parity between architectures.
"""

from __future__ import annotations

from ..core.errors import CollectiveError
from ..fabric.simulator import run_flows
from .allreduce import CollectiveResult
from .comm import Communicator
from .model import ring_allgather_edge_bytes
from .tracing import record_stages


def allgather(comm: Communicator, size_bytes: float) -> CollectiveResult:
    """Simulate one AllGather producing ``size_bytes`` on every rank."""
    if size_bytes <= 0:
        raise CollectiveError("AllGather size must be positive")
    g = comm.gpus_per_host
    h = comm.num_hosts
    profile = comm.profile

    inter = 0.0
    if h > 1:
        # per rail, host i contributes its shard; ring AllGather of S/g
        shard = size_bytes / g if g else size_bytes
        per_edge = ring_allgather_edge_bytes(shard, h)
        flows = comm.all_rails_ring_flows(per_edge, tag="allgather")
        # AllGather runs half the steps of AllReduce
        inter = run_flows(comm.topo, flows).finish_time \
            + profile.ring_latency_seconds(h) / 2
    intra = profile.intra_allgather_time(size_bytes, g)
    result = CollectiveResult(
        op="allgather",
        size_bytes=size_bytes,
        world_size=comm.world_size,
        intra_seconds=intra,
        inter_seconds=inter,
        pipelined=True,  # chunked rings overlap the two stages
    )
    record_stages(result)
    return result
