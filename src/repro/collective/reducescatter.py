"""ReduceScatter on the simulated fabric.

Used standalone and as the first half of ZeRO-style sharded gradient
synchronization (DeepSpeed, which the paper names as a mainstream
framework): each rank ends up owning the reduced shard of 1/n of the
buffer, moving ``(n-1)/n * S`` bytes per ring edge -- half an
AllReduce.
"""

from __future__ import annotations

from ..core.errors import CollectiveError
from ..fabric.simulator import run_flows
from .allreduce import CollectiveResult
from .comm import Communicator
from .model import ring_allgather_edge_bytes
from .tracing import record_stages


def reduce_scatter(comm: Communicator, size_bytes: float) -> CollectiveResult:
    """Simulate one ReduceScatter of a ``size_bytes`` buffer."""
    if size_bytes <= 0:
        raise CollectiveError("ReduceScatter size must be positive")
    g = comm.gpus_per_host
    h = comm.num_hosts
    profile = comm.profile

    # intra-host stage: NVLS reduces shards inside the NVSwitch
    intra = profile.intra_reduce_scatter_time(size_bytes, g)
    inter = 0.0
    if h > 1:
        shard = size_bytes / g if g else size_bytes
        per_edge = ring_allgather_edge_bytes(shard, h)  # (n-1)/n factor
        flows = comm.all_rails_ring_flows(per_edge, tag="reducescatter")
        inter = run_flows(comm.topo, flows).finish_time \
            + profile.ring_latency_seconds(h) / 2
    result = CollectiveResult(
        op="allgather",  # same (n-1)/n busbw normalization
        size_bytes=size_bytes,
        world_size=comm.world_size,
        intra_seconds=intra,
        inter_seconds=inter,
    )
    record_stages(result)
    return result
