"""Multi-AllReduce (paper Figure 17c).

Megatron with TP=8 synchronizes gradients with one AllReduce *per
rail*: GPUs with the same local index across the DP group reduce in
parallel, and because ranks never share a host-internal shard, all
bytes cross the inter-host network -- NVLink does not help. This is the
most network-intensive collective in the paper and where HPN's load
balancing pays the most (up to +158.2%).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..core.errors import CollectiveError
from ..fabric.simulator import run_flows
from .comm import Communicator
from .model import allreduce_busbw, ring_allreduce_edge_bytes


@dataclass
class MultiAllReduceResult:
    """Per-rail and aggregate timing of a Multi-AllReduce."""

    size_bytes: float
    num_hosts: int
    seconds: float
    rail_finish: Dict[int, float]

    @property
    def busbw_bytes_per_sec(self) -> float:
        """Busbw of the slowest rail group (the synchronization bound)."""
        return allreduce_busbw(self.size_bytes, self.num_hosts, self.seconds)

    @property
    def busbw_gb_per_sec(self) -> float:
        return self.busbw_bytes_per_sec / 1e9


def multi_allreduce(comm: Communicator, size_bytes: float) -> MultiAllReduceResult:
    """Simulate per-rail parallel AllReduce of ``size_bytes`` each."""
    if size_bytes <= 0:
        raise CollectiveError("Multi-AllReduce size must be positive")
    if comm.num_hosts < 2:
        raise CollectiveError("Multi-AllReduce needs at least two hosts")
    per_edge = ring_allreduce_edge_bytes(size_bytes, comm.num_hosts)
    flows: List = []
    rail_tags: Dict[int, List[int]] = {}
    for rail in range(comm.gpus_per_host):
        rail_flows = comm.ring_flows(rail, per_edge, tag=f"multiar/rail{rail}")
        rail_tags[rail] = [f.flow_id for f in rail_flows]
        flows.extend(rail_flows)
    result = run_flows(comm.topo, flows)
    alpha = comm.profile.ring_latency_seconds(comm.num_hosts)
    rail_finish = {
        rail: max((result.flow_finish[fid] for fid in fids), default=0.0) + alpha
        for rail, fids in rail_tags.items()
    }
    return MultiAllReduceResult(
        size_bytes=size_bytes,
        num_hosts=comm.num_hosts,
        seconds=result.finish_time + alpha,
        rail_finish=rail_finish,
    )
