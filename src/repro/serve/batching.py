"""Async micro-batching: accumulate, dedupe, dispatch, fan out.

Concurrent requests land in a pending window; the window flushes when
it reaches ``max_batch`` distinct queries or when ``max_delay_s``
elapses after the first arrival, whichever comes first. Identical
queries (same :class:`~repro.serve.query.Query`, which is its own
canonical key) share one future -- the batch engine sees each distinct
query once and every duplicate waiter gets the same result object.

The flush runs the batch synchronously on the event loop. That is
deliberate: the daemon is single-loop, so a batch -- including its
transient-state what-if groups -- can never interleave with another
batch's epoch sync, which is the atomicity the fork-and-probe contract
relies on.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from .query import Query

#: default flush bounds: 64 distinct queries or 2 ms after first arrival
DEFAULT_MAX_BATCH = 64
DEFAULT_MAX_DELAY_S = 0.002


@dataclass
class BatchStats:
    """Counters the daemon exports via ``/stats`` and ``serve.*``."""

    requests: int = 0
    deduped: int = 0
    batches: int = 0
    flushed_full: int = 0
    flushed_deadline: int = 0
    flushed_drain: int = 0
    max_batch_seen: int = 0
    batched_queries: int = 0

    def as_dict(self) -> Dict[str, Any]:
        mean = self.batched_queries / self.batches if self.batches else 0.0
        return {
            "requests": self.requests,
            "deduped": self.deduped,
            "batches": self.batches,
            "flushed_full": self.flushed_full,
            "flushed_deadline": self.flushed_deadline,
            "flushed_drain": self.flushed_drain,
            "max_batch_seen": self.max_batch_seen,
            "mean_batch_size": mean,
        }


class MicroBatcher:
    """Deadline/size-bounded request coalescing over a batch executor.

    ``execute_batch`` is called with the distinct pending queries (in
    arrival order) and must return one result per query; results are
    fanned out to every waiter, duplicates included.
    """

    def __init__(
        self,
        execute_batch: Callable[[Sequence[Query]], List[Any]],
        max_batch: int = DEFAULT_MAX_BATCH,
        max_delay_s: float = DEFAULT_MAX_DELAY_S,
        recorder=None,
    ):
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        self._execute_batch = execute_batch
        self.max_batch = max_batch
        self.max_delay_s = max_delay_s
        self.stats = BatchStats()
        self._pending: List[Query] = []
        self._futures: Dict[Query, "asyncio.Future[Any]"] = {}
        self._timer: Optional[asyncio.TimerHandle] = None
        if recorder is not None:
            m = recorder.metrics
            self._h_batch = m.histogram(
                "serve.batch_size",
                buckets=[1, 2, 4, 8, 16, 32, 64, 128, 256],
            )
            self._c_deduped = m.counter("serve.deduped")
        else:
            self._h_batch = self._c_deduped = None

    # ------------------------------------------------------------------
    async def submit(self, query: Query) -> Any:
        """Enqueue one query; resolves when its batch executes."""
        self.stats.requests += 1
        fut = self._futures.get(query)
        if fut is not None:
            # intra-window duplicate: ride the existing future
            self.stats.deduped += 1
            if self._c_deduped is not None:
                self._c_deduped.inc()
            return await fut
        loop = asyncio.get_running_loop()
        fut = loop.create_future()
        self._futures[query] = fut
        self._pending.append(query)
        if len(self._pending) >= self.max_batch:
            self._flush("full")
        elif self._timer is None:
            self._timer = loop.call_later(
                self.max_delay_s, self._flush, "deadline"
            )
        return await fut

    def flush(self) -> None:
        """Execute whatever is pending now (drain / shutdown path)."""
        if self._pending:
            self._flush("drain")

    # ------------------------------------------------------------------
    def _flush(self, why: str) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        batch = self._pending
        futures = self._futures
        self._pending = []
        self._futures = {}
        if not batch:
            return
        self.stats.batches += 1
        self.stats.batched_queries += len(batch)
        self.stats.max_batch_seen = max(self.stats.max_batch_seen, len(batch))
        if why == "full":
            self.stats.flushed_full += 1
        elif why == "deadline":
            self.stats.flushed_deadline += 1
        else:
            self.stats.flushed_drain += 1
        if self._h_batch is not None:
            self._h_batch.observe(len(batch))
        try:
            results = self._execute_batch(batch)
        except Exception as err:  # defensive: executor should not raise
            for fut in futures.values():
                if not fut.done():
                    fut.set_exception(err)
            return
        for query, result in zip(batch, results):
            fut = futures[query]
            if not fut.done():
                fut.set_result(result)
