"""The ``bench.serve`` experiment: batched dispatch vs serial evaluation.

Three phases over one seeded mixed workload (path / planes / RePaC /
residual-what-if) on one topology object:

1. **oracle serial** -- every query evaluated one at a time against the
   uncached hop-by-hop :class:`~repro.routing.ecmp.Router`: what every
   caller paid before the daemon existed, and the differential oracle
   for byte-identity;
2. **warm serial** -- a fresh shared ``CachedRouter``, still one query
   at a time: isolates cache warmth from batching;
3. **batched** -- another fresh router, the same workload chunked
   through ``ServeState.execute_batch`` (dedupe + ``route_many`` + one
   transient block per failure set).

All three result streams must be byte-identical; the payload records
walls, speedup, qps, cache hit rate, and the equivalence verdict for
``BENCH_serve.json`` and the CI gate (≥3x over serial at ≥90% hits).
"""

from __future__ import annotations

import gc
import random
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Tuple

from ..core.topology import Topology
from .query import Query
from .state import ServeState


def _build_topo(params: Dict[str, Any]) -> Topology:
    from ..topos import HpnSpec, build_hpn

    return build_hpn(HpnSpec(
        segments_per_pod=int(params.get("segments", 2)),
        hosts_per_segment=int(params.get("hosts_per_segment", 8)),
        aggs_per_plane=int(params.get("aggs_per_plane", 4)),
    ))


def _build_workload(
    topo: Topology, params: Dict[str, Any], seed: int
) -> List[Query]:
    rng = random.Random(seed)
    hosts = sorted(h.name for h in topo.active_hosts())
    rails = sorted(
        {n.rail for n in next(iter(topo.hosts.values())).backend_nics()}
    )

    def pair() -> Tuple[str, str]:
        src = hosts[rng.randrange(len(hosts))]
        dst = hosts[rng.randrange(len(hosts))]
        while dst == src:
            dst = hosts[rng.randrange(len(hosts))]
        return src, dst

    n_pairs = int(params.get("pairs", 120))
    conns = int(params.get("conns", 2))
    path_pool: List[Query] = []
    planes_pool: List[Query] = []
    for _ in range(n_pairs):
        src, dst = pair()
        rail = rails[rng.randrange(len(rails))]
        for c in range(conns):
            path_pool.append(Query(
                kind="path", src_host=src, dst_host=dst,
                src_rail=rail, dst_rail=rail, sport=49152 + c,
            ))
        planes_pool.append(Query(
            kind="planes", src_host=src, dst_host=dst,
            src_rail=rail, dst_rail=rail,
        ))

    repac_pool: List[Query] = []
    for _ in range(int(params.get("repac_pairs", 3))):
        src, dst = pair()
        repac_pool.append(Query(
            kind="repac", src_host=src, dst_host=dst,
            num_paths=int(params.get("repac_num_paths", 3)),
            sport_span=int(params.get("repac_span", 48)),
        ))

    # residual what-ifs: each fails one agg/core-facing link
    link_ids = sorted(topo.links)
    whatif_pool: List[Query] = []
    for _ in range(int(params.get("whatif_pairs", 2))):
        src, dst = pair()
        lid = link_ids[rng.randrange(len(link_ids))]
        whatif_pool.append(Query(
            kind="residual", src_host=src, dst_host=dst,
            num_paths=2, sport_span=32, fail_links=(lid,),
        ))

    requests = int(params.get("requests", 4000))
    planes_frac = float(params.get("planes_frac", 0.10))
    repac_frac = float(params.get("repac_frac", 0.03))
    whatif_frac = float(params.get("whatif_frac", 0.01))
    workload: List[Query] = []
    for _ in range(requests):
        roll = rng.random()
        if roll < whatif_frac:
            pool = whatif_pool
        elif roll < whatif_frac + repac_frac:
            pool = repac_pool
        elif roll < whatif_frac + repac_frac + planes_frac:
            pool = planes_pool
        else:
            pool = path_pool
        workload.append(pool[rng.randrange(len(pool))])
    return workload


@contextmanager
def _gc_paused() -> Iterator[None]:
    """Keep cyclic GC out of the timed phases.

    Each phase accumulates thousands of result dicts; without this the
    *last* phase pays collection passes over every earlier phase's
    garbage, skewing the comparison by run order.
    """
    was_enabled = gc.isenabled()
    gc.collect()
    gc.disable()
    try:
        yield
    finally:
        if was_enabled:
            gc.enable()


def _first_mismatch(a: List[Dict], b: List[Dict]) -> int:
    for i, (x, y) in enumerate(zip(a, b)):
        if x != y:
            return i
    return -1


def run_serve_bench(params: Dict[str, Any], seed: int) -> Dict[str, Any]:
    topo = _build_topo(params)
    workload = _build_workload(topo, params, seed)
    batch_size = int(params.get("batch_size", 64))
    kinds: Dict[str, int] = {}
    for q in workload:
        kinds[q.kind] = kinds.get(q.kind, 0) + 1

    # phase 1: oracle serial (uncached walker, one query at a time)
    oracle_state = ServeState(topo, fresh=True)
    with _gc_paused():
        t0 = time.perf_counter()
        oracle_results = [oracle_state.execute_oracle(q) for q in workload]
        serial_wall = time.perf_counter() - t0

    # phase 2: warm serial (fresh cached router, one query at a time)
    serial_state = ServeState(topo, fresh=True)
    with _gc_paused():
        t0 = time.perf_counter()
        serial_results = [serial_state.execute(q) for q in workload]
        warm_serial_wall = time.perf_counter() - t0

    # phase 3: batched (fresh cached router, micro-batch chunks)
    batch_state = ServeState(topo, fresh=True)
    batched_results: List[Dict[str, Any]] = []
    deduped = 0
    batches = 0
    with _gc_paused():
        t0 = time.perf_counter()
        for start in range(0, len(workload), batch_size):
            chunk = workload[start:start + batch_size]
            deduped += len(chunk) - len(set(chunk))
            batches += 1
            batched_results.extend(batch_state.execute_batch(chunk))
        batched_wall = time.perf_counter() - t0

    stats = batch_state.router.stats
    mismatch_vs_serial = _first_mismatch(batched_results, serial_results)
    mismatch_vs_oracle = _first_mismatch(batched_results, oracle_results)
    equivalent = mismatch_vs_serial < 0 and mismatch_vs_oracle < 0

    return {
        "requests": len(workload),
        "distinct": len(set(workload)),
        "kinds": kinds,
        "batch_size": batch_size,
        "batches": batches,
        "deduped_in_batch": deduped,
        "serial_wall_s": serial_wall,
        "warm_serial_wall_s": warm_serial_wall,
        "batched_wall_s": batched_wall,
        "speedup": serial_wall / batched_wall if batched_wall else 0.0,
        "warm_serial_speedup": (
            warm_serial_wall / batched_wall if batched_wall else 0.0
        ),
        "qps": len(workload) / batched_wall if batched_wall else 0.0,
        "cache": dict(stats.as_dict(), hit_rate=stats.hit_rate),
        "probe_cache": dict(
            batch_state.probe_router.stats.as_dict(),
            hit_rate=batch_state.probe_router.stats.hit_rate,
        ),
        "equivalence": {
            "ok": equivalent,
            "first_mismatch_vs_serial": mismatch_vs_serial,
            "first_mismatch_vs_oracle": mismatch_vs_oracle,
        },
    }
