"""The ``repro serve`` daemon: a stdlib-asyncio HTTP/1.1 front end.

One event loop, one :class:`~repro.serve.batching.MicroBatcher`, one
:class:`~repro.serve.state.ServeState`. Endpoints:

* ``GET /healthz``        -- liveness + topology identity;
* ``GET /stats``          -- qps, batcher counters, cache stats;
* ``GET /metrics``        -- Prometheus text format (obs exposition);
* ``POST /v1/query``      -- one query object, one result;
* ``POST /v1/batch``      -- ``{"queries": [...]}``; the queries are
  submitted concurrently so they coalesce into micro-batches together;
* ``POST /admin/shutdown`` -- graceful stop (drains the batcher).

The HTTP layer is deliberately minimal (keep-alive, Content-Length
bodies, JSON in/out) -- enough for the CLI client, the CI smoke job,
and curl; it is not a general web server.
"""

from __future__ import annotations

import asyncio
import json
import time
from typing import Any, Dict, Optional, Tuple

from ..obs import Recorder
from ..obs.export import prometheus_exposition
from .batching import DEFAULT_MAX_BATCH, DEFAULT_MAX_DELAY_S, MicroBatcher
from .query import Query, QueryError
from .state import ServeState

_MAX_BODY = 8 * 1024 * 1024


class ServeDaemon:
    """Async HTTP server over a resident :class:`ServeState`."""

    def __init__(
        self,
        state: ServeState,
        host: str = "127.0.0.1",
        port: int = 0,
        max_batch: int = DEFAULT_MAX_BATCH,
        max_delay_s: float = DEFAULT_MAX_DELAY_S,
        recorder: Optional[Recorder] = None,
    ):
        self.state = state
        self.host = host
        self.port = port  # rewritten with the bound port after start()
        self.recorder = recorder if recorder is not None else Recorder()
        self.batcher = MicroBatcher(
            state.execute_batch, max_batch, max_delay_s,
            recorder=self.recorder,
        )
        self._server: Optional[asyncio.AbstractServer] = None
        self._stopping: Optional[asyncio.Event] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._writers: "set[asyncio.StreamWriter]" = set()
        self._started_mono = time.monotonic()
        m = self.recorder.metrics
        self._c_http = {}
        self._g_qps = m.gauge("serve.qps")
        self._g_hit_rate = m.gauge("serve.cache_hit_rate")
        self._c_requests: Dict[str, Any] = {}

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stopping = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_conn, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._started_mono = time.monotonic()

    async def serve_until_stopped(self) -> None:
        if self._server is None:
            await self.start()
        assert self._stopping is not None
        await self._stopping.wait()
        self.batcher.flush()
        self._server.close()
        # nudge parked keep-alive connections to EOF so their handler
        # tasks exit before the loop tears down (no cancel noise)
        for writer in list(self._writers):
            writer.close()
        await self._server.wait_closed()
        await asyncio.sleep(0)

    async def run(self) -> None:
        """start() + serve_until_stopped() in one call (thread target)."""
        await self.start()
        await self.serve_until_stopped()

    def request_stop(self) -> None:
        """Signal the daemon to stop; safe to call from any thread.

        ``asyncio.Event.set`` alone would not wake the loop when called
        off-thread (test harnesses, embedding processes), so the set is
        marshalled through ``call_soon_threadsafe``.
        """
        if self._stopping is None or self._loop is None:
            return
        if self._loop.is_closed():
            return
        self._loop.call_soon_threadsafe(self._stopping.set)

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _handle_conn(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        self._writers.add(writer)
        try:
            while True:
                request = await _read_request(reader)
                if request is None:
                    break
                method, target, headers, body = request
                status, payload, content_type = await self._dispatch(
                    method, target, body
                )
                keep_alive = headers.get("connection", "").lower() != "close"
                _write_response(
                    writer, status, payload, content_type, keep_alive
                )
                await writer.drain()
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            self._writers.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _dispatch(
        self, method: str, target: str, body: bytes
    ) -> Tuple[int, bytes, str]:
        route = (method, target.split("?", 1)[0])
        self._count_http(route[1])
        if route == ("GET", "/healthz"):
            return _json(200, {
                "ok": True,
                "hosts": len(self.state.topo.hosts),
                "switches": len(self.state.topo.switches),
                "uptime_s": time.monotonic() - self._started_mono,
            })
        if route == ("GET", "/stats"):
            return _json(200, self._stats())
        if route == ("GET", "/metrics"):
            self._refresh_gauges()
            text = prometheus_exposition(self.recorder)
            return 200, text.encode(), "text/plain; version=0.0.4"
        if route == ("POST", "/v1/query"):
            try:
                query = self._parse_query(body)
            except QueryError as err:
                return _json(400, {"ok": False, "error": str(err)})
            result = await self.batcher.submit(query)
            return _json(200, result)
        if route == ("POST", "/v1/batch"):
            try:
                queries = self._parse_batch(body)
            except QueryError as err:
                return _json(400, {"ok": False, "error": str(err)})
            results = await asyncio.gather(
                *(self.batcher.submit(q) for q in queries)
            )
            return _json(200, {"results": list(results)})
        if route == ("POST", "/admin/shutdown"):
            self.request_stop()
            return _json(200, {"ok": True, "stopping": True})
        return _json(404, {"ok": False, "error": f"no route {target!r}"})

    # ------------------------------------------------------------------
    # parsing / stats
    # ------------------------------------------------------------------
    def _parse_query(self, body: bytes) -> Query:
        obj = _parse_json(body)
        query = Query.from_jsonable(obj)
        self._count_kind(query.kind)
        return query

    def _parse_batch(self, body: bytes) -> Tuple[Query, ...]:
        obj = _parse_json(body)
        if not isinstance(obj, dict) or "queries" not in obj:
            raise QueryError('batch body must be {"queries": [...]}')
        raw = obj["queries"]
        if not isinstance(raw, list) or not raw:
            raise QueryError("queries must be a non-empty list")
        queries = tuple(Query.from_jsonable(q) for q in raw)
        for q in queries:
            self._count_kind(q.kind)
        return queries

    def _count_kind(self, kind: str) -> None:
        c = self._c_requests.get(kind)
        if c is None:
            c = self.recorder.metrics.counter("serve.requests", kind=kind)
            self._c_requests[kind] = c
        c.inc()

    def _count_http(self, endpoint: str) -> None:
        c = self._c_http.get(endpoint)
        if c is None:
            c = self.recorder.metrics.counter(
                "serve.http_requests", endpoint=endpoint
            )
            self._c_http[endpoint] = c
        c.inc()

    def _refresh_gauges(self) -> None:
        elapsed = max(time.monotonic() - self._started_mono, 1e-9)
        self._g_qps.set(self.batcher.stats.requests / elapsed)
        self._g_hit_rate.set(self.state.router.stats.hit_rate)

    def _stats(self) -> Dict[str, Any]:
        self._refresh_gauges()
        out = self.state.stats()
        out["uptime_s"] = time.monotonic() - self._started_mono
        out["qps"] = self._g_qps.value
        out["batch"] = self.batcher.stats.as_dict()
        return out


# ----------------------------------------------------------------------
# minimal HTTP/1.1 plumbing
# ----------------------------------------------------------------------
async def _read_request(
    reader: asyncio.StreamReader,
) -> Optional[Tuple[str, str, Dict[str, str], bytes]]:
    try:
        line = await reader.readline()
    except (ConnectionError, asyncio.LimitOverrunError):
        return None
    if not line:
        return None
    parts = line.decode("latin-1").split()
    if len(parts) < 2:
        return None
    method, target = parts[0].upper(), parts[1]
    headers: Dict[str, str] = {}
    while True:
        raw = await reader.readline()
        if raw in (b"\r\n", b"\n", b""):
            break
        text = raw.decode("latin-1").rstrip("\r\n")
        if ":" in text:
            key, _, value = text.partition(":")
            headers[key.strip().lower()] = value.strip()
    length = int(headers.get("content-length", "0") or "0")
    if length < 0 or length > _MAX_BODY:
        return None
    body = await reader.readexactly(length) if length else b""
    return method, target, headers, body


def _write_response(
    writer: asyncio.StreamWriter,
    status: int,
    payload: bytes,
    content_type: str,
    keep_alive: bool,
) -> None:
    reason = {200: "OK", 400: "Bad Request", 404: "Not Found"}.get(
        status, "Error"
    )
    head = (
        f"HTTP/1.1 {status} {reason}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(payload)}\r\n"
        f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
        "\r\n"
    )
    writer.write(head.encode("latin-1") + payload)


def _parse_json(body: bytes) -> Any:
    try:
        return json.loads(body.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as err:
        raise QueryError(f"invalid JSON body: {err}")


def _json(status: int, obj: Any) -> Tuple[int, bytes, str]:
    return (
        status,
        json.dumps(obj, sort_keys=True).encode(),
        "application/json",
    )
