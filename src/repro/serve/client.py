"""Blocking HTTP client for the serve daemon (tests, CI, scripting).

Keeps one persistent keep-alive connection; reconnects transparently
if the daemon closed it. Accepts :class:`~repro.serve.query.Query`
objects or plain dicts in the wire shape.
"""

from __future__ import annotations

import http.client
import json
from typing import Any, Dict, List, Optional, Sequence, Union

from .query import Query

QueryLike = Union[Query, Dict[str, Any]]


class ServeClient:
    def __init__(self, host: str, port: int, timeout: float = 30.0):
        self.host = host
        self.port = port
        self.timeout = timeout
        self._conn: Optional[http.client.HTTPConnection] = None

    # ------------------------------------------------------------------
    def query(self, query: QueryLike) -> Dict[str, Any]:
        return self._post("/v1/query", _jsonable(query))

    def batch(self, queries: Sequence[QueryLike]) -> List[Dict[str, Any]]:
        body = {"queries": [_jsonable(q) for q in queries]}
        return self._post("/v1/batch", body)["results"]

    def healthz(self) -> Dict[str, Any]:
        return self._get_json("/healthz")

    def stats(self) -> Dict[str, Any]:
        return self._get_json("/stats")

    def metrics(self) -> str:
        status, body = self._request("GET", "/metrics", None)
        if status != 200:
            raise RuntimeError(f"/metrics returned {status}")
        return body.decode()

    def shutdown(self) -> Dict[str, Any]:
        return self._post("/admin/shutdown", {})

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    # ------------------------------------------------------------------
    def _get_json(self, path: str) -> Dict[str, Any]:
        status, body = self._request("GET", path, None)
        out = json.loads(body.decode())
        if status != 200:
            raise RuntimeError(f"{path} returned {status}: {out}")
        return out

    def _post(self, path: str, obj: Any) -> Any:
        payload = json.dumps(obj).encode()
        status, body = self._request("POST", path, payload)
        out = json.loads(body.decode())
        if status != 200:
            raise RuntimeError(f"{path} returned {status}: {out}")
        return out

    def _request(
        self, method: str, path: str, body: Optional[bytes]
    ) -> "tuple[int, bytes]":
        headers = {"Content-Type": "application/json"}
        for attempt in (0, 1):
            conn = self._connection()
            try:
                conn.request(method, path, body=body, headers=headers)
                resp = conn.getresponse()
                return resp.status, resp.read()
            except (ConnectionError, http.client.HTTPException, OSError):
                self.close()
                if attempt:
                    raise
        raise AssertionError("unreachable")

    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        return self._conn


def _jsonable(query: QueryLike) -> Dict[str, Any]:
    if isinstance(query, Query):
        return query.to_jsonable()
    return dict(query)
