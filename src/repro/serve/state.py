"""Resident serving state: warm router, probe router, batch executor.

``ServeState`` pins everything the daemon needs hot: the topology, its
compiled FIB, and the per-topology :func:`~repro.routing.shared_router`
whose caches stay warm across requests. What-if queries (any query
carrying a failure set) are evaluated under
``Topology.transient_state()`` against a dedicated *probe* router with
its own caches, so the live router's memo and stats are byte-identical
to a process that never probed -- the fork-and-probe contract
(``docs/serving.md``), regression-tested in
``tests/test_serve_forkprobe.py``.

``execute_batch`` is the batched engine behind the micro-batcher:
dedupe by query key, dispatch all plain path lookups through
``route_many`` (one epoch sync for the whole batch), group what-ifs by
failure set so each set pays one snapshot/restore, and fan results out
to duplicate slots. Results are byte-identical to calling
:meth:`ServeState.execute` serially, which the bench and the serve
tests both assert.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..core.entities import Nic
from ..core.errors import RoutingError, TopologyError
from ..core.topology import Topology
from ..routing import (
    CachedRouter,
    FiveTuple,
    Router,
    find_paths,
    reset_shared_router,
    shared_router,
)
from .query import Query, QueryError

Result = Dict[str, Any]


class ServeState:
    """Warm routing/solver state shared by every request.

    ``fresh=True`` installs a cold shared router (bench phases use it
    to measure cold-to-warm behaviour on one topology object).
    """

    def __init__(self, topo: Topology, recorder=None, fresh: bool = False):
        self.topo = topo
        self.recorder = recorder
        if fresh:
            self.router = reset_shared_router(topo, recorder=recorder)
        else:
            self.router = shared_router(topo, recorder=recorder)
        # What-if probes run against this router, never the live one:
        # its caches absorb the probe-window churn (and stay useful
        # across repeated failure sets thanks to net-change
        # invalidation) while the live router's bytes never move.
        self.probe_router = CachedRouter(topo)  # repro: noqa[LINT006]
        self._oracle: Optional[Router] = None
        # (host, rail) -> Nic is structural: valid until a rewiring
        # bumps structure_epoch, independent of link up/down state
        self._nic_memo: Dict[Tuple[str, int], Nic] = {}
        self._nic_structure_cursor = topo.structure_epoch
        # Serving-layer memos (see _sync_serve_memos for validity):
        # - _request_memo: Query -> prebuilt RouteRequest (structural);
        # - _shape_memo: Query -> (FlowPath, result dict) -- the JSON
        #   shaping of a path result, revalidated per use by FlowPath
        #   *identity* against what route_many returns, so the route
        #   cache keeps its per-link invalidation precision and its
        #   stats see every lookup;
        # - _result_memo: full results for planes/repac/residual
        #   queries, wholesale-cleared on any *net* link-state change
        #   (what-if probe+restore nets to zero and keeps them warm).
        self._request_memo: Dict[Query, Tuple[Nic, Nic, FiveTuple, Optional[int]]] = {}
        self._shape_memo: Dict[Query, Tuple[object, Result]] = {}
        self._result_memo: Dict[Query, Result] = {}
        self._serve_state_cursor = topo.state_epoch
        self._serve_structure_cursor = topo.structure_epoch

    # ------------------------------------------------------------------
    # single-query (serial reference) execution
    # ------------------------------------------------------------------
    def execute(self, query: Query) -> Result:
        """Evaluate one query; the serial reference semantics."""
        self._sync_serve_memos()
        if query.is_what_if:
            return self._execute_what_if(self.probe_router, query)
        return self._eval_now(self.router, query)

    def execute_oracle(self, query: Query) -> Result:
        """Evaluate against the uncached hop-by-hop walker.

        The differential oracle for the bench: byte-identical results,
        no FIB, no memo, every query pays the full derivation.
        """
        if self._oracle is None:
            self._oracle = Router(self.topo)  # repro: noqa[LINT006]
        if query.is_what_if:
            return self._execute_what_if(self._oracle, query)
        return self._eval_now(self._oracle, query)

    # ------------------------------------------------------------------
    # batched execution
    # ------------------------------------------------------------------
    def execute_batch(self, queries: Sequence[Query]) -> List[Result]:
        """Evaluate a micro-batch; byte-identical to serial `execute`.

        Distinct queries are evaluated once and fanned out to duplicate
        slots. Plain path lookups ride one ``route_many`` call (single
        epoch sync, intra-batch dedupe) with only the JSON *shaping*
        memoized; planes/RePaC/residual/what-if results come from the
        net-change-guarded result memo when warm. What-ifs are grouped
        by failure set so each set pays one transient snapshot/restore.

        Returned result dicts may be shared across requests and
        batches -- treat them as immutable.
        """
        self._sync_serve_memos()
        resolved: Dict[Query, Result] = {}
        distinct: List[Query] = []
        for q in queries:
            if q not in resolved:
                resolved[q] = _PENDING
                distinct.append(q)

        live_paths: List[Query] = []
        for q in distinct:
            if q.kind == "path" and not q.is_what_if:
                live_paths.append(q)
            else:
                memo = self._result_memo.get(q)
                if memo is not None:
                    resolved[q] = memo
        if live_paths:
            self._route_path_group_synced(self.router, live_paths, resolved)

        what_if_groups: Dict[Tuple[Tuple[int, ...], Tuple[str, ...]], List[Query]] = {}
        for q in distinct:
            if resolved[q] is not _PENDING:
                continue
            if q.is_what_if:
                what_if_groups.setdefault(q.failure_set, []).append(q)
            else:
                res = self._eval_now(self.router, q)
                self._result_memo[q] = res
                resolved[q] = res

        for group in what_if_groups.values():
            err = self._check_failure_set(group[0])
            if err is not None:
                for q in group:
                    resolved[q] = _error(q, err)
                continue
            with self.topo.transient_state():
                self._apply_failures(group[0])
                for q in group:
                    res = self._eval_now(self.probe_router, q)
                    self._result_memo[q] = res
                    resolved[q] = res

        return [resolved[q] for q in queries]

    def _sync_serve_memos(self) -> None:
        """Expire the serving-layer memos against the topology epochs.

        Same net-change rule as the route cache: a link that toggled an
        even number of times since the cursor is back in the state the
        memoised results were computed under, so what-if probe+restore
        cycles (our own transient blocks included) keep the memos warm.
        Any *net* change wholesale-clears the result memo -- coarse, but
        the precise per-link machinery lives in the route cache, which
        path queries still consult on every batch. Structural changes
        clear everything, the request/shape memos included.
        """
        topo = self.topo
        if self._serve_structure_cursor != topo.structure_epoch:
            self._request_memo.clear()
            self._shape_memo.clear()
            self._result_memo.clear()
            self._serve_structure_cursor = topo.structure_epoch
            self._serve_state_cursor = topo.state_epoch
            return
        if self._serve_state_cursor != topo.state_epoch:
            counts: Dict[int, int] = {}
            for lid in topo.link_state_changes(self._serve_state_cursor):
                counts[lid] = counts.get(lid, 0) + 1
            if any(n % 2 for n in counts.values()):
                self._result_memo.clear()
            self._serve_state_cursor = topo.state_epoch

    def _route_path_group_synced(
        self,
        router: CachedRouter,
        group: List[Query],
        resolved: Dict[Query, Result],
    ) -> None:
        """Resolve the batch's live path queries through ``route_many``.

        Every query consults the route cache (stats and per-link
        invalidation stay exact); only the JSON shaping is memoised,
        revalidated by FlowPath identity -- the cache hands back the
        same object until the entry is invalidated, and the memo's
        strong reference pins that object so a recycled ``id`` can
        never alias a stale entry.
        """
        requests: List[Tuple[Nic, Nic, FiveTuple, Optional[int]]] = []
        routable: List[Query] = []
        for q in group:
            req = self._request_memo.get(q)
            if req is None:
                try:
                    src, dst = self._nics(q)
                except QueryError as err:
                    resolved[q] = _error(q, str(err))
                    continue
                req = (src, dst, FiveTuple(src.ip, dst.ip, q.sport, q.dport),
                       q.plane)
                self._request_memo[q] = req
            requests.append(req)
            routable.append(q)
        paths = router.route_many(requests, strict=False)
        shape = self._shape_memo
        for q, req, path in zip(routable, requests, paths):
            if path is not None:
                memo = shape.get(q)
                if memo is not None and memo[0] is path:
                    resolved[q] = memo[1]
                else:
                    res = _path_result(q, path)
                    shape[q] = (path, res)
                    resolved[q] = res
            else:
                # re-ask serially for the cached error message
                try:
                    router.path_for(req[0], req[1], req[2], req[3])
                except RoutingError as err:
                    resolved[q] = _error(q, str(err))

    # ------------------------------------------------------------------
    # what-if plumbing
    # ------------------------------------------------------------------
    def _check_failure_set(self, query: Query) -> Optional[str]:
        for lid in query.fail_links:
            if lid not in self.topo.links:
                return f"unknown link id {lid}"
        for name in query.fail_switches:
            if name not in self.topo.switches:
                return f"unknown switch {name!r}"
        return None

    def _apply_failures(self, query: Query) -> None:
        for name in query.fail_switches:
            self.topo.fail_node(name)
        for lid in query.fail_links:
            self.topo.set_link_state(lid, False)

    def _execute_what_if(self, router: Router, query: Query) -> Result:
        err = self._check_failure_set(query)
        if err is not None:
            return _error(query, err)
        with self.topo.transient_state():
            self._apply_failures(query)
            return self._eval_now(router, query)

    # ------------------------------------------------------------------
    # per-kind evaluation (state already forked if what-if)
    # ------------------------------------------------------------------
    def _eval_now(self, router: Router, query: Query) -> Result:
        try:
            src, dst = self._nics(query)
        except QueryError as err:
            return _error(query, str(err))
        if query.kind == "path":
            ft = FiveTuple(src.ip, dst.ip, query.sport, query.dport)
            try:
                path = router.path_for(src, dst, ft, query.plane)
            except RoutingError as err:
                return _error(query, str(err))
            return _path_result(query, path)
        if query.kind == "planes":
            return {
                "ok": True,
                "kind": "planes",
                "planes": list(router.usable_planes(src, dst)),
            }
        # repac / residual share the disjoint-path search
        try:
            found = find_paths(
                router, src, dst, query.dport, query.num_paths,
                plane=query.plane, sport_span=query.sport_span,
            )
        except RoutingError as err:
            return _error(query, str(err))
        paths = [
            {
                "sport": probe.sport,
                "plane": probe.path.plane,
                "nodes": list(probe.path.nodes),
                "dirlinks": list(probe.path.dirlinks),
            }
            for probe in found.probes
        ]
        if query.kind == "repac":
            return {
                "ok": True,
                "kind": "repac",
                "attempts": found.attempts,
                "found": len(paths),
                "paths": paths,
            }
        bottlenecks = [
            min(self.topo.links[d // 2].gbps for d in probe.path.dirlinks)
            for probe in found.probes
        ]
        return {
            "ok": True,
            "kind": "residual",
            "attempts": found.attempts,
            "found": len(paths),
            "bottlenecks_gbps": bottlenecks,
            "residual_gbps": sum(bottlenecks),
            "planes": list(router.usable_planes(src, dst)),
        }

    def _nics(self, query: Query) -> Tuple[Nic, Nic]:
        src = self._nic(query.src_host, query.src_rail)
        dst = self._nic(query.dst_host, query.dst_rail)
        return src, dst

    def _nic(self, host: str, rail: int) -> Nic:
        if self._nic_structure_cursor != self.topo.structure_epoch:
            self._nic_memo.clear()
            self._nic_structure_cursor = self.topo.structure_epoch
        key = (host, rail)
        nic = self._nic_memo.get(key)
        if nic is not None:
            return nic
        h = self.topo.hosts.get(host)
        if h is None:
            raise QueryError(f"unknown host {host!r}")
        try:
            nic = h.nic_for_rail(rail)
        except (KeyError, IndexError, ValueError, TopologyError):
            raise QueryError(f"host {host!r} has no NIC on rail {rail}")
        self._nic_memo[key] = nic
        return nic

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        live = self.router.stats
        probe = self.probe_router.stats
        return {
            "topology": {
                "hosts": len(self.topo.hosts),
                "switches": len(self.topo.switches),
                "links": len(self.topo.links),
                "state_epoch": self.topo.state_epoch,
                "structure_epoch": self.topo.structure_epoch,
            },
            "cache": dict(live.as_dict(), hit_rate=live.hit_rate),
            "probe_cache": dict(probe.as_dict(), hit_rate=probe.hit_rate),
        }


#: sentinel marking a distinct query whose result is not computed yet
_PENDING: Result = {}


def _error(query: Query, message: str) -> Result:
    return {"ok": False, "kind": query.kind, "error": message}


def _path_result(query: Query, path) -> Result:
    return {
        "ok": True,
        "kind": "path",
        "plane": path.plane,
        "nodes": list(path.nodes),
        "dirlinks": list(path.dirlinks),
        "hops": len(path.nodes) - 1,
    }
