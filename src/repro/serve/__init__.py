"""repro.serve: persistent what-if routing/telemetry service.

The daemon (``repro serve``) keeps a topology, its compiled FIBs, and
the warm :func:`~repro.routing.shared_router` resident and answers
batched what-if queries over a small HTTP API (see
``docs/serving.md``):

* ``path`` -- which path does this 5-tuple take (``path_for``);
* ``planes`` -- usable planes between two NICs;
* ``repac`` -- RePaC disjoint-path set for a connection request;
* ``residual`` -- residual bandwidth after a hypothetical failure,
  evaluated under ``Topology.transient_state()`` fork-and-probe
  against a dedicated probe router so the live caches stay warm.

The performance core is :class:`~repro.serve.batching.MicroBatcher`:
concurrent requests accumulate into size/deadline-bounded
micro-batches, deduplicate by request key, and dispatch through
``route_many`` -- byte-identical to serial one-at-a-time evaluation.
"""

from .batching import BatchStats, MicroBatcher
from .client import ServeClient
from .query import KINDS, Query, QueryError
from .server import ServeDaemon
from .state import ServeState

__all__ = [
    "BatchStats",
    "KINDS",
    "MicroBatcher",
    "Query",
    "QueryError",
    "ServeClient",
    "ServeDaemon",
    "ServeState",
]
