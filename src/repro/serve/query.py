"""The serve request model: immutable, canonical, dedupe-keyed queries.

A :class:`Query` is a frozen dataclass so it is hashable -- the query
*is* its own dedupe key. :meth:`Query.from_jsonable` canonicalises the
wire form (sorted, duplicate-free failure sets; defaulted fields) so
two requests that mean the same thing coalesce into one evaluation in
the micro-batcher and in ``ServeState.execute_batch``.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, Dict, Optional, Tuple

#: the query kinds the daemon answers
KINDS = ("path", "planes", "repac", "residual")

#: default RDMA dport (RoCEv2) and RePaC probe settings
DEFAULT_DPORT = 4791
DEFAULT_SPORT = 49152
DEFAULT_NUM_PATHS = 4
DEFAULT_SPORT_SPAN = 128


class QueryError(ValueError):
    """A malformed or unanswerable query (bad kind, unknown host...)."""


@dataclass(frozen=True)
class Query:
    """One what-if question, canonical and hashable.

    ``fail_links`` / ``fail_switches`` make any kind a what-if: the
    query is evaluated under ``Topology.transient_state()`` with those
    failures applied, against the probe router (never the live one).
    """

    kind: str
    src_host: str
    dst_host: str
    src_rail: int = 0
    dst_rail: int = 0
    sport: int = DEFAULT_SPORT
    dport: int = DEFAULT_DPORT
    plane: Optional[int] = None
    num_paths: int = DEFAULT_NUM_PATHS
    sport_span: int = DEFAULT_SPORT_SPAN
    fail_links: Tuple[int, ...] = ()
    fail_switches: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise QueryError(
                f"unknown query kind {self.kind!r}; expected one of {KINDS}"
            )
        if self.num_paths < 1:
            raise QueryError("num_paths must be >= 1")
        if self.sport_span < 1:
            raise QueryError("sport_span must be >= 1")
        # canonicalise failure sets so equal what-ifs hash equal
        object.__setattr__(
            self, "fail_links", tuple(sorted(set(self.fail_links)))
        )
        object.__setattr__(
            self, "fail_switches", tuple(sorted(set(self.fail_switches)))
        )
        # queries are dict keys on every hot path (dedupe, fan-out);
        # precompute the hash once instead of re-hashing 12 fields per
        # lookup
        object.__setattr__(self, "_hash", hash((
            self.kind, self.src_host, self.dst_host,
            self.src_rail, self.dst_rail, self.sport, self.dport,
            self.plane, self.num_paths, self.sport_span,
            self.fail_links, self.fail_switches,
        )))

    def __hash__(self) -> int:  # noqa: overrides the dataclass hash
        return self._hash  # type: ignore[attr-defined]

    @property
    def is_what_if(self) -> bool:
        return bool(self.fail_links or self.fail_switches)

    @property
    def failure_set(self) -> Tuple[Tuple[int, ...], Tuple[str, ...]]:
        """Grouping key: what-ifs sharing it run in one transient block."""
        return (self.fail_links, self.fail_switches)

    def key(self) -> "Query":
        """The dedupe key -- the query itself (frozen, hashable)."""
        return self

    # ------------------------------------------------------------------
    def to_jsonable(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "kind": self.kind,
            "src_host": self.src_host,
            "dst_host": self.dst_host,
            "src_rail": self.src_rail,
            "dst_rail": self.dst_rail,
            "sport": self.sport,
            "dport": self.dport,
            "plane": self.plane,
            "num_paths": self.num_paths,
            "sport_span": self.sport_span,
            "fail_links": list(self.fail_links),
            "fail_switches": list(self.fail_switches),
        }
        return out

    @classmethod
    def from_jsonable(cls, obj: Any) -> "Query":
        if not isinstance(obj, dict):
            raise QueryError(f"query must be an object, got {type(obj).__name__}")
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(obj) - known)
        if unknown:
            raise QueryError(f"unknown query fields: {', '.join(unknown)}")
        for req in ("kind", "src_host", "dst_host"):
            if req not in obj:
                raise QueryError(f"query is missing required field {req!r}")
        kw = dict(obj)
        try:
            kw["fail_links"] = tuple(int(x) for x in kw.get("fail_links", ()))
        except (TypeError, ValueError):
            raise QueryError("fail_links must be a list of link ids")
        raw_sw = kw.get("fail_switches", ())
        if isinstance(raw_sw, str) or not all(
            isinstance(s, str) for s in raw_sw
        ):
            raise QueryError("fail_switches must be a list of switch names")
        kw["fail_switches"] = tuple(raw_sw)
        for name in ("src_rail", "dst_rail", "sport", "dport",
                     "num_paths", "sport_span"):
            if name in kw:
                try:
                    kw[name] = int(kw[name])
                except (TypeError, ValueError):
                    raise QueryError(f"{name} must be an integer")
        if kw.get("plane") is not None:
            try:
                kw["plane"] = int(kw["plane"])
            except (TypeError, ValueError):
                raise QueryError("plane must be an integer or null")
        try:
            return cls(**kw)
        except TypeError as err:
            raise QueryError(str(err))
