"""Architecture specifications.

Each spec is a validated dataclass describing one network architecture at
a chosen scale. The production-scale constants from the paper are the
defaults; tests and benchmarks shrink them (fewer segments, fewer hosts)
while every builder keeps the *structure* (dual-ToR, dual-plane, rail
optimization, oversubscription ratios) intact.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.errors import SpecError

#: port speeds used throughout the paper
NIC_PORT_GBPS = 200.0
TOR_UP_GBPS = 400.0

#: the 51.2 Tbps chip: 128 x 400G equivalent
CHIP_51T_GBPS = 51200.0
CHIP_25T_GBPS = 25600.0


@dataclass(frozen=True)
class HpnSpec:
    """HPN backend network (paper Figure 7).

    Defaults give the production scale: 15 segments x 128 hosts x 8 GPUs
    = 15,360 GPUs per pod, 16 ToRs per segment (8 rails x 2 planes),
    60 aggregation switches per plane, 15:1 agg->core oversubscription.
    """

    pods: int = 1
    segments_per_pod: int = 15
    hosts_per_segment: int = 128
    backup_hosts_per_segment: int = 8
    gpus_per_host: int = 8
    nic_gbps: float = NIC_PORT_GBPS
    #: 400G links from each ToR up to each agg switch of its plane
    tor_agg_links: int = 1
    aggs_per_plane: int = 60
    #: 400G uplinks per aggregation switch towards the core layer
    agg_core_uplinks: int = 8
    #: core switches per plane (0 disables tier-3 entirely)
    cores_per_plane: int = 0
    tor_chip_gbps: float = CHIP_51T_GBPS
    #: hash behaviour: identical ASICs share a seed unless diversified
    polarized_hashing: bool = True
    nvlink_gbps: float = 3200.0

    def __post_init__(self) -> None:
        if self.pods < 1 or self.segments_per_pod < 1 or self.hosts_per_segment < 1:
            raise SpecError("pod/segment/host counts must be positive")
        if self.gpus_per_host < 1 or self.gpus_per_host > 8:
            raise SpecError("gpus_per_host must be in 1..8")
        if self.aggs_per_plane < 1:
            raise SpecError("need at least one aggregation switch per plane")
        if self.pods > 1 and self.cores_per_plane < 1:
            raise SpecError("multi-pod HPN requires a core layer")
        if self.cores_per_plane:
            total_uplinks = self.aggs_per_plane * self.agg_core_uplinks
            if total_uplinks % self.cores_per_plane:
                raise SpecError(
                    "cores_per_plane must divide aggs_per_plane*agg_core_uplinks "
                    f"({total_uplinks} % {self.cores_per_plane} != 0)"
                )

    # -- derived quantities ------------------------------------------------
    @property
    def rails(self) -> int:
        return self.gpus_per_host

    @property
    def tors_per_segment(self) -> int:
        return self.rails * 2  # dual-ToR: one per plane per rail

    @property
    def tor_uplinks(self) -> int:
        return self.aggs_per_plane * self.tor_agg_links

    @property
    def tor_downlinks(self) -> int:
        return self.hosts_per_segment + self.backup_hosts_per_segment

    @property
    def gpus_per_segment(self) -> int:
        return self.hosts_per_segment * self.gpus_per_host

    @property
    def gpus_per_pod(self) -> int:
        return self.gpus_per_segment * self.segments_per_pod

    @property
    def total_gpus(self) -> int:
        return self.gpus_per_pod * self.pods

    @property
    def tor_oversubscription(self) -> float:
        """Active-host down-capacity / up-capacity at a ToR (paper: 1.067:1).

        Backup ports are excluded, matching the paper's accounting; see
        :meth:`tor_oversubscription_with_backup` for the raw ratio.
        """
        down = self.hosts_per_segment * self.nic_gbps
        up = self.tor_uplinks * TOR_UP_GBPS
        return down / up

    @property
    def tor_oversubscription_with_backup(self) -> float:
        down = self.tor_downlinks * self.nic_gbps
        up = self.tor_uplinks * TOR_UP_GBPS
        return down / up

    @property
    def agg_downlinks(self) -> int:
        return self.segments_per_pod * self.rails * self.tor_agg_links

    @property
    def agg_core_oversubscription(self) -> float:
        """Down/up at an agg switch (paper: 15:1)."""
        if not self.agg_core_uplinks:
            return float("inf")
        return self.agg_downlinks / self.agg_core_uplinks


@dataclass(frozen=True)
class DcnPlusSpec:
    """DCN+ baseline: 3-tier dual-ToR Clos (paper Figure 20).

    Defaults give the production scale: 4 segments x 16 hosts per pod
    (512 GPUs), 8 aggregation switches per pod, 32 pods (16,384 GPUs),
    full bisection bandwidth at every tier.
    """

    pods: int = 1
    segments_per_pod: int = 4
    hosts_per_segment: int = 16
    gpus_per_host: int = 8
    nic_gbps: float = NIC_PORT_GBPS
    aggs_per_pod: int = 8
    #: parallel 400G links between each ToR and each agg
    tor_agg_links: int = 8
    #: 400G uplinks per agg switch (1:1 with its downlinks)
    agg_core_uplinks: int = 64
    #: cores per core-group; agg i of each pod joins core group i
    cores_per_group: int = 64
    polarized_hashing: bool = True
    nvlink_gbps: float = 3200.0

    def __post_init__(self) -> None:
        if self.pods < 1 or self.segments_per_pod < 1:
            raise SpecError("pod/segment counts must be positive")
        if self.agg_core_uplinks and self.cores_per_group:
            if self.agg_core_uplinks % self.cores_per_group:
                raise SpecError("cores_per_group must divide agg_core_uplinks")

    @property
    def tors_per_segment(self) -> int:
        return 2  # one dual-ToR set per segment, not rail-optimized

    @property
    def tor_downlinks(self) -> int:
        return self.hosts_per_segment * self.gpus_per_host

    @property
    def tor_uplinks(self) -> int:
        return self.aggs_per_pod * self.tor_agg_links

    @property
    def gpus_per_pod(self) -> int:
        return self.segments_per_pod * self.hosts_per_segment * self.gpus_per_host

    @property
    def total_gpus(self) -> int:
        return self.gpus_per_pod * self.pods


@dataclass(frozen=True)
class SingleTorSpec:
    """Single-ToR access (the traditional design, for section 9.3).

    Each NIC bonds its two 200G ports into one 400G channel to a single
    ToR -- physically modeled as one 400G link so a ToR or access-link
    failure disconnects the NIC entirely.
    """

    segments: int = 1
    hosts_per_segment: int = 16
    gpus_per_host: int = 8
    nic_gbps: float = 400.0
    aggs: int = 8
    tor_agg_links: int = 8
    polarized_hashing: bool = True
    nvlink_gbps: float = 3200.0

    @property
    def total_gpus(self) -> int:
        return self.segments * self.hosts_per_segment * self.gpus_per_host


@dataclass(frozen=True)
class FatTreeSpec:
    """Classic k-ary fat-tree [Al-Fares 2008], for Table 1 comparisons."""

    k: int = 48
    gpus_per_host: int = 1
    link_gbps: float = 400.0

    def __post_init__(self) -> None:
        if self.k % 2:
            raise SpecError("fat-tree k must be even")

    @property
    def num_pods(self) -> int:
        return self.k

    @property
    def hosts(self) -> int:
        return self.k ** 3 // 4

    @property
    def total_gpus(self) -> int:
        return self.hosts * self.gpus_per_host


@dataclass(frozen=True)
class RailOnlySpec:
    """Rail-only tier-2 variant (paper Table 4 / Meta's proposal).

    Each rail gets its own isolated tier-2 plane; there are no cross-rail
    paths in the network, so cross-rail traffic must relay through the
    intra-host interconnect.
    """

    segments_per_pod: int = 15
    hosts_per_segment: int = 128
    gpus_per_host: int = 8
    nic_gbps: float = NIC_PORT_GBPS
    aggs_per_plane: int = 60
    tor_agg_links: int = 1
    #: scale multiplier: freed ToR-Agg ports let one pod host 8x segments
    nvlink_gbps: float = 3200.0

    @property
    def rails(self) -> int:
        return self.gpus_per_host

    @property
    def planes(self) -> int:
        return self.rails * 2

    @property
    def total_gpus(self) -> int:
        return self.segments_per_pod * self.hosts_per_segment * self.gpus_per_host


@dataclass(frozen=True)
class FrontendSpec:
    """Frontend network (paper section 8): 3-tier, 1:1, dual-ToR access.

    Hosts attach via their frontend NIC (2x200G); a storage cluster of
    96-128 hosts runs CPFS/OSS and lives only here.
    """

    compute_hosts: int = 64
    storage_hosts: int = 96
    hosts_per_tor_pair: int = 32
    aggs: int = 4
    cores: int = 4
    nic_gbps: float = NIC_PORT_GBPS
    tor_agg_links: int = 4
    agg_core_links: int = 4


@dataclass(frozen=True)
class ArchitectureCard:
    """Descriptor used for Table 1 style accounting (no wiring needed)."""

    name: str
    supported_gpus: int
    tiers: int
    #: ECMP fan-out at each tier that participates in load balancing,
    #: in path order (e.g. HPN: [60]; SuperPod: [32, 32, 4])
    lb_fanouts: tuple = field(default_factory=tuple)

    @property
    def path_selection_complexity(self) -> int:
        out = 1
        for f in self.lb_fanouts:
            out *= f
        return out
