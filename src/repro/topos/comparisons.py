"""Architecture cards for the paper's Table 1 comparison.

Table 1 compares the path-selection search space of HPN against three
published 3-tier architectures. The quantity is structural: the product
of ECMP fan-outs at every tier that participates in load balancing.
These cards capture exactly the numbers the paper uses; the fan-outs are
taken from the cited reference architectures.
"""

from __future__ import annotations

from typing import List

from .spec import ArchitectureCard, HpnSpec


def hpn_card(spec: HpnSpec = HpnSpec()) -> ArchitectureCard:
    """HPN: only the ToR's uplink choice matters inside a pod.

    Dual-plane pins the plane at the NIC port; once a ToR uplink is
    chosen the path to any host of the pod is fully determined, so the
    search space is the ToR fan-out (60 at production scale).
    """
    return ArchitectureCard(
        name="Pod in HPN",
        supported_gpus=spec.gpus_per_pod,
        tiers=2,
        lb_fanouts=(spec.tor_uplinks,),
    )


def superpod_card() -> ArchitectureCard:
    """NVIDIA DGX SuperPod-like 3-tier: ToR(32) x Agg(32) x Core(4)."""
    return ArchitectureCard(
        name="SuperPod",
        supported_gpus=16384,
        tiers=3,
        lb_fanouts=(32, 32, 4),
    )


def jupiter_card() -> ArchitectureCard:
    """Google Jupiter-like: ToR(8) x aggregation-block(256)."""
    return ArchitectureCard(
        name="Jupiter",
        supported_gpus=26000,
        tiers=3,
        lb_fanouts=(8, 256),
    )


def fattree_card(k: int = 48) -> ArchitectureCard:
    """k-ary fat-tree: edge(k/2) x agg(k/2) hash stages up to the core."""
    return ArchitectureCard(
        name=f"Fat tree (k={k})",
        supported_gpus=k ** 3 // 4,
        tiers=3,
        lb_fanouts=(k, k),
    )


def table1_cards(hpn_spec: HpnSpec = HpnSpec()) -> List[ArchitectureCard]:
    """The four rows of Table 1, in paper order."""
    return [
        hpn_card(hpn_spec),
        superpod_card(),
        jupiter_card(),
        fattree_card(48),
    ]
