"""Generic single-homed, rail-optimized 3-tier Clos builder.

This is the family the paper's Table 1 competitors live in (DGX
SuperPod-like, Jupiter-like): GPUs connect with a *single* access link
to a rail leaf; leaves hash over their uplinks to spines, spines hash
again (and cores a third time for cross-pod traffic). Every tier's
fan-out is a free parameter, so scaled instances reproduce the paper's
search-space arithmetic measurably: the number of equal-cost paths a
flow sees equals the product of the per-tier fan-outs along its route.

:func:`build_superpod_like` and :func:`build_jupiter_like` produce
scaled instances with the same *fan-out structure* as the Table 1 rows
(32x32x4 and 8x256) at a size a test can enumerate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..core.addressing import assign_addresses
from ..core.entities import PortKind, Switch, SwitchRole
from ..core.errors import SpecError
from ..core.topology import Topology
from .spec import TOR_UP_GBPS


@dataclass(frozen=True)
class ThreeTierSpec:
    """Parameter set of the generic 3-tier single-homed fabric."""

    pods: int = 2
    segments_per_pod: int = 2
    hosts_per_segment: int = 4
    gpus_per_host: int = 8
    nic_gbps: float = 400.0
    #: leaf fan-out: distinct spine switches each leaf connects to
    spines_per_pod: int = 4
    leaf_spine_links: int = 1
    #: spine fan-out towards cores (0 = no core layer)
    cores: int = 0
    spine_core_links: int = 1
    polarized_hashing: bool = True

    def __post_init__(self) -> None:
        if min(self.pods, self.segments_per_pod, self.hosts_per_segment) < 1:
            raise SpecError("counts must be positive")
        if self.pods > 1 and self.cores < 1:
            raise SpecError("multi-pod fabrics need a core layer")

    @property
    def leaf_uplinks(self) -> int:
        return self.spines_per_pod * self.leaf_spine_links

    @property
    def total_gpus(self) -> int:
        return (
            self.pods
            * self.segments_per_pod
            * self.hosts_per_segment
            * self.gpus_per_host
        )


def build_threetier(spec: ThreeTierSpec) -> Topology:
    """Build the generic fabric; leaves are rail-optimized, single-homed."""
    topo = Topology(name="threetier")
    topo.meta["spec"] = spec
    topo.meta["architecture"] = "threetier"
    topo.meta["planes"] = 1

    seed_counter = 1

    def seed() -> int:
        nonlocal seed_counter
        if spec.polarized_hashing:
            return 0
        seed_counter += 1
        return seed_counter

    cores: List[Switch] = []
    for c in range(spec.cores):
        cores.append(
            topo.add_switch(
                Switch(name=f"core/c{c}", role=SwitchRole.CORE, tier=3,
                       pod=-1, hash_seed=seed())
            )
        )

    for pod in range(spec.pods):
        spines: List[Switch] = []
        for sp in range(spec.spines_per_pod):
            sw = topo.add_switch(
                Switch(name=f"pod{pod}/spine{sp}", role=SwitchRole.AGG,
                       tier=2, pod=pod, hash_seed=seed())
            )
            spines.append(sw)
            for core in cores:
                for _ in range(spec.spine_core_links):
                    up = topo.alloc_port(sw.name, TOR_UP_GBPS, PortKind.UP)
                    down = topo.alloc_port(core.name, TOR_UP_GBPS, PortKind.DOWN)
                    topo.wire(up.ref, down.ref)

        for segment in range(spec.segments_per_pod):
            leaves: Dict[int, Switch] = {}
            for rail in range(spec.gpus_per_host):
                leaf = topo.add_switch(
                    Switch(
                        name=f"pod{pod}/seg{segment}/leaf-r{rail}",
                        role=SwitchRole.TOR, tier=1, pod=pod,
                        segment=segment, rail=rail, hash_seed=seed(),
                    )
                )
                leaves[rail] = leaf
                for spine in spines:
                    for _ in range(spec.leaf_spine_links):
                        up = topo.alloc_port(leaf.name, TOR_UP_GBPS, PortKind.UP)
                        down = topo.alloc_port(spine.name, TOR_UP_GBPS, PortKind.DOWN)
                        topo.wire(up.ref, down.ref)

            for h in range(spec.hosts_per_segment):
                host = topo.build_host(
                    name=f"pod{pod}/seg{segment}/host{h}",
                    pod=pod, segment=segment, index=h,
                    num_gpus=spec.gpus_per_host, nic_gbps=spec.nic_gbps,
                )
                for nic in host.backend_nics():
                    leaf_port = topo.alloc_port(
                        leaves[nic.rail].name, spec.nic_gbps, PortKind.DOWN
                    )
                    topo.wire(nic.ports[0], leaf_port.ref)

    assign_addresses(topo)
    return topo


def build_superpod_like(scale: int = 1) -> Topology:
    """A scaled fabric with SuperPod's fan-out *structure*.

    Paper scale is (32 leaf uplinks) x (32 spine choices down... ) x
    (4 core groups); the scaled instance keeps three hash stages with
    enumerable fan-outs so Table 1's arithmetic can be cross-checked by
    DFS: cross-pod complexity = leaf_uplinks x spine_core x core_down.
    """
    return build_threetier(
        ThreeTierSpec(
            pods=2,
            segments_per_pod=2,
            hosts_per_segment=2 * scale,
            spines_per_pod=4,
            leaf_spine_links=1,
            cores=4,
            spine_core_links=1,
        )
    )


def build_jupiter_like(scale: int = 1) -> Topology:
    """A scaled fabric with Jupiter's 2-stage LB structure (ToR x agg)."""
    return build_threetier(
        ThreeTierSpec(
            pods=1,
            segments_per_pod=2 * scale,
            hosts_per_segment=2,
            spines_per_pod=8,
            leaf_spine_links=1,
            cores=0,
        )
    )


def expected_cross_pod_complexity(spec: ThreeTierSpec) -> int:
    """Closed-form equal-path count for a cross-pod flow.

    Four independent hash stages multiply: the leaf's uplink choice,
    the spine's core-uplink choice, the core's downlink choice towards
    the destination pod's spines, and the spine's downlink choice to
    the destination leaf.
    """
    up_leaf = spec.leaf_uplinks
    up_spine = spec.cores * spec.spine_core_links
    down_core = spec.spines_per_pod * spec.spine_core_links
    down_spine = spec.leaf_spine_links
    return up_leaf * up_spine * down_core * down_spine


def expected_intra_pod_complexity(spec: ThreeTierSpec) -> int:
    """Equal paths for an intra-pod, cross-segment flow: the leaf
    hashes over its uplinks; each spine has ``leaf_spine_links`` down
    to the destination leaf."""
    return spec.leaf_uplinks * spec.leaf_spine_links
