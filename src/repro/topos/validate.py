"""Topology invariant checks.

``validate(topo)`` runs every check appropriate for the architecture and
raises :class:`~repro.core.errors.TopologyError` on the first violation.
These are the properties the paper's design leans on; the test suite
asserts them at production scale and hypothesis fuzzes them at random
scales.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List

from ..core.entities import PortKind, SwitchRole
from ..core.errors import TopologyError
from ..core.topology import Topology


def validate(topo: Topology) -> None:
    """Run all structural invariants for ``topo``."""
    check_links_consistent(topo)
    check_dual_tor(topo)
    arch = topo.meta.get("architecture")
    if arch == "hpn":
        check_dual_plane(topo)
        check_rail_optimized(topo)
    if arch == "railonly":
        check_rail_isolation(topo)


def check_links_consistent(topo: Topology) -> None:
    """Every link references two existing, mutually wired ports."""
    for link in topo.links.values():
        for ref in link.endpoints():
            port = topo.port(ref)
            if port.link_id != link.link_id:
                raise TopologyError(
                    f"port {ref} does not point back at link {link.link_id}"
                )


def check_dual_tor(topo: Topology) -> None:
    """Each wired dual-port backend NIC reaches two distinct ToRs."""
    arch = topo.meta.get("architecture")
    if arch in ("singletor", "fattree", "threetier"):
        return
    for host in topo.hosts.values():
        for nic in host.backend_nics():
            tors = set()
            for pref in nic.ports:
                port = topo.port(pref)
                if port.link_id is None:
                    continue
                tors.add(topo.links[port.link_id].other(host.name).node)
            if len(tors) not in (0, 2):
                raise TopologyError(
                    f"{nic.name} reaches {len(tors)} ToRs, expected 2 (dual-ToR)"
                )


def check_dual_plane(topo: Topology) -> None:
    """No link crosses planes above tier 1; NIC port k lands in plane k.

    This is the physical-isolation property behind Figure 12b: traffic
    entering plane 0 can only be delivered from plane 0.
    """
    for link in topo.links.values():
        a, b = link.a.node, link.b.node
        if a in topo.switches and b in topo.switches:
            pa, pb = topo.switches[a].plane, topo.switches[b].plane
            if pa is not None and pb is not None and pa != pb:
                raise TopologyError(f"cross-plane link {a} <-> {b}")
    for host in topo.hosts.values():
        for nic in host.backend_nics():
            for plane_idx, pref in enumerate(nic.ports):
                port = topo.port(pref)
                if port.link_id is None:
                    continue
                tor = topo.links[port.link_id].other(host.name).node
                actual = topo.switches[tor].plane
                if actual != plane_idx:
                    raise TopologyError(
                        f"{nic.name} port {plane_idx} lands in plane {actual}"
                    )


def check_rail_optimized(topo: Topology) -> None:
    """Within a segment, NICs of rail r across hosts share the same ToRs."""
    by_seg_rail: Dict[tuple, set] = defaultdict(set)
    for host in topo.hosts.values():
        for nic in host.backend_nics():
            tors = frozenset(
                topo.links[topo.port(p).link_id].other(host.name).node
                for p in nic.ports
                if topo.port(p).link_id is not None
            )
            if tors:
                by_seg_rail[(host.pod, host.segment, nic.rail)].add(tors)
    for key, torsets in by_seg_rail.items():
        if len(torsets) != 1:
            raise TopologyError(f"rail {key} is served by multiple ToR sets")


def check_rail_isolation(topo: Topology) -> None:
    """Rail-only: aggregation planes never mix rails."""
    for link in topo.links.values():
        a, b = link.a.node, link.b.node
        if a in topo.switches and b in topo.switches:
            ra = topo.switches[a].rail
            rb = topo.switches[b].rail
            if ra is not None and rb is not None and ra != rb:
                raise TopologyError(f"cross-rail link {a} <-> {b}")


def oversubscription_report(topo: Topology) -> Dict[str, float]:
    """Measured down:up capacity ratio per switch role (1.0 == 1:1)."""
    down_cap: Dict[str, float] = defaultdict(float)
    up_cap: Dict[str, float] = defaultdict(float)
    for sw in topo.switches.values():
        role = sw.role.value
        for port in topo.ports[sw.name]:
            if not port.connected:
                continue
            if port.kind is PortKind.DOWN:
                down_cap[role] += port.gbps
            elif port.kind is PortKind.UP:
                up_cap[role] += port.gbps
    report = {}
    for role in down_cap:
        if up_cap.get(role):
            report[role] = down_cap[role] / up_cap[role]
    return report


def plane_of_path_nodes(topo: Topology, nodes: List[str]) -> set:
    """Distinct planes touched by a list of switch names (None filtered)."""
    planes = set()
    for name in nodes:
        sw = topo.switches.get(name)
        if sw is not None and sw.plane is not None:
            planes.add(sw.plane)
    return planes
