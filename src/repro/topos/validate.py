"""Topology invariant checks (thin wrappers over ``repro.staticcheck``).

The collecting analyzers live in :mod:`repro.staticcheck.topo_rules`;
this module keeps the historical raise-on-first API: ``validate(topo)``
runs every structural rule appropriate for the architecture and raises
:class:`~repro.core.errors.TopologyError` on the first error-severity
finding. Use :func:`repro.staticcheck.analyze_topology` (or the CLI's
``repro validate --all``) to see *every* violation in one pass.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List

from ..core.entities import PortKind
from ..core.errors import TopologyError
from ..core.topology import Topology


def _raise_first(topo: Topology, rule_ids: List[str]) -> None:
    from ..staticcheck import run_topology_rules

    report = run_topology_rules(topo, rule_ids=rule_ids)
    errors = report.errors
    if errors:
        raise TopologyError(errors[0].message)


def validate(topo: Topology) -> None:
    """Run all structural invariants for ``topo``; raise on the first.

    Thin wrapper over the collecting engine: every registered
    non-expensive topology rule runs (architecture-filtered), and the
    first error-severity diagnostic becomes a :class:`TopologyError`.
    """
    from ..staticcheck import run_topology_rules

    report = run_topology_rules(topo)
    errors = report.errors
    if errors:
        raise TopologyError(errors[0].message)


def check_links_consistent(topo: Topology) -> None:
    """Every link references two existing, mutually wired ports."""
    _raise_first(topo, ["TOPO001"])


def check_dual_tor(topo: Topology) -> None:
    """Each wired dual-port backend NIC reaches two distinct ToRs.

    Error messages name the ToRs a violating NIC actually reaches, not
    just the count, so an operator can walk to the right rack.
    """
    _raise_first(topo, ["TOPO002"])


def check_dual_plane(topo: Topology) -> None:
    """No link crosses planes above tier 1; NIC port k lands in plane k.

    This is the physical-isolation property behind Figure 12b: traffic
    entering plane 0 can only be delivered from plane 0.
    """
    _raise_first(topo, ["TOPO003"])


def check_rail_optimized(topo: Topology) -> None:
    """Within a segment, NICs of rail r across hosts share the same ToRs."""
    _raise_first(topo, ["TOPO004"])


def check_rail_isolation(topo: Topology) -> None:
    """Rail-only: aggregation planes never mix rails."""
    _raise_first(topo, ["TOPO005"])


def oversubscription_report(topo: Topology) -> Dict[str, float]:
    """Measured down:up capacity ratio per switch role (1.0 == 1:1)."""
    down_cap: Dict[str, float] = defaultdict(float)
    up_cap: Dict[str, float] = defaultdict(float)
    for sw in topo.switches.values():
        role = sw.role.value
        for port in topo.ports[sw.name]:
            if not port.connected:
                continue
            if port.kind is PortKind.DOWN:
                down_cap[role] += port.gbps
            elif port.kind is PortKind.UP:
                up_cap[role] += port.gbps
    report = {}
    for role in down_cap:
        if up_cap.get(role):
            report[role] = down_cap[role] / up_cap[role]
    return report


def plane_of_path_nodes(topo: Topology, nodes: List[str]) -> set:
    """Distinct planes touched by a list of switch names (None filtered)."""
    planes = set()
    for name in nodes:
        sw = topo.switches.get(name)
        if sw is not None and sw.plane is not None:
            planes.add(sw.plane)
    return planes
