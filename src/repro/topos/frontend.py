"""Frontend network builder (paper section 8, Figure 21b).

The frontend is a classic 3-tier Clos, physically decoupled from the
training backend, with 1:1 convergence at both aggregation and core
layers. It carries management, storage (CPFS/OSS) and inference
traffic. Compute hosts attach through their ninth NIC (2x200G,
non-stacked dual-ToR); the storage cluster (96-128 hosts) lives only
here.

The builder creates storage hosts as regular hosts whose single NIC is
the frontend NIC (``rail == -1``); they carry a ``storage`` flag in
``topo.meta["storage_hosts"]``.
"""

from __future__ import annotations

from typing import List

from ..core.addressing import assign_addresses
from ..core.entities import PortKind, Switch, SwitchRole
from ..core.topology import Topology
from .spec import FrontendSpec, TOR_UP_GBPS


def build_frontend(spec: FrontendSpec = FrontendSpec()) -> Topology:
    """Build the frontend network from ``spec``."""
    topo = Topology(name="frontend")
    topo.meta["spec"] = spec
    topo.meta["architecture"] = "frontend"
    topo.meta["planes"] = 1

    total_hosts = spec.compute_hosts + spec.storage_hosts
    pairs_needed = (total_hosts + spec.hosts_per_tor_pair - 1) // spec.hosts_per_tor_pair
    # 1:1 convergence at the aggregation layer (section 8): each agg's
    # core uplink count equals its ToR downlink count, spread over cores
    agg_downlinks = pairs_needed * 2 * spec.tor_agg_links
    links_per_core = max(1, agg_downlinks // spec.cores)

    cores: List[Switch] = []
    for c in range(spec.cores):
        cores.append(
            topo.add_switch(
                Switch(name=f"fe/core{c}", role=SwitchRole.CORE, tier=3, pod=-1)
            )
        )

    aggs: List[Switch] = []
    for a in range(spec.aggs):
        sw = topo.add_switch(
            Switch(name=f"fe/agg{a}", role=SwitchRole.AGG, tier=2, pod=0)
        )
        aggs.append(sw)
        for core in cores:
            for _ in range(links_per_core):
                up = topo.alloc_port(sw.name, TOR_UP_GBPS, PortKind.UP)
                down = topo.alloc_port(core.name, TOR_UP_GBPS, PortKind.DOWN)
                topo.wire(up.ref, down.ref)

    pairs = pairs_needed
    storage_names: List[str] = []

    host_idx = 0
    for pair in range(pairs):
        tors: List[Switch] = []
        for side in range(2):
            sw = topo.add_switch(
                Switch(
                    name=f"fe/pair{pair}/tor{side}",
                    role=SwitchRole.TOR,
                    tier=1,
                    pod=0,
                    segment=pair,
                )
            )
            tors.append(sw)
            for agg in aggs:
                for _ in range(spec.tor_agg_links):
                    up = topo.alloc_port(sw.name, TOR_UP_GBPS, PortKind.UP)
                    down = topo.alloc_port(agg.name, TOR_UP_GBPS, PortKind.DOWN)
                    topo.wire(up.ref, down.ref)

        for _ in range(spec.hosts_per_tor_pair):
            if host_idx >= total_hosts:
                break
            is_storage = host_idx >= spec.compute_hosts
            name = (
                f"fe/storage{host_idx - spec.compute_hosts}"
                if is_storage
                else f"fe/compute{host_idx}"
            )
            host = topo.build_host(
                name=name,
                pod=0,
                segment=pair,
                index=host_idx,
                num_gpus=0 if is_storage else 8,
                nic_gbps=spec.nic_gbps,
                with_frontend_nic=True,
            )
            fe_nic = host.frontend_nic()
            for side in (0, 1):
                tor_port = topo.alloc_port(
                    tors[side].name, spec.nic_gbps, PortKind.DOWN
                )
                topo.wire(fe_nic.ports[side], tor_port.ref)
            if is_storage:
                storage_names.append(name)
            host_idx += 1

    topo.meta["storage_hosts"] = storage_names
    assign_addresses(topo)
    return topo
