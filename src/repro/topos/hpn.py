"""HPN backend topology builder (paper Figure 7, sections 5-7).

Structure produced:

* **Tier 1 (segment)** -- ``segments_per_pod`` segments per pod. Each
  segment has ``rails x 2`` ToR switches: rail ``r`` is served by the
  dual-ToR pair ``(plane0, plane1)``. Host NIC ``r`` wires port 0 to the
  plane-0 ToR and port 1 to the plane-1 ToR (non-stacked dual-ToR), so a
  host with 8 rails touches 16 ToRs (rail-optimized, Figure 11).
* **Tier 2 (pod, dual-plane)** -- each plane has ``aggs_per_plane``
  aggregation switches; every ToR of that plane (all rails, all
  segments) connects to every agg of the plane. Traffic entering plane
  ``k`` can only ever exit on plane ``k`` -- the physical isolation that
  eliminates aggregation-layer hash polarization (Figure 12b).
* **Tier 3 (core)** -- optional; each agg has ``agg_core_uplinks``
  uplinks striped over ``cores_per_plane`` core switches per plane with
  a 15:1 oversubscription at production scale (section 7).

Hash seeds: with ``polarized_hashing=True`` every switch shares seed 0,
modeling fleets of identical ASICs -- this is what makes the DCN+
baseline polarize. HPN's structure never gives the same flow two
independent hash stages inside a pod, so the shared seed is harmless
here, which is exactly the paper's point.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..core.addressing import assign_addresses
from ..core.entities import PortKind, Switch, SwitchRole
from ..core.errors import SpecError
from ..core.topology import Topology
from .spec import HpnSpec, TOR_UP_GBPS


def tor_name(pod: int, segment: int, rail: int, plane: int) -> str:
    return f"pod{pod}/seg{segment}/tor-r{rail}p{plane}"


def agg_name(pod: int, plane: int, index: int) -> str:
    return f"pod{pod}/plane{plane}/agg{index}"


def core_name(plane: int, index: int) -> str:
    return f"core/plane{plane}/c{index}"


def host_name(pod: int, segment: int, index: int) -> str:
    return f"pod{pod}/seg{segment}/host{index}"


def build_hpn(spec: HpnSpec = HpnSpec()) -> Topology:
    """Build an HPN backend network from ``spec``.

    Returns a fully wired :class:`Topology` with IP/MAC addressing
    assigned and builder metadata in ``topo.meta``.
    """
    topo = Topology(name="hpn")
    topo.meta["spec"] = spec
    topo.meta["architecture"] = "hpn"
    topo.meta["planes"] = 2

    seed_counter = 1

    def seed() -> int:
        nonlocal seed_counter
        if spec.polarized_hashing:
            return 0
        seed_counter += 1
        return seed_counter

    # --- tier 3: cores (built first so aggs can wire up) -------------
    cores: Dict[Tuple[int, int], Switch] = {}
    if spec.cores_per_plane:
        for plane in range(2):
            for c in range(spec.cores_per_plane):
                sw = topo.add_switch(
                    Switch(
                        name=core_name(plane, c),
                        role=SwitchRole.CORE,
                        tier=3,
                        pod=-1,
                        plane=plane,
                        chip_gbps=spec.tor_chip_gbps,
                        hash_seed=seed(),
                    )
                )
                cores[(plane, c)] = sw

    for pod in range(spec.pods):
        # --- tier 2: aggregation switches, two planes ------------------
        aggs: Dict[Tuple[int, int], Switch] = {}
        for plane in range(2):
            for a in range(spec.aggs_per_plane):
                sw = topo.add_switch(
                    Switch(
                        name=agg_name(pod, plane, a),
                        role=SwitchRole.AGG,
                        tier=2,
                        pod=pod,
                        plane=plane,
                        chip_gbps=spec.tor_chip_gbps,
                        hash_seed=seed(),
                    )
                )
                aggs[(plane, a)] = sw
                # agg -> core wiring, striped
                if spec.cores_per_plane:
                    for j in range(spec.agg_core_uplinks):
                        cidx = (a * spec.agg_core_uplinks + j) % spec.cores_per_plane
                        up = topo.alloc_port(sw.name, TOR_UP_GBPS, PortKind.UP)
                        down = topo.alloc_port(
                            cores[(plane, cidx)].name, TOR_UP_GBPS, PortKind.DOWN
                        )
                        topo.wire(up.ref, down.ref)

        # --- tier 1: segments ------------------------------------------
        for segment in range(spec.segments_per_pod):
            seg_tors: Dict[Tuple[int, int], Switch] = {}
            for rail in range(spec.rails):
                for plane in range(2):
                    sw = topo.add_switch(
                        Switch(
                            name=tor_name(pod, segment, rail, plane),
                            role=SwitchRole.TOR,
                            tier=1,
                            pod=pod,
                            segment=segment,
                            plane=plane,
                            rail=rail,
                            chip_gbps=spec.tor_chip_gbps,
                            hash_seed=seed(),
                        )
                    )
                    seg_tors[(rail, plane)] = sw
                    # ToR -> every agg in its plane
                    for a in range(spec.aggs_per_plane):
                        for _ in range(spec.tor_agg_links):
                            up = topo.alloc_port(sw.name, TOR_UP_GBPS, PortKind.UP)
                            down = topo.alloc_port(
                                aggs[(plane, a)].name, TOR_UP_GBPS, PortKind.DOWN
                            )
                            topo.wire(up.ref, down.ref)

            # hosts (active + backup)
            total_hosts = spec.hosts_per_segment + spec.backup_hosts_per_segment
            for h in range(total_hosts):
                backup = h >= spec.hosts_per_segment
                host = topo.build_host(
                    name=host_name(pod, segment, h),
                    pod=pod,
                    segment=segment,
                    index=h,
                    num_gpus=spec.gpus_per_host,
                    nic_gbps=spec.nic_gbps,
                    nvlink_gbps=spec.nvlink_gbps,
                    backup=backup,
                )
                for nic in host.backend_nics():
                    for plane in (0, 1):
                        tor = seg_tors[(nic.rail, plane)]
                        tor_port = topo.alloc_port(
                            tor.name, spec.nic_gbps, PortKind.DOWN
                        )
                        topo.wire(nic.ports[plane], tor_port.ref)

    assign_addresses(topo)
    _check_port_budgets(topo, spec)
    return topo


def _check_port_budgets(topo: Topology, spec: HpnSpec) -> None:
    """Verify no switch exceeds its chip's port budget."""
    for sw in topo.switches.values():
        used = sum(p.gbps for p in topo.ports[sw.name])
        if used > sw.chip_gbps + 1e-6:
            raise SpecError(
                f"{sw.name} uses {used} Gbps of ports, chip is {sw.chip_gbps}"
            )


def segment_hosts(topo: Topology, pod: int, segment: int, active_only: bool = True) -> List[str]:
    """Names of hosts in one segment, ordered by index."""
    out = [
        h.name
        for h in topo.hosts.values()
        if h.pod == pod and h.segment == segment and (not active_only or not h.backup)
    ]
    return sorted(out, key=lambda n: topo.hosts[n].index)


def dual_tor_pair(topo: Topology, pod: int, segment: int, rail: int) -> Tuple[str, str]:
    """The (plane0, plane1) ToR names serving one rail of one segment."""
    return (
        tor_name(pod, segment, rail, 0),
        tor_name(pod, segment, rail, 1),
    )
