"""Topology generators: HPN, DCN+, single-ToR, fat-tree, rail-only, frontend."""

from .comparisons import (
    fattree_card,
    hpn_card,
    jupiter_card,
    superpod_card,
    table1_cards,
)
from .dcnplus import build_dcnplus
from .fattree import build_fattree
from .frontend import build_frontend
from .hpn import build_hpn, dual_tor_pair, segment_hosts
from .railonly import build_railonly, cross_rail_reachable
from .singletor import build_singletor
from .spec import (
    ArchitectureCard,
    DcnPlusSpec,
    FatTreeSpec,
    FrontendSpec,
    HpnSpec,
    RailOnlySpec,
    SingleTorSpec,
)
from .threetier import (
    ThreeTierSpec,
    build_jupiter_like,
    build_superpod_like,
    build_threetier,
    expected_cross_pod_complexity,
    expected_intra_pod_complexity,
)
from .validate import oversubscription_report, validate

__all__ = [
    "ThreeTierSpec",
    "build_jupiter_like",
    "build_superpod_like",
    "build_threetier",
    "expected_cross_pod_complexity",
    "expected_intra_pod_complexity",
    "ArchitectureCard",
    "DcnPlusSpec",
    "FatTreeSpec",
    "FrontendSpec",
    "HpnSpec",
    "RailOnlySpec",
    "SingleTorSpec",
    "build_dcnplus",
    "build_fattree",
    "build_frontend",
    "build_hpn",
    "build_railonly",
    "build_singletor",
    "cross_rail_reachable",
    "dual_tor_pair",
    "fattree_card",
    "hpn_card",
    "jupiter_card",
    "superpod_card",
    "segment_hosts",
    "table1_cards",
    "oversubscription_report",
    "validate",
]
