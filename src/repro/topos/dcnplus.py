"""DCN+ baseline topology (paper Appendix C, Figure 20).

DCN+ is Alibaba's previous-generation training network: a classic
3-tier Clos with dual-ToR access but *no* rail optimization and *no*
dual-plane:

* a segment is 16 hosts (128 GPUs) behind one dual-ToR pair; every NIC
  of every host lands on the same two ToRs (port 0 -> ToR1, port 1 ->
  ToR2);
* each pod has 4 segments and 8 aggregation switches; every ToR
  connects to every agg with 8 parallel 400G links (64 uplinks);
* agg switches have 64 further uplinks; agg ``i`` of every pod joins
  core group ``i`` (full bisection bandwidth end to end).

Because the same flow is hashed independently at ToR, agg, and -- for
cross-pod traffic -- core, and all chips share the hash function, DCN+
exhibits the cascading "hash polarization" the paper measures.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..core.addressing import assign_addresses
from ..core.entities import PortKind, Switch, SwitchRole
from ..core.topology import Topology
from .spec import DcnPlusSpec, TOR_UP_GBPS


def tor_name(pod: int, segment: int, side: int) -> str:
    return f"pod{pod}/seg{segment}/tor{side}"


def agg_name(pod: int, index: int) -> str:
    return f"pod{pod}/agg{index}"


def core_name(group: int, index: int) -> str:
    return f"core/g{group}/c{index}"


def host_name(pod: int, segment: int, index: int) -> str:
    return f"pod{pod}/seg{segment}/host{index}"


def build_dcnplus(spec: DcnPlusSpec = DcnPlusSpec()) -> Topology:
    """Build a DCN+ network from ``spec``."""
    topo = Topology(name="dcnplus")
    topo.meta["spec"] = spec
    topo.meta["architecture"] = "dcnplus"
    topo.meta["planes"] = 1

    seed_counter = 1

    def seed() -> int:
        nonlocal seed_counter
        if spec.polarized_hashing:
            return 0
        seed_counter += 1
        return seed_counter

    # --- core groups ---------------------------------------------------
    cores: Dict[Tuple[int, int], Switch] = {}
    build_core = spec.pods > 1 and spec.cores_per_group > 0
    if build_core:
        for group in range(spec.aggs_per_pod):
            for c in range(spec.cores_per_group):
                sw = topo.add_switch(
                    Switch(
                        name=core_name(group, c),
                        role=SwitchRole.CORE,
                        tier=3,
                        pod=-1,
                        hash_seed=seed(),
                    )
                )
                cores[(group, c)] = sw

    for pod in range(spec.pods):
        aggs: List[Switch] = []
        for a in range(spec.aggs_per_pod):
            sw = topo.add_switch(
                Switch(
                    name=agg_name(pod, a),
                    role=SwitchRole.AGG,
                    tier=2,
                    pod=pod,
                    hash_seed=seed(),
                )
            )
            aggs.append(sw)
            if build_core:
                links_per_core = spec.agg_core_uplinks // spec.cores_per_group
                for c in range(spec.cores_per_group):
                    for _ in range(links_per_core):
                        up = topo.alloc_port(sw.name, TOR_UP_GBPS, PortKind.UP)
                        down = topo.alloc_port(
                            cores[(a, c)].name, TOR_UP_GBPS, PortKind.DOWN
                        )
                        topo.wire(up.ref, down.ref)

        for segment in range(spec.segments_per_pod):
            pair: List[Switch] = []
            for side in range(2):
                sw = topo.add_switch(
                    Switch(
                        name=tor_name(pod, segment, side),
                        role=SwitchRole.TOR,
                        tier=1,
                        pod=pod,
                        segment=segment,
                        plane=None,  # DCN+ has no plane isolation
                        hash_seed=seed(),
                    )
                )
                pair.append(sw)
                for agg in aggs:
                    for _ in range(spec.tor_agg_links):
                        up = topo.alloc_port(sw.name, TOR_UP_GBPS, PortKind.UP)
                        down = topo.alloc_port(agg.name, TOR_UP_GBPS, PortKind.DOWN)
                        topo.wire(up.ref, down.ref)

            for h in range(spec.hosts_per_segment):
                host = topo.build_host(
                    name=host_name(pod, segment, h),
                    pod=pod,
                    segment=segment,
                    index=h,
                    num_gpus=spec.gpus_per_host,
                    nic_gbps=spec.nic_gbps,
                    nvlink_gbps=spec.nvlink_gbps,
                )
                for nic in host.backend_nics():
                    for side in (0, 1):
                        tor_port = topo.alloc_port(
                            pair[side].name, spec.nic_gbps, PortKind.DOWN
                        )
                        topo.wire(nic.ports[side], tor_port.ref)

    assign_addresses(topo)
    return topo


def segment_hosts(topo: Topology, pod: int, segment: int) -> List[str]:
    out = [
        h.name
        for h in topo.hosts.values()
        if h.pod == pod and h.segment == segment
    ]
    return sorted(out, key=lambda n: topo.hosts[n].index)
