"""Rail-only tier-2 variant (paper Table 4 and section 10 discussion).

In a rail-only tier-2, the aggregation layer is split per rail (and per
plane): ToRs of rail ``r``/plane ``k`` connect only to the aggregation
plane ``(r, k)``. Cross-rail GPU pairs have *no* network path and must
relay through the intra-host interconnect. The freed ToR-Agg links let
one pod cover 8x the segments (122,880 GPUs at production scale), which
is the trade the paper declines because MoE all-to-all and multi-tenant
serverless traffic break the intra-rail-only assumption.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..core.addressing import assign_addresses
from ..core.entities import PortKind, Switch, SwitchRole
from ..core.topology import Topology
from .spec import RailOnlySpec, TOR_UP_GBPS


def build_railonly(spec: RailOnlySpec) -> Topology:
    """Build a rail-only pod from ``spec``."""
    topo = Topology(name="railonly")
    topo.meta["spec"] = spec
    topo.meta["architecture"] = "railonly"
    topo.meta["planes"] = spec.planes  # one plane per (rail, side)

    # aggregation planes: one per (rail, side)
    aggs: Dict[Tuple[int, int, int], Switch] = {}
    for rail in range(spec.rails):
        for side in range(2):
            for a in range(spec.aggs_per_plane):
                sw = topo.add_switch(
                    Switch(
                        name=f"rail{rail}/plane{side}/agg{a}",
                        role=SwitchRole.AGG,
                        tier=2,
                        pod=0,
                        plane=rail * 2 + side,
                        rail=rail,
                    )
                )
                aggs[(rail, side, a)] = sw

    for segment in range(spec.segments_per_pod):
        seg_tors: Dict[Tuple[int, int], Switch] = {}
        for rail in range(spec.rails):
            for side in range(2):
                sw = topo.add_switch(
                    Switch(
                        name=f"seg{segment}/tor-r{rail}p{side}",
                        role=SwitchRole.TOR,
                        tier=1,
                        pod=0,
                        segment=segment,
                        plane=rail * 2 + side,
                        rail=rail,
                    )
                )
                seg_tors[(rail, side)] = sw
                for a in range(spec.aggs_per_plane):
                    for _ in range(spec.tor_agg_links):
                        up = topo.alloc_port(sw.name, TOR_UP_GBPS, PortKind.UP)
                        down = topo.alloc_port(
                            aggs[(rail, side, a)].name, TOR_UP_GBPS, PortKind.DOWN
                        )
                        topo.wire(up.ref, down.ref)

        for h in range(spec.hosts_per_segment):
            host = topo.build_host(
                name=f"seg{segment}/host{h}",
                pod=0,
                segment=segment,
                index=h,
                num_gpus=spec.gpus_per_host,
                nic_gbps=spec.nic_gbps,
                nvlink_gbps=spec.nvlink_gbps,
            )
            for nic in host.backend_nics():
                for side in (0, 1):
                    tor = seg_tors[(nic.rail, side)]
                    tor_port = topo.alloc_port(tor.name, spec.nic_gbps, PortKind.DOWN)
                    topo.wire(nic.ports[side], tor_port.ref)

    assign_addresses(topo)
    return topo


def cross_rail_reachable(topo: Topology, src_rail: int, dst_rail: int) -> bool:
    """Whether the network (not NVLink) can carry rail->rail traffic."""
    if topo.meta.get("architecture") != "railonly":
        return True
    return src_rail == dst_rail
