"""Single-ToR access topology (the traditional design, for section 9.3).

Identical to a DCN+ pod except each NIC has a single 400G access link to
one ToR per segment. Used to reproduce the fault-injection comparison in
Figure 18: when that one link (or the ToR) fails, the host is simply
gone, halting synchronous training.
"""

from __future__ import annotations

from typing import List

from ..core.addressing import assign_addresses
from ..core.entities import PortKind, Switch, SwitchRole
from ..core.topology import Topology
from .spec import SingleTorSpec, TOR_UP_GBPS


def tor_name(segment: int) -> str:
    return f"seg{segment}/tor0"


def host_name(segment: int, index: int) -> str:
    return f"seg{segment}/host{index}"


def build_singletor(spec: SingleTorSpec = SingleTorSpec()) -> Topology:
    """Build a single-ToR Clos from ``spec``.

    NICs are created with two ports for API uniformity, but only port 0
    is wired (at the bonded 400G rate); port 1 stays unconnected.
    """
    topo = Topology(name="singletor")
    topo.meta["spec"] = spec
    topo.meta["architecture"] = "singletor"
    topo.meta["planes"] = 1

    seed_counter = 1

    def seed() -> int:
        nonlocal seed_counter
        if spec.polarized_hashing:
            return 0
        seed_counter += 1
        return seed_counter

    aggs: List[Switch] = []
    if spec.segments > 1:
        for a in range(spec.aggs):
            aggs.append(
                topo.add_switch(
                    Switch(
                        name=f"agg{a}",
                        role=SwitchRole.AGG,
                        tier=2,
                        pod=0,
                        hash_seed=seed(),
                    )
                )
            )

    for segment in range(spec.segments):
        tor = topo.add_switch(
            Switch(
                name=tor_name(segment),
                role=SwitchRole.TOR,
                tier=1,
                pod=0,
                segment=segment,
                hash_seed=seed(),
            )
        )
        for agg in aggs:
            for _ in range(spec.tor_agg_links):
                up = topo.alloc_port(tor.name, TOR_UP_GBPS, PortKind.UP)
                down = topo.alloc_port(agg.name, TOR_UP_GBPS, PortKind.DOWN)
                topo.wire(up.ref, down.ref)

        for h in range(spec.hosts_per_segment):
            host = topo.build_host(
                name=host_name(segment, h),
                pod=0,
                segment=segment,
                index=h,
                num_gpus=spec.gpus_per_host,
                nic_gbps=spec.nic_gbps,
                nvlink_gbps=spec.nvlink_gbps,
            )
            for nic in host.backend_nics():
                tor_port = topo.alloc_port(tor.name, spec.nic_gbps, PortKind.DOWN)
                topo.wire(nic.ports[0], tor_port.ref)

    assign_addresses(topo)
    return topo
