"""Classic k-ary fat-tree [Al-Fares et al., SIGCOMM 2008].

Used as a Table 1 comparison point: a 3-tier architecture where ToR,
aggregation *and* core hashing all participate in load balancing, giving
path-selection complexity O((k/2)^2) per pod pair.

Structure (for even ``k``): ``k`` pods, each with ``k/2`` edge (ToR) and
``k/2`` aggregation switches; ``(k/2)^2`` core switches. Each edge switch
serves ``k/2`` hosts.
"""

from __future__ import annotations

from ..core.addressing import assign_addresses
from ..core.entities import PortKind, Switch, SwitchRole
from ..core.topology import Topology
from .spec import FatTreeSpec


def build_fattree(spec: FatTreeSpec = FatTreeSpec(k=4)) -> Topology:
    """Build a k-ary fat-tree. Hosts have one single-port NIC."""
    topo = Topology(name=f"fattree-k{spec.k}")
    topo.meta["spec"] = spec
    topo.meta["architecture"] = "fattree"
    topo.meta["planes"] = 1
    half = spec.k // 2

    # core switches: grid of half x half
    cores = []
    for i in range(half):
        row = []
        for j in range(half):
            sw = topo.add_switch(
                Switch(
                    name=f"core/c{i}-{j}",
                    role=SwitchRole.CORE,
                    tier=3,
                    pod=-1,
                    chip_gbps=spec.k * spec.link_gbps,
                )
            )
            row.append(sw)
        cores.append(row)

    for pod in range(spec.k):
        aggs = []
        for a in range(half):
            sw = topo.add_switch(
                Switch(
                    name=f"pod{pod}/agg{a}",
                    role=SwitchRole.AGG,
                    tier=2,
                    pod=pod,
                    chip_gbps=spec.k * spec.link_gbps,
                )
            )
            aggs.append(sw)
            # agg a connects to core row a (one link to each core in row)
            for j in range(half):
                up = topo.alloc_port(sw.name, spec.link_gbps, PortKind.UP)
                down = topo.alloc_port(
                    cores[a][j].name, spec.link_gbps, PortKind.DOWN
                )
                topo.wire(up.ref, down.ref)

        for e in range(half):
            edge = topo.add_switch(
                Switch(
                    name=f"pod{pod}/edge{e}",
                    role=SwitchRole.TOR,
                    tier=1,
                    pod=pod,
                    segment=e,
                    chip_gbps=spec.k * spec.link_gbps,
                )
            )
            for agg in aggs:
                up = topo.alloc_port(edge.name, spec.link_gbps, PortKind.UP)
                down = topo.alloc_port(agg.name, spec.link_gbps, PortKind.DOWN)
                topo.wire(up.ref, down.ref)
            for h in range(half):
                host = topo.build_host(
                    name=f"pod{pod}/edge{e}/host{h}",
                    pod=pod,
                    segment=e,
                    index=h,
                    num_gpus=spec.gpus_per_host,
                    nic_gbps=spec.link_gbps,
                    with_frontend_nic=False,
                )
                # single-homed: wire only port 0 of NIC 0
                nic = host.backend_nics()[0]
                tor_port = topo.alloc_port(edge.name, spec.link_gbps, PortKind.DOWN)
                topo.wire(nic.ports[0], tor_port.ref)

    assign_addresses(topo)
    return topo
