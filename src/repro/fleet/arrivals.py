"""Seeded job arrival/departure processes for the fleet simulator.

Sizes come from the paper's Figure-6 production distribution
(:class:`~repro.workloads.jobs.JobSizeModel`); interarrival times are
exponential and durations lognormal, both parameterized. Everything is
drawn from generators seeded via :func:`repro.engine.derive_seed`, so
an arrival trace is a pure function of ``(spec, count, seed)`` -- the
contract that lets fleet experiments live in the engine catalogue.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List

from ..engine.spec import derive_seed
from ..workloads.jobs import JobSizeModel


@dataclass(frozen=True)
class ArrivalSpec:
    """Shape of the fleet's job churn."""

    #: mean of the exponential interarrival distribution
    mean_interarrival_s: float = 120.0
    #: mean job duration (lognormal with ``duration_sigma`` shape)
    mean_duration_s: float = 3600.0
    duration_sigma: float = 0.8  # dimensionless shape  # repro: noqa[LINT004]
    gpus_per_host: int = 8
    size_model: JobSizeModel = JobSizeModel()
    #: fraction of multi-host jobs that request pipeline parallelism
    #: deep enough to be eligible for cross-pod placement (section 7)
    pp_fraction: float = 0.15

    def __post_init__(self) -> None:
        if self.mean_interarrival_s <= 0 or self.mean_duration_s <= 0:
            raise ValueError("interarrival and duration means must be positive")
        if self.gpus_per_host < 1:
            raise ValueError("gpus_per_host must be positive")
        if not 0.0 <= self.pp_fraction <= 1.0:
            raise ValueError("pp_fraction must be within [0, 1]")


@dataclass(frozen=True)
class JobArrival:
    """One job entering the fleet: when, how big, for how long."""

    job_id: int
    arrive_s: float
    gpus: int
    hosts: int
    duration_s: float
    #: pipeline-parallel degree (1 = no PP; >1 marks section-7
    #: cross-pod eligibility when the job cannot fit one pod)
    pp: int = 1

    def __post_init__(self) -> None:
        if self.hosts < 1 or self.duration_s <= 0:
            raise ValueError("job needs >=1 host and positive duration")


def generate_arrivals(
    spec: ArrivalSpec, count: int, seed: int
) -> List[JobArrival]:
    """A deterministic arrival trace of ``count`` jobs.

    Sizes, interarrivals, durations and PP degrees each use their own
    derived seed so changing one distribution's parameters cannot
    shift another's draws.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    # never the JobSizeModel default seed: each trace derives its own
    sizes = spec.size_model.sample_rng(
        count, random.Random(derive_seed(seed, "fleet.sizes"))
    )
    rng = random.Random(derive_seed(seed, "fleet.arrivals"))
    # lognormal with mean == mean_duration_s: mu = ln(mean) - sigma^2/2
    mu = math.log(spec.mean_duration_s) - spec.duration_sigma ** 2 / 2.0
    out: List[JobArrival] = []
    t = 0.0
    for i, gpus in enumerate(sizes):
        t += rng.expovariate(1.0 / spec.mean_interarrival_s)
        duration = rng.lognormvariate(mu, spec.duration_sigma)
        hosts = max(1, -(-gpus // spec.gpus_per_host))  # ceil division
        pp = 1
        if hosts >= 4 and rng.random() < spec.pp_fraction:
            # PP degrees the paper's cross-pod rule can split: 2 or 4
            pp = rng.choice((2, 4))
        out.append(
            JobArrival(
                job_id=i,
                arrive_s=t,
                gpus=gpus,
                hosts=hosts,
                duration_s=duration,
                pp=pp,
            )
        )
    return out
