"""Multi-job fleet simulation: churn, placement, frontend classes.

The fleet layer composes the existing substrates into a cluster-scale
view of the paper's production story: Figure-6 job sizes arriving and
departing over time (:mod:`.arrivals`), placement policies contending
for segments and pods (:mod:`.policies`), the section-8 frontend's
aggregated traffic classes including Figure-4 checkpoint storms
(:mod:`.frontend`), and the event-driven :class:`FleetSimulator`
(:mod:`.sim`) that drives admit -> place -> run -> depart while
measuring queue waits, fragmentation, and tenant interference.

Engine entry points: ``fleet.churn``, ``fleet.interference`` and the
perf experiment ``bench.fleet`` (see :mod:`repro.engine.builtin`).
"""

from .arrivals import ArrivalSpec, JobArrival, generate_arrivals
from .frontend import (
    FlowClass,
    FrontendModel,
    FrontendTrafficSpec,
    build_classes,
    checkpoint_classes,
    inference_class,
    storage_class,
    tier_peak_utilization,
)
from .policies import (
    InterleavedWorstCasePolicy,
    PlacementDecision,
    PlacementPolicy,
    RailAwareSpreadPolicy,
    SegmentPackingPolicy,
    get_policy,
    policy_names,
    register_policy,
)
from .sim import (
    FleetJob,
    FleetResult,
    FleetSimulator,
    run_churn,
    run_fleet_bench,
    run_interference,
)

__all__ = [
    "ArrivalSpec",
    "FleetJob",
    "FleetResult",
    "FleetSimulator",
    "FlowClass",
    "FrontendModel",
    "FrontendTrafficSpec",
    "InterleavedWorstCasePolicy",
    "JobArrival",
    "PlacementDecision",
    "PlacementPolicy",
    "RailAwareSpreadPolicy",
    "SegmentPackingPolicy",
    "build_classes",
    "checkpoint_classes",
    "generate_arrivals",
    "get_policy",
    "inference_class",
    "policy_names",
    "register_policy",
    "run_churn",
    "run_fleet_bench",
    "run_interference",
    "storage_class",
    "tier_peak_utilization",
]
