"""The fleet simulator: admit -> place -> run -> depart over sim time.

:class:`FleetSimulator` drives a whole cluster's worth of job churn:
a seeded arrival trace (:mod:`.arrivals`) flows through a pluggable
placement policy (:mod:`.policies`) onto a
:class:`~repro.training.scheduler.Scheduler`, with strict-FIFO
queueing, departures releasing capacity, and optional **interference
snapshots** that drop the instantaneous traffic population -- one
collective ring per running job plus the frontend's aggregated flow
classes (:mod:`.frontend`) -- into
:class:`~repro.fabric.simulator.FluidSimulator` instances to measure
tenant interference and per-tier contention.

Observability: under an active :mod:`repro.obs` recorder the simulator
emits ``fleet.*`` metrics (jobs running, queue depth/wait, GPUs busy)
and one Chrome-trace track per job (queued + running spans), so
``repro trace fleet.churn`` renders the whole fleet timeline.

The module-level entry points :func:`run_churn`,
:func:`run_interference` and :func:`run_fleet_bench` are the pure
``(params, seed)`` functions the engine catalogue registers.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from ..cluster import Cluster
from ..core.errors import PlacementError
from ..engine.spec import derive_seed
from ..fabric.flow import Flow
from ..fabric.simulator import FluidSimulator
from ..obs import resolve as _obs_resolve
from ..routing.hashing import FiveTuple
from ..topos.spec import DcnPlusSpec, HpnSpec
from ..training.scheduler import Scheduler
from .arrivals import ArrivalSpec, JobArrival, generate_arrivals
from .frontend import (
    FrontendModel,
    FrontendTrafficSpec,
    build_classes,
    tier_peak_utilization,
)
from .policies import PlacementDecision, get_policy

_EPS = 1e-9
_DPORT = 4791


@dataclass
class FleetJob:
    """One job's lifecycle inside the simulator."""

    arrival: JobArrival
    state: str = "pending"  # pending | queued | running | done | rejected
    placed_at: Optional[float] = None
    departed_at: Optional[float] = None
    decision: Optional[PlacementDecision] = None

    @property
    def job_id(self) -> int:
        return self.arrival.job_id

    @property
    def queue_wait_s(self) -> float:
        if self.placed_at is None:
            return 0.0
        return self.placed_at - self.arrival.arrive_s


@dataclass
class FleetResult:
    """Everything one fleet run produced."""

    jobs: List[FleetJob]
    snapshots: List[Dict[str, Any]]
    makespan_s: float
    busy_gpu_seconds: float
    total_gpus: int

    @property
    def admitted(self) -> List[FleetJob]:
        return [j for j in self.jobs if j.decision is not None]

    @property
    def rejected(self) -> List[FleetJob]:
        return [j for j in self.jobs if j.state == "rejected"]


class FleetSimulator:
    """Event-driven multi-job cluster simulation on one backend fabric."""

    def __init__(
        self,
        cluster: Cluster,
        arrivals: Sequence[JobArrival],
        policy: str = "pack",
        frontend_traffic: Optional[FrontendTrafficSpec] = None,
        frontend_model: Optional[FrontendModel] = None,
        edge_mb: float = 64.0,
        snapshot_window_s: float = 100.0,
        seed: int = 0,
        recorder=None,
    ):
        self.cluster = cluster
        self.arrivals = sorted(arrivals, key=lambda a: (a.arrive_s, a.job_id))
        self.policy = get_policy(policy)
        self.frontend_traffic = frontend_traffic
        self._frontend = frontend_model
        self.edge_mb = edge_mb
        self.snapshot_window_s = snapshot_window_s
        self.seed = seed
        # fresh scheduler: fleet occupancy never leaks across runs
        self.scheduler = Scheduler(cluster.topo)
        self.capacity_hosts = len(list(cluster.topo.active_hosts()))
        self.gpus_per_host = len(
            cluster.topo.hosts[next(
                iter(sorted(h.name for h in cluster.topo.active_hosts()))
            )].gpus
        )
        self.now = 0.0
        self._events: List[Tuple[float, int, str, Any]] = []
        self._seq = itertools.count()
        self._queue: List[FleetJob] = []
        self._running: Dict[int, FleetJob] = {}
        self.jobs: Dict[int, FleetJob] = {}
        self.snapshots: List[Dict[str, Any]] = []
        self._busy_gpu_seconds = 0.0
        self._rec = _obs_resolve(recorder)
        # health sampler hub when a HealthEngine is attached (one
        # guard per site, same discipline as _rec)
        self._hub = self._rec.health if self._rec is not None else None
        if self._rec is not None:
            m = self._rec.metrics
            self._g_running = m.gauge("fleet.jobs_running")
            self._g_queue = m.gauge("fleet.queue_depth")
            self._g_busy = m.gauge("fleet.gpus_busy")
            self._h_wait = m.histogram("fleet.queue_wait")
            self._c_admitted = m.counter("fleet.jobs_admitted")
            self._c_completed = m.counter("fleet.jobs_completed")
            self._c_rejected = m.counter("fleet.jobs_rejected")

    # ------------------------------------------------------------------
    @property
    def frontend(self) -> Optional[FrontendModel]:
        if self._frontend is None and self.frontend_traffic is not None:
            self._frontend = FrontendModel()
        return self._frontend

    def _push(self, time: float, kind: str, payload: Any) -> None:
        heapq.heappush(self._events, (time, next(self._seq), kind, payload))

    def _gauge_update(self) -> None:
        if self._rec is None:
            return
        running = self._running.values()
        self._g_running.set(len(self._running), ts_s=self.now)
        self._g_queue.set(len(self._queue), ts_s=self.now)
        self._g_busy.set(sum(j.arrival.gpus for j in running), ts_s=self.now)
        if self._hub is not None:
            self._hub.sample_fleet(
                self.now, len(self._running), len(self._queue))

    # ------------------------------------------------------------------
    def run(self, snapshots: int = 0) -> FleetResult:
        """Process every arrival to completion; returns the record."""
        for arrival in self.arrivals:
            self.jobs[arrival.job_id] = FleetJob(arrival)
            self._push(arrival.arrive_s, "arrive", arrival.job_id)
        for k, t in enumerate(self._snapshot_times(snapshots)):
            self._push(t, "snapshot", k)
        while self._events:
            time, _seq, kind, payload = heapq.heappop(self._events)
            self.now = max(self.now, time)
            if kind == "arrive":
                self._on_arrive(self.jobs[payload])
            elif kind == "depart":
                self._on_depart(self.jobs[payload])
            elif kind == "snapshot":
                self._on_snapshot(payload)
        makespan = self.now
        return FleetResult(
            jobs=[self.jobs[jid] for jid in sorted(self.jobs)],
            snapshots=self.snapshots,
            makespan_s=makespan,
            busy_gpu_seconds=self._busy_gpu_seconds,
            total_gpus=self.capacity_hosts * self.gpus_per_host,
        )

    def _snapshot_times(self, snapshots: int) -> List[float]:
        """Snapshot instants: arrival times at evenly spaced indices."""
        if snapshots <= 0 or not self.arrivals:
            return []
        n = len(self.arrivals)
        times = []
        for k in range(snapshots):
            idx = min(n - 1, (k + 1) * n // (snapshots + 1))
            times.append(self.arrivals[idx].arrive_s)
        return times

    # ------------------------------------------------------------------
    def _on_arrive(self, job: FleetJob) -> None:
        rec = self._rec
        if job.arrival.hosts > self.capacity_hosts:
            job.state = "rejected"
            if rec is not None:
                self._c_rejected.inc()
                rec.events.instant(
                    "job.reject", self.now, track=f"job{job.job_id}",
                    hosts=job.arrival.hosts, gpus=job.arrival.gpus,
                )
            return
        job.state = "queued"
        self._queue.append(job)
        if rec is not None:
            rec.events.instant(
                "job.arrive", self.now, track=f"job{job.job_id}",
                hosts=job.arrival.hosts, gpus=job.arrival.gpus,
                pp=job.arrival.pp,
            )
        self._drain_queue()
        self._gauge_update()

    def _drain_queue(self) -> None:
        """Strict FIFO: admit from the head until the head cannot fit."""
        rec = self._rec
        while self._queue:
            job = self._queue[0]
            try:
                decision = self.policy.place(self.scheduler, job.arrival)
            except PlacementError:
                break
            self._queue.pop(0)
            job.state = "running"
            job.placed_at = self.now
            job.decision = decision
            self._running[job.job_id] = job
            self._push(self.now + job.arrival.duration_s, "depart",
                       job.job_id)
            if rec is not None:
                self._c_admitted.inc()
                self._h_wait.observe(job.queue_wait_s)
                rec.events.span(
                    "job.queued", job.arrival.arrive_s, self.now,
                    track=f"job{job.job_id}", wait_s=job.queue_wait_s,
                )
                rec.events.instant(
                    "job.place", self.now, track=f"job{job.job_id}",
                    policy=decision.policy, hosts=len(decision.hosts),
                    segments=decision.segments_spanned,
                    fragmentation=decision.fragmentation,
                    cross_pod_stages=decision.cross_pod_stages,
                )

    def _on_depart(self, job: FleetJob) -> None:
        assert job.decision is not None and job.placed_at is not None
        job.state = "done"
        job.departed_at = self.now
        del self._running[job.job_id]
        self.scheduler.release(list(job.decision.hosts))
        self._busy_gpu_seconds += job.arrival.gpus * (
            self.now - job.placed_at
        )
        if self._rec is not None:
            self._c_completed.inc()
            self._rec.events.span(
                "job.running", job.placed_at, self.now,
                track=f"job{job.job_id}", gpus=job.arrival.gpus,
                segments=job.decision.segments_spanned,
            )
        self._drain_queue()
        self._gauge_update()

    # -- interference snapshots ----------------------------------------
    def _job_flows(self, job: FleetJob, sport_base: int) -> List[Flow]:
        """One collective ring over the job's hosts (rail-0 DP ring)."""
        assert job.decision is not None
        hosts = list(job.decision.hosts)
        if len(hosts) < 2:
            return []
        topo = self.cluster.topo
        size_bytes = self.edge_mb * 1e6
        requests = []
        for i, src_host in enumerate(hosts):
            dst_host = hosts[(i + 1) % len(hosts)]
            src = topo.hosts[src_host].nic_for_rail(0)
            dst = topo.hosts[dst_host].nic_for_rail(0)
            ft = FiveTuple(src.ip, dst.ip, sport_base + i, _DPORT)
            requests.append((src, dst, ft, None))
        paths = self.cluster.router.route_many(requests, strict=True)
        return [
            Flow(
                five_tuple=req[2],
                size_bytes=size_bytes,
                path=path,
                start_time=0.0,
                tag=f"job{job.job_id}",
            )
            for req, path in zip(requests, paths)
        ]

    def _alone_finish_s(self, flows: Sequence[Flow]) -> float:
        """Uncontended completion: each flow at its path's min capacity."""
        topo = self.cluster.topo
        worst = 0.0
        for f in flows:
            cap = min(topo.links[dl // 2].gbps for dl in f.path.dirlinks)
            worst = max(worst, f.size_bytes * 8.0 / 1e9 / max(cap, _EPS))
        return worst

    def snapshot(self, index: int = 0) -> Dict[str, Any]:
        """Measure interference across the current running set.

        The probe simulations run with health sampling suspended --
        they live on their own t=0 timelines and would corrupt streak
        state -- and the finished snapshot is judged by the hub's
        interference detector instead.
        """
        hub = self._hub
        if hub is None:
            return self._measure_snapshot(index)
        with hub.suspended():
            snap = self._measure_snapshot(index)
        hub.observe_fleet_snapshot(self.now, snap, index)
        return snap

    def _measure_snapshot(self, index: int) -> Dict[str, Any]:
        running = [self._running[jid] for jid in sorted(self._running)]
        snap: Dict[str, Any] = {
            "t_s": round(self.now, 6),
            "index": index,
            "jobs_running": len(running),
            "queue_depth": len(self._queue),
            "backend": {},
            "frontend": {},
        }
        job_flows: Dict[int, List[Flow]] = {}
        sport = 49152
        for job in running:
            flows = self._job_flows(job, sport)
            sport += max(1, len(flows))
            if flows:
                job_flows[job.job_id] = flows
        all_flows = [f for jid in sorted(job_flows)
                     for f in job_flows[jid]]
        if all_flows:
            sim = FluidSimulator(self.cluster.topo, sample_links=True,
                                 recorder=self._rec)
            sim.add_flows(all_flows)
            result = sim.run()
            per_job = []
            for jid in sorted(job_flows):
                flows = job_flows[jid]
                finish = max(result.flow_finish[f.flow_id] for f in flows)
                alone = self._alone_finish_s(flows)
                per_job.append({
                    "job_id": jid,
                    "hosts": len(self.jobs[jid].decision.hosts),
                    "segments": self.jobs[jid].decision.segments_spanned,
                    "slowdown": round(finish / max(alone, _EPS), 6),
                })
            slowdowns = [p["slowdown"] for p in per_job]
            tier_util: Dict[str, float] = {}
            if result.samples:
                _t0, loads = result.samples[0]
                tier_util = {
                    tier: round(util, 6)
                    for tier, util in sorted(tier_peak_utilization(
                        self.cluster.topo, loads).items())
                }
            snap["backend"] = {
                "flows": len(all_flows),
                "mean_slowdown": round(sum(slowdowns) / len(slowdowns), 6),
                "max_slowdown": round(max(slowdowns), 6),
                "per_job": per_job,
                "tier_util": tier_util,
            }
        frontend = self.frontend
        if frontend is not None and self.frontend_traffic is not None:
            classes = build_classes(
                self.frontend_traffic,
                [(j.job_id, j.arrival.gpus, j.placed_at or 0.0)
                 for j in running],
                self.now,
            )
            snap["frontend"] = frontend.simulate(
                classes,
                self.snapshot_window_s,
                derive_seed(self.seed, "fleet.snapshot", index),
                recorder=self._rec,
            )
        return snap

    def _on_snapshot(self, index: int) -> None:
        snap = self.snapshot(index)
        self.snapshots.append(snap)
        if self._rec is not None:
            backend = snap.get("backend") or {}
            self._rec.events.instant(
                "fleet.snapshot", self.now, track="fleet",
                index=index, jobs_running=snap["jobs_running"],
                queue_depth=snap["queue_depth"],
                max_slowdown=backend.get("max_slowdown", 0.0),
            )


# ----------------------------------------------------------------------
# engine experiment bodies (pure in (params, seed))
# ----------------------------------------------------------------------
def _build_cluster(params: Mapping[str, Any]) -> Cluster:
    arch = str(params.get("arch", "hpn"))
    segments = int(params.get("segments", 4))
    hosts = int(params.get("hosts_per_segment", 16))
    if arch == "hpn":
        pods = int(params.get("pods", 1))
        aggs = int(params.get("aggs_per_plane", 8))
        return Cluster.hpn(HpnSpec(
            pods=pods,
            segments_per_pod=segments,
            hosts_per_segment=hosts,
            backup_hosts_per_segment=0,
            aggs_per_plane=aggs,
            cores_per_plane=int(params.get("cores_per_plane",
                                           4 if pods > 1 else 0)),
        ))
    if arch == "dcnplus":
        return Cluster.dcnplus(DcnPlusSpec(
            pods=1, segments_per_pod=segments, hosts_per_segment=hosts,
        ))
    raise ValueError(f"unknown fleet arch {arch!r}")


def _arrival_spec(params: Mapping[str, Any]) -> ArrivalSpec:
    return ArrivalSpec(
        mean_interarrival_s=float(params.get("mean_interarrival_s", 120.0)),
        mean_duration_s=float(params.get("mean_duration_s", 3600.0)),
        duration_sigma=float(params.get("duration_sigma", 0.8)),
        pp_fraction=float(params.get("pp_fraction", 0.15)),
    )


def _frontend_traffic(params: Mapping[str, Any]) -> Optional[FrontendTrafficSpec]:
    if not bool(params.get("frontend", True)):
        return None
    return FrontendTrafficSpec(
        users_m=float(params.get("users_m", 2.0)),
        storage_gbps=float(params.get("storage_gbps", 40.0)),
        checkpoint_interval_s=float(
            params.get("checkpoint_interval_s", 2 * 3600.0)
        ),
        synchronized_checkpoints=bool(
            params.get("synchronized_checkpoints", True)
        ),
    )


def _percentile(sorted_vals: Sequence[float], q: float) -> float:
    if not sorted_vals:
        return 0.0
    idx = min(len(sorted_vals) - 1, int(q * (len(sorted_vals) - 1) + 0.5))
    return sorted_vals[idx]


def run_churn(params: Mapping[str, Any], seed: int) -> Dict[str, Any]:
    """Fleet churn scenario: the ``fleet.churn`` experiment body."""
    cluster = _build_cluster(params)
    arrivals = generate_arrivals(
        _arrival_spec(params), int(params.get("arrivals", 60)),
        derive_seed(seed, "fleet.churn"),
    )
    sim = FleetSimulator(
        cluster,
        arrivals,
        policy=str(params.get("policy", "pack")),
        frontend_traffic=_frontend_traffic(params),
        edge_mb=float(params.get("edge_mb", 64.0)),
        seed=seed,
    )
    result = sim.run(snapshots=int(params.get("snapshots", 3)))
    admitted = result.admitted
    waits = sorted(j.queue_wait_s for j in admitted)
    frags = [j.decision.fragmentation for j in admitted]
    payload: Dict[str, Any] = {
        "arrivals": len(result.jobs),
        "admitted": len(admitted),
        "completed": sum(1 for j in result.jobs if j.state == "done"),
        "rejected": len(result.rejected),
        "policy": str(params.get("policy", "pack")),
        "makespan_s": round(result.makespan_s, 6),
        "queue_wait": {
            "mean_s": round(sum(waits) / len(waits), 6) if waits else 0.0,
            "p50_s": round(_percentile(waits, 0.50), 6),
            "p95_s": round(_percentile(waits, 0.95), 6),
            "max_s": round(waits[-1], 6) if waits else 0.0,
        },
        "fragmentation": {
            "mean": round(sum(frags) / len(frags), 6) if frags else 1.0,
            "max": round(max(frags), 6) if frags else 1.0,
            "multi_segment_jobs": sum(
                1 for j in admitted if j.decision.segments_spanned > 1
            ),
            "cross_pod_jobs": sum(
                1 for j in admitted if j.decision.cross_pod_boundaries > 0
            ),
        },
        "gpu_utilization": round(
            result.busy_gpu_seconds
            / max(result.total_gpus * result.makespan_s, _EPS),
            6,
        ),
        "snapshots": result.snapshots,
    }
    if not bool(params.get("keep_per_job", False)):
        for snap in payload["snapshots"]:
            if snap["backend"]:
                snap["backend"].pop("per_job", None)
    return payload


def run_interference(params: Mapping[str, Any], seed: int) -> Dict[str, Any]:
    """Tenant interference across policies: ``fleet.interference``."""
    cluster = _build_cluster(params)
    sizes = params.get("gpu_sizes", [32, 32, 64, 64])
    policies = params.get("policies", ["pack", "spread", "interleave"])
    if isinstance(policies, str):
        policies = [policies]
    durations = 3600.0
    jobs = [
        JobArrival(job_id=i, arrive_s=0.0, gpus=int(g),
                   hosts=max(1, -(-int(g) // 8)), duration_s=durations)
        for i, g in enumerate(sizes)
    ]
    frontend_traffic = _frontend_traffic(params)
    frontend_model = (FrontendModel()
                      if frontend_traffic is not None else None)
    out: Dict[str, Any] = {
        "gpu_sizes": [int(g) for g in sizes],
        "policies": {},
    }
    for policy in policies:
        sim = FleetSimulator(
            cluster,
            jobs,
            policy=str(policy),
            frontend_traffic=frontend_traffic,
            frontend_model=frontend_model,
            edge_mb=float(params.get("edge_mb", 64.0)),
            seed=derive_seed(seed, "fleet.interference", str(policy)),
        )
        # place everything by hand-driving arrivals, then snapshot once
        for job in jobs:
            sim.jobs[job.job_id] = FleetJob(job)
            sim.now = job.arrive_s
            sim._on_arrive(sim.jobs[job.job_id])
        queued = [j.job_id for j in sim.jobs.values()
                  if j.state != "running"]
        if queued:
            raise PlacementError(
                f"interference scenario does not fit the cluster: jobs "
                f"{queued} left unplaced under policy {policy!r}"
            )
        snap = sim.snapshot(0)
        out["policies"][str(policy)] = {
            "backend": snap["backend"],
            "frontend": snap["frontend"],
        }
    return out


def run_fleet_bench(params: Mapping[str, Any], seed: int) -> Dict[str, Any]:
    """Perf benchmark body for ``bench.fleet`` (wall-clock measured)."""
    import time

    t0 = time.perf_counter()
    payload = run_churn(params, seed)
    wall_s = time.perf_counter() - t0
    snapshots = payload.pop("snapshots")
    payload["snapshot_count"] = len(snapshots)
    payload["frontend_classes"] = sum(
        len(s["frontend"].get("classes", [])) for s in snapshots
    )
    payload["backend_flows"] = sum(
        s["backend"].get("flows", 0) for s in snapshots
    )
    payload["wall_s"] = round(wall_s, 4)
    payload["arrivals_per_sec"] = round(
        payload["arrivals"] / max(wall_s, _EPS), 2
    )
    return payload
