"""Pluggable GPU placement policies for the fleet simulator.

Three built-in policies reproduce the placement regimes the paper
contrasts (section 5 / Figure 15):

* ``pack`` -- segment packing: fill segments contiguously, the HPN
  best case (96.3% of jobs land inside one 1K-GPU segment);
* ``spread`` -- rail-aware spread: take an even share of hosts from
  every free segment, trading locality for balanced residual capacity
  (the DCN+-style fragmented regime);
* ``interleave`` -- worst-case ablation: spread *and* round-robin the
  host order across segments, destroying ring locality entirely.

Every successful placement yields a :class:`PlacementDecision` -- the
hosts, segments spanned vs. the contiguous ideal, a fragmentation
score, and section-7 cross-pod accounting when pipeline stages had to
split across pods.

Extension point: subclass :class:`PlacementPolicy`, implement
``place``, and register with :func:`register_policy` -- the fleet
experiments and CLI accept any registered name.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple, Type

from ..core.errors import PlacementError
from ..training.scheduler import Scheduler
from .arrivals import JobArrival


@dataclass(frozen=True)
class PlacementDecision:
    """The record of where one job landed and how fragmented it is."""

    job_id: int
    policy: str
    hosts: Tuple[str, ...]
    #: distinct (pod, segment) blocks the job occupies
    segments_spanned: int
    #: segments a contiguous placement would have needed
    ideal_segments: int
    #: pipeline stages per pod when placed cross-pod (0 = single-pod)
    cross_pod_stages: int = 0
    #: pod boundaries the pipeline crosses (len(pods) - 1, section 7)
    cross_pod_boundaries: int = 0

    @property
    def fragmentation(self) -> float:
        """Segments spanned relative to the contiguous ideal (>= 1.0).

        1.0 is a perfectly packed job; the paper's Figure-15 pathology
        (2300 GPUs over 19 segments where 18 would fit) scores ~1.06.
        """
        return self.segments_spanned / max(1, self.ideal_segments)


class PlacementPolicy:
    """Base policy: maps a job onto scheduler allocations.

    The section-7 rule is enforced here, not in each subclass: a job
    is first placed inside a single pod (the pod with the most free
    hosts that fits it); only when no pod can hold the job *and* the
    job's pipeline depth divides across pods does the cross-pod path
    run. Subclasses override :meth:`_place_in_pod` only.
    """

    name = "base"

    def place(self, scheduler: Scheduler, job: JobArrival) -> PlacementDecision:
        pod = self._pod_for(scheduler, job)
        if pod is None:
            cross = self._place_cross_pod(scheduler, job)
            if cross is None:
                raise PlacementError(
                    f"no pod has {job.hosts} free hosts and job "
                    f"{job.job_id} is not cross-pod eligible (pp={job.pp})"
                )
            return cross
        hosts = self._place_in_pod(scheduler, job, pod)
        return self._decide(scheduler, job, tuple(hosts))

    def _place_in_pod(
        self, scheduler: Scheduler, job: JobArrival, pod: int
    ) -> Tuple[str, ...]:
        raise NotImplementedError

    # ------------------------------------------------------------------
    def _pod_for(
        self, scheduler: Scheduler, job: JobArrival
    ) -> Optional[int]:
        """Pod with the most free hosts that still fits the job."""
        by_pod: Dict[int, int] = {}
        for (pod, _seg), hosts in scheduler.free_hosts_by_segment().items():
            by_pod[pod] = by_pod.get(pod, 0) + len(hosts)
        best = None
        for pod in sorted(by_pod):
            if by_pod[pod] < job.hosts:
                continue
            if best is None or by_pod[pod] > by_pod[best]:
                best = pod
        return best

    def _free_segments_in_pod(
        self, scheduler: Scheduler, pod: int
    ) -> int:
        return sum(
            1 for (p, _seg) in scheduler.free_hosts_by_segment() if p == pod
        )

    def _ideal_segments(self, scheduler: Scheduler, hosts: int) -> int:
        sizes = [len(v) for v in _segment_capacity(scheduler).values()]
        largest = max(sizes) if sizes else 1
        return max(1, -(-hosts // largest))

    def _decide(
        self,
        scheduler: Scheduler,
        job: JobArrival,
        hosts: Tuple[str, ...],
        cross_pod_stages: int = 0,
        cross_pod_boundaries: int = 0,
    ) -> PlacementDecision:
        return PlacementDecision(
            job_id=job.job_id,
            policy=self.name,
            hosts=hosts,
            segments_spanned=scheduler.segments_spanned(hosts),
            ideal_segments=self._ideal_segments(scheduler, job.hosts),
            cross_pod_stages=cross_pod_stages,
            cross_pod_boundaries=cross_pod_boundaries,
        )

    def _place_cross_pod(
        self, scheduler: Scheduler, job: JobArrival
    ) -> Optional[PlacementDecision]:
        """Section-7 fallback: split whole PP stages across pods."""
        pods = sorted({h.pod for h in scheduler.topo.active_hosts()})
        if len(pods) < 2 or job.pp < 2 or job.pp % len(pods):
            return None
        if job.hosts % job.pp:
            return None
        try:
            hosts = scheduler.place_cross_pod(
                hosts_per_stage=job.hosts // job.pp, pp=job.pp, pods=pods
            )
        except PlacementError:
            return None
        return self._decide(
            scheduler,
            job,
            tuple(hosts),
            cross_pod_stages=job.pp // len(pods),
            cross_pod_boundaries=len(pods) - 1,
        )


def _segment_capacity(scheduler: Scheduler):
    """All hosts per segment (occupied or not): the structural pools."""
    from ..training.scheduler import _segment_blocks

    return _segment_blocks(scheduler.topo)


class SegmentPackingPolicy(PlacementPolicy):
    """Fill segments contiguously -- the HPN design intent."""

    name = "pack"

    def _place_in_pod(
        self, scheduler: Scheduler, job: JobArrival, pod: int
    ) -> Tuple[str, ...]:
        return tuple(scheduler.place(job.hosts, pods=(pod,)))


class RailAwareSpreadPolicy(PlacementPolicy):
    """Take an even share from every free segment (balanced residuals)."""

    name = "spread"

    interleave = False

    def _place_in_pod(
        self, scheduler: Scheduler, job: JobArrival, pod: int
    ) -> Tuple[str, ...]:
        segments = self._free_segments_in_pod(scheduler, pod)
        per_segment = max(1, -(-job.hosts // max(1, segments)))
        try:
            hosts = scheduler.place(
                job.hosts,
                max_hosts_per_segment=per_segment,
                interleave=self.interleave,
                pods=(pod,),
            )
        except PlacementError:
            # uneven pools can starve the even share; fall back to pack
            hosts = scheduler.place(
                job.hosts, interleave=self.interleave, pods=(pod,)
            )
        return tuple(hosts)


class InterleavedWorstCasePolicy(RailAwareSpreadPolicy):
    """Spread plus round-robin host order: the locality ablation."""

    name = "interleave"

    interleave = True


_POLICIES: Dict[str, Type[PlacementPolicy]] = {}


def register_policy(cls: Type[PlacementPolicy]) -> Type[PlacementPolicy]:
    """Register a policy class under its ``name`` (extension point)."""
    _POLICIES[cls.name] = cls
    return cls


for _cls in (SegmentPackingPolicy, RailAwareSpreadPolicy,
             InterleavedWorstCasePolicy):
    register_policy(_cls)


def get_policy(name: str) -> PlacementPolicy:
    """Instantiate a registered policy by name."""
    try:
        return _POLICIES[name]()
    except KeyError:
        known = ", ".join(sorted(_POLICIES))
        raise PlacementError(
            f"unknown placement policy {name!r} (registered: {known})"
        ) from None


def policy_names() -> Tuple[str, ...]:
    return tuple(sorted(_POLICIES))
