"""Frontend traffic classes: checkpoint storms, storage, inference.

The paper's section-8 frontend network concurrently carries checkpoint
bursts (Figure 4), CPFS/OSS storage traffic, and inference serving for
*millions of users*. Simulating per-user flows would be absurd; the
fleet layer instead models each traffic family as an **aggregated flow
class** -- a named offered load carried by a handful of representative
flows -- so simulation cost scales with the number of classes, not the
number of users.

:class:`FrontendModel` owns the section-8 topology
(:func:`repro.topos.build_frontend`), routes each class's flows over
it, and runs them through the same
:class:`~repro.fabric.simulator.FluidSimulator` the backend uses. The
output per class is achieved vs. offered throughput (the contention
ratio) plus per-tier peak utilization.

Extension point: append :class:`FlowClass` records to the list any
builder returns -- the simulator treats every class identically.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..core.topology import Topology
from ..core.units import gbps_to_bytes_per_sec
from ..engine.spec import derive_seed
from ..fabric.flow import Flow
from ..fabric.simulator import FluidSimulator
from ..routing.cache import shared_router
from ..routing.hashing import FiveTuple
from ..topos.spec import FrontendSpec
from ..training.checkpoint import CheckpointSpec
from ..workloads.cloud import diurnal_factor

#: RoCEv2 destination port (frontend storage/inference also ride RDMA)
_DPORT = 4791
_EPS = 1e-9


@dataclass(frozen=True)
class FlowClass:
    """One aggregated traffic family on the frontend network."""

    name: str
    kind: str  # "checkpoint" | "storage" | "inference"
    offered_gbps: float
    #: representative flows carrying the class (cost knob, not users)
    flows: int = 4

    def __post_init__(self) -> None:
        if self.flows < 1:
            raise ValueError("a flow class needs at least one flow")
        if self.offered_gbps < 0:
            raise ValueError("offered load cannot be negative")


@dataclass(frozen=True)
class FrontendTrafficSpec:
    """Knobs for the three built-in class families."""

    #: inference serving population, in millions of users
    users_m: float = 2.0
    #: mean per-user serving bandwidth (tokens in/out, kbit/s)
    per_user_kbps: float = 2.0
    inference_flows: int = 8
    #: steady CPFS/OSS background (dataset reads, shuffles)
    storage_gbps: float = 40.0
    storage_flows: int = 8
    #: checkpoint economics (write time and bytes; paper section 2.3)
    checkpoint: CheckpointSpec = CheckpointSpec()
    checkpoint_interval_s: float = 2 * 3600.0
    checkpoint_flows_per_job: int = 4
    #: True aligns every job's storms on a global clock (the Figure-4
    #: worst case); False staggers storms by each job's start time
    synchronized_checkpoints: bool = True
    diurnal_amplitude: float = 0.4
    peak_hour: float = 14.0


def inference_class(spec: FrontendTrafficSpec, now_s: float) -> FlowClass:
    """Millions-of-users serving load at ``now_s`` (diurnal shape)."""
    offered = (
        spec.users_m * 1e6 * spec.per_user_kbps * 1e3 / 1e9
        * diurnal_factor(now_s / 3600.0, spec.diurnal_amplitude,
                         spec.peak_hour)
    )
    return FlowClass("inference", "inference", offered, spec.inference_flows)


def storage_class(spec: FrontendTrafficSpec) -> FlowClass:
    return FlowClass("storage", "storage", spec.storage_gbps,
                     spec.storage_flows)


def checkpoint_classes(
    spec: FrontendTrafficSpec,
    running_jobs: Sequence[Tuple[int, int, float]],
    now_s: float,
) -> List[FlowClass]:
    """Checkpoint storms active at ``now_s``.

    ``running_jobs`` is ``(job_id, gpus, placed_at_s)`` tuples. A job
    is mid-storm when its checkpoint phase falls inside the write
    window; a storm's offered load is the job's full checkpoint image
    pushed out over the write time (Figure 4's burst shape).
    """
    interval = spec.checkpoint_interval_s
    write = spec.checkpoint.write_seconds
    out: List[FlowClass] = []
    for job_id, gpus, placed_at in running_jobs:
        phase = (now_s - (0.0 if spec.synchronized_checkpoints
                          else placed_at)) % interval
        if phase >= write:
            continue
        offered = (
            spec.checkpoint.storage_bytes(gpus) * 8.0 / 1e9 / write
        )
        out.append(
            FlowClass(f"checkpoint/job{job_id}", "checkpoint", offered,
                      spec.checkpoint_flows_per_job)
        )
    return out


def build_classes(
    spec: FrontendTrafficSpec,
    running_jobs: Sequence[Tuple[int, int, float]],
    now_s: float,
) -> List[FlowClass]:
    """The full class mix at one instant: serving + storage + storms."""
    classes = [inference_class(spec, now_s), storage_class(spec)]
    classes.extend(checkpoint_classes(spec, running_jobs, now_s))
    return classes


# ----------------------------------------------------------------------
def tier_peak_utilization(
    topo: Topology, loads: Dict[int, float]
) -> Dict[str, float]:
    """Peak link utilization per tier from a dirlink -> Gbps load map.

    Tier labels follow the simulator's convention: ``access`` for
    host-facing links, ``agg``/``core``/``tierN`` by the higher switch
    tier on the link. Shared by the frontend model and the backend
    interference snapshots.
    """
    per_tier: Dict[str, float] = {}
    for dl in sorted(loads):
        link = topo.links[dl // 2]
        if not link.up or link.gbps <= _EPS:
            continue
        sa = topo.switches.get(link.a.node)
        sb = topo.switches.get(link.b.node)
        if sa is None or sb is None:
            tier = "access"
        else:
            top = max(sa.tier, sb.tier)
            tier = {2: "agg", 3: "core"}.get(top, f"tier{top}")
        util = loads[dl] / link.gbps
        if util > per_tier.get(tier, 0.0):
            per_tier[tier] = util
    return per_tier


class FrontendModel:
    """The section-8 fabric plus the machinery to simulate class mixes."""

    def __init__(self, spec: Optional[FrontendSpec] = None):
        self.spec = spec or FrontendSpec()
        from ..topos.frontend import build_frontend

        self.topo = build_frontend(self.spec)
        self.router = shared_router(self.topo)
        self.compute = sorted(
            h.name for h in self.topo.active_hosts()
            if h.name not in set(self.topo.meta["storage_hosts"])
        )
        self.storage = sorted(self.topo.meta["storage_hosts"])

    # ------------------------------------------------------------------
    def _endpoints(
        self, cls: FlowClass, rng: random.Random
    ) -> Tuple[str, str]:
        """Pick one (src, dst) host pair for a flow of ``cls``."""
        if cls.kind == "checkpoint":
            return rng.choice(self.compute), rng.choice(self.storage)
        if cls.kind == "storage":
            return rng.choice(self.storage), rng.choice(self.compute)
        # inference: serving traffic traverses the full fabric; model
        # it as compute pairs in different ToR pairs (east-west)
        src = rng.choice(self.compute)
        src_seg = self.topo.hosts[src].segment
        others = [h for h in self.compute
                  if self.topo.hosts[h].segment != src_seg]
        return src, rng.choice(others or self.compute)

    def class_flows(
        self, classes: Sequence[FlowClass], window_s: float, seed: int
    ) -> List[Flow]:
        """Route each class's representative flows for one window."""
        flows: List[Flow] = []
        for cls in classes:
            if cls.offered_gbps <= _EPS:
                continue
            rng = random.Random(derive_seed(seed, "fleet.fe", cls.name))
            per_flow_bytes = (
                gbps_to_bytes_per_sec(cls.offered_gbps) * window_s
                / cls.flows
            )
            for i in range(cls.flows):
                src_host, dst_host = self._endpoints(cls, rng)
                if src_host == dst_host:
                    continue
                src = self.topo.hosts[src_host].frontend_nic()
                dst = self.topo.hosts[dst_host].frontend_nic()
                ft = FiveTuple(src.ip, dst.ip, 49152 + i, _DPORT)
                path = self.router.path_for(src, dst, ft)
                flows.append(
                    Flow(
                        five_tuple=ft,
                        size_bytes=per_flow_bytes,
                        path=path,
                        start_time=0.0,
                        tag=f"fe/{cls.name}",
                    )
                )
        return flows

    def simulate(
        self,
        classes: Sequence[FlowClass],
        window_s: float,
        seed: int,
        recorder=None,
    ) -> Dict[str, Any]:
        """Run one contended window; per-class achieved vs. offered."""
        flows = self.class_flows(classes, window_s, seed)
        result: Dict[str, Any] = {
            "window_s": window_s,
            "classes": [],
            "tier_util": {},
        }
        if not flows:
            return result
        sim = FluidSimulator(self.topo, sample_links=True,
                             recorder=recorder)
        sim.add_flows(flows)
        sim_result = sim.run(until=window_s)
        remaining = {f.flow_id: f.remaining_bytes for f in sim.active_flows}
        by_tag: Dict[str, float] = {}
        for f in flows:
            done = f.size_bytes - remaining.get(f.flow_id, 0.0)
            by_tag[f.tag] = by_tag.get(f.tag, 0.0) + done
        for cls in classes:
            if cls.offered_gbps <= _EPS:
                continue
            achieved = by_tag.get(f"fe/{cls.name}", 0.0) * 8.0 / 1e9 / window_s
            result["classes"].append({
                "name": cls.name,
                "kind": cls.kind,
                "offered_gbps": round(cls.offered_gbps, 6),
                "achieved_gbps": round(achieved, 6),
                "contention": round(
                    achieved / cls.offered_gbps, 6
                ) if cls.offered_gbps > _EPS else 1.0,
            })
        if sim_result.samples:
            _t0, loads = sim_result.samples[0]
            result["tier_util"] = {
                tier: round(util, 6)
                for tier, util in sorted(
                    tier_peak_utilization(self.topo, loads).items()
                )
            }
        return result
