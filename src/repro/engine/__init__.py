"""Experiment orchestration engine.

Turns every simulation in the repo into a schedulable, cacheable,
reproducible *experiment*:

* :mod:`~repro.engine.spec` -- experiment specs (callable + typed
  params + explicit seed), the registry, deterministic seed derivation;
* :mod:`~repro.engine.runner` -- serial and process-pool backends with
  identical results either way;
* :mod:`~repro.engine.cache` -- content-addressed on-disk result cache
  (key = hash of code version + params + seed) with warm-run skip;
* :mod:`~repro.engine.manifest` -- per-run JSON manifests recording
  params, seeds, wall times, workers, cache hits, and payloads;
* :mod:`~repro.engine.builtin` -- the catalogue of built-in
  experiments (design sweeps, Monte-Carlo reliability, fault drills,
  collective benchmarks).

CLI surface: ``python -m repro exp list|run|compare``.

Quick start::

    from repro.engine import Runner, ResultCache

    runner = Runner(cache=ResultCache(".repro/cache"), backend="process")
    result = runner.run_grid("reliability.trials",
                             {"gpus": [1000, 2000, 3000]}, base_seed=42)
    print(result.manifest.cache_hit_rate)
"""

from .cache import CacheStats, ResultCache
from .manifest import (
    ExperimentRecord,
    RunManifest,
    compare_manifests,
    load_manifest,
)
from .runner import BACKENDS, Event, Runner, RunResult
from .spec import (
    ExperimentDef,
    ExperimentSpec,
    all_experiments,
    derive_seed,
    experiment,
    get_experiment,
    register,
    specs_for_grid,
)

__all__ = [
    "BACKENDS",
    "CacheStats",
    "Event",
    "ExperimentDef",
    "ExperimentRecord",
    "ExperimentSpec",
    "ResultCache",
    "RunManifest",
    "RunResult",
    "Runner",
    "all_experiments",
    "compare_manifests",
    "derive_seed",
    "experiment",
    "get_experiment",
    "load_manifest",
    "register",
    "specs_for_grid",
]
