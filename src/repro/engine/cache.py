"""Content-addressed on-disk result cache.

Entries are keyed by :meth:`ExperimentSpec.cache_key` -- a sha256 over
(experiment name, params, seed, code version) -- and stored one JSON
file per key under ``<root>/<key[:2]>/<key>.json`` with a payload
checksum. The addressing discipline gives the cache its semantics for
free:

* same computation -> same key -> warm-run skip;
* any changed input (param, seed, code) -> different key -> miss and
  re-run; stale entries are never *wrong*, only unreferenced;
* a corrupted entry (truncated file, bit-flipped payload, schema
  drift) fails its checksum and is treated as a miss and recomputed.

Writes are atomic (temp file + ``os.replace``) so a crashed run never
leaves a half-written entry that poisons later runs.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, Optional

from ..core.serialize import stable_json_dumps
from ..obs import get_logger

_log = get_logger("engine.cache")

#: bumped on cache entry format changes; mismatched entries read as misses
ENTRY_SCHEMA = 1


def _payload_digest(payload: Any) -> str:
    return hashlib.sha256(
        stable_json_dumps(payload).encode("utf-8")
    ).hexdigest()


@dataclass
class CacheStats:
    """Counters for one cache's lifetime in a process."""

    hits: int = 0
    misses: int = 0
    corrupt: int = 0
    writes: int = 0


@dataclass
class ResultCache:
    """Filesystem-backed map from cache key to experiment payload."""

    root: str
    stats: CacheStats = field(default_factory=CacheStats)

    def path_for(self, key: str) -> str:
        """Where an entry for ``key`` lives (existing or not)."""
        return os.path.join(self.root, key[:2], f"{key}.json")

    # ------------------------------------------------------------------
    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The cached payload for ``key``, or None on miss.

        Unreadable, malformed, or checksum-failing entries count as
        ``corrupt`` misses and are deleted so the slot is recomputed
        cleanly rather than tripping on every warm run.
        """
        path = self.path_for(key)
        try:
            with open(path) as fh:
                entry = json.load(fh)
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            self._drop_corrupt(path)
            return None
        if (
            not isinstance(entry, dict)
            or entry.get("schema") != ENTRY_SCHEMA
            or entry.get("key") != key
            or "payload" not in entry
            or entry.get("payload_sha256") != _payload_digest(entry["payload"])
        ):
            self._drop_corrupt(path)
            return None
        self.stats.hits += 1
        return entry["payload"]

    def put(self, key: str, payload: Any) -> str:
        """Store ``payload`` under ``key`` atomically; returns the path."""
        path = self.path_for(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        entry = {
            "schema": ENTRY_SCHEMA,
            "key": key,
            "payload_sha256": _payload_digest(payload),
            "payload": payload,
        }
        fd, tmp = tempfile.mkstemp(
            dir=os.path.dirname(path), suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as fh:
                fh.write(stable_json_dumps(entry))
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise
        self.stats.writes += 1
        return path

    # ------------------------------------------------------------------
    def invalidate(self, key: str) -> bool:
        """Explicitly drop one entry; True if it existed."""
        path = self.path_for(key)
        try:
            os.unlink(path)
            return True
        except FileNotFoundError:
            return False

    def clear(self) -> int:
        """Drop every entry; returns the number removed."""
        removed = 0
        for path in list(self._entry_paths()):
            try:
                os.unlink(path)
                removed += 1
            except FileNotFoundError:
                continue
        return removed

    def __len__(self) -> int:
        return sum(1 for _ in self._entry_paths())

    def _entry_paths(self) -> Iterator[str]:
        if not os.path.isdir(self.root):
            return
        for shard in sorted(os.listdir(self.root)):
            shard_dir = os.path.join(self.root, shard)
            if not os.path.isdir(shard_dir):
                continue
            for fname in sorted(os.listdir(shard_dir)):
                if fname.endswith(".json"):
                    yield os.path.join(shard_dir, fname)

    def _drop_corrupt(self, path: str) -> None:
        self.stats.corrupt += 1
        self.stats.misses += 1
        _log.warning("dropping corrupt cache entry %s", path)
        try:
            os.unlink(path)
        except OSError:
            pass
