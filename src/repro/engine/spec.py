"""Experiment specs and the experiment registry.

An *experiment* is a named pure function ``fn(params, seed) -> payload``
whose output depends only on its params and its explicit seed. Every
simulation entry point in the repo (design sweeps, Monte-Carlo
reliability, fault drills, collective benchmarks) registers one, which
is what makes it schedulable by :mod:`repro.engine.runner`, cacheable
by :mod:`repro.engine.cache`, and reproducible byte-for-byte.

A spec is the *invocation*: experiment name + concrete params + seed.
Specs are value objects -- two equal specs denote the same computation,
which is the contract the content-addressed cache is built on.
"""

from __future__ import annotations

import hashlib
import inspect
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional

from ..core.errors import EngineError
from ..core.serialize import stable_json_dumps

#: payload type every experiment function returns (JSON-safe mapping)
Payload = Mapping[str, Any]
ExperimentFn = Callable[[Dict[str, Any], int], Payload]


@dataclass(frozen=True)
class ExperimentSpec:
    """One schedulable experiment invocation.

    ``params`` must be JSON-safe (they are hashed into the cache key
    and written verbatim into run manifests). The seed is explicit and
    mandatory-by-default: determinism is a property of the spec, not of
    run order.
    """

    kind: str
    params: Mapping[str, Any] = field(default_factory=dict)
    seed: int = 0

    def cache_key(self, code_version: str) -> str:
        """Content-address of this computation.

        Any change to the experiment name, its params, its seed, or
        the code version produces a different key; equal inputs always
        produce the same key (stable JSON + sha256).
        """
        blob = stable_json_dumps(
            {
                "kind": self.kind,
                "params": self.params,
                "seed": self.seed,
                "code_version": code_version,
            }
        )
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class ExperimentDef:
    """A registered experiment: the callable plus its metadata."""

    name: str
    fn: ExperimentFn
    description: str = ""
    defaults: Mapping[str, Any] = field(default_factory=dict)

    def code_version(self, release: str) -> str:
        """Version stamp hashed into cache keys for this experiment.

        Combines the library release with a hash of the experiment
        function's own source, so editing the experiment invalidates
        its cached results without a manual version bump. Source may be
        unavailable (REPL-defined functions); then the release alone
        versions the code.
        """
        try:
            source = inspect.getsource(self.fn)
        except (OSError, TypeError):
            source = ""
        digest = hashlib.sha256(source.encode("utf-8")).hexdigest()[:16]
        return f"{release}+{digest}"

    def spec(self, seed: int = 0, **params: Any) -> ExperimentSpec:
        """Build a spec over this experiment's defaults."""
        merged = dict(self.defaults)
        merged.update(params)
        return ExperimentSpec(kind=self.name, params=merged, seed=seed)


_REGISTRY: Dict[str, ExperimentDef] = {}
_BUILTINS_LOADED = False


def register(defn: ExperimentDef) -> ExperimentDef:
    """Register (or replace) an experiment definition by name."""
    _REGISTRY[defn.name] = defn
    return defn


def experiment(
    name: str,
    description: str = "",
    defaults: Optional[Mapping[str, Any]] = None,
) -> Callable[[ExperimentFn], ExperimentFn]:
    """Decorator registering ``fn(params, seed)`` under ``name``."""

    def wrap(fn: ExperimentFn) -> ExperimentFn:
        register(
            ExperimentDef(
                name=name,
                fn=fn,
                description=description,
                defaults=dict(defaults or {}),
            )
        )
        return fn

    return wrap


def _ensure_builtins() -> None:
    """Import the built-in experiment catalogue exactly once."""
    global _BUILTINS_LOADED
    if not _BUILTINS_LOADED:
        _BUILTINS_LOADED = True
        from . import builtin  # noqa: F401  (import registers)


def get_experiment(name: str) -> ExperimentDef:
    """Look up a registered experiment; raises :class:`EngineError`."""
    _ensure_builtins()
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY)) or "<none>"
        raise EngineError(
            f"unknown experiment {name!r} (registered: {known})"
        ) from None


def all_experiments() -> List[ExperimentDef]:
    """Every registered experiment, sorted by name."""
    _ensure_builtins()
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


# ----------------------------------------------------------------------
# deterministic seed derivation
# ----------------------------------------------------------------------
def derive_seed(base_seed: int, *parts: Any) -> int:
    """Derive a per-experiment seed from a base seed and labels.

    Stable across processes and Python versions (sha256 over stable
    JSON, not ``hash()``), so a batch expanded on one worker count
    seeds identically on any other -- the cornerstone of
    serial-vs-parallel equivalence.
    """
    blob = stable_json_dumps([base_seed, list(parts)])
    digest = hashlib.sha256(blob.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def specs_for_grid(
    kind: str,
    grid: Mapping[str, Iterable[Any]],
    base_seed: int = 0,
    fixed: Optional[Mapping[str, Any]] = None,
) -> List[ExperimentSpec]:
    """Expand a cartesian parameter grid into seeded specs.

    Each point's seed is derived from ``base_seed`` and the point's own
    params, never from its position in the expansion, so reordering or
    filtering the grid cannot change any individual result.
    """
    defn = get_experiment(kind)
    keys = sorted(grid)
    specs: List[ExperimentSpec] = []
    for combo in itertools.product(*(list(grid[k]) for k in keys)):
        params = dict(defn.defaults)
        params.update(fixed or {})
        params.update(dict(zip(keys, combo)))
        specs.append(
            ExperimentSpec(
                kind=kind,
                params=params,
                seed=derive_seed(base_seed, kind, params),
            )
        )
    return specs
