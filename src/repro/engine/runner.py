"""Experiment runner: serial and process-pool execution backends.

The runner turns a batch of :class:`ExperimentSpec`s into payloads and
a :class:`RunManifest`, consulting the content-addressed cache first
and fanning cache misses out across workers. Two invariants:

* **backend equivalence** -- each experiment's result depends only on
  its spec (the function receives its own params and its own explicit
  seed, never shared RNG state), so the parallel backend produces
  byte-identical payloads to the serial one, in the same batch order,
  regardless of completion order;
* **warm-run skip** -- a spec whose cache key is present never
  executes; the manifest records the hit so callers can assert cache
  effectiveness (the CI smoke job requires >=90% on a warm re-run).

Progress is observable through an event callback: one ``start`` /
``cache-hit`` / ``done`` / ``error`` event per experiment.
"""

from __future__ import annotations

import os
import time
import uuid
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from .. import __version__
from ..core.errors import EngineError
from ..core.serialize import to_jsonable
from ..obs import (
    HealthEngine,
    HealthReport,
    Recorder,
    set_recorder,
    write_chrome_trace,
    write_events_jsonl,
    write_health_report,
    write_metrics_snapshot,
    write_prometheus,
)
from .cache import ResultCache
from .manifest import ExperimentRecord, RunManifest
from .spec import ExperimentSpec, get_experiment, specs_for_grid

BACKENDS = ("serial", "process")


@dataclass(frozen=True)
class Event:
    """One progress notification from a running batch."""

    kind: str  # "start" | "cache-hit" | "done" | "error"
    spec: ExperimentSpec
    index: int
    total: int
    detail: str = ""


EventCallback = Callable[[Event], None]


@dataclass
class RunResult:
    """Payloads (in spec order) plus the manifest that produced them."""

    payloads: List[Mapping[str, Any]]
    manifest: RunManifest
    manifest_path: Optional[str] = None
    #: the recorder that observed the batch (tracing runs only)
    recorder: Optional[Recorder] = None
    #: finalized health verdict (``Runner(health=True)`` runs only)
    health_report: Optional[HealthReport] = None


def _execute(kind: str, params: Dict[str, Any], seed: int
             ) -> Tuple[str, float, Any]:
    """Run one experiment; top-level so process workers can pickle it.

    Returns (worker id, wall seconds, JSON-safe payload). The worker
    resolves the experiment by name through the registry -- under
    ``spawn`` start methods the registry is rebuilt from the built-in
    catalogue on first lookup.
    """
    defn = get_experiment(kind)
    t0 = time.perf_counter()
    payload = defn.fn(dict(params), seed)
    wall_s = time.perf_counter() - t0
    return f"pid-{os.getpid()}", wall_s, to_jsonable(payload)


@dataclass
class Runner:
    """Schedules experiment batches over a backend and a cache.

    ``cache=None`` disables caching (every spec executes). ``force``
    keeps the cache for writing but ignores it for reads -- an explicit
    full invalidation of the batch. ``code_version`` overrides the
    per-experiment stamp (release + function-source hash); tests use it
    to model "the code changed".
    """

    cache: Optional[ResultCache] = None
    backend: str = "serial"
    max_workers: Optional[int] = None
    manifest_dir: Optional[str] = None
    on_event: Optional[EventCallback] = None
    force: bool = False
    code_version: Optional[str] = None
    #: when set, the batch runs under a process-wide Recorder and its
    #: trace/metrics/events artifacts land in this directory (and are
    #: referenced from the manifest). Serial backend only: the recorder
    #: is per-process state that process workers would not share.
    trace_dir: Optional[str] = None
    #: attach a :class:`repro.obs.HealthEngine` to the batch recorder:
    #: samplers/detectors run live and the finalized report + Prometheus
    #: snapshot land next to the trace artifacts. Requires ``trace_dir``
    #: (which already forces the serial backend).
    health: bool = False

    def __post_init__(self) -> None:
        if self.backend not in BACKENDS:
            raise EngineError(
                f"unknown backend {self.backend!r} "
                f"(expected one of {', '.join(BACKENDS)})"
            )
        if self.trace_dir is not None and self.backend != "serial":
            raise EngineError(
                "tracing requires the serial backend: the recorder is "
                "per-process state that process workers would not share"
            )
        if self.health and self.trace_dir is None:
            raise EngineError(
                "health monitoring rides on the tracing recorder; pass "
                "trace_dir= as well"
            )

    # ------------------------------------------------------------------
    def run(self, specs: Sequence[ExperimentSpec]) -> RunResult:
        """Execute a batch; results come back in spec order."""
        total = len(specs)
        versions: Dict[str, str] = {}
        for spec in specs:
            if spec.kind not in versions:
                defn = get_experiment(spec.kind)
                versions[spec.kind] = (
                    self.code_version
                    if self.code_version is not None
                    else defn.code_version(__version__)
                )
        keys = [s.cache_key(versions[s.kind]) for s in specs]

        manifest = RunManifest(
            run_id=f"{time.strftime('%Y%m%dT%H%M%S')}-{uuid.uuid4().hex[:8]}",
            backend=self.backend,
            workers=self._worker_count(),
            code_versions=versions,
            started_at_s=time.time(),
        )

        # cache pass: resolve hits up front so only misses execute
        slots: List[Optional[Tuple[str, float, Any]]] = [None] * total
        misses: List[int] = []
        for i, (spec, key) in enumerate(zip(specs, keys)):
            payload = None
            if self.cache is not None and not self.force:
                payload = self.cache.get(key)
            if payload is not None:
                slots[i] = ("cache", 0.0, payload)
                self._emit(Event("cache-hit", spec, i, total, key[:12]))
            else:
                misses.append(i)

        recorder: Optional[Recorder] = None
        health_engine: Optional[HealthEngine] = None
        if self.trace_dir is not None:
            recorder = Recorder()
            if self.health:
                # attach before any experiment body builds simulators:
                # components read rec.health once at construction
                health_engine = HealthEngine(recorder).attach()
        if misses:
            if recorder is not None:
                previous = set_recorder(recorder)
                try:
                    self._execute_misses(specs, misses, slots, total)
                finally:
                    set_recorder(previous)
            else:
                self._execute_misses(specs, misses, slots, total)

        # assemble records in spec order; write misses through to cache
        payloads: List[Mapping[str, Any]] = []
        for i, (spec, key) in enumerate(zip(specs, keys)):
            slot = slots[i]
            if slot is None:  # defensive: every slot must be filled
                raise EngineError(f"experiment {spec.kind}[{i}] never ran")
            worker, wall_s, payload = slot
            hit = worker == "cache"
            if not hit and self.cache is not None:
                self.cache.put(key, payload)
            manifest.records.append(
                ExperimentRecord(
                    kind=spec.kind,
                    params=dict(spec.params),
                    seed=spec.seed,
                    cache_key=key,
                    cache_hit=hit,
                    wall_time_s=wall_s,
                    worker=worker,
                    payload=payload,
                )
            )
            payloads.append(payload)

        manifest.finished_at_s = time.time()
        health_report: Optional[HealthReport] = None
        if health_engine is not None:
            # finalize before exporting so incident spans (track
            # "health") land in the trace/events artifacts
            health_report = health_engine.finalize()
        if recorder is not None:
            manifest.artifacts = self._write_artifacts(
                recorder, manifest.run_id, health_report
            )
        path = None
        if self.manifest_dir is not None:
            path = manifest.save(self.manifest_dir)
        return RunResult(payloads=payloads, manifest=manifest,
                         manifest_path=path, recorder=recorder,
                         health_report=health_report)

    # ------------------------------------------------------------------
    def run_grid(
        self,
        kind: str,
        grid: Mapping[str, Sequence[Any]],
        base_seed: int = 0,
        fixed: Optional[Mapping[str, Any]] = None,
    ) -> RunResult:
        """Parallel map over a cartesian parameter grid.

        Seeds derive from (base_seed, params) -- see
        :func:`repro.engine.spec.specs_for_grid` -- so the expansion is
        stable under reordering and across backends.
        """
        return self.run(specs_for_grid(kind, grid, base_seed, fixed))

    # ------------------------------------------------------------------
    def _write_artifacts(
        self, recorder: Recorder, run_id: str,
        health_report: Optional[HealthReport] = None,
    ) -> Dict[str, str]:
        """Export the recorder's view of the batch next to the manifest."""
        assert self.trace_dir is not None
        os.makedirs(self.trace_dir, exist_ok=True)
        trace = os.path.join(self.trace_dir, f"trace-{run_id}.json")
        metrics = os.path.join(self.trace_dir, f"metrics-{run_id}.json")
        events = os.path.join(self.trace_dir, f"events-{run_id}.jsonl")
        write_chrome_trace(recorder, trace)
        write_metrics_snapshot(recorder, metrics)
        write_events_jsonl(recorder, events)
        artifacts = {"trace": trace, "metrics": metrics, "events": events}
        if health_report is not None:
            health = os.path.join(self.trace_dir, f"health-{run_id}.json")
            prom = os.path.join(self.trace_dir, f"prom-{run_id}.prom")
            write_health_report(health_report, health)
            write_prometheus(recorder, prom)
            artifacts["health"] = health
            artifacts["prometheus"] = prom
        return artifacts

    # ------------------------------------------------------------------
    def _worker_count(self) -> int:
        if self.backend == "serial":
            return 1
        return self.max_workers or os.cpu_count() or 1

    def _emit(self, event: Event) -> None:
        if self.on_event is not None:
            self.on_event(event)

    def _execute_misses(
        self,
        specs: Sequence[ExperimentSpec],
        misses: List[int],
        slots: List[Optional[Tuple[str, float, Any]]],
        total: int,
    ) -> None:
        if self.backend == "serial":
            for i in misses:
                spec = specs[i]
                self._emit(Event("start", spec, i, total))
                try:
                    slots[i] = _execute(spec.kind, dict(spec.params),
                                        spec.seed)
                except Exception as exc:
                    self._emit(Event("error", spec, i, total, str(exc)))
                    raise
                self._emit(Event("done", spec, i, total))
            return

        with ProcessPoolExecutor(max_workers=self._worker_count()) as pool:
            futures = {}
            for i in misses:
                spec = specs[i]
                self._emit(Event("start", spec, i, total))
                futures[pool.submit(
                    _execute, spec.kind, dict(spec.params), spec.seed
                )] = i
            for future in futures:
                i = futures[future]
                try:
                    slots[i] = future.result()
                except Exception as exc:
                    self._emit(Event("error", specs[i], i, total, str(exc)))
                    raise
                self._emit(Event("done", specs[i], i, total))
