"""Run manifests: the audit trail of an engine batch.

Every :meth:`Runner.run` produces one manifest -- a JSON artifact
recording, per experiment: the spec (kind/params/seed), its cache key,
whether it was a cache hit, wall time, which worker executed it, and
the result payload. Manifests serve three purposes:

* **provenance** -- a figure regenerated through the engine names the
  exact seeds and code version that produced it;
* **equivalence checking** -- :meth:`RunManifest.canonical_json` strips
  the fields that legitimately vary between runs (timing, worker ids,
  run id, backend) so a serial and a parallel run of the same batch
  compare byte-identical;
* **perf trajectories** -- the timing fields that the canonical form
  strips are exactly what regression tracking wants to keep.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Mapping, Optional

from ..core.errors import EngineError
from ..core.serialize import stable_json_dumps

#: record fields that may differ between two equivalent runs (timing,
#: placement, and cache circumstance -- none of them are *results*)
TIMING_FIELDS = ("wall_time_s", "worker", "cache_hit")
#: manifest-level fields that may differ between two equivalent runs
RUN_FIELDS = ("run_id", "backend", "workers", "started_at_s",
              "finished_at_s")


@dataclass
class ExperimentRecord:
    """One experiment's outcome inside a run."""

    kind: str
    params: Mapping[str, Any]
    seed: int
    cache_key: str
    cache_hit: bool
    wall_time_s: float
    worker: str
    payload: Mapping[str, Any]

    def canonical(self) -> Dict[str, Any]:
        """The record minus fields that vary between equivalent runs."""
        data = asdict(self)
        for fname in TIMING_FIELDS:
            data.pop(fname, None)
        return data


@dataclass
class RunManifest:
    """One engine batch: metadata plus per-experiment records."""

    run_id: str
    backend: str
    workers: int
    code_versions: Mapping[str, str] = field(default_factory=dict)
    started_at_s: float = 0.0
    finished_at_s: float = 0.0
    records: List[ExperimentRecord] = field(default_factory=list)
    #: attached observability artifacts, name -> path (e.g. ``trace``,
    #: ``metrics``, ``events``); excluded from the canonical form --
    #: traces are a run circumstance, not a result
    artifacts: Dict[str, str] = field(default_factory=dict)

    # ------------------------------------------------------------------
    @property
    def cache_hit_rate(self) -> float:
        """Fraction of experiments served from cache (0.0 if empty)."""
        if not self.records:
            return 0.0
        return sum(1 for r in self.records if r.cache_hit) / len(self.records)

    @property
    def wall_time_s(self) -> float:
        return self.finished_at_s - self.started_at_s

    def to_dict(self) -> Dict[str, Any]:
        return {
            "run_id": self.run_id,
            "backend": self.backend,
            "workers": self.workers,
            "code_versions": dict(self.code_versions),
            "started_at_s": self.started_at_s,
            "finished_at_s": self.finished_at_s,
            "cache_hit_rate": self.cache_hit_rate,
            "records": [asdict(r) for r in self.records],
            "artifacts": dict(self.artifacts),
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def canonical_json(self) -> str:
        """Deterministic encoding of the run's *results*.

        Drops run identity and timing (see :data:`TIMING_FIELDS` /
        :data:`RUN_FIELDS`); two runs of the same batch -- serial or
        parallel, any worker count -- must produce identical bytes.
        """
        return stable_json_dumps(
            {
                "code_versions": dict(self.code_versions),
                "records": [r.canonical() for r in self.records],
            }
        )

    def save(self, directory: str) -> str:
        """Write ``run-<id>.json`` under ``directory``; returns the path."""
        os.makedirs(directory, exist_ok=True)
        path = os.path.join(directory, f"run-{self.run_id}.json")
        with open(path, "w") as fh:
            fh.write(self.to_json())
        return path


def load_manifest(path: str) -> RunManifest:
    """Read a manifest written by :meth:`RunManifest.save`."""
    try:
        with open(path) as fh:
            data = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        raise EngineError(f"cannot read manifest {path!r}: {exc}") from exc
    try:
        records = [ExperimentRecord(**r) for r in data["records"]]
        return RunManifest(
            run_id=data["run_id"],
            backend=data["backend"],
            workers=data["workers"],
            code_versions=data.get("code_versions", {}),
            started_at_s=data.get("started_at_s", 0.0),
            finished_at_s=data.get("finished_at_s", 0.0),
            records=records,
            artifacts=data.get("artifacts", {}),
        )
    except (KeyError, TypeError) as exc:
        raise EngineError(f"malformed manifest {path!r}: {exc}") from exc


def compare_manifests(
    a: RunManifest, b: RunManifest
) -> List[Dict[str, Any]]:
    """Per-experiment differences between two runs (ignoring timing).

    Records are matched by (kind, params, seed); returns one diff dict
    per mismatch -- payload drift, cache-key drift (code changed), or
    an experiment present on only one side. Empty list == equivalent.
    """

    def index(m: RunManifest) -> Dict[str, ExperimentRecord]:
        return {
            stable_json_dumps([r.kind, r.params, r.seed]): r
            for r in m.records
        }

    left, right = index(a), index(b)
    diffs: List[Dict[str, Any]] = []
    for key in sorted(set(left) | set(right)):
        ra: Optional[ExperimentRecord] = left.get(key)
        rb: Optional[ExperimentRecord] = right.get(key)
        if ra is None or rb is None:
            present = "first" if rb is None else "second"
            missing_from = "second" if rb is None else "first"
            diffs.append(
                {
                    "spec": json.loads(key),
                    "kind": "missing",
                    "detail": f"only in {present} run (missing from "
                              f"{missing_from})",
                }
            )
            continue
        if ra.cache_key != rb.cache_key:
            diffs.append(
                {
                    "spec": json.loads(key),
                    "kind": "code_version",
                    "detail": f"cache key {ra.cache_key[:12]} != "
                              f"{rb.cache_key[:12]} (code changed)",
                }
            )
        if stable_json_dumps(ra.payload) != stable_json_dumps(rb.payload):
            diffs.append(
                {
                    "spec": json.loads(key),
                    "kind": "payload",
                    "detail": "result payloads differ",
                }
            )
    return diffs
