"""Built-in experiment catalogue.

Registers the repo's existing simulation entry points -- design
sweeps, Monte-Carlo reliability, fault-injection drills, collective
benchmarks -- as engine experiments. Importing this module (which
:func:`repro.engine.spec.get_experiment` does lazily) populates the
registry, including inside process-pool workers.

Every function here is pure in ``(params, seed)`` and returns a
JSON-safe payload; that is the whole contract that makes it cacheable
and backend-independent.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping

from .spec import experiment

_MODEL_NAMES = ("llama-7b", "llama-13b", "gpt3-175b")


def _model_config(name: str):
    from .. import training

    attr = {"llama-7b": "LLAMA_7B", "llama-13b": "LLAMA_13B",
            "gpt3-175b": "GPT3_175B"}[name]
    return getattr(training, attr)


# ----------------------------------------------------------------------
# reliability: Monte-Carlo fleet simulation
# ----------------------------------------------------------------------
@experiment(
    "reliability.trials",
    "Monte-Carlo fleet reliability: repeated seeded month-series trials",
    defaults={"gpus": 3000, "dual_tor": True, "months": 12, "trials": 50,
              "keep_trials": True},
)
def reliability_trials(params: Dict[str, Any], seed: int) -> Mapping[str, Any]:
    from ..reliability import FleetSimulation, JobFootprint

    sim = FleetSimulation(
        JobFootprint.for_gpus(int(params["gpus"]), bool(params["dual_tor"])),
        seed=seed,
    )
    trials = sim.run_trials(int(params["trials"]), int(params["months"]),
                            base_seed=seed)
    n = len(trials)
    crash_free = sum(
        1 for t in trials
        if t["months_without_crash"] >= t["months"]
    )
    payload: Dict[str, Any] = {
        "trials": n,
        "mean_crashes_per_month": sum(
            t["mean_crashes_per_month"] for t in trials) / n,
        "mean_degradations_per_month": sum(
            t["mean_degradations_per_month"] for t in trials) / n,
        "crash_free_trial_rate": crash_free / n,
    }
    # per-trial series are large at fan-out scale; drop on request
    if params.get("keep_trials", True):
        payload["per_trial"] = trials
    return payload


@experiment(
    "reliability.trial",
    "One Monte-Carlo trial (fan-out unit: one seeded month-series)",
    defaults={"gpus": 3000, "dual_tor": True, "months": 12},
)
def reliability_trial(params: Dict[str, Any], seed: int) -> Mapping[str, Any]:
    from ..reliability import FleetSimulation, JobFootprint

    sim = FleetSimulation(
        JobFootprint.for_gpus(int(params["gpus"]), bool(params["dual_tor"])),
        seed=seed,
    )
    return sim.summarize(int(params["months"]), seed=seed)


@experiment(
    "reliability.crash-free",
    "Probability of surviving N months crash-free (paper: 8 months, 0 SPOF)",
    defaults={"gpus": 3000, "dual_tor": True, "months": 8},
)
def reliability_crash_free(params: Dict[str, Any],
                           seed: int) -> Mapping[str, Any]:
    from ..reliability import expected_crash_free_months

    prob = expected_crash_free_months(
        int(params["gpus"]), bool(params["dual_tor"]),
        months=int(params["months"]), seed=seed,
    )
    return {"crash_free_probability": prob, "months": int(params["months"])}


# ----------------------------------------------------------------------
# design sweeps (one experiment per design point)
# ----------------------------------------------------------------------
@experiment(
    "sweep.oversubscription",
    "One §7 design point: agg->core uplink count vs pod size/cost/bandwidth",
    defaults={"value": 8, "build": False},
)
def sweep_oversubscription_point(params: Dict[str, Any],
                                 seed: int) -> Mapping[str, Any]:
    from ..analysis.sweep import evaluate_point, oversubscription_spec
    from ..topos.spec import HpnSpec

    uplinks = int(params["value"])
    point = evaluate_point(
        oversubscription_spec(HpnSpec(), uplinks),
        float(uplinks), bool(params["build"]),
    )
    return _sweep_payload(point)


@experiment(
    "sweep.aggs-per-plane",
    "One plane-width design point: fault domains vs switch count",
    defaults={"value": 60, "build": False},
)
def sweep_aggs_point(params: Dict[str, Any], seed: int) -> Mapping[str, Any]:
    from ..analysis.sweep import aggs_per_plane_spec, evaluate_point
    from ..topos.spec import HpnSpec

    count = int(params["value"])
    point = evaluate_point(
        aggs_per_plane_spec(HpnSpec(), count),
        float(count), bool(params["build"]),
    )
    return _sweep_payload(point)


def _sweep_payload(point: Any) -> Dict[str, Any]:
    from dataclasses import asdict

    payload = asdict(point)
    # NaN is not JSON-interchangeable; unbuilt points omit cost instead
    if payload["relative_cost"] != payload["relative_cost"]:
        payload["relative_cost"] = None
    return payload


# ----------------------------------------------------------------------
# fault-injection drill (Figure 18)
# ----------------------------------------------------------------------
@experiment(
    "drill.link-failure",
    "Figure-18 drill: access-link failure/repair vs training throughput",
    defaults={
        "model": "llama-7b", "job_hosts": 4, "microbatches": 18,
        "fail_at_s": 10.0, "repair_at_s": 60.0, "duration_s": 120.0,
    },
)
def drill_link_failure(params: Dict[str, Any], seed: int) -> Mapping[str, Any]:
    from ..cluster import Cluster
    from ..reliability import FaultInjector, link_failure_scenario
    from ..topos.spec import HpnSpec
    from ..training import ParallelismPlan

    if params["model"] not in _MODEL_NAMES:
        raise ValueError(f"unknown model {params['model']!r}")
    job_hosts = int(params["job_hosts"])
    cluster = Cluster.hpn(HpnSpec(
        segments_per_pod=1, hosts_per_segment=max(8, job_hosts),
        backup_hosts_per_segment=0, aggs_per_plane=2,
    ))
    hosts = cluster.place(job_hosts)
    plan = ParallelismPlan(tp=8, pp=1, dp=job_hosts)
    job = cluster.train(_model_config(params["model"]), plan, hosts,
                        microbatches=int(params["microbatches"]))
    events = link_failure_scenario(
        hosts[0], rail=0,
        fail_at=float(params["fail_at_s"]),
        repair_at=float(params["repair_at_s"]),
    )
    result = FaultInjector(job).run(events,
                                    duration=float(params["duration_s"]))
    throughputs = [p.samples_per_sec for p in result.timeline]
    return {
        "crashed": result.crashed,
        "timeline_points": len(result.timeline),
        "min_samples_per_sec": min(throughputs) if throughputs else 0.0,
        "max_samples_per_sec": max(throughputs) if throughputs else 0.0,
        "final_samples_per_sec": throughputs[-1] if throughputs else 0.0,
    }


# ----------------------------------------------------------------------
# collective benchmark scenario
# ----------------------------------------------------------------------
@experiment(
    "bench.allreduce",
    "AllReduce busbw on a small HPN slice (benchmark scenario unit)",
    defaults={"job_hosts": 8, "size_mb": 256},
)
def bench_allreduce(params: Dict[str, Any], seed: int) -> Mapping[str, Any]:
    from ..cluster import Cluster
    from ..collective import allreduce
    from ..topos.spec import HpnSpec

    job_hosts = int(params["job_hosts"])
    cluster = Cluster.hpn(HpnSpec(
        segments_per_pod=1, hosts_per_segment=max(8, job_hosts),
        backup_hosts_per_segment=0, aggs_per_plane=4,
    ))
    comm = cluster.communicator(cluster.place(job_hosts))
    result = allreduce(comm, float(params["size_mb"]) * 1e6)
    return {
        "job_hosts": job_hosts,
        "size_mb": float(params["size_mb"]),
        "seconds": result.seconds,
        "busbw_gb_per_sec": result.busbw_gb_per_sec,
    }


# ----------------------------------------------------------------------
# solver-core perf benchmark (incremental vs full engine)
# ----------------------------------------------------------------------
@experiment(
    "bench.simcore",
    "Solver-core perf: incremental vs full engine on a dual-plane "
    "multi-step AllReduce with an injected link failure",
    defaults={
        "hosts": 16, "conns": 2, "steps": 80, "step_gap_s": 0.004,
        "edge_mb": 24, "jitter": 0.05, "fail_at_s": 0.05,
        "repair_at_s": 0.12, "repeat": 1, "tier": "reference",
        # pod/multipod workload overrides live under their own key so
        # the reference defaults above never leak into those tiers
        "tier_params": {},
    },
)
def bench_simcore(params: Dict[str, Any], seed: int) -> Mapping[str, Any]:
    from ..fabric.simbench import run_pod_tier, run_simcore

    tier = str(params.get("tier", "reference"))
    if tier in ("pod", "multipod"):
        return run_pod_tier(dict(params.get("tier_params") or {}),
                            seed, tier)
    return run_simcore(dict(params), seed)


# ----------------------------------------------------------------------
# solver shard: one component waterfill (sharded-solver fan-out unit)
# ----------------------------------------------------------------------
@experiment(
    "solver.shard",
    "One max-min waterfill over a component snapshot payload (the "
    "fan-out unit the sharded solver dispatches to process workers)",
    defaults={"shard": {"flow_ids": [], "raw_dirlinks": [], "caps": [],
                        "weights": [], "f_indptr": [0], "f_links": [],
                        "f_mults": []}},
)
def solver_shard(params: Dict[str, Any], seed: int) -> Mapping[str, Any]:
    from ..fabric.kernel import solve_shard

    return solve_shard(dict(params), seed)


# ----------------------------------------------------------------------
# routing perf benchmark (cached/batched vs uncached walker)
# ----------------------------------------------------------------------
@experiment(
    "bench.routing",
    "Routing perf: compiled FIB + route cache vs the uncached "
    "hop-by-hop walker on 15-segment-pod ring traffic with link flaps",
    defaults={
        "segments": 15, "hosts_per_segment": 8, "aggs_per_plane": 8,
        "conns": 2, "steps": 20, "flap_every": 5, "campaign_cases": 50,
    },
)
def bench_routing(params: Dict[str, Any], seed: int) -> Mapping[str, Any]:
    from ..routing.routebench import run_routing_bench

    return run_routing_bench(dict(params), seed)


# ----------------------------------------------------------------------
# fleet: multi-job churn, placement policies, frontend traffic classes
# ----------------------------------------------------------------------
@experiment(
    "fleet.churn",
    "Multi-job churn on one backend fabric: Figure-6 arrivals through "
    "a placement policy, with queue waits, fragmentation, and "
    "interference snapshots against frontend traffic classes",
    defaults={
        "arch": "hpn", "segments": 4, "hosts_per_segment": 16,
        "aggs_per_plane": 8, "pods": 1, "arrivals": 60,
        "policy": "pack", "snapshots": 3, "frontend": True,
        "mean_interarrival_s": 120.0, "mean_duration_s": 3600.0,
        "edge_mb": 64.0,
    },
)
def fleet_churn(params: Dict[str, Any], seed: int) -> Mapping[str, Any]:
    from ..fleet import run_churn

    return run_churn(dict(params), seed)


@experiment(
    "fleet.interference",
    "Tenant interference by placement policy: fixed co-resident jobs "
    "placed pack/spread/interleave, per-job slowdown vs running alone, "
    "plus the frontend class mix mid checkpoint storm",
    defaults={
        "arch": "hpn", "segments": 4, "hosts_per_segment": 8,
        "aggs_per_plane": 4, "gpu_sizes": [32, 32, 64, 64],
        "policies": ["pack", "spread", "interleave"],
        "frontend": True, "edge_mb": 64.0,
    },
)
def fleet_interference(params: Dict[str, Any], seed: int) -> Mapping[str, Any]:
    from ..fleet import run_interference

    return run_interference(dict(params), seed)


# ----------------------------------------------------------------------
# health: seeded fault-injection scenario for the health engine
# ----------------------------------------------------------------------
@experiment(
    "health.scenario",
    "Seeded health drill: hash-polarized inter-segment flows, a "
    "dual-ToR flap over the failover SLO, and an oversubscribed fleet "
    "burst -- clean mode yields zero incidents, faulty mode exactly "
    "the injected ones",
    defaults={"mode": "faulty"},
)
def health_scenario(params: Dict[str, Any], seed: int) -> Mapping[str, Any]:
    from ..obs.health.scenario import run_health_scenario

    return run_health_scenario(dict(params), seed)


# ----------------------------------------------------------------------
# fleet perf benchmark (churn at pod scale, wall-clock measured)
# ----------------------------------------------------------------------
@experiment(
    "bench.fleet",
    "Fleet perf: >=200 arrivals churning through a multi-segment pod "
    "with concurrent frontend flow classes, wall-clock measured",
    defaults={
        "arch": "hpn", "segments": 6, "hosts_per_segment": 16,
        "aggs_per_plane": 8, "pods": 1, "arrivals": 240,
        "policy": "pack", "snapshots": 6, "frontend": True,
        "mean_interarrival_s": 120.0, "mean_duration_s": 3600.0,
        "edge_mb": 64.0,
    },
)
def bench_fleet(params: Dict[str, Any], seed: int) -> Mapping[str, Any]:
    from ..fleet import run_fleet_bench

    return run_fleet_bench(dict(params), seed)


# ----------------------------------------------------------------------
# serve perf benchmark (batched dispatch vs serial what-if evaluation)
# ----------------------------------------------------------------------
@experiment(
    "bench.serve",
    "Serve perf: mixed path/planes/RePaC/residual what-if workload "
    "dispatched in micro-batches over the warm shared router vs "
    "serial uncached evaluation, byte-identity checked",
    defaults={
        "segments": 15, "hosts_per_segment": 8, "aggs_per_plane": 8,
        "requests": 24000, "pairs": 150, "conns": 2,
        "planes_frac": 0.05, "repac_frac": 0.02, "whatif_frac": 0.01,
        "repac_pairs": 3, "repac_num_paths": 3, "repac_span": 48,
        "whatif_pairs": 2, "batch_size": 64,
    },
)
def bench_serve(params: Dict[str, Any], seed: int) -> Mapping[str, Any]:
    from ..serve.bench import run_serve_bench

    return run_serve_bench(dict(params), seed)
