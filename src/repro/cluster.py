"""Cluster facade: one object binding topology, routing and scheduling.

``Cluster`` is the recommended entry point for applications: build one
from a spec, place jobs, get communicators, run collectives and
training iterations -- without wiring the substrates by hand.

Example::

    from repro import Cluster, HpnSpec
    cluster = Cluster.hpn(HpnSpec(segments_per_pod=1, hosts_per_segment=16,
                                  backup_hosts_per_segment=0, aggs_per_plane=8))
    hosts = cluster.place(8)
    comm = cluster.communicator(hosts)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from .collective.comm import Communicator
from .core.topology import Topology
from .routing.cache import CachedRouter, reset_shared_router, shared_router
from .topos.dcnplus import build_dcnplus
from .topos.hpn import build_hpn
from .topos.singletor import build_singletor
from .topos.spec import DcnPlusSpec, HpnSpec, SingleTorSpec
from .training.job import TrainingJob, make_job
from .training.models import LlmConfig
from .training.parallelism import ParallelismPlan
from .training.scheduler import Scheduler


@dataclass
class Cluster:
    """A built network plus its router and scheduler."""

    topo: Topology
    router: CachedRouter = field(init=False)
    scheduler: Scheduler = field(init=False)

    def __post_init__(self) -> None:
        self.router = shared_router(self.topo)
        self.scheduler = Scheduler(self.topo)

    # -- constructors ---------------------------------------------------
    @classmethod
    def hpn(cls, spec: HpnSpec = HpnSpec()) -> "Cluster":
        return cls(build_hpn(spec))

    @classmethod
    def dcnplus(cls, spec: DcnPlusSpec = DcnPlusSpec()) -> "Cluster":
        return cls(build_dcnplus(spec))

    @classmethod
    def singletor(cls, spec: SingleTorSpec = SingleTorSpec()) -> "Cluster":
        return cls(build_singletor(spec))

    # -- operations ------------------------------------------------------
    @property
    def architecture(self) -> str:
        return str(self.topo.meta.get("architecture", "unknown"))

    @property
    def is_hpn(self) -> bool:
        return self.architecture == "hpn"

    def place(self, num_hosts: int, **kwargs) -> List[str]:
        """Allocate hosts via the scheduler (see Scheduler.place)."""
        return self.scheduler.place(num_hosts, **kwargs)

    def communicator(
        self, hosts: Sequence[str], **kwargs
    ) -> Communicator:
        """A communicator over ``hosts`` using this cluster's router.

        Non-HPN fabrics default to blind-ECMP path selection, matching
        what each architecture deployed.
        """
        kwargs.setdefault("disjoint_paths", self.is_hpn)
        return Communicator(self.topo, self.router, hosts, **kwargs)

    def train(
        self,
        config: LlmConfig,
        plan: ParallelismPlan,
        hosts: Optional[Sequence[str]] = None,
        **kwargs,
    ) -> TrainingJob:
        """Place (if needed) and build a training job."""
        if hosts is None:
            hosts = self.place(plan.num_hosts)
        kwargs.setdefault("disjoint_paths", self.is_hpn)
        return make_job(self.topo, self.router, config, plan, hosts, **kwargs)

    def refresh_routing(self) -> None:
        """Rebuild router indexes after structural topology changes."""
        self.router = reset_shared_router(self.topo)
