"""Metrics registry: labeled counters, gauges, and histograms.

The registry mirrors the fleet telemetry the paper leans on (per-port
ToR traffic, aggregation ingress imbalance): a *series* is a metric
name plus a frozen label set -- ``link_util{tier=agg,plane=1}`` -- and
the registry hands out the same instrument object for the same series,
so hot paths can resolve once and update cheaply.

Gauges additionally retain a bounded ``(ts_s, value)`` sample series
when callers stamp their sets with simulation time; that is what the
Chrome-trace exporter turns into counter tracks.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

from .ring import RingBuffer

#: label set rendered into a series name: sorted ``k=v`` pairs
LabelSet = Tuple[Tuple[str, str], ...]

#: default histogram bucket upper bounds (seconds-ish decades)
DEFAULT_BUCKETS = (1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0, 100.0)

#: bucket bounds for fraction-valued series (utilization, dirty
#: fraction, hit rates): the seconds decades above would collapse a
#: 0..1 signal into two bins
FRACTION_BUCKETS = (0.01, 0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0)


def _labelset(labels: Mapping[str, Any]) -> LabelSet:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def series_name(name: str, labels: LabelSet) -> str:
    """Render ``name{k=v,...}`` -- the stable series identifier."""
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


def json_safe_number(value: float) -> Optional[float]:
    """JSON has no inf/nan; map them to None for snapshots."""
    if isinstance(value, float) and not math.isfinite(value):
        return None
    return value


class Metric:
    """Base: one series (name + labels) of one instrument kind."""

    kind = "metric"
    __slots__ = ("name", "labels")

    def __init__(self, name: str, labels: LabelSet):
        self.name = name
        self.labels = labels

    @property
    def series(self) -> str:
        return series_name(self.name, self.labels)

    def snapshot(self) -> Dict[str, Any]:
        raise NotImplementedError


class Counter(Metric):
    """Monotonically increasing count (events, iterations, decisions)."""

    kind = "counter"
    __slots__ = ("value",)

    def __init__(self, name: str, labels: LabelSet):
        super().__init__(name, labels)
        self.value = 0.0

    def inc(self, by: float = 1.0) -> None:
        self.value += by

    def snapshot(self) -> Dict[str, Any]:
        return {"kind": self.kind, "value": json_safe_number(self.value)}


class Gauge(Metric):
    """Last-write-wins value with an optional timestamped sample series."""

    kind = "gauge"
    __slots__ = ("value", "samples")

    def __init__(self, name: str, labels: LabelSet,
                 max_samples: Optional[int] = None):
        super().__init__(name, labels)
        self.value = 0.0
        self.samples: RingBuffer = RingBuffer(max_samples)

    def set(self, value: float, ts_s: Optional[float] = None) -> None:
        self.value = value
        if ts_s is not None:
            self.samples.append((ts_s, value))

    def snapshot(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "value": json_safe_number(self.value),
            "samples": [
                [t, json_safe_number(v)] for t, v in self.samples
            ],
        }


class Histogram(Metric):
    """Distribution summary: bucketed counts plus running stats."""

    kind = "histogram"
    __slots__ = ("buckets", "bucket_counts", "count", "total",
                 "min_value", "max_value")

    def __init__(self, name: str, labels: LabelSet,
                 buckets: Optional[Iterable[float]] = None):
        super().__init__(name, labels)
        self.buckets: Tuple[float, ...] = tuple(
            sorted(buckets if buckets is not None else DEFAULT_BUCKETS)
        )
        self.bucket_counts = [0] * (len(self.buckets) + 1)
        self.count = 0
        self.total = 0.0
        self.min_value = math.inf
        self.max_value = -math.inf

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        self.min_value = min(self.min_value, value)
        self.max_value = max(self.max_value, value)
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.bucket_counts[i] += 1
                return
        self.bucket_counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "count": self.count,
            "sum": json_safe_number(self.total),
            "mean": json_safe_number(self.mean),
            "min": json_safe_number(self.min_value) if self.count else None,
            "max": json_safe_number(self.max_value) if self.count else None,
            "buckets": list(self.buckets),
            "bucket_counts": list(self.bucket_counts),
        }


class MetricsRegistry:
    """Get-or-create home of every metric series in one recording."""

    def __init__(self, max_samples_per_series: Optional[int] = 10_000):
        self.max_samples_per_series = max_samples_per_series
        self._series: Dict[Tuple[str, LabelSet], Metric] = {}

    # ------------------------------------------------------------------
    def _get(self, cls, name: str, labels: Mapping[str, Any],
             **kwargs) -> Metric:
        key = (name, _labelset(labels))
        metric = self._series.get(key)
        if metric is None:
            metric = cls(name, key[1], **kwargs)
            self._series[key] = metric
        elif not isinstance(metric, cls):
            raise TypeError(
                f"series {metric.series!r} already registered as "
                f"{metric.kind}, requested {cls.kind}"
            )
        return metric

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._get(Gauge, name, labels,
                         max_samples=self.max_samples_per_series)

    def histogram(self, name: str, buckets: Optional[Iterable[float]] = None,
                  **labels: Any) -> Histogram:
        return self._get(Histogram, name, labels, buckets=buckets)

    # ------------------------------------------------------------------
    def series(self) -> List[Metric]:
        """Every registered series, sorted by rendered name."""
        return sorted(self._series.values(), key=lambda m: m.series)

    def __len__(self) -> int:
        return len(self._series)

    def snapshot(self) -> Dict[str, Any]:
        """JSON-safe dump of every series (the metrics artifact body)."""
        return {m.series: m.snapshot() for m in self.series()}
