"""Seeded fault-injection scenario exercising every health detector.

One small HPN pod (2 segments x 8 single-rail hosts, 4 aggs per
plane, polarized hashing) runs three phases on one recording:

1. **fabric phase** -- 8 inter-segment flows whose source ports are
   *mined* so the ToR's ECMP hash concentrates them: ``faulty`` mode
   lands every flow on one uplink (polarization + sustained hotspot),
   ``clean`` mode round-robins them across all four uplinks and sizes
   them to finish before the hotspot minimum duration;
2. **failover phase** (faulty only) -- one dual-ToR access leg flaps
   mid-run with a BGP convergence tuned *over* the failover SLO;
3. **fleet phase** -- a FleetSimulator burst: ``faulty`` oversubscribes
   with spread placement (rings share uplinks -> interference),
   ``clean`` packs two small jobs into one segment.

``clean`` yields zero incidents; ``faulty`` yields exactly the
injected polarization, hotspot, failover-SLO (ERROR), and
interference incidents. The body is pure in ``(params, seed)`` --
identical payloads under serial and parallel engine runs -- and uses
the ambient health hub when one is attached (``repro health``),
otherwise a local engine, so detection always runs.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Tuple

from ..recorder import Recorder, resolve
from .detectors import HealthConfig
from .engine import HealthEngine
from .report import HealthReport

_DPORT = 4791  # RoCEv2

#: fabric-phase flow size: 12.5 GB -> 2 s polarized (50 Gbps share),
#: 0.5 s clean (access-bound 200 Gbps) -- under the hotspot minimum
_FLOW_BYTES = 12.5e9

#: scenario overrides: sample every solve (runs are tiny), exercise the
#: drift watchdog, and budget interference at 1.2x (one extra flow on a
#: 400G uplink beyond the harmless two -> slowdown 1.5x, caught)
SCENARIO_CONFIG = dict(
    sample_every=1,
    drift_check_every=1,
    interference_budget=1.2,
)


def _scenario_cluster():
    from ...cluster import Cluster
    from ...topos.spec import HpnSpec

    return Cluster.hpn(HpnSpec(
        pods=1,
        segments_per_pod=2,
        hosts_per_segment=8,
        backup_hosts_per_segment=0,
        gpus_per_host=1,
        aggs_per_plane=4,
        cores_per_plane=0,
    ))


def _mine_sport(router, src_nic, dst_nic, want_agg: str,
                base: int) -> Tuple[int, Any, Any]:
    """Find a source port whose ECMP hash picks ``want_agg``."""
    from ...routing.hashing import FiveTuple

    for sport in range(base, base + 4096):
        ft = FiveTuple(src_nic.ip, dst_nic.ip, sport, _DPORT)
        path = router.path_for(src_nic, dst_nic, ft)
        if path.nodes[2] == want_agg:
            return sport, ft, path
    raise RuntimeError(f"no sport in 4096 tries reaches {want_agg}")


def _fabric_flows(cluster, mode: str) -> List[Any]:
    """8 seg0->seg1 flows with hash-mined uplink placement."""
    from ...fabric.flow import Flow
    from ...topos.hpn import agg_name, host_name

    topo = cluster.topo
    flows = []
    base = 49152
    for i in range(8):
        src = topo.hosts[host_name(0, 0, i)].nic_for_rail(0)
        dst = topo.hosts[host_name(0, 1, i)].nic_for_rail(0)
        # faulty: every flow on agg0 (polarized); clean: round-robin
        want = agg_name(0, 0, 0 if mode == "faulty" else i % 4)
        sport, ft, path = _mine_sport(cluster.router, src, dst, want, base)
        base = sport + 1
        flows.append(Flow(
            five_tuple=ft, size_bytes=_FLOW_BYTES, path=path,
            start_time=0.0, tag=f"scn{i}",
        ))
    return flows


def _run_fabric_phase(cluster, rec, mode: str) -> Dict[str, Any]:
    from ...access.bgp import FailoverTimeline
    from ...fabric.simulator import FluidSimulator
    from ...topos.hpn import host_name, tor_name

    topo = cluster.topo
    sim = FluidSimulator(topo, recorder=rec)
    sim.add_flows(_fabric_flows(cluster, mode))

    flapped: Optional[int] = None
    if mode == "faulty":
        # dual-ToR flap: host0's plane-0 leg, convergence over the SLO
        links = topo.link_between(host_name(0, 0, 0), tor_name(0, 0, 0, 0))
        flapped = links[0].link_id
        timeline = FailoverTimeline(
            topo, detect_delay_s=0.05, convergence_delay_s=0.7,
            recorder=rec,
        )

        def _fail(s, lid=flapped, tl=timeline):
            s.topo.set_link_state(lid, False)
            tl.fail_access_link(lid, s.now)

        def _recover(s, lid=flapped, tl=timeline):
            s.topo.set_link_state(lid, True)
            tl.recover_access_link(lid, s.now)

        sim.schedule(0.25, _fail)
        sim.schedule(0.85, _recover)

    result = sim.run()
    return {
        "finish_s": round(result.finish_time, 9),
        "flows": len(result.flow_finish),
        "flapped_link": flapped,
    }


def _fleet_arrivals(mode: str) -> List[Any]:
    from ...fleet.arrivals import JobArrival

    if mode == "faulty":
        # 6 x 3-host jobs on a 16-host fleet: 5 run, 1 queues
        return [
            JobArrival(job_id=i, arrive_s=float(i), gpus=3, hosts=3,
                       duration_s=50.0)
            for i in range(6)
        ]
    return [
        JobArrival(job_id=i, arrive_s=float(i), gpus=3, hosts=3,
                   duration_s=10.0)
        for i in range(2)
    ]


def _run_fleet_phase(cluster, rec, mode: str, seed: int) -> Dict[str, Any]:
    from ...fleet.sim import FleetSimulator

    sim = FleetSimulator(
        cluster,
        _fleet_arrivals(mode),
        policy="spread" if mode == "faulty" else "pack",
        edge_mb=64.0,
        seed=seed,
        recorder=rec,
    )
    result = sim.run(snapshots=2)
    max_slowdown = 0.0
    for snap in result.snapshots:
        backend = snap.get("backend") or {}
        max_slowdown = max(max_slowdown,
                           float(backend.get("max_slowdown", 0.0)))
    return {
        "jobs": len(result.jobs),
        "makespan_s": round(result.makespan_s, 9),
        "max_slowdown": round(max_slowdown, 6),
    }


def run_health_scenario(params: Mapping[str, Any],
                        seed: int) -> Dict[str, Any]:
    """Engine body for ``health.scenario`` (modes: clean / faulty)."""
    mode = str(params.get("mode", "faulty"))
    if mode not in ("clean", "faulty"):
        raise ValueError(f"unknown scenario mode {mode!r}")

    rec = resolve(None)
    engine: Optional[HealthEngine] = None
    if rec is not None and rec.health is not None:
        engine = getattr(rec.health, "engine", None)
    if engine is None:
        # standalone (plain `repro exp run`, serial or parallel):
        # detection still runs, on a local recording
        rec = Recorder()
        engine = HealthEngine(rec, HealthConfig()).attach()
    engine.configure(**SCENARIO_CONFIG)
    cluster = _scenario_cluster()
    engine.watch_router(cluster.router)

    fabric = _run_fabric_phase(cluster, rec, mode)
    fleet = _run_fleet_phase(cluster, rec, mode, seed)
    report: HealthReport = engine.finalize()

    return {
        "mode": mode,
        "fabric": fabric,
        "fleet": fleet,
        "incidents": [inc.to_dict() for inc in report.incidents],
        "by_rule": report.by_rule(),
        "by_severity": report.by_severity(),
        "ok": report.ok,
    }
