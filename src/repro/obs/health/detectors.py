"""Streaming detectors: rules over sampled series that emit incidents.

Each detector is a small state machine fed by the
:class:`~repro.obs.health.samplers.SamplerHub` (live) or by
:func:`~repro.obs.health.engine.replay` (from recorded ``health.*``
series). The streak-based rules (hotspot, polarization, solver drift)
open a streak when a value crosses the rule threshold, extend it while
samples stay above, and emit one :class:`Incident` when it closes --
provided it lasted the rule's minimum duration. Scan-based rules
(failover SLO) walk the finished event log once at finalize time.

Determinism: a detector's output is a pure function of the sample
sequence it is fed; all internal iteration is over sorted keys.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional

from .incidents import (
    ERROR,
    RULE_FAILOVER_SLO,
    RULE_HOTSPOT,
    RULE_INTERFERENCE,
    RULE_POLARIZATION,
    RULE_SOLVER_DRIFT,
    WARNING,
    Incident,
)

#: detector emit callback: receives each finished incident
EmitFn = Callable[[Incident], None]


@dataclass
class HealthConfig:
    """Tunable thresholds for every rule (shared, mutable by design).

    The engine hands the *same* config object to the hub and every
    detector, so post-construction tweaks (``engine.configure(...)``)
    are seen everywhere.
    """

    #: hub decimation: act on every Nth fluid sample (1 = every solve)
    sample_every: int = 8
    #: hotspot: sustained utilization at/above this fraction ...
    hotspot_util: float = 0.98
    #: ... for at least this many sim-seconds
    hotspot_min_s: float = 1.0
    #: polarization: max ECMP-member flow share at/above this ...
    polarization_share: float = 0.75
    #: ... for at least this many sim-seconds
    polarization_min_s: float = 0.5
    #: polarization qualifiers: the ToR must have >= this many usable
    #: uplinks and >= this many flows across them, else spread is
    #: reported as 0 (imbalance over one member or two flows is noise)
    polarization_min_links: int = 2
    polarization_min_flows: int = 4
    #: dual-ToR failover SLO: fail->converged spans longer than this
    failover_slo_s: float = 0.5
    #: solver drift watchdog: oracle spot-check every Nth *acted-on*
    #: fluid sample; 0 disables (full re-solves are ~50x the
    #: incremental cost, so this cannot fit the <5% overhead gate --
    #: enable explicitly on small workloads / in scenarios)
    drift_check_every: int = 0
    #: max |incremental - oracle| rate (Gbps) before drift is an ERROR
    drift_tolerance_gbps: float = 1e-6
    #: fleet interference: slowdown-vs-alone budget
    interference_budget: float = 1.5


@dataclass
class _Streak:
    start_s: float
    last_s: float
    peak: float
    samples: int = 1


class StreakDetector:
    """Base: per-subject above-threshold streak tracking."""

    rule = "health.streak"
    severity = WARNING

    def __init__(self, config: HealthConfig, emit: EmitFn):
        self.config = config
        self._emit = emit
        self._open: Dict[str, _Streak] = {}

    # subclass knobs ---------------------------------------------------
    def threshold(self) -> float:
        raise NotImplementedError

    def min_duration_s(self) -> float:
        return 0.0

    def message(self, subject: str, streak: _Streak) -> str:
        raise NotImplementedError

    # ------------------------------------------------------------------
    def open_subjects(self) -> List[str]:
        """Subjects with an open streak (hub re-feeds these each tick)."""
        return sorted(self._open)

    def observe(self, now: float, subject: str, value: float) -> None:
        streak = self._open.get(subject)
        if value >= self.threshold():
            if streak is None:
                self._open[subject] = _Streak(now, now, value)
            else:
                streak.last_s = now
                streak.peak = max(streak.peak, value)
                streak.samples += 1
        elif streak is not None:
            del self._open[subject]
            self._close(subject, streak, now)

    def close_all(self, now: float) -> None:
        """End of timeline: flush every open streak as if it cleared."""
        for subject in sorted(self._open):
            streak = self._open.pop(subject)
            self._close(subject, streak, max(now, streak.last_s))

    def _close(self, subject: str, streak: _Streak, end_s: float) -> None:
        if end_s - streak.start_s < self.min_duration_s():
            return
        self._emit(Incident(
            rule=self.rule,
            severity=self.severity,
            subject=subject,
            start_s=streak.start_s,
            end_s=end_s,
            message=self.message(subject, streak),
            data={"peak": streak.peak, "samples": streak.samples},
        ))


class HotspotDetector(StreakDetector):
    """Sustained near-saturation of one directed link.

    Every max-min bottleneck sits at 100% *momentarily*; a hotspot is a
    link that stays there for :attr:`HealthConfig.hotspot_min_s`.
    """

    rule = RULE_HOTSPOT
    severity = WARNING

    def threshold(self) -> float:
        return self.config.hotspot_util

    def min_duration_s(self) -> float:
        return self.config.hotspot_min_s

    def message(self, subject: str, streak: _Streak) -> str:
        return (f"utilization >= {self.config.hotspot_util:.0%} "
                f"for {streak.last_s - streak.start_s:.3f}s+ "
                f"(peak {streak.peak:.3f})")


class PolarizationDetector(StreakDetector):
    """ECMP polarization: one uplink member hogging a ToR's flows.

    Fed the max member share of each ToR's uplink ECMP group (the same
    statistic ``analysis/polarization.path_concentration`` computes
    offline); unqualified groups (too few uplinks or flows) are fed 0.
    """

    rule = RULE_POLARIZATION
    severity = WARNING

    def threshold(self) -> float:
        return self.config.polarization_share

    def min_duration_s(self) -> float:
        return self.config.polarization_min_s

    def message(self, subject: str, streak: _Streak) -> str:
        return (f"max uplink member share {streak.peak:.2f} >= "
                f"{self.config.polarization_share:.2f} for "
                f"{streak.last_s - streak.start_s:.3f}s+")


class SolverDriftDetector(StreakDetector):
    """Incremental solver drifting from the from-scratch oracle."""

    rule = RULE_SOLVER_DRIFT
    severity = ERROR

    def threshold(self) -> float:
        return self.config.drift_tolerance_gbps

    def message(self, subject: str, streak: _Streak) -> str:
        return (f"incremental vs oracle rate drift "
                f"{streak.peak:.3g} Gbps > "
                f"{self.config.drift_tolerance_gbps:.3g} Gbps")


class InterferenceDetector:
    """Fleet interference regression: snapshot slowdown above budget."""

    rule = RULE_INTERFERENCE
    severity = WARNING

    def __init__(self, config: HealthConfig, emit: EmitFn):
        self.config = config
        self._emit = emit

    def observe_snapshot(self, now: float, job: str, slowdown: float,
                         snapshot_index: Optional[int] = None) -> None:
        if slowdown <= self.config.interference_budget:
            return
        data = {"slowdown": slowdown,
                "budget": self.config.interference_budget}
        if snapshot_index is not None:
            data["snapshot"] = snapshot_index
        self._emit(Incident(
            rule=self.rule,
            severity=self.severity,
            subject=job,
            start_s=now,
            end_s=now,
            message=(f"slowdown {slowdown:.2f}x exceeds budget "
                     f"{self.config.interference_budget:.2f}x"),
            data=data,
        ))


class FailoverSloDetector:
    """Dual-ToR failover SLO: fail->converged spans over budget.

    Scan-based: walks the finished event log once (``finalize``) for
    ``failover``-track spans -- ``bgp.blackhole`` from
    :class:`~repro.access.bgp.FailoverTimeline` and
    ``failover.convergence`` from the reliability injector -- and flags
    any whose duration exceeds :attr:`HealthConfig.failover_slo_s`.
    """

    rule = RULE_FAILOVER_SLO
    severity = ERROR

    #: span names that represent a fail->converged window
    SPAN_NAMES = ("bgp.blackhole", "failover.convergence")

    def __init__(self, config: HealthConfig, emit: EmitFn):
        self.config = config
        self._emit = emit

    def _subject(self, event) -> str:
        args = event.args or {}
        for key in ("link_id", "link", "node"):
            if key in args:
                return f"{key}={args[key]}"
        return event.name

    def scan_events(self, events: Iterable) -> None:
        slo = self.config.failover_slo_s
        for event in events:
            if event.track != "failover" or event.phase != "span":
                continue
            if event.name not in self.SPAN_NAMES:
                continue
            if event.dur_s <= slo:
                continue
            self._emit(Incident(
                rule=self.rule,
                severity=self.severity,
                subject=self._subject(event),
                start_s=event.ts_s,
                end_s=event.end_s,
                message=(f"{event.name} took {event.dur_s:.3f}s "
                         f"(SLO {slo:.3f}s)"),
                data={"span": event.name, "dur_s": event.dur_s},
            ))
