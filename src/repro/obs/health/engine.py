"""HealthEngine: wires detectors to a recorder, finalizes, replays.

Live use::

    rec = Recorder()
    engine = HealthEngine(rec).attach()      # before building sims
    sim = FluidSimulator(topo, recorder=rec) # picks up rec.health
    sim.run()
    report = engine.finalize()               # close streaks, scan spans

Replay reconstructs the same verdicts from a run's written artifacts
(``metrics-*.json`` + ``events-*.jsonl``): the hub records everything
the streak detectors consumed as sparse ``health.*`` gauge samples, so
feeding those back in timestamp order reproduces the live decisions
(assuming one monotonic fluid timeline, which traced engine runs have).
"""

from __future__ import annotations

import dataclasses
import json
import os
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

from ..export import load_events_jsonl
from .detectors import (
    FailoverSloDetector,
    HealthConfig,
    HotspotDetector,
    InterferenceDetector,
    PolarizationDetector,
    SolverDriftDetector,
)
from .incidents import Incident
from .report import HealthReport
from .samplers import SamplerHub


class HealthEngine:
    """Owns the config, the detectors, the hub, and the incident list."""

    def __init__(self, recorder, config: Optional[HealthConfig] = None):
        if recorder is None or not getattr(recorder, "enabled", False):
            raise ValueError(
                "HealthEngine needs an enabled Recorder (disabled "
                "recorders resolve to None and record nothing)"
            )
        self.recorder = recorder
        self.config = config if config is not None else HealthConfig()
        self.incidents: List[Incident] = []
        self.hotspot = HotspotDetector(self.config, self._emit)
        self.polarization = PolarizationDetector(self.config, self._emit)
        self.drift = SolverDriftDetector(self.config, self._emit)
        self.interference = InterferenceDetector(self.config, self._emit)
        self.failover = FailoverSloDetector(self.config, self._emit)
        self.hub = SamplerHub(
            recorder, self.config,
            hotspot=self.hotspot, polarization=self.polarization,
            drift=self.drift, interference=self.interference,
        )
        # back-reference so code holding only ``rec.health`` (e.g. an
        # experiment body under ``repro health``) can reach the engine
        self.hub.engine = self
        self._report: Optional[HealthReport] = None

    # ------------------------------------------------------------------
    def configure(self, **overrides: Any) -> "HealthEngine":
        """Tweak config fields in place (seen by hub and detectors)."""
        for key, value in overrides.items():
            if not hasattr(self.config, key):
                raise TypeError(f"unknown HealthConfig field {key!r}")
            setattr(self.config, key, value)
        return self

    def attach(self) -> "HealthEngine":
        """Expose the hub on ``recorder.health``.

        Components read ``rec.health`` once at construction, so attach
        *before* building the simulators that should be watched.
        """
        self.recorder.health = self.hub
        return self

    def detach(self) -> "HealthEngine":
        if self.recorder.health is self.hub:
            self.recorder.health = None
        return self

    def watch_router(self, router) -> "HealthEngine":
        self.hub.watch_router(router)
        return self

    # ------------------------------------------------------------------
    def _emit(self, incident: Incident) -> None:
        self.incidents.append(incident)
        self.recorder.metrics.counter(
            "health.incidents", rule=incident.rule,
            severity=incident.severity,
        ).inc()

    def finalize(self, now: Optional[float] = None) -> HealthReport:
        """Close streaks, scan spans, emit the incident track, report.

        Idempotent: the second call returns the first call's report.
        """
        if self._report is not None:
            return self._report
        end = now if now is not None else (self.hub.last_now or 0.0)
        self.hub.flush_streaks(end)
        # persist the effective thresholds: replay rebuilds its config
        # from these, so recorded verdicts survive non-default tuning
        for fld in dataclasses.fields(self.config):
            self.recorder.metrics.gauge(
                "health.config", field=fld.name,
            ).set(float(getattr(self.config, fld.name)))
        self.failover.scan_events(self.recorder.events)
        self.incidents.sort(key=lambda i: i.sort_key())
        for inc in self.incidents:
            self.recorder.events.span(
                inc.rule, inc.start_s, max(inc.end_s, inc.start_s),
                track="health", severity=inc.severity,
                subject=inc.subject, message=inc.message,
            )
        self._report = HealthReport(
            incidents=list(self.incidents),
            series_count=len(self.recorder.metrics),
            event_count=len(self.recorder.events),
            finalized_at_s=end,
        )
        return self._report

    def report(self) -> HealthReport:
        return self.finalize()


# ----------------------------------------------------------------------
# replay: artifacts -> report
# ----------------------------------------------------------------------
def _parse_series(series: str) -> Tuple[str, Dict[str, str]]:
    """Inverse of :func:`repro.obs.metrics.series_name`."""
    if "{" not in series:
        return series, {}
    name, _, rest = series.partition("{")
    labels: Dict[str, str] = {}
    for pair in rest.rstrip("}").split(","):
        if pair:
            k, _, v = pair.partition("=")
            labels[k] = v
    return name, labels


#: replayed sample kinds fed to detectors, in tie-break order; "tick"
#: samples only advance the fluid clock (every acted hub sample records
#: one), pinning the end-of-timeline streak flush to the same instant
#: the live hub used -- not to later fleet-clock events
_KIND_ORDER = {"tick": -1, "util": 0, "spread": 1, "drift": 2,
               "slowdown": 3}

_SERIES_KINDS = {
    "health.dirty_frac": ("tick", None),
    "health.link_util": ("util", "link"),
    "health.ecmp_spread": ("spread", "switch"),
    "health.solver_drift": ("drift", None),
    "health.fleet_slowdown": ("slowdown", "job"),
}


def _config_from_metrics(metrics: Mapping[str, Any]) -> Optional[HealthConfig]:
    """Rebuild the live run's config from ``health.config`` gauges."""
    overrides: Dict[str, Any] = {}
    known = {fld.name: fld for fld in dataclasses.fields(HealthConfig)}
    for series in metrics:
        name, labels = _parse_series(series)
        fld = known.get(labels.get("field", ""))
        if name != "health.config" or fld is None:
            continue
        value = metrics[series].get("value")
        if value is None:
            continue
        overrides[fld.name] = int(value) if fld.type == "int" else value
    return HealthConfig(**overrides) if overrides else None


def replay(events: Iterable, metrics: Mapping[str, Any],
           config: Optional[HealthConfig] = None) -> HealthReport:
    """Re-run the detectors over recorded artifacts.

    ``metrics`` is the body of a metrics-snapshot artifact (either the
    full recorder snapshot or just its ``"metrics"`` mapping);
    ``events`` is a sequence of :class:`~repro.obs.events.Event`.
    ``config=None`` rebuilds the live run's thresholds from its
    persisted ``health.config`` gauges (falling back to defaults).
    """
    from ..recorder import Recorder  # local: replay needs a scratch sink

    if "metrics" in metrics and isinstance(metrics["metrics"], Mapping):
        metrics = metrics["metrics"]
    if config is None:
        config = _config_from_metrics(metrics)
    engine = HealthEngine(Recorder(), config=config)
    samples: List[Tuple[float, int, str, float]] = []
    for series in sorted(metrics):
        name, labels = _parse_series(series)
        kind_spec = _SERIES_KINDS.get(name)
        if kind_spec is None:
            continue
        kind, label_key = kind_spec
        subject = labels.get(label_key, "solver") if label_key else "solver"
        for ts, value in metrics[series].get("samples", []):
            if value is None:
                continue
            samples.append((ts, _KIND_ORDER[kind], subject, value))
    samples.sort()
    fluid_ts: Optional[float] = None
    for ts, kind_order, subject, value in samples:
        if kind_order <= 2:
            fluid_ts = ts  # ticks/streak feeds ride the fluid clock
        if kind_order == 0:
            engine.hotspot.observe(ts, subject, value)
        elif kind_order == 1:
            engine.polarization.observe(ts, subject, value)
        elif kind_order == 3:
            engine.interference.observe_snapshot(ts, subject, value)
        elif kind_order == 2:
            engine.drift.observe(ts, subject, value)
    for event in events:
        engine.recorder.events.record(event)  # finalize scans these
    return engine.finalize(now=fluid_ts if fluid_ts is not None else 0.0)


def replay_trace_dir(path: str,
                     config: Optional[HealthConfig] = None) -> HealthReport:
    """Replay every ``metrics-*.json`` / ``events-*.jsonl`` in a dir."""
    metrics: Dict[str, Any] = {}
    events: List[Any] = []
    names = sorted(os.listdir(path))
    for name in names:
        full = os.path.join(path, name)
        if name.startswith("metrics-") and name.endswith(".json"):
            with open(full) as fh:
                body = json.load(fh)
            if "metrics" in body and isinstance(body["metrics"], Mapping):
                body = body["metrics"]
            metrics.update(body)
        elif name.startswith("events-") and name.endswith(".jsonl"):
            events.extend(load_events_jsonl(full))
    if not metrics and not events:
        raise FileNotFoundError(
            f"no metrics-*.json / events-*.jsonl artifacts under {path!r}"
        )
    return replay(events, metrics, config=config)
