"""The sampler hub: hot-path state -> bounded health series + detectors.

The hub is what instrumented components see: a
:class:`~repro.obs.recorder.Recorder` with an attached
:class:`~repro.obs.health.engine.HealthEngine` carries the hub on its
``health`` attribute, and ``FluidSimulator`` / ``FleetSimulator`` read
it once at construction (``rec.health if rec is not None else None``)
-- the same one-guard-per-site discipline every other hot path uses.

Per acted-on sample the hub:

* records per-tier / per-plane utilization gauges and a 0..1
  utilization histogram (``health.*`` series, FRACTION_BUCKETS);
* feeds the hotspot detector every near-saturated directed link (plus
  links whose streak is open, so closures are observed);
* groups ToR uplink flow counts into ECMP spread (max member share)
  and feeds the polarization detector;
* mirrors solver dirty-fraction, watched route-cache hit rates, and
  (opt-in) incremental-vs-oracle drift spot checks.

Everything the detectors consume is *also* recorded as sparse
``health.*`` gauge samples, which is what makes trace-dir replay
(:func:`repro.obs.health.engine.replay`) reproduce the live verdicts.

The hub never imports fabric/routing/fleet -- it duck-types over the
simulator (``sim.now``, ``sim.topo``, ``sim.link_gbps``,
``sim.oracle_drift``) so the dependency points from the simulation
layers *into* obs, not back.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Mapping, Optional

from ..metrics import FRACTION_BUCKETS
from .detectors import (
    HealthConfig,
    HotspotDetector,
    InterferenceDetector,
    PolarizationDetector,
    SolverDriftDetector,
)

#: sim-time going backwards by more than this starts a new timeline
_BACKWARDS_EPS = 1e-9


class SamplerHub:
    """Streaming sampler attached to a recorder by the health engine."""

    def __init__(self, recorder, config: HealthConfig,
                 hotspot: HotspotDetector,
                 polarization: PolarizationDetector,
                 drift: SolverDriftDetector,
                 interference: InterferenceDetector):
        self._recorder = recorder
        self.config = config
        self._hotspot = hotspot
        self._polarization = polarization
        self._drift = drift
        self._interference = interference
        self._suspend_depth = 0
        #: owning HealthEngine (set by HealthEngine.__init__)
        self.engine: Optional[Any] = None
        self._tick = 0          # wants_sample() calls seen
        self._acted = 0         # samples actually processed
        self.last_now: Optional[float] = None
        self._routers: List[Any] = []
        # per-topology caches (rebuilt when the sampled topology changes)
        self._meta_topo: Optional[Any] = None
        self._link_meta: Dict[int, tuple] = {}
        self._tor_uplinks: Dict[str, int] = {}
        self._m_samples = recorder.metrics.counter("health.samples")
        # series-handle caches, filled on first use (never eagerly:
        # an untouched series must not appear in the registry).
        # Registry lookups rebuild label strings, which is too
        # expensive to repeat per link per acted sample.
        self._h_frac: Dict[str, Any] = {}
        self._g_tier: Dict[str, Any] = {}
        self._g_plane: Dict[str, Any] = {}
        self._g_link: Dict[str, Any] = {}
        self._g_spread: Dict[str, Any] = {}
        self._g_dirty: Optional[Any] = None
        self._g_hit_rate: Optional[Any] = None

    # -- gating --------------------------------------------------------
    def wants_sample(self) -> bool:
        """Decimation gate: True on every Nth un-suspended call.

        The first call always samples so short runs are observed.
        """
        if self._suspend_depth:
            return False
        self._tick += 1
        every = self.config.sample_every
        return every <= 1 or (self._tick - 1) % every == 0

    @contextmanager
    def suspended(self) -> Iterator[None]:
        """No-op all sampling inside the block.

        Used around measurement *probes* (fleet interference snapshots
        spin up throwaway ``FluidSimulator`` runs on their own t=0
        timelines) that would otherwise pollute streak state.
        """
        self._suspend_depth += 1
        try:
            yield
        finally:
            self._suspend_depth -= 1

    def watch_router(self, router) -> None:
        """Sample this router's cache hit rate on every fluid sample."""
        for existing in self._routers:
            if existing is router:
                return
        self._routers.append(router)

    # -- timeline ------------------------------------------------------
    def _advance_timeline(self, now: float) -> None:
        if (self.last_now is not None
                and now < self.last_now - _BACKWARDS_EPS):
            # a new sim started its own clock: flush open streaks at
            # the old timeline's end before accepting the new one
            self.flush_streaks(self.last_now)
        self.last_now = now

    def flush_streaks(self, now: float) -> None:
        """Close every open streak as of ``now`` (timeline boundary)."""
        self._hotspot.close_all(now)
        self._polarization.close_all(now)
        self._drift.close_all(now)

    # -- fluid fabric samples ------------------------------------------
    def sample_fluid(self, sim, loads: Mapping[int, float],
                     counts: Mapping[int, int]) -> None:
        """One acted-on sample of a fluid simulator's link state.

        ``loads`` maps directed links to offered Gbps, ``counts`` to
        the number of active flows crossing them (both computed by the
        caller in its existing per-solve pass).
        """
        now = sim.now
        self._advance_timeline(now)
        self._acted += 1
        self._m_samples.inc()
        topo = sim.topo
        if topo is not self._meta_topo:
            self._meta_topo = topo
            self._link_meta.clear()
            self._tor_uplinks = _tor_uplink_counts(topo)
        cfg = self.config
        m = self._recorder.metrics

        per_tier: Dict[str, float] = {}
        plane_peak: Dict[str, float] = {}
        label_util: Dict[str, float] = {}
        tor_counts: Dict[str, Dict[int, int]] = {}
        h_frac = self._h_frac
        link_meta = self._link_meta
        for dl in sorted(loads):
            cap = sim.link_gbps(dl)
            if cap <= 0.0:
                continue
            util = loads[dl] / cap
            meta = link_meta.get(dl)
            if meta is None:
                meta = self._meta(topo, dl)
            tier, plane, label, tor = meta
            label_util[label] = util
            if util > per_tier.get(tier, 0.0):
                per_tier[tier] = util
            if plane is not None and util > plane_peak.get(plane, 0.0):
                plane_peak[plane] = util
            hist = h_frac.get(tier)
            if hist is None:
                hist = h_frac[tier] = m.histogram(
                    "health.link_util_frac",
                    buckets=FRACTION_BUCKETS, tier=tier)
            hist.observe(util)
            if tor is not None:
                tor_counts.setdefault(tor, {})[dl] = counts.get(dl, 0)
        for tier in sorted(per_tier):
            g = self._g_tier.get(tier)
            if g is None:
                g = self._g_tier[tier] = m.gauge(
                    "health.tier_util", tier=tier)
            g.set(per_tier[tier], ts_s=now)
        for plane in sorted(plane_peak):
            g = self._g_plane.get(plane)
            if g is None:
                g = self._g_plane[plane] = m.gauge(
                    "health.plane_util", plane=plane)
            g.set(plane_peak[plane], ts_s=now)

        # hotspot: hot links now, plus open streaks (to observe cooling)
        subjects = {label for label, util in label_util.items()
                    if util >= cfg.hotspot_util}
        subjects.update(self._hotspot.open_subjects())
        for label in sorted(subjects):
            util = label_util.get(label, 0.0)
            g = self._g_link.get(label)
            if g is None:
                g = self._g_link[label] = m.gauge(
                    "health.link_util", link=label)
            g.set(util, ts_s=now)
            self._hotspot.observe(now, label, util)

        # polarization: ECMP spread per ToR uplink group
        tors = set(tor_counts)
        tors.update(self._polarization.open_subjects())
        for tor in sorted(tors):
            group = tor_counts.get(tor, {})
            total = sum(group.values())
            if (total >= cfg.polarization_min_flows
                    and self._tor_uplinks.get(tor, 0)
                    >= cfg.polarization_min_links):
                share = max(group.values()) / total
            else:
                share = 0.0
            g = self._g_spread.get(tor)
            if g is None:
                g = self._g_spread[tor] = m.gauge(
                    "health.ecmp_spread", switch=tor)
            g.set(share, ts_s=now)
            self._polarization.observe(now, tor, share)

        # solver dirty fraction (None until the first commit)
        frac = getattr(sim, "last_dirty_frac", None)
        if frac is not None:
            if self._g_dirty is None:
                self._g_dirty = m.gauge("health.dirty_frac")
            self._g_dirty.set(frac, ts_s=now)

        # watched route caches
        for router in self._routers:
            stats = router.stats
            lookups = stats.hits + stats.misses
            if lookups:
                if self._g_hit_rate is None:
                    self._g_hit_rate = m.gauge(
                        "health.route_cache_hit_rate")
                self._g_hit_rate.set(stats.hits / lookups, ts_s=now)

        # opt-in incremental-vs-oracle drift spot check
        if (cfg.drift_check_every > 0
                and self._acted % cfg.drift_check_every == 0):
            oracle_drift = getattr(sim, "oracle_drift", None)
            if oracle_drift is not None:
                drift = oracle_drift()
                m.gauge("health.solver_drift").set(drift, ts_s=now)
                self._drift.observe(now, "solver", drift)

    # -- fleet samples -------------------------------------------------
    def sample_fleet(self, now: float, running: int, queued: int) -> None:
        if self._suspend_depth:
            return
        m = self._recorder.metrics
        m.gauge("health.fleet_running").set(running, ts_s=now)
        m.gauge("health.fleet_queue").set(queued, ts_s=now)

    def observe_fleet_snapshot(self, now: float,
                               snapshot: Mapping[str, Any],
                               index: Optional[int] = None) -> None:
        """Judge one fleet interference snapshot (worst job slowdown)."""
        if self._suspend_depth:
            return
        backend = snapshot.get("backend") or {}
        per_job = backend.get("per_job") or []
        worst_job, worst = None, 0.0
        for entry in per_job:
            slowdown = float(entry.get("slowdown", 0.0))
            if slowdown > worst:
                worst, worst_job = slowdown, f"job{entry['job_id']}"
        if worst_job is None:
            return
        self._recorder.metrics.gauge(
            "health.fleet_slowdown", job=worst_job).set(worst, ts_s=now)
        # no snapshot_index: the incident must match what replay can
        # reconstruct from the gauge samples alone
        self._interference.observe_snapshot(now, worst_job, worst)

    # -- topology metadata ---------------------------------------------
    def _meta(self, topo, dirlink: int) -> tuple:
        """(tier, plane, label, uplink-tor) for one directed link."""
        meta = self._link_meta.get(dirlink)
        if meta is None:
            link = topo.links[dirlink // 2]
            a, b = link.a.node, link.b.node
            if dirlink % 2:
                a, b = b, a
            sa = topo.switches.get(a)
            sb = topo.switches.get(b)
            if sa is None or sb is None:
                tier = "access"
            else:
                top = max(sa.tier, sb.tier)
                tier = {2: "agg", 3: "core"}.get(top, f"tier{top}")
            plane = None
            for sw in (sa, sb):
                if sw is not None and sw.plane is not None:
                    plane = str(sw.plane)
                    break
            tor = None
            if (sa is not None and sb is not None
                    and getattr(sa, "is_tor", False) and sb.tier == 2):
                tor = a
            meta = (tier, plane, f"{a}->{b}", tor)
            self._link_meta[dirlink] = meta
        return meta


def _tor_uplink_counts(topo) -> Dict[str, int]:
    """Uplink (ToR -> tier-2) port count per ToR, from the wiring."""
    counts: Dict[str, int] = {}
    for link in topo.links.values():
        sa = topo.switches.get(link.a.node)
        sb = topo.switches.get(link.b.node)
        if sa is None or sb is None:
            continue
        if getattr(sa, "is_tor", False) and sb.tier == 2:
            counts[link.a.node] = counts.get(link.a.node, 0) + 1
        elif getattr(sb, "is_tor", False) and sa.tier == 2:
            counts[link.b.node] = counts.get(link.b.node, 0) + 1
    return counts
