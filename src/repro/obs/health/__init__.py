"""Fabric health engine: streaming samplers, detectors, incidents.

The operational layer on top of ``repro.obs``: a
:class:`SamplerHub` turns hot-path simulator state into bounded
``health.*`` time series, streaming detectors turn those series into
typed :class:`Incident` records, and a :class:`HealthEngine` collects
them into a :class:`HealthReport` (plus a ``health`` Chrome-trace
track). See ``docs/observability.md`` for the rule catalogue, and
``repro health`` for the CLI surface.

:mod:`repro.obs.health.scenario` (the seeded fault-injection scenario
used by CI and tests) is intentionally *not* imported here -- it pulls
in topology/fleet layers that plain obs users never need.
"""

from .detectors import (
    FailoverSloDetector,
    HealthConfig,
    HotspotDetector,
    InterferenceDetector,
    PolarizationDetector,
    SolverDriftDetector,
)
from .engine import HealthEngine, replay, replay_trace_dir
from .incidents import (
    ALL_RULES,
    ERROR,
    INFO,
    RULE_FAILOVER_SLO,
    RULE_HOTSPOT,
    RULE_INTERFERENCE,
    RULE_POLARIZATION,
    RULE_SOLVER_DRIFT,
    SEVERITIES,
    WARNING,
    Incident,
)
from .report import ERROR_EXIT_CODE, HealthReport
from .samplers import SamplerHub

__all__ = [
    "ALL_RULES",
    "ERROR",
    "ERROR_EXIT_CODE",
    "FailoverSloDetector",
    "HealthConfig",
    "HealthEngine",
    "HealthReport",
    "HotspotDetector",
    "INFO",
    "Incident",
    "InterferenceDetector",
    "PolarizationDetector",
    "RULE_FAILOVER_SLO",
    "RULE_HOTSPOT",
    "RULE_INTERFERENCE",
    "RULE_POLARIZATION",
    "RULE_SOLVER_DRIFT",
    "SEVERITIES",
    "SamplerHub",
    "SolverDriftDetector",
    "WARNING",
    "replay",
    "replay_trace_dir",
]
