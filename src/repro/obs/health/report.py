"""HealthReport: one recording's incidents, summarized and renderable."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional

from .incidents import ERROR, SEVERITIES, WARNING, Incident

#: process exit code for a report carrying ERROR incidents
ERROR_EXIT_CODE = 3


@dataclass
class HealthReport:
    """The health engine's summary of one recording."""

    incidents: List[Incident] = field(default_factory=list)
    series_count: int = 0
    event_count: int = 0
    finalized_at_s: float = 0.0

    # ------------------------------------------------------------------
    def by_severity(self) -> Dict[str, int]:
        counts = {sev: 0 for sev in SEVERITIES}
        for inc in self.incidents:
            counts[inc.severity] += 1
        return counts

    def by_rule(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for inc in self.incidents:
            counts[inc.rule] = counts.get(inc.rule, 0) + 1
        return counts

    @property
    def error_count(self) -> int:
        return self.by_severity()[ERROR]

    @property
    def warning_count(self) -> int:
        return self.by_severity()[WARNING]

    @property
    def ok(self) -> bool:
        """No ERROR-severity incidents (warnings don't fail a run)."""
        return self.error_count == 0

    @property
    def exit_code(self) -> int:
        return 0 if self.ok else ERROR_EXIT_CODE

    # ------------------------------------------------------------------
    def to_jsonable(self) -> Dict[str, Any]:
        return {
            "incidents": [inc.to_dict() for inc in self.incidents],
            "by_severity": self.by_severity(),
            "by_rule": self.by_rule(),
            "series_count": self.series_count,
            "event_count": self.event_count,
            "finalized_at_s": self.finalized_at_s,
            "ok": self.ok,
        }

    @classmethod
    def from_jsonable(cls, d: Mapping[str, Any]) -> "HealthReport":
        return cls(
            incidents=[Incident.from_dict(i) for i in d.get("incidents", [])],
            series_count=int(d.get("series_count", 0)),
            event_count=int(d.get("event_count", 0)),
            finalized_at_s=float(d.get("finalized_at_s", 0.0)),
        )

    def render_text(self, max_incidents: Optional[int] = None) -> str:
        """Terminal rendering: verdict, incident lines, totals."""
        sev = self.by_severity()
        verdict = "HEALTHY" if self.ok else "UNHEALTHY"
        lines = [
            f"health: {verdict} -- "
            f"{sev[ERROR]} error(s), {sev[WARNING]} warning(s), "
            f"{sev['info']} info "
            f"({self.series_count} series, {self.event_count} events, "
            f"t={self.finalized_at_s:.3f}s)"
        ]
        shown = self.incidents
        hidden = 0
        if max_incidents is not None and len(shown) > max_incidents:
            hidden = len(shown) - max_incidents
            shown = shown[:max_incidents]
        lines.extend(inc.render() for inc in shown)
        if hidden:
            lines.append(f"... and {hidden} more incident(s)")
        return "\n".join(lines)
