"""Typed incident records: what a detector says when a rule fires.

An :class:`Incident` is the unit of the health vocabulary -- one rule
firing over one subject for one sim-time span. Detectors emit them,
the :class:`~repro.obs.health.engine.HealthEngine` collects them into
a :class:`~repro.obs.health.report.HealthReport`, and the exporter
turns them into their own Chrome-trace track and JSON artifact.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Tuple

#: severity ladder, least to most severe; ERROR drives nonzero CLI exit
SEVERITIES: Tuple[str, ...] = ("info", "warning", "error")

INFO = "info"
WARNING = "warning"
ERROR = "error"

#: rule identifiers (also the event names on the ``health`` trace track)
RULE_POLARIZATION = "health.polarization"
RULE_HOTSPOT = "health.hotspot"
RULE_FAILOVER_SLO = "health.failover_slo"
RULE_SOLVER_DRIFT = "health.solver_drift"
RULE_INTERFERENCE = "health.interference"

ALL_RULES: Tuple[str, ...] = (
    RULE_POLARIZATION,
    RULE_HOTSPOT,
    RULE_FAILOVER_SLO,
    RULE_SOLVER_DRIFT,
    RULE_INTERFERENCE,
)


@dataclass(frozen=True)
class Incident:
    """One rule firing over one subject for one sim-time span."""

    rule: str             #: one of :data:`ALL_RULES`
    severity: str         #: one of :data:`SEVERITIES`
    subject: str          #: the entity: switch/link label, job id, "solver"
    start_s: float        #: sim time the condition was first observed
    end_s: float          #: sim time it cleared (== start_s for instants)
    message: str          #: one-line human summary
    data: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self):
        if self.severity not in SEVERITIES:
            raise ValueError(f"unknown severity {self.severity!r}")
        if self.end_s < self.start_s:
            raise ValueError(
                f"incident ends before it starts "
                f"({self.end_s} < {self.start_s})"
            )

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s

    def sort_key(self) -> Tuple[float, str, str, float]:
        """Deterministic report order: time, rule, subject."""
        return (self.start_s, self.rule, self.subject, self.end_s)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "subject": self.subject,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "message": self.message,
            "data": dict(self.data),
        }

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "Incident":
        return cls(
            rule=d["rule"],
            severity=d["severity"],
            subject=d["subject"],
            start_s=d["start_s"],
            end_s=d["end_s"],
            message=d["message"],
            data=dict(d.get("data", {})),
        )

    def render(self) -> str:
        """``[SEV] rule subject [t0..t1] message`` one-liner."""
        return (
            f"[{self.severity.upper():>7}] {self.rule:<22} "
            f"{self.subject:<28} "
            f"[{self.start_s:.3f}s..{self.end_s:.3f}s] {self.message}"
        )
