"""Exporters: JSONL events, metrics, Chrome traces, Prometheus text.

Interchange formats for one recording:

* **JSONL** -- one event per line; lossless round trip through
  :func:`load_events_jsonl` (replay, diffing, ad-hoc jq);
* **metrics snapshot** -- every series' current state as one JSON
  object (the artifact a :class:`~repro.engine.manifest.RunManifest`
  references), plus a fixed-width summary table for terminals;
* **Chrome trace_event** -- the ``{"traceEvents": [...]}`` JSON that
  Perfetto and ``chrome://tracing`` open directly. Spans become ``X``
  (complete) events, instants become ``i``, gauge sample series and
  counters become ``C`` counter tracks, and each event-log track gets a
  named thread row via ``M`` metadata events;
* **Prometheus text exposition** -- every series rendered in the
  ``# TYPE``-annotated text format scrape endpoints speak, with an
  exact :func:`parse_prometheus_text` inverse (the round-trip test
  gate), plus the :func:`write_health_report` JSON artifact writer for
  :class:`~repro.obs.health.report.HealthReport` objects.

Timestamps are simulation seconds scaled to trace microseconds.
"""

from __future__ import annotations

import json
import math
from typing import Any, Dict, List, Optional, Tuple, Union

from .events import Event, EventLog
from .metrics import Counter, Gauge, json_safe_number
from .recorder import Recorder

#: simulation seconds -> trace_event microseconds
_US_PER_S = 1e6


def _event_log(source: Union[Recorder, EventLog]) -> EventLog:
    return source.events if isinstance(source, Recorder) else source


# ----------------------------------------------------------------------
# JSONL events
# ----------------------------------------------------------------------
def events_to_jsonl(source: Union[Recorder, EventLog]) -> str:
    """One JSON object per line, in recording order."""
    return "\n".join(
        json.dumps(e.to_dict(), sort_keys=True) for e in _event_log(source)
    )


def write_events_jsonl(source: Union[Recorder, EventLog],
                       path: str) -> str:
    with open(path, "w") as fh:
        text = events_to_jsonl(source)
        fh.write(text)
        if text:
            fh.write("\n")
    return path


def load_events_jsonl(path: str) -> List[Event]:
    """Inverse of :func:`write_events_jsonl` (lossless round trip)."""
    events: List[Event] = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if line:
                events.append(Event.from_dict(json.loads(line)))
    return events


# ----------------------------------------------------------------------
# metrics snapshot + summary table
# ----------------------------------------------------------------------
def metrics_snapshot(recorder: Recorder) -> Dict[str, Any]:
    """The full recorder snapshot (metrics + event bookkeeping)."""
    return recorder.snapshot()


def write_metrics_snapshot(recorder: Recorder, path: str) -> str:
    with open(path, "w") as fh:
        json.dump(metrics_snapshot(recorder), fh, indent=2, sort_keys=True)
    return path


def summary_table(recorder: Recorder, max_rows: Optional[int] = None) -> str:
    """Fixed-width per-series summary for terminal output."""
    rows: List[tuple] = []
    for metric in recorder.metrics.series():
        if isinstance(metric, Counter):
            detail = f"{metric.value:g}"
        elif isinstance(metric, Gauge):
            detail = f"{metric.value:g} ({len(metric.samples)} samples)"
        else:  # histogram
            detail = (f"n={metric.count} mean={metric.mean:g} "
                      f"max={metric.max_value if metric.count else 0:g}")
        rows.append((metric.series, metric.kind, detail))
    if max_rows is not None and len(rows) > max_rows:
        hidden = len(rows) - max_rows
        rows = rows[:max_rows] + [(f"... and {hidden} more series", "", "")]
    if not rows:
        return "no metric series recorded"
    width = max(len(r[0]) for r in rows)
    lines = [f"{name:<{width}}  {kind:<9} {detail}".rstrip()
             for name, kind, detail in rows]
    lines.append(
        f"{len(recorder.metrics)} series, {len(recorder.events)} events "
        f"({recorder.events.rolled_off} rolled off)"
    )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Chrome trace_event
# ----------------------------------------------------------------------
def _safe_args(args: Dict[str, Any]) -> Dict[str, Any]:
    return {k: json_safe_number(v) if isinstance(v, float) else v
            for k, v in args.items()}


def chrome_trace(recorder: Recorder, pid: int = 1) -> Dict[str, Any]:
    """Build the ``trace_event`` JSON object for one recording.

    Open the written file directly in https://ui.perfetto.dev or
    ``chrome://tracing``; each event-log track is one named thread row
    and each metric series one counter track.
    """
    trace_events: List[Dict[str, Any]] = []
    tids = {track: i + 1 for i, track in
            enumerate(recorder.events.tracks())}
    for track, tid in tids.items():
        trace_events.append({
            "name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
            "args": {"name": track},
        })

    last_ts_us = 0.0
    for event in recorder.events:
        ts_us = event.ts_s * _US_PER_S
        last_ts_us = max(last_ts_us, (event.end_s) * _US_PER_S)
        entry: Dict[str, Any] = {
            "name": event.name,
            "cat": event.track,
            "pid": pid,
            "tid": tids.get(event.track, 0),
            "ts": ts_us,
            "args": _safe_args(dict(event.args)),
        }
        if event.phase == "span":
            entry["ph"] = "X"
            entry["dur"] = event.dur_s * _US_PER_S
        else:
            entry["ph"] = "i"
            entry["s"] = "t"
        trace_events.append(entry)

    for metric in recorder.metrics.series():
        if isinstance(metric, Gauge) and len(metric.samples):
            for ts_s, value in metric.samples:
                trace_events.append({
                    "name": metric.series, "ph": "C", "pid": pid,
                    "ts": ts_s * _US_PER_S,
                    "args": {"value": json_safe_number(value)},
                })
        elif isinstance(metric, (Counter, Gauge)):
            # scalar series: one terminal sample so the track exists
            trace_events.append({
                "name": metric.series, "ph": "C", "pid": pid,
                "ts": last_ts_us,
                "args": {"value": json_safe_number(metric.value)},
            })

    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {
            "generator": "repro.obs",
            "clock": "simulation-time",
        },
    }


def write_chrome_trace(recorder: Recorder, path: str,
                       pid: int = 1) -> str:
    with open(path, "w") as fh:
        json.dump(chrome_trace(recorder, pid=pid), fh)
    return path


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------
def _prom_name(series_name: str) -> str:
    """Sanitize a series name into a Prometheus metric name."""
    out = []
    for ch in series_name:
        if ch.isalnum() or ch in ("_", ":"):
            out.append(ch)
        else:
            out.append("_")
    name = "".join(out)
    if name and name[0].isdigit():
        name = "_" + name
    return name


def _prom_escape(value: str) -> str:
    return (value.replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _prom_value(value: float) -> str:
    v = float(value)
    if math.isnan(v):
        return "NaN"
    if math.isinf(v):
        return "+Inf" if v > 0 else "-Inf"
    return repr(v)


def _prom_labels(pairs: List[Tuple[str, str]]) -> str:
    if not pairs:
        return ""
    inner = ",".join(
        f'{_prom_name(k)}="{_prom_escape(v)}"' for k, v in pairs
    )
    return "{" + inner + "}"


def prometheus_exposition(recorder: Recorder) -> str:
    """Render every metric series in the Prometheus text format.

    Counters and gauges become single samples; histograms become the
    conventional cumulative ``_bucket{le=...}`` series plus ``_sum``
    and ``_count``. Float values use ``repr`` so
    :func:`parse_prometheus_text` round-trips them exactly.
    """
    lines: List[str] = []
    typed: Dict[str, str] = {}
    for metric in recorder.metrics.series():
        name = _prom_name(metric.name)
        labels = list(metric.labels)
        if isinstance(metric, Counter):
            kind = "counter"
        elif isinstance(metric, Gauge):
            kind = "gauge"
        else:
            kind = "histogram"
        if name not in typed:
            typed[name] = kind
            lines.append(f"# TYPE {name} {kind}")
        elif typed[name] != kind:
            raise ValueError(
                f"series {metric.series!r} renders to {name!r} as "
                f"{kind}, already exposed as {typed[name]}"
            )
        if isinstance(metric, (Counter, Gauge)):
            lines.append(
                f"{name}{_prom_labels(labels)} "
                f"{_prom_value(metric.value)}"
            )
            continue
        cumulative = 0
        for bound, bucket_count in zip(metric.buckets,
                                       metric.bucket_counts):
            cumulative += bucket_count
            le = labels + [("le", _prom_value(bound))]
            lines.append(f"{name}_bucket{_prom_labels(le)} {cumulative}")
        le = labels + [("le", "+Inf")]
        lines.append(f"{name}_bucket{_prom_labels(le)} {metric.count}")
        lines.append(
            f"{name}_sum{_prom_labels(labels)} {_prom_value(metric.total)}"
        )
        lines.append(f"{name}_count{_prom_labels(labels)} {metric.count}")
    return "\n".join(lines) + ("\n" if lines else "")


def write_prometheus(recorder: Recorder, path: str) -> str:
    with open(path, "w") as fh:
        fh.write(prometheus_exposition(recorder))
    return path


def _parse_prom_labels(body: str) -> Dict[str, str]:
    labels: Dict[str, str] = {}
    i = 0
    n = len(body)
    while i < n:
        eq = body.index("=", i)
        key = body[i:eq]
        if eq + 1 >= n or body[eq + 1] != '"':
            raise ValueError(f"malformed label body {body!r}")
        k = eq + 2
        out: List[str] = []
        while body[k] != '"':
            ch = body[k]
            if ch == "\\":
                nxt = body[k + 1]
                out.append({"n": "\n", "\\": "\\", '"': '"'}.get(nxt, nxt))
                k += 2
            else:
                out.append(ch)
                k += 1
        labels[key] = "".join(out)
        i = k + 1
        if i < n and body[i] == ",":
            i += 1
    return labels


def parse_prometheus_text(text: str) -> Dict[str, Any]:
    """Inverse of :func:`prometheus_exposition`.

    Returns ``{metric_name: {"type": kind, "samples": [...]}}`` where
    each sample is ``(sample_name, labels_dict, value)`` --
    ``sample_name`` keeps histogram suffixes (``_bucket``/``_sum``/
    ``_count``) so callers can reconstruct distributions.
    """
    families: Dict[str, Any] = {}
    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) >= 4 and parts[1] == "TYPE":
                families.setdefault(
                    parts[2], {"type": parts[3], "samples": []}
                )
            continue
        if "{" in line:
            name, _, rest = line.partition("{")
            body, _, value_part = rest.rpartition("}")
            labels = _parse_prom_labels(body)
            value = float(value_part.strip())
        else:
            name, _, value_part = line.rpartition(" ")
            labels = {}
            value = float(value_part)
            name = name.strip()
        family_name = name
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[: -len(suffix)] in families:
                family_name = name[: -len(suffix)]
                break
        family = families.setdefault(
            family_name, {"type": "untyped", "samples": []}
        )
        family["samples"].append((name, labels, value))
    return families


# ----------------------------------------------------------------------
# health report artifact
# ----------------------------------------------------------------------
def write_health_report(report: Any, path: str) -> str:
    """Write a health report (or any jsonable-bearing object) as JSON."""
    body = report.to_jsonable() if hasattr(report, "to_jsonable") else report
    with open(path, "w") as fh:
        json.dump(body, fh, indent=2, sort_keys=True)
    return path


def validate_chrome_trace(data: Dict[str, Any]) -> List[str]:
    """Shape-check a trace_event object; returns problem strings.

    Used by tests and the CI smoke job: every event needs ``name``,
    ``ph``, and a numeric ``ts``; complete (``X``) events need a
    numeric ``dur``; counter (``C``) events need numeric args.
    """
    problems: List[str] = []
    events = data.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents is not a list"]
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            problems.append(f"event {i} is not an object")
            continue
        if not ev.get("name"):
            problems.append(f"event {i} has no name")
        ph = ev.get("ph")
        if ph not in ("X", "i", "C", "M", "B", "E"):
            problems.append(f"event {i} has unknown ph {ph!r}")
        if ph != "M" and not isinstance(ev.get("ts"), (int, float)):
            problems.append(f"event {i} ({ev.get('name')}) has no ts")
        if ph == "X" and not isinstance(ev.get("dur"), (int, float)):
            problems.append(f"event {i} ({ev.get('name')}) X without dur")
        if ph == "C":
            args = ev.get("args", {})
            if not args or not all(
                v is None or isinstance(v, (int, float))
                for v in args.values()
            ):
                problems.append(
                    f"event {i} ({ev.get('name')}) C with non-numeric args"
                )
    return problems
