"""Exporters: JSONL events, metrics snapshots, and Chrome trace_event.

Three interchange formats for one recording:

* **JSONL** -- one event per line; lossless round trip through
  :func:`load_events_jsonl` (replay, diffing, ad-hoc jq);
* **metrics snapshot** -- every series' current state as one JSON
  object (the artifact a :class:`~repro.engine.manifest.RunManifest`
  references), plus a fixed-width summary table for terminals;
* **Chrome trace_event** -- the ``{"traceEvents": [...]}`` JSON that
  Perfetto and ``chrome://tracing`` open directly. Spans become ``X``
  (complete) events, instants become ``i``, gauge sample series and
  counters become ``C`` counter tracks, and each event-log track gets a
  named thread row via ``M`` metadata events.

Timestamps are simulation seconds scaled to trace microseconds.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Union

from .events import Event, EventLog
from .metrics import Counter, Gauge, json_safe_number
from .recorder import Recorder

#: simulation seconds -> trace_event microseconds
_US_PER_S = 1e6


def _event_log(source: Union[Recorder, EventLog]) -> EventLog:
    return source.events if isinstance(source, Recorder) else source


# ----------------------------------------------------------------------
# JSONL events
# ----------------------------------------------------------------------
def events_to_jsonl(source: Union[Recorder, EventLog]) -> str:
    """One JSON object per line, in recording order."""
    return "\n".join(
        json.dumps(e.to_dict(), sort_keys=True) for e in _event_log(source)
    )


def write_events_jsonl(source: Union[Recorder, EventLog],
                       path: str) -> str:
    with open(path, "w") as fh:
        text = events_to_jsonl(source)
        fh.write(text)
        if text:
            fh.write("\n")
    return path


def load_events_jsonl(path: str) -> List[Event]:
    """Inverse of :func:`write_events_jsonl` (lossless round trip)."""
    events: List[Event] = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if line:
                events.append(Event.from_dict(json.loads(line)))
    return events


# ----------------------------------------------------------------------
# metrics snapshot + summary table
# ----------------------------------------------------------------------
def metrics_snapshot(recorder: Recorder) -> Dict[str, Any]:
    """The full recorder snapshot (metrics + event bookkeeping)."""
    return recorder.snapshot()


def write_metrics_snapshot(recorder: Recorder, path: str) -> str:
    with open(path, "w") as fh:
        json.dump(metrics_snapshot(recorder), fh, indent=2, sort_keys=True)
    return path


def summary_table(recorder: Recorder, max_rows: Optional[int] = None) -> str:
    """Fixed-width per-series summary for terminal output."""
    rows: List[tuple] = []
    for metric in recorder.metrics.series():
        if isinstance(metric, Counter):
            detail = f"{metric.value:g}"
        elif isinstance(metric, Gauge):
            detail = f"{metric.value:g} ({len(metric.samples)} samples)"
        else:  # histogram
            detail = (f"n={metric.count} mean={metric.mean:g} "
                      f"max={metric.max_value if metric.count else 0:g}")
        rows.append((metric.series, metric.kind, detail))
    if max_rows is not None and len(rows) > max_rows:
        hidden = len(rows) - max_rows
        rows = rows[:max_rows] + [(f"... and {hidden} more series", "", "")]
    if not rows:
        return "no metric series recorded"
    width = max(len(r[0]) for r in rows)
    lines = [f"{name:<{width}}  {kind:<9} {detail}".rstrip()
             for name, kind, detail in rows]
    lines.append(
        f"{len(recorder.metrics)} series, {len(recorder.events)} events "
        f"({recorder.events.rolled_off} rolled off)"
    )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Chrome trace_event
# ----------------------------------------------------------------------
def _safe_args(args: Dict[str, Any]) -> Dict[str, Any]:
    return {k: json_safe_number(v) if isinstance(v, float) else v
            for k, v in args.items()}


def chrome_trace(recorder: Recorder, pid: int = 1) -> Dict[str, Any]:
    """Build the ``trace_event`` JSON object for one recording.

    Open the written file directly in https://ui.perfetto.dev or
    ``chrome://tracing``; each event-log track is one named thread row
    and each metric series one counter track.
    """
    trace_events: List[Dict[str, Any]] = []
    tids = {track: i + 1 for i, track in
            enumerate(recorder.events.tracks())}
    for track, tid in tids.items():
        trace_events.append({
            "name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
            "args": {"name": track},
        })

    last_ts_us = 0.0
    for event in recorder.events:
        ts_us = event.ts_s * _US_PER_S
        last_ts_us = max(last_ts_us, (event.end_s) * _US_PER_S)
        entry: Dict[str, Any] = {
            "name": event.name,
            "cat": event.track,
            "pid": pid,
            "tid": tids.get(event.track, 0),
            "ts": ts_us,
            "args": _safe_args(dict(event.args)),
        }
        if event.phase == "span":
            entry["ph"] = "X"
            entry["dur"] = event.dur_s * _US_PER_S
        else:
            entry["ph"] = "i"
            entry["s"] = "t"
        trace_events.append(entry)

    for metric in recorder.metrics.series():
        if isinstance(metric, Gauge) and len(metric.samples):
            for ts_s, value in metric.samples:
                trace_events.append({
                    "name": metric.series, "ph": "C", "pid": pid,
                    "ts": ts_s * _US_PER_S,
                    "args": {"value": json_safe_number(value)},
                })
        elif isinstance(metric, (Counter, Gauge)):
            # scalar series: one terminal sample so the track exists
            trace_events.append({
                "name": metric.series, "ph": "C", "pid": pid,
                "ts": last_ts_us,
                "args": {"value": json_safe_number(metric.value)},
            })

    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {
            "generator": "repro.obs",
            "clock": "simulation-time",
        },
    }


def write_chrome_trace(recorder: Recorder, path: str,
                       pid: int = 1) -> str:
    with open(path, "w") as fh:
        json.dump(chrome_trace(recorder, pid=pid), fh)
    return path


def validate_chrome_trace(data: Dict[str, Any]) -> List[str]:
    """Shape-check a trace_event object; returns problem strings.

    Used by tests and the CI smoke job: every event needs ``name``,
    ``ph``, and a numeric ``ts``; complete (``X``) events need a
    numeric ``dur``; counter (``C``) events need numeric args.
    """
    problems: List[str] = []
    events = data.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents is not a list"]
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            problems.append(f"event {i} is not an object")
            continue
        if not ev.get("name"):
            problems.append(f"event {i} has no name")
        ph = ev.get("ph")
        if ph not in ("X", "i", "C", "M", "B", "E"):
            problems.append(f"event {i} has unknown ph {ph!r}")
        if ph != "M" and not isinstance(ev.get("ts"), (int, float)):
            problems.append(f"event {i} ({ev.get('name')}) has no ts")
        if ph == "X" and not isinstance(ev.get("dur"), (int, float)):
            problems.append(f"event {i} ({ev.get('name')}) X without dur")
        if ph == "C":
            args = ev.get("args", {})
            if not args or not all(
                v is None or isinstance(v, (int, float))
                for v in args.values()
            ):
                problems.append(
                    f"event {i} ({ev.get('name')}) C with non-numeric args"
                )
    return problems
