"""Disabled-instrumentation overhead benchmark (CI gate: <5%).

Instrumenting hot paths is only free if a run with observability off
stays as fast as one that never heard of it. This module times the
``bench.allreduce`` scenario three ways:

* **off** -- no recorder installed anywhere (the untraced baseline:
  every instrumentation site resolves to ``None`` at construction);
* **disabled** -- a :class:`~repro.obs.recorder.NullRecorder` installed
  process-wide (what a user gets after ``set_recorder(NullRecorder())``;
  resolution still collapses it to the no-op path);
* **enabled** -- a live :class:`~repro.obs.recorder.Recorder` (full
  tracing cost, reported for the docs, never gated).

``python -m repro.obs.overhead --max-overhead 0.05`` exits non-zero
when the disabled path exceeds the bound vs. the off baseline; min-of-N
timing keeps the gate robust to scheduler noise.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Any, Dict, List, Optional

from .recorder import NullRecorder, Recorder, set_recorder

#: a small-but-real allreduce: enough simulator work to time reliably
DEFAULT_SCENARIO = {"job_hosts": 4, "size_mb": 64}


def _run_scenario(params: Dict[str, Any], seed: int = 0) -> None:
    from ..engine.spec import get_experiment

    get_experiment("bench.allreduce").fn(dict(params), seed)


def _time_once(recorder: Optional[Recorder],
               params: Dict[str, Any]) -> float:
    previous = set_recorder(recorder)
    try:
        t0 = time.perf_counter()
        _run_scenario(params)
        return time.perf_counter() - t0
    finally:
        set_recorder(previous)


def measure(repeats: int = 5,
            params: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    """Min-of-``repeats`` timings for off/disabled/enabled recording.

    Modes are interleaved (off, disabled, enabled, off, ...) so cache
    warm-up and machine drift hit all three equally. Returns seconds
    per mode plus the overhead fractions vs. the off baseline.
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    scenario = dict(DEFAULT_SCENARIO)
    scenario.update(params or {})
    _run_scenario(scenario)  # warm-up: imports, topology caches

    times: Dict[str, List[float]] = {"off": [], "disabled": [],
                                     "enabled": []}
    for _ in range(repeats):
        times["off"].append(_time_once(None, scenario))
        times["disabled"].append(_time_once(NullRecorder(), scenario))
        times["enabled"].append(_time_once(Recorder(), scenario))

    off_s = min(times["off"])
    disabled_s = min(times["disabled"])
    enabled_s = min(times["enabled"])
    return {
        "scenario": scenario,
        "repeats": repeats,
        "off_s": off_s,
        "disabled_s": disabled_s,
        "enabled_s": enabled_s,
        "disabled_overhead": (disabled_s - off_s) / off_s if off_s else 0.0,
        "enabled_overhead": (enabled_s - off_s) / off_s if off_s else 0.0,
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.obs.overhead",
        description="benchmark instrumentation overhead on bench.allreduce",
    )
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument("--job-hosts", type=int,
                        default=DEFAULT_SCENARIO["job_hosts"])
    parser.add_argument("--size-mb", type=float,
                        default=DEFAULT_SCENARIO["size_mb"])
    parser.add_argument("--max-overhead", type=float, default=None,
                        help="fail (exit 1) when the disabled-recorder "
                             "path exceeds this fraction vs. baseline")
    parser.add_argument("--format", choices=["text", "json"],
                        default="text")
    args = parser.parse_args(argv)

    result = measure(
        repeats=args.repeats,
        params={"job_hosts": args.job_hosts, "size_mb": args.size_mb},
    )
    if args.format == "json":
        print(json.dumps(result, indent=2, sort_keys=True))  # repro: noqa[LINT005]
    else:
        print(  # repro: noqa[LINT005]
            f"off {result['off_s']*1e3:.1f}ms | disabled "
            f"{result['disabled_s']*1e3:.1f}ms "
            f"({result['disabled_overhead']:+.1%}) | enabled "
            f"{result['enabled_s']*1e3:.1f}ms "
            f"({result['enabled_overhead']:+.1%})"
        )
    if (args.max_overhead is not None
            and result["disabled_overhead"] > args.max_overhead):
        print(  # repro: noqa[LINT005]
            f"FAIL: disabled-recorder overhead "
            f"{result['disabled_overhead']:.1%} exceeds "
            f"{args.max_overhead:.1%}",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
