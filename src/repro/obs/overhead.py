"""Disabled-instrumentation overhead benchmark (CI gate: <5%).

Instrumenting hot paths is only free if a run with observability off
stays as fast as one that never heard of it. This module times the
``bench.allreduce`` scenario three ways:

* **off** -- no recorder installed anywhere (the untraced baseline:
  every instrumentation site resolves to ``None`` at construction);
* **disabled** -- a :class:`~repro.obs.recorder.NullRecorder` installed
  process-wide (what a user gets after ``set_recorder(NullRecorder())``;
  resolution still collapses it to the no-op path);
* **enabled** -- a live :class:`~repro.obs.recorder.Recorder` (full
  tracing cost, reported for the docs, never gated);
* **health** -- a live recorder with a default-config
  :class:`~repro.obs.health.HealthEngine` attached (samplers +
  detectors on top of full tracing; the *marginal* cost vs. enabled is
  what ``--max-health-overhead`` gates at <5%).

``python -m repro.obs.overhead --max-overhead 0.05`` exits non-zero
when the disabled path exceeds the bound vs. the off baseline; min-of-N
timing keeps the gate robust to scheduler noise.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Any, Dict, List, Optional

from .recorder import NullRecorder, Recorder, set_recorder

#: a small-but-real allreduce: enough simulator work to time reliably
DEFAULT_SCENARIO = {"job_hosts": 4, "size_mb": 64}

#: default experiment the modes are timed on (``--kind`` overrides;
#: the CI health gate uses ``bench.simcore``)
DEFAULT_KIND = "bench.allreduce"


def _coerce(text: str) -> Any:
    lowered = text.lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    for cast in (int, float):
        try:
            return cast(text)
        except ValueError:
            pass
    return text


def _run_scenario(params: Dict[str, Any], seed: int = 0,
                  kind: str = DEFAULT_KIND) -> None:
    from ..engine.spec import get_experiment

    defn = get_experiment(kind)
    merged = dict(defn.defaults)
    merged.update(params)
    defn.fn(merged, seed)


def _health_recorder() -> Recorder:
    from .health import HealthEngine

    rec = Recorder()
    HealthEngine(rec).attach()
    return rec


def _time_once(recorder: Optional[Recorder], params: Dict[str, Any],
               kind: str = DEFAULT_KIND) -> float:
    previous = set_recorder(recorder)
    try:
        t0 = time.perf_counter()
        _run_scenario(params, kind=kind)
        return time.perf_counter() - t0
    finally:
        set_recorder(previous)


def measure(repeats: int = 5,
            params: Optional[Dict[str, Any]] = None,
            kind: str = DEFAULT_KIND) -> Dict[str, Any]:
    """Min-of-``repeats`` timings for off/disabled/enabled/health modes.

    Modes are interleaved (off, disabled, enabled, health, off, ...) so
    cache warm-up and machine drift hit all four equally. Returns
    seconds per mode plus the overhead fractions: disabled/enabled vs.
    the off baseline, health (samplers + detectors) vs. enabled.
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    scenario = dict(DEFAULT_SCENARIO) if kind == DEFAULT_KIND else {}
    scenario.update(params or {})
    _run_scenario(scenario, kind=kind)  # warm-up: imports, topo caches

    times: Dict[str, List[float]] = {"off": [], "disabled": [],
                                     "enabled": [], "health": []}
    for _ in range(repeats):
        times["off"].append(_time_once(None, scenario, kind))
        times["disabled"].append(_time_once(NullRecorder(), scenario, kind))
        times["enabled"].append(_time_once(Recorder(), scenario, kind))
        times["health"].append(_time_once(_health_recorder(), scenario,
                                          kind))

    off_s = min(times["off"])
    disabled_s = min(times["disabled"])
    enabled_s = min(times["enabled"])
    health_s = min(times["health"])
    return {
        "kind": kind,
        "scenario": scenario,
        "repeats": repeats,
        "off_s": off_s,
        "disabled_s": disabled_s,
        "enabled_s": enabled_s,
        "health_s": health_s,
        "disabled_overhead": (disabled_s - off_s) / off_s if off_s else 0.0,
        "enabled_overhead": (enabled_s - off_s) / off_s if off_s else 0.0,
        "health_overhead": (
            (health_s - enabled_s) / enabled_s if enabled_s else 0.0),
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.obs.overhead",
        description="benchmark instrumentation overhead on bench.allreduce",
    )
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument("--kind", default=DEFAULT_KIND,
                        help="experiment to time (e.g. bench.simcore)")
    parser.add_argument("--job-hosts", type=int, default=None,
                        help="bench.allreduce job_hosts override")
    parser.add_argument("--size-mb", type=float, default=None,
                        help="bench.allreduce size_mb override")
    parser.add_argument("--set", action="append", default=[],
                        dest="sets", metavar="KEY=VALUE",
                        help="scenario param override (repeatable; "
                             "values coerce to bool/int/float)")
    parser.add_argument("--max-overhead", type=float, default=None,
                        help="fail (exit 1) when the disabled-recorder "
                             "path exceeds this fraction vs. baseline")
    parser.add_argument("--max-health-overhead", type=float, default=None,
                        help="fail (exit 1) when samplers+detectors "
                             "exceed this fraction vs. plain enabled "
                             "recording")
    parser.add_argument("--format", choices=["text", "json"],
                        default="text")
    args = parser.parse_args(argv)

    params: Dict[str, Any] = {}
    if args.job_hosts is not None:
        params["job_hosts"] = args.job_hosts
    if args.size_mb is not None:
        params["size_mb"] = args.size_mb
    for item in args.sets:
        key, sep, value = item.partition("=")
        if not sep or not key:
            parser.error(f"--set expects KEY=VALUE, got {item!r}")
        params[key] = _coerce(value)
    result = measure(repeats=args.repeats, params=params, kind=args.kind)
    if args.format == "json":
        print(json.dumps(result, indent=2, sort_keys=True))  # repro: noqa[LINT005]
    else:
        print(  # repro: noqa[LINT005]
            f"off {result['off_s']*1e3:.1f}ms | disabled "
            f"{result['disabled_s']*1e3:.1f}ms "
            f"({result['disabled_overhead']:+.1%}) | enabled "
            f"{result['enabled_s']*1e3:.1f}ms "
            f"({result['enabled_overhead']:+.1%}) | health "
            f"{result['health_s']*1e3:.1f}ms "
            f"({result['health_overhead']:+.1%} vs enabled)"
        )
    failed = False
    if (args.max_overhead is not None
            and result["disabled_overhead"] > args.max_overhead):
        print(  # repro: noqa[LINT005]
            f"FAIL: disabled-recorder overhead "
            f"{result['disabled_overhead']:.1%} exceeds "
            f"{args.max_overhead:.1%}",
            file=sys.stderr,
        )
        failed = True
    if (args.max_health_overhead is not None
            and result["health_overhead"] > args.max_health_overhead):
        print(  # repro: noqa[LINT005]
            f"FAIL: health samplers+detectors overhead "
            f"{result['health_overhead']:.1%} exceeds "
            f"{args.max_health_overhead:.1%} vs enabled",
            file=sys.stderr,
        )
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
