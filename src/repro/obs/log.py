"""Observability-aware logging for library code.

Library modules must not ``print()`` (lint rule LINT005); they log
through :func:`get_logger`, which wraps a namespaced stdlib logger
*and* mirrors warnings/errors into the active recorder's event log, so
a trace shows "cache entry dropped" next to the simulation events it
interleaved with. With no recorder installed and no logging handlers
configured, a log call is as silent and cheap as stdlib logging.
"""

from __future__ import annotations

import logging
from typing import Any, Dict, Optional

from .recorder import resolve

#: all library loggers live under this namespace
ROOT_LOGGER = "repro"

#: log levels mirrored into the active recorder's event log
MIRRORED_LEVELS = (logging.WARNING, logging.ERROR, logging.CRITICAL)


class ObsLogger:
    """A stdlib logger that also records into the active recorder."""

    def __init__(self, name: str):
        full = name if name == ROOT_LOGGER or name.startswith(
            ROOT_LOGGER + ".") else f"{ROOT_LOGGER}.{name}"
        self.name = full
        self._logger = logging.getLogger(full)

    # ------------------------------------------------------------------
    def _log(self, level: int, message: str, *args: Any,
             ts_s: float = 0.0, **fields: Any) -> None:
        self._logger.log(level, message, *args)
        if level not in MIRRORED_LEVELS:
            return
        rec = resolve()
        if rec is None:
            return
        rendered = message % args if args else message
        event_args: Dict[str, Any] = {"message": rendered,
                                      "logger": self.name}
        event_args.update(fields)
        rec.events.instant(
            f"log.{logging.getLevelName(level).lower()}", ts_s,
            track="log", **event_args,
        )
        rec.metrics.counter(
            "log.records", level=logging.getLevelName(level).lower()
        ).inc()

    def debug(self, message: str, *args: Any, **fields: Any) -> None:
        self._log(logging.DEBUG, message, *args, **fields)

    def info(self, message: str, *args: Any, **fields: Any) -> None:
        self._log(logging.INFO, message, *args, **fields)

    def warning(self, message: str, *args: Any, **fields: Any) -> None:
        self._log(logging.WARNING, message, *args, **fields)

    def error(self, message: str, *args: Any, **fields: Any) -> None:
        self._log(logging.ERROR, message, *args, **fields)


_LOGGERS: Dict[str, ObsLogger] = {}


def get_logger(name: Optional[str] = None) -> ObsLogger:
    """The library logger for ``name`` (usually ``__name__``)."""
    key = name or ROOT_LOGGER
    logger = _LOGGERS.get(key)
    if logger is None:
        logger = ObsLogger(key)
        _LOGGERS[key] = logger
    return logger
