"""Bounded ring buffer shared by every retention point in the repo.

Before this existed, :class:`~repro.fabric.queues.QueueTracker` and
:class:`~repro.access.bgp.FailoverTimeline` each re-implemented the
same "keep the newest N entries, count what rolled off" logic inline.
:class:`RingBuffer` centralizes it: list-like reads (``len``, iteration,
indexing, slicing), append-only writes, and a mutable ``max_entries``
bound that is re-read on every append so owners can tighten or lift it
mid-run.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Iterator, List, Optional


class RingBuffer:
    """Append-only buffer whose oldest entries roll off past a bound.

    ``max_entries=None`` means unbounded. ``rolled_off`` counts entries
    evicted over the buffer's lifetime, so consumers can tell "empty"
    from "everything aged out".
    """

    __slots__ = ("_items", "max_entries", "rolled_off")

    def __init__(self, max_entries: Optional[int] = None):
        self._items: deque = deque()
        self.max_entries = max_entries
        self.rolled_off = 0

    def append(self, item: Any) -> None:
        self._items.append(item)
        bound = self.max_entries
        if bound is not None:
            while len(self._items) > bound:
                self._items.popleft()
                self.rolled_off += 1

    def extend(self, items) -> None:
        for item in items:
            self.append(item)

    def clear(self) -> None:
        self._items.clear()

    # -- list-like reads ----------------------------------------------
    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[Any]:
        return iter(self._items)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return list(self._items)[index]
        return self._items[index]

    def __bool__(self) -> bool:
        return bool(self._items)

    def __eq__(self, other) -> bool:
        if isinstance(other, RingBuffer):
            return list(self._items) == list(other._items)
        if isinstance(other, (list, tuple)):
            return list(self._items) == list(other)
        return NotImplemented

    def __repr__(self) -> str:
        bound = "∞" if self.max_entries is None else str(self.max_entries)
        return (f"RingBuffer({len(self._items)} items, bound={bound}, "
                f"rolled_off={self.rolled_off})")

    def to_list(self) -> List[Any]:
        return list(self._items)
