"""The recorder: one metrics registry + one event log, injectable.

Observability is *off by default*: nothing is installed process-wide
and instrumented hot paths resolve to ``None`` and skip all recording.
There are two ways to turn it on:

* **explicit injection** -- pass a :class:`Recorder` to the component
  (``FluidSimulator(topo, recorder=rec)``), which wins over any global;
* **process-wide install** -- ``set_recorder(rec)`` or the
  ``recording()`` context manager, which instrumented constructors pick
  up via :func:`resolve`.

:class:`NullRecorder` exists for callers that want a recorder-shaped
object with recording switched off; :func:`resolve` maps any disabled
recorder to ``None`` so the hot-path guard stays a single ``is not
None`` check -- that is the "<5% disabled overhead" contract the CI
benchmark (:mod:`repro.obs.overhead`) enforces.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Dict, Iterable, Iterator, Optional

from .events import Event, EventLog
from .metrics import Counter, Gauge, Histogram, MetricsRegistry

#: default bound on retained events (long traces roll the oldest off)
DEFAULT_MAX_EVENTS = 100_000


class Recorder:
    """Process- or component-scoped sink for metrics and events."""

    enabled = True

    def __init__(self, max_events: Optional[int] = DEFAULT_MAX_EVENTS,
                 max_samples_per_series: Optional[int] = 10_000):
        self.metrics = MetricsRegistry(max_samples_per_series)
        self.events = EventLog(max_events)
        #: optional health sampler hub (:class:`repro.obs.health.SamplerHub`)
        #: attached by ``HealthEngine.attach``; instrumented components
        #: read it once at construction, so attach before building sims.
        self.health: Optional[Any] = None

    # -- convenience passthroughs --------------------------------------
    def counter(self, name: str, **labels: Any) -> Counter:
        return self.metrics.counter(name, **labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self.metrics.gauge(name, **labels)

    def histogram(self, name: str, buckets: Optional[Iterable[float]] = None,
                  **labels: Any) -> Histogram:
        return self.metrics.histogram(name, buckets=buckets, **labels)

    def instant(self, name: str, ts_s: float, track: str = "default",
                **args: Any) -> Event:
        return self.events.instant(name, ts_s, track=track, **args)

    def span(self, name: str, start_s: float, end_s: float,
             track: str = "default", **args: Any) -> Event:
        return self.events.span(name, start_s, end_s, track=track, **args)

    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """JSON-safe summary: all metric series plus event bookkeeping."""
        return {
            "metrics": self.metrics.snapshot(),
            "events": {
                "recorded": len(self.events),
                "rolled_off": self.events.rolled_off,
                "tracks": self.events.tracks(),
            },
        }

    def __repr__(self) -> str:
        return (f"Recorder({len(self.metrics)} series, "
                f"{len(self.events)} events)")


class NullRecorder(Recorder):
    """A recorder with recording switched off.

    Instrumented code never actually calls these methods --
    :func:`resolve` maps disabled recorders to ``None`` -- but the
    no-op API is kept complete so direct calls are also safe.
    """

    enabled = False

    def __init__(self):
        super().__init__(max_events=0, max_samples_per_series=0)


# ----------------------------------------------------------------------
# process-wide installation
# ----------------------------------------------------------------------
_ACTIVE: Optional[Recorder] = None


def get_recorder() -> Optional[Recorder]:
    """The process-wide recorder, or None when observability is off."""
    return _ACTIVE


def set_recorder(recorder: Optional[Recorder]) -> Optional[Recorder]:
    """Install (or clear, with None) the process-wide recorder.

    Returns the previously installed recorder so callers can restore it.
    """
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = recorder
    return previous


def resolve(recorder: Optional[Recorder] = None) -> Optional[Recorder]:
    """The recorder a hot path should record through, or None.

    Explicit injection wins over the process-wide install; a disabled
    recorder (e.g. :class:`NullRecorder`) resolves to None so every
    instrumentation guard is one identity check.
    """
    rec = recorder if recorder is not None else _ACTIVE
    if rec is None or not rec.enabled:
        return None
    return rec


@contextmanager
def recording(recorder: Optional[Recorder] = None) -> Iterator[Recorder]:
    """Install a recorder for the duration of a block::

        with obs.recording() as rec:
            run_flows(topo, flows)
        rec.metrics.snapshot()
    """
    rec = recorder if recorder is not None else Recorder()
    previous = set_recorder(rec)
    try:
        yield rec
    finally:
        set_recorder(previous)
