"""Unified observability: metrics registry, event log, exporters.

The instrumentation substrate for the whole reproduction -- the lens
the paper's own evaluation relies on (per-port ToR traffic,
aggregation ingress imbalance, failover timelines, INT-style path
records), available on any run:

* :mod:`~repro.obs.metrics` -- counters/gauges/histograms with labeled
  series (``link_util{tier=agg}``);
* :mod:`~repro.obs.events` -- typed spans and instants stamped with
  simulation time, on named tracks;
* :mod:`~repro.obs.recorder` -- the injectable/process-wide
  :class:`Recorder`, off by default and no-op when disabled;
* :mod:`~repro.obs.export` -- JSONL, metrics snapshots, and Chrome
  ``trace_event`` JSON (opens in Perfetto / ``chrome://tracing``);
* :mod:`~repro.obs.log` -- the print-free library logger (LINT005);
* :mod:`~repro.obs.overhead` -- the disabled-instrumentation overhead
  benchmark CI gates at <5%.

Quick start::

    from repro import obs

    with obs.recording() as rec:
        run_flows(topo, flows)              # hot paths pick rec up
    obs.write_chrome_trace(rec, "trace.json")
"""

from .events import Event, EventLog
from .export import (
    chrome_trace,
    events_to_jsonl,
    load_events_jsonl,
    metrics_snapshot,
    summary_table,
    validate_chrome_trace,
    write_chrome_trace,
    write_events_jsonl,
    write_metrics_snapshot,
)
from .log import ObsLogger, get_logger
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    series_name,
)
from .recorder import (
    NullRecorder,
    Recorder,
    get_recorder,
    recording,
    resolve,
    set_recorder,
)
from .ring import RingBuffer

__all__ = [
    "Counter",
    "Event",
    "EventLog",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRecorder",
    "ObsLogger",
    "Recorder",
    "RingBuffer",
    "chrome_trace",
    "events_to_jsonl",
    "get_logger",
    "get_recorder",
    "load_events_jsonl",
    "metrics_snapshot",
    "recording",
    "resolve",
    "series_name",
    "set_recorder",
    "summary_table",
    "validate_chrome_trace",
    "write_chrome_trace",
    "write_events_jsonl",
    "write_metrics_snapshot",
]
