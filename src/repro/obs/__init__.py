"""Unified observability: metrics registry, event log, exporters.

The instrumentation substrate for the whole reproduction -- the lens
the paper's own evaluation relies on (per-port ToR traffic,
aggregation ingress imbalance, failover timelines, INT-style path
records), available on any run:

* :mod:`~repro.obs.metrics` -- counters/gauges/histograms with labeled
  series (``link_util{tier=agg}``);
* :mod:`~repro.obs.events` -- typed spans and instants stamped with
  simulation time, on named tracks;
* :mod:`~repro.obs.recorder` -- the injectable/process-wide
  :class:`Recorder`, off by default and no-op when disabled;
* :mod:`~repro.obs.export` -- JSONL, metrics snapshots, and Chrome
  ``trace_event`` JSON (opens in Perfetto / ``chrome://tracing``);
* :mod:`~repro.obs.log` -- the print-free library logger (LINT005);
* :mod:`~repro.obs.overhead` -- the disabled-instrumentation overhead
  benchmark CI gates at <5%;
* :mod:`~repro.obs.health` -- the fabric health engine: streaming
  samplers over hot-path state, anomaly detectors (polarization,
  hotspots, failover SLO, solver drift, fleet interference), typed
  incidents, and the ``repro health`` report surface.

Quick start::

    from repro import obs

    with obs.recording() as rec:
        run_flows(topo, flows)              # hot paths pick rec up
    obs.write_chrome_trace(rec, "trace.json")
"""

from .events import Event, EventLog
from .export import (
    chrome_trace,
    events_to_jsonl,
    load_events_jsonl,
    metrics_snapshot,
    parse_prometheus_text,
    prometheus_exposition,
    summary_table,
    validate_chrome_trace,
    write_chrome_trace,
    write_events_jsonl,
    write_health_report,
    write_metrics_snapshot,
    write_prometheus,
)
from .log import ObsLogger, get_logger
from .metrics import (
    DEFAULT_BUCKETS,
    FRACTION_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    series_name,
)
from .recorder import (
    NullRecorder,
    Recorder,
    get_recorder,
    recording,
    resolve,
    set_recorder,
)
from .ring import RingBuffer

# health imports Recorder/export pieces above, so it must come last
from .health import (  # noqa: E402  (deliberate layering order)
    HealthConfig,
    HealthEngine,
    HealthReport,
    Incident,
    SamplerHub,
)

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Event",
    "EventLog",
    "FRACTION_BUCKETS",
    "Gauge",
    "HealthConfig",
    "HealthEngine",
    "HealthReport",
    "Histogram",
    "Incident",
    "MetricsRegistry",
    "NullRecorder",
    "ObsLogger",
    "Recorder",
    "RingBuffer",
    "SamplerHub",
    "chrome_trace",
    "events_to_jsonl",
    "get_logger",
    "get_recorder",
    "load_events_jsonl",
    "metrics_snapshot",
    "parse_prometheus_text",
    "prometheus_exposition",
    "recording",
    "resolve",
    "series_name",
    "set_recorder",
    "summary_table",
    "validate_chrome_trace",
    "write_chrome_trace",
    "write_events_jsonl",
    "write_health_report",
    "write_metrics_snapshot",
    "write_prometheus",
]
