"""Structured event log: typed spans and instants in simulation time.

Every event is stamped with *simulation* seconds (the timeline the
fluid simulator advances), not wall clock, so a trace lines up with
`SimResult` timings and failover windows exactly. Events carry a
``track`` -- a named lane ("flows", "failover", "collective") that the
Chrome-trace exporter renders as one thread row each.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, Mapping, Optional

from .ring import RingBuffer

#: event phases (mirrors the Chrome trace_event vocabulary)
PHASE_INSTANT = "instant"
PHASE_SPAN = "span"

PHASES = (PHASE_INSTANT, PHASE_SPAN)


@dataclass(frozen=True)
class Event:
    """One recorded happening: a point event or a completed span."""

    name: str
    ts_s: float
    phase: str = PHASE_INSTANT
    dur_s: float = 0.0
    track: str = "default"
    args: Mapping[str, Any] = field(default_factory=dict)

    @property
    def end_s(self) -> float:
        return self.ts_s + self.dur_s

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "ts_s": self.ts_s,
            "phase": self.phase,
            "dur_s": self.dur_s,
            "track": self.track,
            "args": dict(self.args),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Event":
        phase = data.get("phase", PHASE_INSTANT)
        if phase not in PHASES:
            raise ValueError(f"unknown event phase {phase!r}")
        return cls(
            name=data["name"],
            ts_s=float(data["ts_s"]),
            phase=phase,
            dur_s=float(data.get("dur_s", 0.0)),
            track=data.get("track", "default"),
            args=dict(data.get("args", {})),
        )


class EventLog:
    """Bounded, append-only sequence of :class:`Event`."""

    def __init__(self, max_entries: Optional[int] = None):
        self._events: RingBuffer = RingBuffer(max_entries)

    # -- recording -----------------------------------------------------
    def record(self, event: Event) -> Event:
        self._events.append(event)
        return event

    def instant(self, name: str, ts_s: float, track: str = "default",
                **args: Any) -> Event:
        """A point event: something happened at one simulated instant."""
        return self.record(Event(name=name, ts_s=ts_s, track=track,
                                 args=args))

    def span(self, name: str, start_s: float, end_s: float,
             track: str = "default", **args: Any) -> Event:
        """A completed interval: [start_s, end_s] in simulation time."""
        return self.record(Event(
            name=name, ts_s=start_s, phase=PHASE_SPAN,
            dur_s=max(0.0, end_s - start_s), track=track, args=args,
        ))

    # -- reads ---------------------------------------------------------
    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._events)

    def __getitem__(self, index):
        return self._events[index]

    @property
    def rolled_off(self) -> int:
        return self._events.rolled_off

    def by_name(self, name: str):
        return [e for e in self._events if e.name == name]

    def by_track(self, track: str):
        return [e for e in self._events if e.track == track]

    def tracks(self):
        """Distinct track names in first-seen order."""
        seen, out = set(), []
        for e in self._events:
            if e.track not in seen:
                seen.add(e.track)
                out.append(e.track)
        return out
