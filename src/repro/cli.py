"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``build``      -- build an architecture, print its inventory, and
                    optionally save it to JSON;
* ``validate``   -- load (or build) a topology and run the invariants
                    plus the INT wiring check;
* ``complexity`` -- print Table 1 (path-selection search space);
* ``train``      -- simulate one training iteration of a named model;
* ``inject``     -- run the Figure-18 fault drill and print the
                    throughput timeline.

The CLI exists so the library is usable without writing Python; every
command is a thin veneer over the public API.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from . import __version__
from .cluster import Cluster
from .core.serialize import load_topology, save_topology
from .routing import table1
from .topos import (
    DcnPlusSpec,
    HpnSpec,
    SingleTorSpec,
    table1_cards,
)
from .viz import render_oversubscription, render_summary, render_tiers

_MODELS = {"llama-7b": "LLAMA_7B", "llama-13b": "LLAMA_13B", "gpt3-175b": "GPT3_175B"}


def _build_cluster(args: argparse.Namespace) -> Cluster:
    if args.arch == "hpn":
        spec = HpnSpec(
            segments_per_pod=args.segments,
            hosts_per_segment=args.hosts,
            backup_hosts_per_segment=args.backup_hosts,
            aggs_per_plane=args.aggs,
        )
        return Cluster.hpn(spec)
    if args.arch == "dcnplus":
        spec = DcnPlusSpec(
            pods=1, segments_per_pod=args.segments, hosts_per_segment=args.hosts
        )
        return Cluster.dcnplus(spec)
    if args.arch == "singletor":
        return Cluster.singletor(
            SingleTorSpec(segments=args.segments, hosts_per_segment=args.hosts)
        )
    raise SystemExit(f"unknown architecture {args.arch!r}")


def _add_build_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--arch", default="hpn", choices=["hpn", "dcnplus", "singletor"])
    p.add_argument("--segments", type=int, default=1)
    p.add_argument("--hosts", type=int, default=16, help="hosts per segment")
    p.add_argument("--backup-hosts", type=int, default=0)
    p.add_argument("--aggs", type=int, default=8, help="aggs per plane (hpn)")


def cmd_build(args: argparse.Namespace) -> int:
    cluster = _build_cluster(args)
    print(render_summary(cluster.topo))
    print(render_tiers(cluster.topo))
    print(render_oversubscription(cluster.topo))
    if args.output:
        save_topology(cluster.topo, args.output)
        print(f"saved to {args.output}")
    return 0


def _print_validate_text(report, topo) -> None:
    """Classic staged text output over the collecting report."""
    from .staticcheck import Severity

    print(render_summary(topo))
    errors = report.errors
    invariant = [d for d in errors if d.rule_id.startswith("TOPO")]
    wiring = [d for d in errors if d.rule_id.startswith("WIRE")]
    forwarding = [d for d in errors if d.rule_id.startswith("FWD")]
    if invariant:
        print(f"INVARIANT VIOLATIONS ({len(invariant)}):")
        for d in invariant:
            print(f"  {d.render()}")
    if wiring:
        print(f"WIRING FAULTS ({len(wiring)}):")
        for d in wiring:
            print(f"  {d.render()}")
    if forwarding:
        print(f"FORWARDING VIOLATIONS ({len(forwarding)}):")
        for d in forwarding[:10]:
            print(f"  {d.render()}")
        if len(forwarding) > 10:
            print(f"  ... and {len(forwarding) - 10} more")
    warnings = report.warnings
    if warnings:
        print(f"WARNINGS ({len(warnings)}):")
        for d in warnings:
            print(f"  {d.render()}")
    if not errors:
        flows = report.stats.get("fwd_flows_walked", 0)
        print(
            "all invariants hold; wiring matches the blueprint; "
            f"{flows} probe flows delivered loop-free"
        )


def cmd_validate(args: argparse.Namespace) -> int:
    if args.input:
        try:
            topo = load_topology(args.input)
        except OSError as exc:
            print(f"error: cannot read topology {args.input!r}: {exc}",
                  file=sys.stderr)
            return 2
    else:
        topo = _build_cluster(args).topo
    from .staticcheck import run_topology_rules

    fwd_kwargs = {"max_pairs": args.probe_pairs}
    if args.all:
        # one exhaustive pass: structural rules + wiring sweep +
        # forwarding walks, every diagnostic collected in one report
        report = run_topology_rules(
            topo, include_expensive=True, forwarding_kwargs=fwd_kwargs
        )
    else:
        # staged classic behavior: cheap structural rules gate the
        # expensive blueprint/forwarding analyses
        report = run_topology_rules(topo)
        if report.ok:
            report = run_topology_rules(
                topo, include_expensive=True, forwarding_kwargs=fwd_kwargs
            )
    if args.format == "json":
        print(report.to_json())
    else:
        _print_validate_text(report, topo)
    return report.exit_code(strict=args.strict)


def cmd_lint(args: argparse.Namespace) -> int:
    from .staticcheck import all_rules, lint_paths

    if args.list_rules:
        for info in all_rules():
            print(f"{info.rule_id:<9} {info.severity.value:<8} {info.title}"
                  f"{'  [expensive]' if info.expensive else ''}")
        return 0
    rule_ids = None
    if args.rules:
        from .staticcheck import AST_RULES

        rule_ids = [r.strip() for r in args.rules.split(",") if r.strip()]
        unknown = sorted(set(rule_ids) - set(AST_RULES))
        if unknown:
            known = ", ".join(sorted(AST_RULES))
            print(f"error: unknown lint rule id(s): {', '.join(unknown)} "
                  f"(known: {known})", file=sys.stderr)
            return 2
    report = lint_paths(args.paths, rule_ids=rule_ids)
    if args.format == "json":
        print(report.to_json())
    else:
        print(report.render_text())
    return report.exit_code(strict=args.strict)


def cmd_complexity(_args: argparse.Namespace) -> int:
    for row in table1(table1_cards()):
        print(
            f"{row.name:<18} {row.supported_gpus:>6} GPUs  {row.tiers} tiers  "
            f"LB at {row.lb_switch_roles:<22} O({row.complexity})"
        )
    return 0


def cmd_train(args: argparse.Namespace) -> int:
    from . import training

    cluster = _build_cluster(args)
    config = getattr(training, _MODELS[args.model])
    hosts = cluster.place(args.job_hosts)
    plan = training.ParallelismPlan(tp=8, pp=args.pp, dp=args.job_hosts * 8 // (8 * args.pp))
    job = cluster.train(config, plan, hosts, microbatches=args.microbatches)
    it = job.iteration()
    print(f"model {config.name} on {args.job_hosts} hosts ({cluster.architecture})")
    print(f"  iteration : {it.total_seconds:.3f} s")
    print(f"  throughput: {it.samples_per_sec:.1f} samples/s")
    print(f"  compute {it.compute_seconds:.3f}s | tp {it.tp_seconds*1e3:.1f}ms | "
          f"pp {it.pp_seconds*1e3:.1f}ms | dp {it.dp_seconds:.3f}s "
          f"(exposed {it.dp_exposed_seconds:.3f}s)")
    return 0


def cmd_inject(args: argparse.Namespace) -> int:
    from . import training
    from .reliability import FaultInjector, link_failure_scenario

    cluster = _build_cluster(args)
    config = getattr(training, _MODELS[args.model])
    hosts = cluster.place(args.job_hosts)
    plan = training.ParallelismPlan(tp=8, pp=1, dp=args.job_hosts)
    job = cluster.train(config, plan, hosts, microbatches=args.microbatches)
    events = link_failure_scenario(
        hosts[0], rail=0, fail_at=args.fail_at, repair_at=args.repair_at
    )
    result = FaultInjector(job).run(events, duration=args.duration)
    for point in result.timeline:
        print(f"t={point.time:8.2f}s  {point.samples_per_sec:9.1f} samples/s  {point.note}")
    if result.crashed:
        print(f"CRASHED at t={result.crash_time:.1f}s")
        return 2
    return 0


def make_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="HPN (SIGCOMM 2024) reproduction toolkit",
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("build", help="build a fabric and print its inventory")
    _add_build_args(p)
    p.add_argument("--output", "-o", help="save the topology as JSON")
    p.set_defaults(func=cmd_build)

    p = sub.add_parser("validate", help="check invariants, wiring, forwarding")
    _add_build_args(p)
    p.add_argument("--input", "-i", help="load a topology JSON instead of building")
    p.add_argument("--probe-pairs", type=int, default=32,
                   help="host pairs to probe in the forwarding check")
    p.add_argument("--all", action="store_true",
                   help="run every analyzer family in one pass and report "
                        "all diagnostics (no staged early exit)")
    p.add_argument("--format", choices=["text", "json"], default="text")
    p.add_argument("--strict", action="store_true",
                   help="warnings also fail the gate")
    p.set_defaults(func=cmd_validate)

    p = sub.add_parser("lint", help="run codebase AST lint rules (LINT*)")
    p.add_argument("paths", nargs="*", default=["src/repro"],
                   help="files or directories to lint (default: src/repro)")
    p.add_argument("--format", choices=["text", "json"], default="text")
    p.add_argument("--strict", action="store_true",
                   help="warnings also fail the gate")
    p.add_argument("--rules", help="comma-separated rule ids to run")
    p.add_argument("--list-rules", action="store_true",
                   help="print the full rule catalogue and exit")
    p.set_defaults(func=cmd_lint)

    p = sub.add_parser("complexity", help="print Table 1")
    p.set_defaults(func=cmd_complexity)

    p = sub.add_parser("train", help="simulate one training iteration")
    _add_build_args(p)
    p.add_argument("--model", default="llama-7b", choices=sorted(_MODELS))
    p.add_argument("--job-hosts", type=int, default=8)
    p.add_argument("--pp", type=int, default=1)
    p.add_argument("--microbatches", type=int, default=18)
    p.set_defaults(func=cmd_train)

    p = sub.add_parser("inject", help="fault-injection drill (Figure 18)")
    _add_build_args(p)
    p.add_argument("--model", default="llama-7b", choices=sorted(_MODELS))
    p.add_argument("--job-hosts", type=int, default=8)
    p.add_argument("--microbatches", type=int, default=18)
    p.add_argument("--fail-at", type=float, default=10.0)
    p.add_argument("--repair-at", type=float, default=60.0)
    p.add_argument("--duration", type=float, default=300.0)
    p.set_defaults(func=cmd_inject)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = make_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
