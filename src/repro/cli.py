"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``build``      -- build an architecture, print its inventory, and
                    optionally save it to JSON;
* ``validate``   -- load (or build) a topology and run the invariants
                    plus the INT wiring check;
* ``complexity`` -- print Table 1 (path-selection search space);
* ``train``      -- simulate one training iteration of a named model;
* ``inject``     -- run the Figure-18 fault drill and print the
                    throughput timeline;
* ``exp``        -- the experiment engine: ``exp list`` (catalogue),
                    ``exp run`` (schedule a cached, seeded batch over
                    the serial or process backend), ``exp compare``
                    (diff two run manifests ignoring timing);
* ``trace``      -- run one experiment under the observability
                    recorder and export Chrome-trace / metrics /
                    events artifacts (open the trace in Perfetto).

The CLI exists so the library is usable without writing Python; every
command is a thin veneer over the public API.
"""

from __future__ import annotations

import argparse
import ast
import sys
from typing import List, Optional

from . import __version__
from .cluster import Cluster
from .core.serialize import load_topology, save_topology
from .routing import table1
from .topos import (
    DcnPlusSpec,
    HpnSpec,
    SingleTorSpec,
    table1_cards,
)
from .viz import render_oversubscription, render_summary, render_tiers

_MODELS = {"llama-7b": "LLAMA_7B", "llama-13b": "LLAMA_13B", "gpt3-175b": "GPT3_175B"}


def _build_cluster(args: argparse.Namespace) -> Cluster:
    if args.arch == "hpn":
        spec = HpnSpec(
            segments_per_pod=args.segments,
            hosts_per_segment=args.hosts,
            backup_hosts_per_segment=args.backup_hosts,
            aggs_per_plane=args.aggs,
        )
        return Cluster.hpn(spec)
    if args.arch == "dcnplus":
        spec = DcnPlusSpec(
            pods=1, segments_per_pod=args.segments, hosts_per_segment=args.hosts
        )
        return Cluster.dcnplus(spec)
    if args.arch == "singletor":
        return Cluster.singletor(
            SingleTorSpec(segments=args.segments, hosts_per_segment=args.hosts)
        )
    raise SystemExit(f"unknown architecture {args.arch!r}")


def _add_build_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--arch", default="hpn", choices=["hpn", "dcnplus", "singletor"])
    p.add_argument("--segments", type=int, default=1)
    p.add_argument("--hosts", type=int, default=16, help="hosts per segment")
    p.add_argument("--backup-hosts", type=int, default=0)
    p.add_argument("--aggs", type=int, default=8, help="aggs per plane (hpn)")


def cmd_build(args: argparse.Namespace) -> int:
    cluster = _build_cluster(args)
    print(render_summary(cluster.topo))
    print(render_tiers(cluster.topo))
    print(render_oversubscription(cluster.topo))
    if args.output:
        save_topology(cluster.topo, args.output)
        print(f"saved to {args.output}")
    return 0


def _print_validate_text(report, topo) -> None:
    """Classic staged text output over the collecting report."""
    from .staticcheck import Severity

    print(render_summary(topo))
    errors = report.errors
    invariant = [d for d in errors if d.rule_id.startswith("TOPO")]
    wiring = [d for d in errors if d.rule_id.startswith("WIRE")]
    forwarding = [d for d in errors if d.rule_id.startswith("FWD")]
    if invariant:
        print(f"INVARIANT VIOLATIONS ({len(invariant)}):")
        for d in invariant:
            print(f"  {d.render()}")
    if wiring:
        print(f"WIRING FAULTS ({len(wiring)}):")
        for d in wiring:
            print(f"  {d.render()}")
    if forwarding:
        print(f"FORWARDING VIOLATIONS ({len(forwarding)}):")
        for d in forwarding[:10]:
            print(f"  {d.render()}")
        if len(forwarding) > 10:
            print(f"  ... and {len(forwarding) - 10} more")
    warnings = report.warnings
    if warnings:
        print(f"WARNINGS ({len(warnings)}):")
        for d in warnings:
            print(f"  {d.render()}")
    if not errors:
        flows = report.stats.get("fwd_flows_walked", 0)
        print(
            "all invariants hold; wiring matches the blueprint; "
            f"{flows} probe flows delivered loop-free"
        )


def cmd_validate(args: argparse.Namespace) -> int:
    if args.input:
        try:
            topo = load_topology(args.input)
        except OSError as exc:
            print(f"error: cannot read topology {args.input!r}: {exc}",
                  file=sys.stderr)
            return 2
    else:
        topo = _build_cluster(args).topo
    from .staticcheck import run_topology_rules

    fwd_kwargs = {"max_pairs": args.probe_pairs}
    if args.all:
        # one exhaustive pass: structural rules + wiring sweep +
        # forwarding walks, every diagnostic collected in one report
        report = run_topology_rules(
            topo, include_expensive=True, forwarding_kwargs=fwd_kwargs
        )
    else:
        # staged classic behavior: cheap structural rules gate the
        # expensive blueprint/forwarding analyses
        report = run_topology_rules(topo)
        if report.ok:
            report = run_topology_rules(
                topo, include_expensive=True, forwarding_kwargs=fwd_kwargs
            )
    if args.format == "text":
        _print_validate_text(report, topo)
    else:
        from .staticcheck import all_rules, render_report

        print(render_report(report, args.format, rules=all_rules()))
    return report.exit_code(strict=args.strict)


def _print_rule_catalogue() -> None:
    from .staticcheck import all_rules

    for info in all_rules():
        print(f"{info.rule_id:<9} {info.severity.value:<8} {info.title}"
              f"{'  [expensive]' if info.expensive else ''}")


def cmd_lint(args: argparse.Namespace) -> int:
    from .staticcheck import all_rules, lint_paths, render_report

    if args.list_rules:
        _print_rule_catalogue()
        return 0
    rule_ids = None
    if args.rules:
        from .staticcheck import AST_RULES

        rule_ids = [r.strip() for r in args.rules.split(",") if r.strip()]
        unknown = sorted(set(rule_ids) - set(AST_RULES))
        if unknown:
            known = ", ".join(sorted(AST_RULES))
            print(f"error: unknown lint rule id(s): {', '.join(unknown)} "
                  f"(known: {known})", file=sys.stderr)
            return 2
    report = lint_paths(args.paths, rule_ids=rule_ids)
    print(render_report(report, args.format, rules=all_rules()))
    return report.exit_code(strict=args.strict)


def cmd_check(args: argparse.Namespace) -> int:
    """The unified gate: every rule family, one report, one exit code."""
    from .staticcheck import FAMILIES, all_rules, render_report, run_check
    from .staticcheck.semantics import Baseline

    if args.list_rules:
        _print_rule_catalogue()
        return 0
    families = None
    if args.family:
        families = [f.strip().upper() for f in args.family.split(",")
                    if f.strip()]
        unknown = sorted(set(families) - set(FAMILIES))
        if unknown:
            print(f"error: unknown rule family(ies): {', '.join(unknown)} "
                  f"(known: {', '.join(sorted(FAMILIES))})", file=sys.stderr)
            return 2
    wanted = set(families) if families else set(FAMILIES)
    topo = None
    if wanted & {"TOPO", "WIRE", "FWD"}:
        if args.input:
            try:
                topo = load_topology(args.input)
            except OSError as exc:
                print(f"error: cannot read topology {args.input!r}: {exc}",
                      file=sys.stderr)
                return 2
        else:
            topo = _build_cluster(args).topo
    baseline = Baseline.load(args.baseline)
    report = run_check(
        families=families,
        paths=args.paths,
        topo=topo,
        forwarding_kwargs={"max_pairs": args.probe_pairs},
        baseline=baseline,
    )
    if args.update_baseline:
        Baseline.from_report(report).save(args.baseline)
        print(f"baseline rewritten: {args.baseline} "
              f"({len(report.active)} entries)", file=sys.stderr)
        return 0
    stale = baseline.stale_entries(report)
    if stale:
        print(f"note: {len(stale)} stale baseline entr"
              f"{'y' if len(stale) == 1 else 'ies'} (debt paid down; "
              f"re-run with --update-baseline)", file=sys.stderr)
    print(render_report(report, args.format, rules=all_rules()))
    return report.exit_code(strict=args.strict)


def cmd_complexity(_args: argparse.Namespace) -> int:
    for row in table1(table1_cards()):
        print(
            f"{row.name:<18} {row.supported_gpus:>6} GPUs  {row.tiers} tiers  "
            f"LB at {row.lb_switch_roles:<22} O({row.complexity})"
        )
    return 0


def cmd_route(args: argparse.Namespace) -> int:
    import itertools

    from .routing import FiveTuple

    cluster = _build_cluster(args)
    router = cluster.router  # the shared CachedRouter
    topo = cluster.topo
    hosts = sorted(h.name for h in topo.active_hosts())
    if args.src or args.dst:
        pairs = [(args.src or hosts[0], args.dst or hosts[-1])]
    else:
        pairs = list(itertools.combinations(hosts, 2))[: args.pairs]

    routed = unroutable = 0
    for _pass in range(args.repeat):
        for src_host, dst_host in pairs:
            src = topo.hosts[src_host].nic_for_rail(args.rail)
            dst = topo.hosts[dst_host].nic_for_rail(args.rail)
            requests = [
                (src, dst, FiveTuple(src.ip, dst.ip, args.sport + i, 4791),
                 args.plane)
                for i in range(args.conns)
            ]
            paths = router.route_many(requests, strict=False)
            for (_s, _d, ft, _p), path in zip(requests, paths):
                if path is None:
                    unroutable += 1
                    if len(pairs) == 1:
                        print(f"sport {ft.sport}: unroutable")
                elif len(pairs) == 1:
                    routed += 1
                    print(
                        f"sport {ft.sport} plane {path.plane}: "
                        + " -> ".join(path.nodes)
                    )
                else:
                    routed += 1
    print(
        f"routed {routed} flows over {len(pairs)} pairs "
        f"(rail {args.rail}, {args.conns} conns/pair, "
        f"{args.repeat} pass{'es' if args.repeat != 1 else ''})"
        + (f"; {unroutable} unroutable" if unroutable else "")
    )
    if args.stats:
        stats = router.stats
        print(
            f"route cache: {stats.hits} hits / {stats.misses} misses "
            f"(hit rate {stats.hit_rate:.1%}), "
            f"{stats.invalidations} invalidations, "
            f"{stats.fib_compiles} fib compile"
            f"{'s' if stats.fib_compiles != 1 else ''}"
        )
    return 0


def cmd_train(args: argparse.Namespace) -> int:
    from . import training

    cluster = _build_cluster(args)
    config = getattr(training, _MODELS[args.model])
    hosts = cluster.place(args.job_hosts)
    plan = training.ParallelismPlan(tp=8, pp=args.pp, dp=args.job_hosts * 8 // (8 * args.pp))
    job = cluster.train(config, plan, hosts, microbatches=args.microbatches)
    it = job.iteration()
    print(f"model {config.name} on {args.job_hosts} hosts ({cluster.architecture})")
    print(f"  iteration : {it.total_seconds:.3f} s")
    print(f"  throughput: {it.samples_per_sec:.1f} samples/s")
    print(f"  compute {it.compute_seconds:.3f}s | tp {it.tp_seconds*1e3:.1f}ms | "
          f"pp {it.pp_seconds*1e3:.1f}ms | dp {it.dp_seconds:.3f}s "
          f"(exposed {it.dp_exposed_seconds:.3f}s)")
    return 0


def cmd_inject(args: argparse.Namespace) -> int:
    from . import training
    from .reliability import FaultInjector, link_failure_scenario

    cluster = _build_cluster(args)
    config = getattr(training, _MODELS[args.model])
    hosts = cluster.place(args.job_hosts)
    plan = training.ParallelismPlan(tp=8, pp=1, dp=args.job_hosts)
    job = cluster.train(config, plan, hosts, microbatches=args.microbatches)
    events = link_failure_scenario(
        hosts[0], rail=0, fail_at=args.fail_at, repair_at=args.repair_at
    )
    result = FaultInjector(job).run(events, duration=args.duration)
    for point in result.timeline:
        print(f"t={point.time:8.2f}s  {point.samples_per_sec:9.1f} samples/s  {point.note}")
    if result.crashed:
        print(f"CRASHED at t={result.crash_time:.1f}s")
        return 2
    return 0


def cmd_fleet(args: argparse.Namespace) -> int:
    from .fleet import policy_names, run_churn, run_interference

    if args.policy not in policy_names():
        raise SystemExit(
            f"error: unknown policy {args.policy!r} "
            f"(registered: {', '.join(policy_names())})"
        )
    params = {
        "arch": args.arch,
        "segments": args.segments,
        "hosts_per_segment": args.hosts,
        "aggs_per_plane": args.aggs,
        "policy": args.policy,
        "frontend": not args.no_frontend,
        "mean_interarrival_s": args.interarrival,
        "mean_duration_s": args.duration,
    }
    if args.mode == "interference":
        out = run_interference(params, args.seed)
        print(f"interference on {args.arch} "
              f"({args.segments}x{args.hosts} hosts), "
              f"jobs of {out['gpu_sizes']} GPUs:")
        for policy, r in out["policies"].items():
            backend = r["backend"]
            tiers = ", ".join(f"{t}={u:.2f}"
                              for t, u in backend["tier_util"].items())
            print(f"  {policy:<11} slowdown mean {backend['mean_slowdown']:.2f}x "
                  f"max {backend['max_slowdown']:.2f}x  util {tiers}")
            for cls in r["frontend"].get("classes", []):
                print(f"  {'':<11} fe/{cls['name']:<20} "
                      f"offered {cls['offered_gbps']:8.1f} Gbps "
                      f"achieved {cls['achieved_gbps']:8.1f} "
                      f"({cls['contention']:.2f})")
        return 0
    params.update({"arrivals": args.arrivals, "snapshots": args.snapshots})
    out = run_churn(params, args.seed)
    print(f"fleet churn: {out['arrivals']} arrivals on {args.arch} "
          f"({args.segments}x{args.hosts} hosts), policy {out['policy']}")
    print(f"  admitted  : {out['admitted']} "
          f"(rejected {out['rejected']}, completed {out['completed']})")
    wait = out["queue_wait"]
    print(f"  queue wait: mean {wait['mean_s']:.0f}s  p50 {wait['p50_s']:.0f}s "
          f"p95 {wait['p95_s']:.0f}s  max {wait['max_s']:.0f}s")
    frag = out["fragmentation"]
    print(f"  fragmentation: mean {frag['mean']:.3f} max {frag['max']:.3f} "
          f"({frag['multi_segment_jobs']} multi-segment, "
          f"{frag['cross_pod_jobs']} cross-pod)")
    print(f"  makespan  : {out['makespan_s']:.0f}s  "
          f"gpu utilization {out['gpu_utilization']:.1%}")
    for snap in out["snapshots"]:
        backend = snap["backend"]
        line = (f"  t={snap['t_s']:8.0f}s  {snap['jobs_running']:3d} running "
                f"{snap['queue_depth']:3d} queued")
        if backend:
            tiers = ", ".join(f"{t}={u:.2f}"
                              for t, u in backend["tier_util"].items())
            line += (f"  slowdown {backend['mean_slowdown']:.2f}x "
                     f"(max {backend['max_slowdown']:.2f}x)  {tiers}")
        fe = snap["frontend"]
        if fe.get("classes"):
            storms = sum(1 for c in fe["classes"]
                         if c["kind"] == "checkpoint")
            line += f"  fe classes {len(fe['classes'])} ({storms} storms)"
        print(line)
    return 0


def _parse_param_value(text: str):
    """CLI param literal -> typed value (bool/int/float/dict/list/str)."""
    lowered = text.lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    for cast in (int, float):
        try:
            return cast(text)
        except ValueError:
            continue
    if text[:1] in ("{", "["):
        # structured params, e.g. --set "tier_params={'edge_mb': 32}"
        try:
            return ast.literal_eval(text)
        except (ValueError, SyntaxError):
            pass
    return text


def _parse_assignments(pairs, split_values: bool):
    """Parse repeated ``key=value`` (or ``key=v1,v2,...``) options."""
    out = {}
    for pair in pairs or []:
        if "=" not in pair:
            raise SystemExit(f"error: expected key=value, got {pair!r}")
        key, _, raw = pair.partition("=")
        if split_values:
            out[key] = [_parse_param_value(v) for v in raw.split(",") if v]
        else:
            out[key] = _parse_param_value(raw)
    return out


def cmd_exp_list(args: argparse.Namespace) -> int:
    from .engine import all_experiments

    for defn in all_experiments():
        print(f"{defn.name:<24} {defn.description}")
        if defn.defaults and args.verbose:
            defaults = ", ".join(
                f"{k}={v!r}" for k, v in sorted(defn.defaults.items())
            )
            print(f"{'':<24} defaults: {defaults}")
    return 0


def cmd_exp_run(args: argparse.Namespace) -> int:
    from .engine import Event, ResultCache, Runner, specs_for_grid

    fixed = _parse_assignments(args.set, split_values=False)
    grid = _parse_assignments(args.grid, split_values=True)
    try:
        if grid:
            specs = specs_for_grid(args.kind, grid, base_seed=args.seed,
                                   fixed=fixed)
        else:
            from .engine import get_experiment

            specs = [get_experiment(args.kind).spec(seed=args.seed, **fixed)]
    except Exception as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    def progress(event: Event) -> None:
        if args.format == "json":
            return
        mark = {"start": "..", "cache-hit": "=#", "done": "ok",
                "error": "!!"}[event.kind]
        params = ", ".join(
            f"{k}={v}" for k, v in sorted(event.spec.params.items())
        )
        print(f"[{event.index + 1}/{event.total}] {mark} "
              f"{event.spec.kind}({params}) seed={event.spec.seed}"
              f"{' ' + event.detail if event.detail else ''}")

    runner = Runner(
        cache=None if args.no_cache else ResultCache(args.cache_dir),
        backend=args.backend,
        max_workers=args.workers,
        manifest_dir=args.manifest_dir,
        on_event=progress,
        force=args.force,
    )
    result = runner.run(specs)
    manifest = result.manifest
    if args.format == "json":
        print(manifest.to_json())
        return 0
    hits = sum(1 for r in manifest.records if r.cache_hit)
    print(f"{len(manifest.records)} experiments on {manifest.backend} "
          f"backend ({manifest.workers} worker(s)): "
          f"{hits} cache hit(s), {len(manifest.records) - hits} executed, "
          f"{manifest.wall_time_s:.2f}s wall")
    if result.manifest_path:
        print(f"manifest: {result.manifest_path}")
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    import json

    from .engine import Runner, get_experiment
    from .obs import summary_table, validate_chrome_trace

    fixed = _parse_assignments(args.set, split_values=False)
    try:
        spec = get_experiment(args.kind).spec(seed=args.seed, **fixed)
    except Exception as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    # no cache: a cache hit would skip execution and record nothing
    runner = Runner(
        cache=None,
        backend="serial",
        manifest_dir=args.out_dir,
        trace_dir=args.out_dir,
    )
    result = runner.run([spec])
    manifest = result.manifest
    trace_path = manifest.artifacts.get("trace")
    if trace_path:
        with open(trace_path) as fh:
            problems = validate_chrome_trace(json.load(fh))
        if problems:
            print(f"error: invalid Chrome trace written to {trace_path}:",
                  file=sys.stderr)
            for problem in problems[:10]:
                print(f"  - {problem}", file=sys.stderr)
            if len(problems) > 10:
                print(f"  ... and {len(problems) - 10} more",
                      file=sys.stderr)
            return 1
    if args.format == "json":
        print(manifest.to_json())
        return 0
    assert result.recorder is not None
    print(f"{args.kind} seed={args.seed} traced in "
          f"{manifest.wall_time_s:.2f}s")
    print(summary_table(result.recorder, max_rows=args.max_rows))
    for name in sorted(manifest.artifacts):
        print(f"{name:>8}: {manifest.artifacts[name]}")
    if result.manifest_path:
        print(f"manifest: {result.manifest_path}")
    print("open the trace at https://ui.perfetto.dev "
          "(or chrome://tracing)")
    return 0


def cmd_health(args: argparse.Namespace) -> int:
    import json

    if args.replay is not None:
        from .obs.health import replay_trace_dir

        try:
            report = replay_trace_dir(args.replay)
        except (FileNotFoundError, NotADirectoryError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    else:
        from .engine import Runner, get_experiment

        fixed = _parse_assignments(args.set, split_values=False)
        try:
            spec = get_experiment(args.kind).spec(seed=args.seed, **fixed)
        except Exception as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        # no cache: a hit would skip execution and monitor nothing
        runner = Runner(
            cache=None,
            backend="serial",
            manifest_dir=args.out_dir,
            trace_dir=args.out_dir,
            health=True,
        )
        result = runner.run([spec])
        report = result.health_report
        assert report is not None
        if args.format == "text":
            for name in sorted(result.manifest.artifacts):
                print(f"{name:>10}: {result.manifest.artifacts[name]}")
    if args.format == "json":
        print(json.dumps(report.to_jsonable(), indent=2, sort_keys=True))
    else:
        print(report.render_text(max_incidents=args.max_incidents))
    return report.exit_code


def cmd_exp_compare(args: argparse.Namespace) -> int:
    from .engine import compare_manifests, load_manifest

    try:
        first = load_manifest(args.first)
        second = load_manifest(args.second)
    except Exception as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    diffs = compare_manifests(first, second)
    if not diffs:
        print(f"equivalent: {len(first.records)} experiment(s) match "
              "(timing ignored)")
        return 0
    print(f"{len(diffs)} difference(s):")
    for diff in diffs:
        spec = diff["spec"]
        print(f"  {spec[0]} seed={spec[2]} [{diff['kind']}] {diff['detail']}")
    return 1


def cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import signal

    from .obs import Recorder
    from .serve import ServeDaemon, ServeState

    if args.input:
        topo = load_topology(args.input)
    else:
        topo = _build_cluster(args).topo
    recorder = Recorder()
    # fresh=True: _build_cluster already installed a recorder-less
    # shared router; the daemon wants its cache counters in /metrics
    state = ServeState(topo, recorder=recorder, fresh=True)
    daemon = ServeDaemon(
        state,
        host=args.host,
        port=args.port,
        max_batch=args.max_batch,
        max_delay_s=args.batch_window_ms / 1000.0,
        recorder=recorder,
    )

    async def _run() -> None:
        await daemon.start()
        print(
            f"serving {len(topo.hosts)} hosts / {len(topo.switches)} "
            f"switches on http://{daemon.host}:{daemon.port}",
            flush=True,
        )
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(sig, daemon.request_stop)
            except NotImplementedError:
                pass
        await daemon.serve_until_stopped()

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        pass
    return 0


def make_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="HPN (SIGCOMM 2024) reproduction toolkit",
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("build", help="build a fabric and print its inventory")
    _add_build_args(p)
    p.add_argument("--output", "-o", help="save the topology as JSON")
    p.set_defaults(func=cmd_build)

    p = sub.add_parser("validate", help="check invariants, wiring, forwarding")
    _add_build_args(p)
    p.add_argument("--input", "-i", help="load a topology JSON instead of building")
    p.add_argument("--probe-pairs", type=int, default=32,
                   help="host pairs to probe in the forwarding check")
    p.add_argument("--all", action="store_true",
                   help="run every analyzer family in one pass and report "
                        "all diagnostics (no staged early exit)")
    p.add_argument("--format", choices=["text", "json", "sarif"],
                   default="text")
    p.add_argument("--strict", action="store_true",
                   help="warnings also fail the gate")
    p.set_defaults(func=cmd_validate)

    p = sub.add_parser("lint", help="run codebase AST lint rules (LINT*)")
    p.add_argument("paths", nargs="*", default=["src/repro"],
                   help="files or directories to lint (default: src/repro)")
    p.add_argument("--format", choices=["text", "json", "sarif"],
                   default="text")
    p.add_argument("--strict", action="store_true",
                   help="warnings also fail the gate")
    p.add_argument("--rules", help="comma-separated rule ids to run")
    p.add_argument("--list-rules", action="store_true",
                   help="print the full rule catalogue and exit")
    p.set_defaults(func=cmd_lint)

    p = sub.add_parser(
        "check",
        help="unified gate: run every rule family "
             "(TOPO/WIRE/FWD/LINT/SEM) into one report",
    )
    _add_build_args(p)
    p.add_argument("paths", nargs="*",
                   help="source tree to lint/index (default: the "
                        "installed repro package)")
    p.add_argument("--input", "-i",
                   help="topology JSON for the TOPO/WIRE/FWD families "
                        "(default: build one from the --arch options)")
    p.add_argument("--family",
                   help="comma-separated families to run "
                        "(TOPO,WIRE,FWD,LINT,SEM; default: all)")
    p.add_argument("--probe-pairs", type=int, default=32,
                   help="host pairs to probe in the forwarding check")
    p.add_argument("--format", choices=["text", "json", "sarif"],
                   default="text")
    p.add_argument("--baseline", default="SEM_BASELINE.json",
                   help="grandfathered-findings file "
                        "(default: SEM_BASELINE.json)")
    p.add_argument("--update-baseline", action="store_true",
                   help="rewrite the baseline from the current findings "
                        "and exit 0")
    p.add_argument("--strict", action="store_true",
                   help="warnings also fail the gate")
    p.add_argument("--list-rules", action="store_true",
                   help="print the full rule catalogue and exit")
    p.set_defaults(func=cmd_check)

    p = sub.add_parser("complexity", help="print Table 1")
    p.set_defaults(func=cmd_complexity)

    p = sub.add_parser(
        "route",
        help="route sample flows through the cached forwarding plane",
    )
    _add_build_args(p)
    p.add_argument("--src", help="source host (default: first active host)")
    p.add_argument("--dst", help="destination host (default: last active host)")
    p.add_argument("--rail", type=int, default=0)
    p.add_argument("--plane", type=int, default=None,
                   help="preferred NIC port/plane (default: first usable)")
    p.add_argument("--sport", type=int, default=49152)
    p.add_argument("--conns", type=int, default=2,
                   help="connections (distinct sports) per pair")
    p.add_argument("--pairs", type=int, default=64,
                   help="host pairs to sweep when no --src/--dst given")
    p.add_argument("--repeat", type=int, default=2,
                   help="sweep passes (pass 2+ exercises the cache)")
    p.add_argument("--stats", action="store_true",
                   help="print route-cache hit/compile counters")
    p.set_defaults(func=cmd_route)

    p = sub.add_parser(
        "serve",
        help="what-if routing/telemetry daemon over the warm route cache",
    )
    _add_build_args(p)
    p.add_argument("--input", "-i",
                   help="load a topology JSON instead of building")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8123,
                   help="TCP port (0 picks a free one)")
    p.add_argument("--max-batch", type=int, default=64,
                   help="flush a micro-batch at this many distinct queries")
    p.add_argument("--batch-window-ms", type=float, default=2.0,
                   help="flush a micro-batch this long after its first query")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser("train", help="simulate one training iteration")
    _add_build_args(p)
    p.add_argument("--model", default="llama-7b", choices=sorted(_MODELS))
    p.add_argument("--job-hosts", type=int, default=8)
    p.add_argument("--pp", type=int, default=1)
    p.add_argument("--microbatches", type=int, default=18)
    p.set_defaults(func=cmd_train)

    p = sub.add_parser("inject", help="fault-injection drill (Figure 18)")
    _add_build_args(p)
    p.add_argument("--model", default="llama-7b", choices=sorted(_MODELS))
    p.add_argument("--job-hosts", type=int, default=8)
    p.add_argument("--microbatches", type=int, default=18)
    p.add_argument("--fail-at", type=float, default=10.0)
    p.add_argument("--repair-at", type=float, default=60.0)
    p.add_argument("--duration", type=float, default=300.0)
    p.set_defaults(func=cmd_inject)

    p = sub.add_parser(
        "fleet",
        help="multi-job fleet simulation (churn / interference)",
    )
    p.add_argument("--mode", default="churn",
                   choices=["churn", "interference"])
    p.add_argument("--arch", default="hpn", choices=["hpn", "dcnplus"])
    p.add_argument("--segments", type=int, default=4)
    p.add_argument("--hosts", type=int, default=16,
                   help="hosts per segment")
    p.add_argument("--aggs", type=int, default=8,
                   help="aggs per plane (hpn)")
    p.add_argument("--policy", default="pack",
                   help="placement policy (pack/spread/interleave)")
    p.add_argument("--arrivals", type=int, default=60)
    p.add_argument("--snapshots", type=int, default=3,
                   help="interference snapshots over the run")
    p.add_argument("--interarrival", type=float, default=120.0,
                   help="mean interarrival (seconds)")
    p.add_argument("--duration", type=float, default=3600.0,
                   help="mean job duration (seconds)")
    p.add_argument("--no-frontend", action="store_true",
                   help="skip the frontend traffic classes")
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_fleet)

    p = sub.add_parser("exp", help="experiment engine (list/run/compare)")
    exp_sub = p.add_subparsers(dest="exp_command", required=True)

    q = exp_sub.add_parser("list", help="show the experiment catalogue")
    q.add_argument("--verbose", "-v", action="store_true",
                   help="also print each experiment's default params")
    q.set_defaults(func=cmd_exp_list)

    q = exp_sub.add_parser("run", help="run a cached, seeded batch")
    q.add_argument("kind", help="experiment name (see `exp list`)")
    q.add_argument("--set", action="append", metavar="KEY=VALUE",
                   help="fix one param (repeatable)")
    q.add_argument("--grid", action="append", metavar="KEY=V1,V2,...",
                   help="sweep one param over values (repeatable; "
                        "cartesian product across --grid options)")
    q.add_argument("--seed", type=int, default=0,
                   help="base seed; per-experiment seeds derive from it")
    q.add_argument("--backend", choices=["serial", "process"],
                   default="serial")
    q.add_argument("--workers", type=int, default=None,
                   help="process-pool size (default: all cores)")
    q.add_argument("--cache-dir", default=".repro/cache")
    q.add_argument("--no-cache", action="store_true",
                   help="disable the result cache entirely")
    q.add_argument("--force", action="store_true",
                   help="ignore cached results but still refresh them")
    q.add_argument("--manifest-dir", default=".repro/manifests")
    q.add_argument("--format", choices=["text", "json"], default="text")
    q.set_defaults(func=cmd_exp_run)

    q = exp_sub.add_parser("compare",
                           help="diff two run manifests (timing ignored)")
    q.add_argument("first")
    q.add_argument("second")
    q.set_defaults(func=cmd_exp_compare)

    p = sub.add_parser(
        "trace",
        help="run one experiment under the recorder, export a "
             "Perfetto-compatible trace",
    )
    p.add_argument("kind", help="experiment name (see `exp list`)")
    p.add_argument("--set", action="append", metavar="KEY=VALUE",
                   help="fix one param (repeatable)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--out-dir", default=".repro/traces",
                   help="where trace/metrics/events artifacts land")
    p.add_argument("--max-rows", type=int, default=40,
                   help="metric series rows in the summary table")
    p.add_argument("--format", choices=["text", "json"], default="text")
    p.set_defaults(func=cmd_trace)

    p = sub.add_parser(
        "health",
        help="run an experiment under the health engine (or replay a "
             "trace dir) and report incidents; exits 3 on ERROR",
    )
    p.add_argument("kind", nargs="?", default="health.scenario",
                   help="experiment name (default: health.scenario)")
    p.add_argument("--set", action="append", metavar="KEY=VALUE",
                   help="fix one param (repeatable)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--out-dir", default=".repro/traces",
                   help="where trace/health/prometheus artifacts land")
    p.add_argument("--replay", metavar="DIR", default=None,
                   help="re-run the detectors over an existing trace "
                        "dir's metrics-*/events-* artifacts instead of "
                        "executing anything")
    p.add_argument("--max-incidents", type=int, default=20,
                   help="incident lines in the text report")
    p.add_argument("--format", choices=["text", "json"], default="text")
    p.set_defaults(func=cmd_health)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = make_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
