"""General cloud-computing traffic generator (paper Figure 1).

Traditional cloud instances present millions of small flows whose
aggregate moves slowly on the hourly scale: throughput ~1-2 Gbps per
host (well under 20% of NIC capacity) and hundreds of thousands of
concurrent connections. The generator produces a 24-hour diurnal
series with those statistics; it exists so the contrast with the LLM
generator (Figure 2) can be regenerated, and so entropy-sensitive tests
have a realistic many-flow population.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List


@dataclass(frozen=True)
class CloudTrafficSample:
    hour: float
    traffic_in_gbps: float
    traffic_out_gbps: float
    connections: int


@dataclass(frozen=True)
class CloudTrafficSpec:
    """Shape parameters for the diurnal series."""

    mean_in_gbps: float = 1.2
    mean_out_gbps: float = 0.9
    diurnal_amplitude: float = 0.4      # fraction of mean
    peak_hour: float = 14.0
    mean_connections: int = 150_000
    noise: float = 0.05
    nic_capacity_gbps: float = 400.0


def diurnal_factor(hour: float, amplitude: float = 0.4,
                   peak_hour: float = 14.0) -> float:
    """Load multiplier at ``hour`` of day (cosine diurnal shape).

    1.0 +/- ``amplitude``, peaking at ``peak_hour``. Shared by the
    cloud day series below and the fleet frontend's inference-serving
    flow class (millions-of-users load follows the same daily curve).
    """
    phase = math.cos((hour % 24.0 - peak_hour) / 24.0 * 2 * math.pi)
    return 1.0 + amplitude * phase


def generate_cloud_day(
    spec: CloudTrafficSpec = CloudTrafficSpec(),
    samples_per_hour: int = 12,
    seed: int = 1,
) -> List[CloudTrafficSample]:
    """A 24-hour host-level traffic series with diurnal shape."""
    rng = random.Random(seed)
    out = []
    for i in range(24 * samples_per_hour):
        hour = i / samples_per_hour
        factor = diurnal_factor(hour, spec.diurnal_amplitude, spec.peak_hour)
        jitter = 1.0 + rng.gauss(0.0, spec.noise)
        conns = int(spec.mean_connections * factor * (1 + rng.gauss(0, spec.noise)))
        out.append(
            CloudTrafficSample(
                hour=hour,
                traffic_in_gbps=max(0.0, spec.mean_in_gbps * factor * jitter),
                traffic_out_gbps=max(0.0, spec.mean_out_gbps * factor * jitter),
                connections=max(0, conns),
            )
        )
    return out


def utilization_fraction(samples: List[CloudTrafficSample],
                         spec: CloudTrafficSpec = CloudTrafficSpec()) -> float:
    """Mean NIC utilization of the series (paper: well below 20%)."""
    if not samples:
        return 0.0
    mean = sum(s.traffic_in_gbps + s.traffic_out_gbps for s in samples) / len(samples)
    return mean / spec.nic_capacity_gbps
