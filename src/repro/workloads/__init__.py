"""Synthetic workload generators calibrated to the paper's statistics."""

from .cloud import (
    CloudTrafficSample,
    CloudTrafficSpec,
    diurnal_factor,
    generate_cloud_day,
    utilization_fraction,
)
from .jobs import (
    DEFAULT_MIXTURE,
    DEFAULT_SAMPLE_SEED,
    JobSizeModel,
    cdf_points,
)
from .llm import (
    BurstSpec,
    burst_statistics,
    connection_count_cdf,
    connections_per_host,
    generate_nic_series,
)

__all__ = [
    "BurstSpec",
    "CloudTrafficSample",
    "CloudTrafficSpec",
    "DEFAULT_MIXTURE",
    "DEFAULT_SAMPLE_SEED",
    "JobSizeModel",
    "burst_statistics",
    "cdf_points",
    "connection_count_cdf",
    "connections_per_host",
    "diurnal_factor",
    "generate_cloud_day",
    "generate_nic_series",
    "utilization_fraction",
]
