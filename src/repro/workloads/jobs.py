"""Production job-size distribution (paper Figure 6).

The paper reports that production training jobs request fewer than 3K
GPUs each, with about 96.3% needing at most 1K -- the statistic that
justifies sizing a segment at 1K GPUs. We model the GPU-count
distribution as a discrete mixture over power-of-two-ish job sizes with
a long tail, calibrated to those two anchor points.
"""

from __future__ import annotations

import bisect
import random
from dataclasses import dataclass
from typing import List, Sequence, Tuple

#: legacy default for exploratory sampling; engine-reachable code must
#: derive and pass an explicit seed instead (see JobSizeModel.sample)
DEFAULT_SAMPLE_SEED = 11

#: (gpus, weight) mixture calibrated to the paper's anchors
DEFAULT_MIXTURE: Tuple[Tuple[int, float], ...] = (
    (8, 0.18),
    (16, 0.14),
    (32, 0.14),
    (64, 0.13),
    (128, 0.13),
    (256, 0.11),
    (512, 0.08),
    (1024, 0.053),
    (1536, 0.013),
    (2048, 0.012),
    (2560, 0.008),
    (3072, 0.004),
)


@dataclass(frozen=True)
class JobSizeModel:
    mixture: Tuple[Tuple[int, float], ...] = DEFAULT_MIXTURE

    def __post_init__(self) -> None:
        total = sum(w for _s, w in self.mixture)
        if abs(total - 1.0) > 1e-6:
            raise ValueError(f"mixture weights sum to {total}, expected 1.0")

    def sample(self, n: int, seed: int = DEFAULT_SAMPLE_SEED) -> List[int]:
        """Draw ``n`` job sizes from a generator seeded with ``seed``.

        The default seed exists for exploratory/figure use only. Code
        reachable from engine experiments (the ``repro.fleet`` layer in
        particular) must pass a seed derived via
        ``engine.derive_seed`` -- relying on the default would make
        every cached experiment share one frozen draw. A test
        (``tests/test_fleet_arrivals_policies.py``) enforces that no
        fleet call site omits the seed.
        """
        return self.sample_rng(n, random.Random(seed))

    def sample_rng(self, n: int, rng: random.Random) -> List[int]:
        """Draw ``n`` job sizes from an explicitly injected generator."""
        sizes = [s for s, _w in self.mixture]
        cum = []
        acc = 0.0
        for _s, w in self.mixture:
            acc += w
            cum.append(acc)
        return [sizes[bisect.bisect_left(cum, rng.random())] for _ in range(n)]

    def fraction_at_most(self, gpus: int) -> float:
        return sum(w for s, w in self.mixture if s <= gpus)

    def max_gpus(self) -> int:
        return max(s for s, _w in self.mixture)


def cdf_points(samples: Sequence[int]) -> List[Tuple[int, float]]:
    """Empirical CDF as (gpus, fraction <= gpus) points."""
    xs = sorted(samples)
    n = len(xs)
    out = []
    for i, x in enumerate(xs, start=1):
        if i == n or xs[i] != x:
            out.append((x, i / n))
    return out
