"""LLM-training traffic generator (paper Figures 2-3).

Per-NIC egress during training is a square wave: the backward phase of
every iteration saturates the NIC (bursts to the full 400 Gbps lasting
seconds to tens of seconds) separated by compute-only quiet periods.
Connection counts per host are tiny -- dozens to a few hundred -- so
each flow carries enormous volume (the elephant-flow regime that breaks
ECMP's many-flows assumption).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List

from ..training.parallelism import ParallelismPlan


@dataclass(frozen=True)
class BurstSpec:
    """Shape of the periodic gradient-sync burst."""

    iteration_seconds: float = 15.0
    burst_seconds: float = 5.0
    nic_gbps: float = 400.0
    idle_gbps: float = 2.0
    jitter: float = 0.05


def generate_nic_series(
    spec: BurstSpec = BurstSpec(),
    duration_seconds: float = 120.0,
    dt: float = 0.5,
    nic_index: int = 0,
    seed: int = 7,
) -> List[Dict[str, float]]:
    """One NIC's egress series: (time, gbps) dicts over ``duration``."""
    rng = random.Random(seed * 1009 + nic_index)
    phase = rng.uniform(0, spec.jitter * spec.iteration_seconds)
    out = []
    t = 0.0
    while t <= duration_seconds:
        pos = (t + phase) % spec.iteration_seconds
        in_burst = pos < spec.burst_seconds
        rate = spec.nic_gbps if in_burst else spec.idle_gbps
        rate *= 1.0 + rng.gauss(0, spec.jitter / 2)
        out.append({"time": t, "gbps": max(0.0, min(spec.nic_gbps, rate))})
        t += dt
    return out


def burst_statistics(series: List[Dict[str, float]],
                     spec: BurstSpec = BurstSpec()) -> Dict[str, float]:
    """Peak, duty cycle and burst duration of one series."""
    if not series:
        return {"peak_gbps": 0.0, "duty_cycle": 0.0}
    rates = [s["gbps"] for s in series]
    threshold = spec.nic_gbps * 0.8
    busy = sum(1 for r in rates if r >= threshold)
    return {
        "peak_gbps": max(rates),
        "duty_cycle": busy / len(rates),
        "mean_gbps": sum(rates) / len(rates),
    }


def connections_per_host(
    plan: ParallelismPlan,
    conns_per_peer: int = 2,
    nccl_channels: int = 4,
) -> int:
    """Approximate RDMA connection count of one training host.

    Each of the 8 GPUs talks to its ring neighbours in the DP group
    (2 peers) over ``conns_per_peer x nccl_channels`` connections, plus
    the PP boundary peers on rail 0. Dozens to a few hundred total --
    the regime of Figure 3.
    """
    per_gpu = 2 * conns_per_peer * nccl_channels if plan.dp > 1 else 0
    pp_conns = 2 * conns_per_peer if plan.pp > 1 else 0
    return plan.gpus_per_host * per_gpu + pp_conns


def connection_count_cdf(
    plans: List[ParallelismPlan], seed: int = 3
) -> List[int]:
    """Connection counts over a population of jobs (Figure 3's CDF)."""
    rng = random.Random(seed)
    counts = []
    for plan in plans:
        base = connections_per_host(plan)
        counts.append(max(1, int(base * rng.uniform(0.8, 1.3))))
    return sorted(counts)
