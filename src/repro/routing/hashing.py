"""Deterministic ECMP hash family.

Real switch ASICs hash the 5-tuple with a CRC-based function. Two
properties matter for the paper and are preserved here:

* **determinism** -- the same flow always picks the same member, which is
  what RePaC [Zhang et al., ATC'21] exploits to *predict* per-hop egress
  ports from the host;
* **fleet correlation** -- switches of the same model ship the same hash
  function. When every hop hashes the same unchanged 5-tuple with the
  same function, flows that collided once keep colliding downstream:
  *hash polarization*. We model this with per-switch seeds; a polarized
  fleet shares seed 0, a diversified fleet salts per switch.

The function is CRC32 over the packed tuple -- stable across processes
and Python versions (unlike built-in ``hash``).
"""

from __future__ import annotations

import struct
import zlib
from typing import NamedTuple, Sequence


class FiveTuple(NamedTuple):
    """A flow's classic 5-tuple. IPs are strings, ports ints."""

    src_ip: str
    dst_ip: str
    sport: int
    dport: int
    proto: int = 17  # RoCEv2 rides UDP

    def with_sport(self, sport: int) -> "FiveTuple":
        return self._replace(sport=sport)


def hash_five_tuple(ft: FiveTuple, seed: int = 0) -> int:
    """Deterministic 32-bit hash of a 5-tuple under ``seed``."""
    payload = (
        ft.src_ip.encode()
        + b"|"
        + ft.dst_ip.encode()
        + struct.pack("!HHBI", ft.sport & 0xFFFF, ft.dport & 0xFFFF, ft.proto & 0xFF, seed & 0xFFFFFFFF)
    )
    return zlib.crc32(payload)


def ecmp_index(ft: FiveTuple, seed: int, n_members: int) -> int:
    """ECMP member index for a flow at a switch with ``n_members`` ports."""
    if n_members <= 0:
        raise ValueError("ECMP group is empty")
    if n_members == 1:
        return 0
    return hash_five_tuple(ft, seed) % n_members


def ecmp_select(ft: FiveTuple, seed: int, members: Sequence):
    """Pick one member of an ECMP group for a flow."""
    return members[ecmp_index(ft, seed, len(members))]


def polarization_coefficient(indices_a: Sequence[int], indices_b: Sequence[int]) -> float:
    """Fraction of flows making the *same* member choice at two stages.

    1.0 means fully polarized (every flow repeats its stage-A choice at
    stage B); for independent hashing of k members the expectation is
    1/k.
    """
    if len(indices_a) != len(indices_b) or not indices_a:
        raise ValueError("need two equal-length non-empty index sequences")
    same = sum(1 for a, b in zip(indices_a, indices_b) if a == b)
    return same / len(indices_a)
