"""Compiled per-switch forwarding tables (FIB).

The hop-by-hop :class:`~repro.routing.ecmp.Router` re-derives every
switch's candidate next-hops from adjacency dictionaries on each call.
At pod scale a collective issues tens of thousands of ``path_for``
calls per step, all walking the same handful of switches, so the
candidate *structure* -- which ports could ever carry traffic towards a
destination class -- is worth compiling once per wiring
(``Topology.structure_epoch``) and filtering by live ``Link.up`` state
at walk time.

Destination classes per tier mirror the deployed Clos forwarding
state (paper section 6):

* **tier 1 (ToR)** -- traffic for an attached NIC goes straight down
  (handled by the walker via the destination's access legs); everything
  else is hashed over the compiled uplink set. Rail-only fabrics refuse
  cross-rail traffic here.
* **tier 2 (Agg)** -- intra-pod traffic goes down towards the ToR(s)
  advertising the destination /32 (compiled per-ToR down groups);
  cross-pod traffic is hashed over the compiled core uplink set.
* **tier 3 (Core)** -- traffic goes down towards the destination pod
  (compiled per-pod down groups, plane-filtered at compile time in
  plane-isolated architectures since a core never crosses planes).

Candidate ordering is byte-compatible with the uncached walker: uplink
sets are in port order, per-ToR groups are per-peer port-order lists,
and per-pod groups concatenate peers in first-appearance (port) order.
This matters because ECMP selection is an index into the candidate
list -- a reordered list is a different path.

Every compiled group also carries its structural link-id tuple so the
cached walker can record, per routed flow, exactly which links were
*examined* (not just traversed). That dependency set is what makes
precise cache invalidation correct: a link coming back up can grow a
candidate set and shift the ECMP index of a flow that never crossed it.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..core.entities import Host, Link, Port, PortKind, Switch
from ..core.errors import RoutingError
from ..core.topology import Topology

#: one compiled candidate group: ((port, link), ...) plus its link ids
Group = Tuple[Tuple[Tuple[Port, Link], ...], Tuple[int, ...]]

_EMPTY_GROUP: Group = ((), ())


def _compile_group(pairs: List[Tuple[Port, Link]]) -> Group:
    return tuple(pairs), tuple(link.link_id for _port, link in pairs)


class SwitchFib:
    """Compiled forwarding state of one switch."""

    __slots__ = (
        "switch", "name", "tier", "pod", "plane", "rail",
        "ups", "down_by_tor", "down_by_pod",
    )

    def __init__(self, switch: Switch):
        self.switch = switch
        self.name = switch.name
        self.tier = switch.tier
        self.pod = switch.pod
        self.plane = switch.plane
        self.rail = switch.rail
        #: uplink candidates in port order (tier 1, tier-2 cross-pod)
        self.ups: Group = _EMPTY_GROUP
        #: tier 2: down candidates towards one ToR, per-peer port order
        self.down_by_tor: Dict[str, Group] = {}
        #: tier 3: down candidates towards one pod, peers in
        #: first-appearance order, plane-filtered at compile time
        self.down_by_pod: Dict[int, Group] = {}


class Fib:
    """Per-switch compiled candidate tables for one wiring epoch."""

    def __init__(self, topo: Topology, plane_isolated: bool):
        self.topo = topo
        self.plane_isolated = plane_isolated
        #: the wiring this FIB was compiled against
        self.structure_epoch = topo.structure_epoch
        self.railonly = topo.meta.get("architecture") == "railonly"
        self.switches: Dict[str, SwitchFib] = {}
        self._compile()

    # ------------------------------------------------------------------
    def _compile(self) -> None:
        topo = self.topo
        for name, sw in topo.switches.items():
            entry = SwitchFib(sw)
            # adjacency in first-appearance order, per-peer port order --
            # the exact shape Router._adj has, so candidate order matches
            adj: Dict[str, List[Tuple[Port, Link]]] = {}
            for port, link, peer in topo.neighbors(name):
                adj.setdefault(peer, []).append((port, link))

            ups = [
                (port, topo.links[port.link_id])
                for port in topo.ports[name]
                if port.kind is PortKind.UP and port.link_id is not None
            ]
            entry.ups = _compile_group(ups)

            if sw.tier == 2:
                for peer, pairs in adj.items():
                    if peer in topo.switches and topo.switches[peer].tier == 1:
                        entry.down_by_tor[peer] = _compile_group(pairs)
            elif sw.tier == 3:
                by_pod: Dict[int, List[Tuple[Port, Link]]] = {}
                for peer, pairs in adj.items():
                    peer_sw = topo.switches.get(peer)
                    if peer_sw is None or peer_sw.pod is None:
                        continue
                    if (
                        self.plane_isolated
                        and sw.plane is not None
                        and peer_sw.plane != sw.plane
                    ):
                        continue
                    by_pod.setdefault(peer_sw.pod, []).extend(pairs)
                entry.down_by_pod = {
                    pod: _compile_group(pairs) for pod, pairs in by_pod.items()
                }
            self.switches[name] = entry

    # ------------------------------------------------------------------
    def candidates(
        self,
        entry: SwitchFib,
        dst: Host,
        dst_rail: Optional[int],
        dst_tors: Dict[str, object],
        deps: Set[int],
    ) -> List[Tuple[Port, Link]]:
        """Live candidates at ``entry`` towards the destination.

        Mirrors ``Router._candidates`` hop for hop, but indexes the
        compiled tables instead of scanning adjacency dicts, and adds
        every *examined* structural link id to ``deps`` (the cache
        entry's invalidation set).
        """
        tier = entry.tier
        if tier == 1:
            if (
                self.railonly
                and entry.rail is not None
                and dst_rail is not None
                and entry.rail != dst_rail
            ):
                raise RoutingError(
                    f"rail-only fabric: rail {entry.rail} cannot reach "
                    f"rail {dst_rail}"
                )
            pairs, ids = entry.ups
            deps.update(ids)
            return [pl for pl in pairs if pl[1].up]
        if tier == 2:
            if entry.pod == dst.pod:
                out: List[Tuple[Port, Link]] = []
                for tor in dst_tors:
                    pairs, ids = entry.down_by_tor.get(tor, _EMPTY_GROUP)
                    deps.update(ids)
                    out.extend(pl for pl in pairs if pl[1].up)
                return out
            pairs, ids = entry.ups
            deps.update(ids)
            return [pl for pl in pairs if pl[1].up]
        if tier == 3:
            pairs, ids = entry.down_by_pod.get(dst.pod, _EMPTY_GROUP)
            deps.update(ids)
            return [pl for pl in pairs if pl[1].up]
        raise RoutingError(f"unexpected tier {tier} at {entry.name}")
