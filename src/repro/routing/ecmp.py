"""Up/down ECMP routing over Clos-family topologies.

The :class:`Router` walks a flow hop by hop, exactly as the deployed
network forwards it:

* at the source host, the flow egresses one NIC port -- this fixes the
  *plane* in HPN (the dual-plane property: the plane chosen at the NIC
  is the plane the packet rides end to end);
* at a ToR, traffic for a NIC directly attached goes straight down;
  anything else is hashed over the ToR's uplinks;
* at an aggregation switch, intra-pod traffic goes down towards the
  ToR(s) advertising the destination /32 (in HPN there is exactly one
  such ToR per plane -- the "path fully determined after the ToR uplink"
  property; in DCN+ both ToRs of the destination pair qualify, adding a
  third hash stage), cross-pod traffic is hashed up to the cores;
* at a core switch, traffic goes down towards the destination pod,
  selected either by 5-tuple hash or the paper's per-port deterministic
  hash (section 7).

Failures are honored by reading ``Link.up`` at walk time, which models
the BGP-converged state: a withdrawn /32 removes the dead ToR from the
down candidates, and a dead plane pushes the flow to the other NIC port.
The *pre*-convergence window (traffic still blackholed) is modeled by
:mod:`repro.access.bgp`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.entities import Link, Nic, Port, PortKind, Switch
from ..core.errors import RoutingError
from ..core.topology import Topology
from ..obs import resolve as _obs_resolve
from .hashing import FiveTuple, ecmp_index
from .path import FlowPath, encode_dirlink

#: safety bound on hop count (host-tor-agg-core-agg-tor-host = 6 links)
_MAX_HOPS = 10


@dataclass
class AccessLeg:
    """One access link of a NIC: the port index, the link and the ToR."""

    port_index: int
    link: Link
    tor: str

    @property
    def usable(self) -> bool:
        return self.link.up


class Router:
    """Hop-by-hop ECMP router for one topology."""

    def __init__(self, topo: Topology, per_port_core_hash: bool = True,
                 recorder=None):
        self.topo = topo
        self.per_port_core_hash = per_port_core_hash
        # observability: per-tier hash-decision counters, resolved once
        self._rec = _obs_resolve(recorder)
        self._hash_counters: Dict[int, object] = {}
        #: >1 when the architecture physically isolates planes above tier 1
        self.planes: int = int(topo.meta.get("planes", 1))
        self.plane_isolated = self.planes > 1
        # adjacency: node -> peer -> [(local port, link)]
        self._adj: Dict[str, Dict[str, List[Tuple[Port, Link]]]] = {}
        # up candidates per switch: [(port, link, peer)]
        self._up: Dict[str, List[Tuple[Port, Link, str]]] = {}
        # per-NIC access-leg memo; legs are structural (usable reads
        # link.up live), so only a wiring change invalidates them
        self._legs_memo: Dict[Tuple[str, int], List[AccessLeg]] = {}
        self._legs_epoch: int = topo.structure_epoch
        self._build_index()

    # ------------------------------------------------------------------
    def _build_index(self) -> None:
        for name in list(self.topo.hosts) + list(self.topo.switches):
            peers: Dict[str, List[Tuple[Port, Link]]] = {}
            for port, link, peer in self.topo.neighbors(name):
                peers.setdefault(peer, []).append((port, link))
            self._adj[name] = peers
        for name in self.topo.switches:
            ups = []
            for port in self.topo.ports[name]:
                if port.kind is PortKind.UP and port.link_id is not None:
                    link = self.topo.links[port.link_id]
                    ups.append((port, link, link.other(name).node))
            self._up[name] = ups

    # ------------------------------------------------------------------
    def access_legs(self, nic: Nic) -> List[AccessLeg]:
        """The wired access legs of a NIC, indexed by NIC port.

        Memoized per NIC: the leg list captures wiring only (whether a
        leg is *usable* reads ``link.up`` at query time), so the memo
        survives link flaps and is dropped only when
        ``Topology.structure_epoch`` moves.
        """
        if self._legs_epoch != self.topo.structure_epoch:
            self._legs_memo.clear()
            self._legs_epoch = self.topo.structure_epoch
        key = (nic.host, nic.index)
        legs = self._legs_memo.get(key)
        if legs is not None:
            return legs
        legs = []
        for idx, pref in enumerate(nic.ports):
            port = self.topo.port(pref)
            if port.link_id is None:
                continue
            link = self.topo.links[port.link_id]
            legs.append(AccessLeg(idx, link, link.other(nic.host).node))
        self._legs_memo[key] = legs
        return legs

    def usable_planes(self, src_nic: Nic, dst_nic: Nic) -> List[int]:
        """NIC port indices that currently yield a deliverable path.

        In plane-isolated architectures both endpoints must use the same
        port index; otherwise the source leg only needs a live uplink
        side while the destination side is resolved mid-network.
        """
        src_legs = {l.port_index: l for l in self.access_legs(src_nic)}
        dst_legs = {l.port_index: l for l in self.access_legs(dst_nic)}
        out = []
        if self.plane_isolated:
            for idx, leg in sorted(src_legs.items()):
                dleg = dst_legs.get(idx)
                if leg.usable and dleg is not None and dleg.usable:
                    out.append(idx)
        else:
            any_dst_up = any(l.usable for l in dst_legs.values())
            if any_dst_up:
                out = [idx for idx, leg in sorted(src_legs.items()) if leg.usable]
        return out

    # ------------------------------------------------------------------
    def path_for(
        self,
        src_nic: Nic,
        dst_nic: Nic,
        ft: FiveTuple,
        plane: Optional[int] = None,
    ) -> FlowPath:
        """Compute the path a flow takes, honoring current link state.

        ``plane`` is the *preferred* source NIC port; if the preferred
        plane cannot deliver (failure), the other one is used -- the
        dual-ToR failover. Raises :class:`RoutingError` when the
        destination is unreachable.
        """
        if src_nic.host == dst_nic.host:
            raise RoutingError("intra-host traffic rides NVLink, not the fabric")
        usable = self.usable_planes(src_nic, dst_nic)
        if not usable:
            raise RoutingError(
                f"no usable plane from {src_nic.name} to {dst_nic.name}"
            )
        if plane is None:
            plane = usable[0]
        elif plane not in usable:
            if self._rec is not None:
                self._rec.metrics.counter("ecmp.plane_failover").inc()
            plane = usable[0]  # dual-ToR failover to the surviving port
        return self._walk(src_nic, dst_nic, ft, plane)

    # ------------------------------------------------------------------
    def _walk(self, src_nic: Nic, dst_nic: Nic, ft: FiveTuple, plane: int) -> FlowPath:
        topo = self.topo
        src_host = src_nic.host
        dst_host = dst_nic.host
        dst = topo.hosts[dst_host]
        dst_rail = dst_nic.rail

        # destination access legs, keyed by serving ToR
        dst_by_tor: Dict[str, AccessLeg] = {
            leg.tor: leg for leg in self.access_legs(dst_nic) if leg.usable
        }
        if not dst_by_tor:
            raise RoutingError(f"{dst_nic.name} has no live access link")
        if self.plane_isolated:
            dst_by_tor = {
                tor: leg for tor, leg in dst_by_tor.items() if leg.port_index == plane
            }
            if not dst_by_tor:
                raise RoutingError(
                    f"{dst_nic.name} unreachable on plane {plane}"
                )

        src_leg = next(
            (l for l in self.access_legs(src_nic) if l.port_index == plane and l.usable),
            None,
        )
        if src_leg is None:
            raise RoutingError(f"{src_nic.name} port {plane} is down")

        path = FlowPath(nodes=[src_host], plane=plane if self.plane_isolated else None)
        path.dirlinks.append(encode_dirlink(src_leg.link, src_host))
        cur = src_leg.tor
        path.nodes.append(cur)
        ingress_port_index = self._far_port_index(src_leg.link, cur)

        for _ in range(_MAX_HOPS):
            if cur in dst_by_tor:
                leg = dst_by_tor[cur]
                path.dirlinks.append(encode_dirlink(leg.link, cur))
                path.nodes.append(dst_host)
                return path
            sw = topo.switches[cur]
            candidates = self._candidates(sw, dst, dst_rail, dst_by_tor)
            if not candidates:
                raise RoutingError(
                    f"{cur} has no live candidate towards {dst_nic.name}"
                )
            port, link = self._select(sw, candidates, ft, dst.pod, ingress_port_index)
            path.dirlinks.append(encode_dirlink(link, cur))
            cur = link.other(cur).node
            path.nodes.append(cur)
            ingress_port_index = self._far_port_index(link, cur)
        raise RoutingError("hop limit exceeded (routing loop?)")

    # ------------------------------------------------------------------
    def _candidates(
        self,
        sw: Switch,
        dst,
        dst_rail: int,
        dst_by_tor: Dict[str, AccessLeg],
    ) -> List[Tuple[Port, Link]]:
        """Live (port, link) options at ``sw`` towards the destination."""
        if sw.tier == 1:
            # rail-only fabrics cannot carry cross-rail traffic at all
            if (
                self.topo.meta.get("architecture") == "railonly"
                and sw.rail is not None
                and dst_rail is not None
                and sw.rail != dst_rail
            ):
                raise RoutingError(
                    f"rail-only fabric: rail {sw.rail} cannot reach rail {dst_rail}"
                )
            return self._live_ups(sw.name)
        if sw.tier == 2:
            if sw.pod == dst.pod:
                out: List[Tuple[Port, Link]] = []
                for tor in dst_by_tor:
                    for port, link in self._adj[sw.name].get(tor, ()):
                        if link.up:
                            out.append((port, link))
                return out
            return self._live_ups(sw.name)
        if sw.tier == 3:
            out = []
            for peer, plist in self._adj[sw.name].items():
                peer_sw = self.topo.switches.get(peer)
                if peer_sw is None or peer_sw.pod != dst.pod:
                    continue
                if (
                    self.plane_isolated
                    and sw.plane is not None
                    and peer_sw.plane != sw.plane
                ):
                    continue
                for port, link in plist:
                    if link.up:
                        out.append((port, link))
            return out
        raise RoutingError(f"unexpected tier {sw.tier} at {sw.name}")

    def _live_ups(self, name: str) -> List[Tuple[Port, Link]]:
        return [(p, l) for p, l, _peer in self._up[name] if l.up]

    def _select(
        self,
        sw: Switch,
        candidates: Sequence[Tuple[Port, Link]],
        ft: FiveTuple,
        dst_pod: int,
        ingress_port_index: int,
    ) -> Tuple[Port, Link]:
        if self._rec is not None:
            counter = self._hash_counters.get(sw.tier)
            if counter is None:
                counter = self._rec.metrics.counter(
                    "ecmp.hash_decisions", tier=str(sw.tier)
                )
                self._hash_counters[sw.tier] = counter
            counter.inc()
        if sw.tier == 3 and self.per_port_core_hash:
            # section 7: egress is a function of (ingress port, dst pod)
            # only -- 5-tuple irrelevant -- which kills core polarization.
            idx = (ingress_port_index + dst_pod) % len(candidates)
            return candidates[idx]
        idx = ecmp_index(ft, sw.hash_seed, len(candidates))
        return candidates[idx]

    @staticmethod
    def _far_port_index(link: Link, node: str) -> int:
        """Index of the port on ``node``'s side of ``link``."""
        if link.a.node == node:
            return link.a.index
        return link.b.index

    # ------------------------------------------------------------------
    def count_equal_paths(self, src_nic: Nic, dst_nic: Nic, plane: int = 0) -> int:
        """Number of distinct up/down paths available to one flow.

        This is the search space an ideal path-selection scheme must
        explore (paper Table 1): the product of candidate-set sizes at
        every hash stage, enumerated by DFS over actual candidates.
        """
        dst = self.topo.hosts[dst_nic.host]
        dst_by_tor = {
            leg.tor: leg for leg in self.access_legs(dst_nic) if leg.usable
        }
        if self.plane_isolated:
            dst_by_tor = {
                t: l for t, l in dst_by_tor.items() if l.port_index == plane
            }
        legs = [
            l for l in self.access_legs(src_nic) if l.port_index == plane and l.usable
        ]
        if not legs or not dst_by_tor:
            return 0

        def dfs(node: str, depth: int) -> int:
            if node in dst_by_tor:
                return 1
            if depth > _MAX_HOPS:
                return 0
            sw = self.topo.switches[node]
            try:
                cands = self._candidates(sw, dst, dst_nic.rail, dst_by_tor)
            except RoutingError:
                return 0
            total = 0
            for _port, link in cands:
                total += dfs(link.other(node).node, depth + 1)
            return total

        return sum(dfs(leg.tor, 0) for leg in legs)
