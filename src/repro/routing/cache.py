"""Epoch-invalidated route cache and the cached router.

:class:`CachedRouter` memoizes ``path_for`` / ``usable_planes`` results
and walks flows over the compiled :class:`~repro.routing.fib.Fib`
tables instead of re-deriving candidates from adjacency dicts. The
uncached :class:`~repro.routing.ecmp.Router` walker is untouched and
serves as the differential oracle (see
:mod:`repro.routing.routebench`): cached and uncached paths must be
byte-identical, including :class:`RoutingError` outcomes.

Invalidation mirrors BGP /32 withdrawal scope. ``Topology.state_epoch``
counts link up/down transitions; the cache keeps a reverse
dirlink -> cached-routes index and, on sync, drops exactly the entries
whose *dependency set* includes a flapped link. A route's dependency
set is every structural link examined while walking it -- the links it
crosses, the other members of every ECMP candidate group it hashed
over, and both endpoints' access legs. Examined (not merely traversed)
links matter: a link coming back up grows a candidate set and shifts
the ECMP index of flows that never touched it, and the preferred-plane
fallback in ``path_for`` reads both NICs' leg states. Negative results
(``RoutingError``) are cached with the dependencies examined before
the walk failed, so a repair that could fix the route drops the entry.

A wiring change (``Topology.structure_epoch``) recompiles the FIB and
flushes everything; ``fib.compiles`` counts those recompiles.
"""

from __future__ import annotations

import weakref
from collections import Counter as _Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..core.entities import Nic
from ..core.errors import RoutingError
from ..core.topology import Topology
from .ecmp import _MAX_HOPS, Router
from .fib import Fib
from .hashing import FiveTuple
from .path import FlowPath, encode_dirlink

#: one batch-routing request: (src NIC, dst NIC, five-tuple, preferred plane)
RouteRequest = Tuple[Nic, Nic, FiveTuple, Optional[int]]

_MISS = object()


@dataclass
class RouteStats:
    """Cache and compile counters (mirrored into obs when recording)."""

    hits: int = 0
    misses: int = 0
    invalidations: int = 0
    fib_compiles: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "invalidations": self.invalidations,
            "fib_compiles": self.fib_compiles,
        }

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class RouteCache:
    """Generic memo with a reverse dirlink -> entries invalidation index.

    Values are opaque; each entry carries the set of link ids it
    depends on. ``invalidate_links`` drops every entry depending on any
    of the given links and returns how many were dropped. The reverse
    index is keyed by *dirlink* (both directions of each dependency
    link), mirroring how the simulator accounts full-duplex cables,
    while ``Link.up`` flips both directions at once.
    """

    def __init__(self) -> None:
        self._entries: Dict[object, Tuple[object, Tuple[int, ...]]] = {}
        self._by_dirlink: Dict[int, Set[object]] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: object) -> object:
        entry = self._entries.get(key)
        if entry is None:
            return _MISS
        return entry[0]

    def put(self, key: object, value: object, deps: Iterable[int]) -> None:
        if key in self._entries:
            self._drop(key)
        dep_ids = tuple(deps)
        self._entries[key] = (value, dep_ids)
        for link_id in dep_ids:
            self._by_dirlink.setdefault(link_id * 2, set()).add(key)
            self._by_dirlink.setdefault(link_id * 2 + 1, set()).add(key)

    def invalidate_links(self, link_ids: Iterable[int]) -> int:
        dropped = 0
        for link_id in link_ids:
            keys = self._by_dirlink.get(link_id * 2)
            if not keys:
                continue
            for key in list(keys):
                self._drop(key)
                dropped += 1
        return dropped

    def clear(self) -> None:
        self._entries.clear()
        self._by_dirlink.clear()

    def _drop(self, key: object) -> None:
        _value, dep_ids = self._entries.pop(key)
        for link_id in dep_ids:
            for dirlink in (link_id * 2, link_id * 2 + 1):
                keys = self._by_dirlink.get(dirlink)
                if keys is not None:
                    keys.discard(key)
                    if not keys:
                        del self._by_dirlink[dirlink]


class CachedRouter(Router):
    """Router with compiled FIB tables and a precise route cache.

    Drop-in for :class:`Router`: same constructor, same results
    (byte-identical ``FlowPath``, identical ``RoutingError`` messages),
    plus :meth:`route_many` for batch workloads and :attr:`stats` for
    the cache counters. Obtain the per-topology instance via
    :func:`shared_router` rather than constructing one per call site
    (lint rule ``LINT006``).
    """

    def __init__(self, topo: Topology, per_port_core_hash: bool = True,
                 recorder=None):
        super().__init__(topo, per_port_core_hash, recorder)
        self.stats = RouteStats()
        self._paths = RouteCache()
        self._planes = RouteCache()
        self._state_cursor = topo.state_epoch
        self._structure_cursor = topo.structure_epoch
        self._fib = self._compile_fib()
        if self._rec is not None:
            m = self._rec.metrics
            self._c_hits = m.counter("route_cache.hits")
            self._c_misses = m.counter("route_cache.misses")
            self._c_inval = m.counter("route_cache.invalidations")
            self._c_compiles = m.counter("fib.compiles")
            self._c_compiles.inc()
        else:
            self._c_hits = self._c_misses = None
            self._c_inval = self._c_compiles = None

    # ------------------------------------------------------------------
    def _compile_fib(self) -> Fib:
        self.stats.fib_compiles += 1
        return Fib(self.topo, self.plane_isolated)

    def _sync(self) -> None:
        """Bring compiled state up to the topology's epochs.

        Invalidation is by *net* state change: every cached entry was
        validated exactly at the cursor epoch (inserts happen right
        after a sync, before any further transition), so a link that
        toggled an even number of times inside the window is back in
        the state the entry was computed under and the entry stays
        valid. This is what makes ``Topology.transient_state``
        fork-and-probe free for a warm router: a what-if failure plus
        its restore nets out to zero transitions and drops nothing.
        """
        topo = self.topo
        if self._structure_cursor != topo.structure_epoch:
            self.invalidate_all()
            return
        if self._state_cursor != topo.state_epoch:
            counts = _Counter(topo.link_state_changes(self._state_cursor))
            changed = [lid for lid, n in counts.items() if n % 2]
            dropped = self._paths.invalidate_links(changed)
            dropped += self._planes.invalidate_links(changed)
            self.stats.invalidations += dropped
            if self._c_inval is not None and dropped:
                self._c_inval.inc(dropped)
            self._state_cursor = topo.state_epoch

    def invalidate_all(self) -> None:
        """Flush every cached route and recompile against the wiring."""
        self._build_index()
        self._legs_memo.clear()
        self._legs_epoch = self.topo.structure_epoch
        self._fib = self._compile_fib()
        if self._c_compiles is not None:
            self._c_compiles.inc()
        self._paths.clear()
        self._planes.clear()
        self._structure_cursor = self.topo.structure_epoch
        self._state_cursor = self.topo.state_epoch

    # ------------------------------------------------------------------
    def _hit(self) -> None:
        self.stats.hits += 1
        if self._c_hits is not None:
            self._c_hits.inc()

    def _miss(self) -> None:
        self.stats.misses += 1
        if self._c_misses is not None:
            self._c_misses.inc()

    def _leg_deps(self, nic: Nic) -> List[int]:
        return [leg.link.link_id for leg in self.access_legs(nic)]

    # ------------------------------------------------------------------
    def usable_planes(self, src_nic: Nic, dst_nic: Nic) -> List[int]:
        self._sync()
        key = (src_nic.host, src_nic.index, dst_nic.host, dst_nic.index)
        cached = self._planes.get(key)
        if cached is not _MISS:
            self._hit()
            return list(cached)  # type: ignore[arg-type]
        self._miss()
        out = super().usable_planes(src_nic, dst_nic)
        deps = self._leg_deps(src_nic) + self._leg_deps(dst_nic)
        self._planes.put(key, tuple(out), deps)
        return out

    # ------------------------------------------------------------------
    def path_for(
        self,
        src_nic: Nic,
        dst_nic: Nic,
        ft: FiveTuple,
        plane: Optional[int] = None,
    ) -> FlowPath:
        self._sync()
        outcome, payload = self._resolve_synced(src_nic, dst_nic, ft, plane)
        if outcome == "err":
            raise RoutingError(payload)
        return payload  # type: ignore[return-value]

    def _resolve_synced(
        self,
        src_nic: Nic,
        dst_nic: Nic,
        ft: FiveTuple,
        plane: Optional[int],
    ) -> Tuple[str, object]:
        """Cache lookup + walk for one already-synced request.

        Returns ``("ok", FlowPath)`` or ``("err", message)`` -- the
        memoized entry shape, so :meth:`route_many` can fan one
        resolution out to duplicate requests without re-raising through
        the cache machinery.
        """
        key = (
            src_nic.host, src_nic.index,
            dst_nic.host, dst_nic.index,
            plane, ft,
        )
        cached = self._paths.get(key)
        if cached is not _MISS:
            self._hit()
            return cached  # type: ignore[return-value]
        self._miss()
        deps: Set[int] = set()
        try:
            path = self._route(src_nic, dst_nic, ft, plane, deps)
        except RoutingError as err:
            entry = ("err", str(err))
            self._paths.put(key, entry, deps)
            return entry
        entry = ("ok", path)
        self._paths.put(key, entry, deps)
        return entry

    def route_many(
        self,
        requests: Sequence[RouteRequest],
        strict: bool = True,
    ) -> List[Optional[FlowPath]]:
        """Route a batch of flows through the cache.

        One epoch sync covers the whole batch; repeated (pair, plane,
        five-tuple) requests and requests re-issued across steps hit
        the cache. Identical requests *within* the batch are
        deduplicated: the cache (or the walker, on a miss) is consulted
        once per distinct key and the result fanned out to every
        duplicate slot, so a batch costs one miss per distinct key.
        Fan-outs count as hits -- they are served from warm state.
        With ``strict`` (default) the first unroutable request raises;
        otherwise its slot is ``None``.
        """
        self._sync()
        out: List[Optional[FlowPath]] = []
        seen: Dict[object, Tuple[str, object]] = {}
        for src_nic, dst_nic, ft, plane in requests:
            key = (
                src_nic.host, src_nic.index,
                dst_nic.host, dst_nic.index,
                plane, ft,
            )
            entry = seen.get(key)
            if entry is not None:
                self._hit()  # intra-batch fan-out: no cache machinery
            else:
                entry = self._resolve_synced(src_nic, dst_nic, ft, plane)
                seen[key] = entry
            outcome, payload = entry
            if outcome == "err":
                if strict:
                    raise RoutingError(payload)
                out.append(None)
            else:
                out.append(payload)  # type: ignore[arg-type]
        return out

    # ------------------------------------------------------------------
    def _route(
        self,
        src_nic: Nic,
        dst_nic: Nic,
        ft: FiveTuple,
        plane: Optional[int],
        deps: Set[int],
    ) -> FlowPath:
        """Plane resolution + FIB walk, recording dependencies."""
        if src_nic.host == dst_nic.host:
            raise RoutingError("intra-host traffic rides NVLink, not the fabric")
        # the resolved plane reads both endpoints' leg states, so every
        # access leg is a dependency even when the walk never uses it
        deps.update(self._leg_deps(src_nic))
        deps.update(self._leg_deps(dst_nic))
        usable = super().usable_planes(src_nic, dst_nic)
        if not usable:
            raise RoutingError(
                f"no usable plane from {src_nic.name} to {dst_nic.name}"
            )
        if plane is None:
            plane = usable[0]
        elif plane not in usable:
            if self._rec is not None:
                self._rec.metrics.counter("ecmp.plane_failover").inc()
            plane = usable[0]  # dual-ToR failover to the surviving port
        return self._walk_fib(src_nic, dst_nic, ft, plane, deps)

    def _walk_fib(
        self,
        src_nic: Nic,
        dst_nic: Nic,
        ft: FiveTuple,
        plane: int,
        deps: Set[int],
    ) -> FlowPath:
        topo = self.topo
        fib = self._fib
        src_host = src_nic.host
        dst_host = dst_nic.host
        dst = topo.hosts[dst_host]
        dst_rail = dst_nic.rail

        dst_by_tor = {
            leg.tor: leg for leg in self.access_legs(dst_nic) if leg.usable
        }
        if not dst_by_tor:
            raise RoutingError(f"{dst_nic.name} has no live access link")
        if self.plane_isolated:
            dst_by_tor = {
                tor: leg for tor, leg in dst_by_tor.items()
                if leg.port_index == plane
            }
            if not dst_by_tor:
                raise RoutingError(
                    f"{dst_nic.name} unreachable on plane {plane}"
                )

        src_leg = next(
            (l for l in self.access_legs(src_nic)
             if l.port_index == plane and l.usable),
            None,
        )
        if src_leg is None:
            raise RoutingError(f"{src_nic.name} port {plane} is down")

        path = FlowPath(
            nodes=[src_host], plane=plane if self.plane_isolated else None
        )
        path.dirlinks.append(encode_dirlink(src_leg.link, src_host))
        cur = src_leg.tor
        path.nodes.append(cur)
        ingress_port_index = self._far_port_index(src_leg.link, cur)

        switches = fib.switches
        for _ in range(_MAX_HOPS):
            if cur in dst_by_tor:
                leg = dst_by_tor[cur]
                path.dirlinks.append(encode_dirlink(leg.link, cur))
                path.nodes.append(dst_host)
                return path
            entry = switches[cur]
            candidates = fib.candidates(entry, dst, dst_rail, dst_by_tor, deps)
            if not candidates:
                raise RoutingError(
                    f"{cur} has no live candidate towards {dst_nic.name}"
                )
            port, link = self._select(
                entry.switch, candidates, ft, dst.pod, ingress_port_index
            )
            path.dirlinks.append(encode_dirlink(link, cur))
            cur = link.other(cur).node
            path.nodes.append(cur)
            ingress_port_index = self._far_port_index(link, cur)
        raise RoutingError("hop limit exceeded (routing loop?)")

    # ------------------------------------------------------------------
    def count_equal_paths(self, src_nic: Nic, dst_nic: Nic, plane: int = 0) -> int:
        self._sync()
        return super().count_equal_paths(src_nic, dst_nic, plane)


#: weak per-topology registry: ``id(topo) -> weakref to its router``.
#: The registry itself never extends a router's (or topology's)
#: lifetime -- the strong reference lives on the topology object, so a
#: router dies exactly when its topology does (or on explicit
#: eviction). A ``weakref.finalize`` on each router scrubs its key, so
#: long-lived daemons that churn through topologies never accumulate
#: entries for dead ones.
_ROUTER_REGISTRY: Dict[int, "weakref.ref[CachedRouter]"] = {}


def _install_router(topo: Topology, router: CachedRouter) -> CachedRouter:
    key = id(topo)
    topo._shared_router = router  # type: ignore[attr-defined]
    _ROUTER_REGISTRY[key] = weakref.ref(router)

    def _scrub(reg_key: int = key, ref: "weakref.ref[CachedRouter]" = _ROUTER_REGISTRY[key]) -> None:
        # only drop the key if it still points at *this* router: the id
        # may have been recycled by a new topology in the meantime
        if _ROUTER_REGISTRY.get(reg_key) is ref:
            del _ROUTER_REGISTRY[reg_key]

    weakref.finalize(router, _scrub)
    return router


def shared_router(
    topo: Topology,
    per_port_core_hash: bool = True,
    recorder=None,
) -> CachedRouter:
    """The per-topology :class:`CachedRouter`, created on first use.

    All call sites that previously built a throwaway ``Router(topo)``
    share one cached instance (and therefore one warm cache) through
    this accessor; a new topology object gets a new router. The
    ``recorder`` only takes effect when this call constructs the
    router (an existing warm router keeps its recorder).
    """
    router = getattr(topo, "_shared_router", None)
    if (
        not isinstance(router, CachedRouter)
        or router.topo is not topo
        or router.per_port_core_hash != per_port_core_hash
    ):
        router = _install_router(
            topo, CachedRouter(topo, per_port_core_hash, recorder)
        )
    return router


def reset_shared_router(
    topo: Topology,
    per_port_core_hash: bool = True,
    recorder=None,
) -> CachedRouter:
    """Discard the shared router and install a fresh (cold) one."""
    return _install_router(
        topo, CachedRouter(topo, per_port_core_hash, recorder)
    )


def evict_shared_router(topo: Topology) -> bool:
    """Drop ``topo``'s shared router (and its caches) without replacing it.

    Returns whether a router was installed. Long-lived processes that
    unload a topology but keep the object alive (serve daemons swapping
    fabrics in and out) call this so the dead fabric's compiled FIB and
    route cache are freed immediately instead of riding along until the
    topology itself is collected.
    """
    router = getattr(topo, "_shared_router", None)
    had = isinstance(router, CachedRouter) and router.topo is topo
    if hasattr(topo, "_shared_router"):
        del topo._shared_router  # type: ignore[attr-defined]
    _ROUTER_REGISTRY.pop(id(topo), None)
    return had


def active_shared_routers() -> List[CachedRouter]:
    """Every live shared router, for introspection (daemon ``/stats``).

    Dead weakrefs are skipped (their finalizers scrub the keys); the
    returned list holds strong references, so don't keep it around.
    """
    out: List[CachedRouter] = []
    for ref in list(_ROUTER_REGISTRY.values()):
        router = ref()
        if router is not None:
            out.append(router)
    return out
