"""Path-selection search-space accounting (paper Table 1).

Two complementary views:

* :func:`card_complexity` -- the closed-form product of per-tier ECMP
  fan-outs, computed from an :class:`~repro.topos.spec.ArchitectureCard`
  (this is how the paper derives O(60) vs O(4096));
* :func:`measured_complexity` -- the number of distinct up/down paths a
  single flow can take between two concrete hosts of a built topology,
  counted by DFS. On scaled topologies the two agree, which the test
  suite asserts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..core.topology import Topology
from ..topos.spec import ArchitectureCard
from .ecmp import Router


@dataclass
class ComplexityRow:
    """One row of Table 1."""

    name: str
    supported_gpus: int
    tiers: int
    lb_switch_roles: str
    complexity: int


def card_complexity(card: ArchitectureCard) -> int:
    return card.path_selection_complexity


def table1(cards: List[ArchitectureCard]) -> List[ComplexityRow]:
    """Render Table 1 rows from architecture cards."""
    roles_by_tiers = {1: "ToR", 2: "ToR", 3: "ToR+Aggregation+Core"}
    rows = []
    for card in cards:
        if card.tiers == 2:
            roles = "ToR"
        elif len(card.lb_fanouts) == 2:
            roles = "ToR+Aggregation"
        else:
            roles = roles_by_tiers.get(card.tiers, "ToR")
        rows.append(
            ComplexityRow(
                name=card.name,
                supported_gpus=card.supported_gpus,
                tiers=card.tiers,
                lb_switch_roles=roles,
                complexity=card.path_selection_complexity,
            )
        )
    return rows


def measured_complexity(
    topo: Topology,
    src_host: str,
    dst_host: str,
    rail: int = 0,
    plane: int = 0,
    router: Optional[Router] = None,
) -> int:
    """Count distinct equal-cost paths between two hosts' rail NICs."""
    if router is None:
        from .cache import shared_router

        router = shared_router(topo)
    src = topo.hosts[src_host]
    dst = topo.hosts[dst_host]
    src_nic = next(n for n in src.backend_nics() if n.rail == rail)
    dst_nic = next(n for n in dst.backend_nics() if n.rail == rail)
    return router.count_equal_paths(src_nic, dst_nic, plane=plane)


def failure_recalc_scope(topo: Topology) -> str:
    """What a host must re-learn to recompute disjoint paths on failure.

    In HPN only the ToR's ECMP group matters; 3-tier fabrics need ECMP
    groups from every tier (paper section 6.1).
    """
    if int(topo.meta.get("planes", 1)) > 1:
        return "ToR ECMP group only"
    return "ECMP groups from all tiers"
