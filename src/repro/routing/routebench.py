"""Reference workload + differential harness for the routing perf gate.

Two instruments over the same machinery:

* :class:`RoutingEquivalence` -- a seeded randomized failure/repair
  campaign (same pattern as the solver's
  :class:`~repro.fabric.solver.SolverEquivalence`): the uncached
  hop-by-hop :class:`~repro.routing.ecmp.Router` is the oracle, and
  every query must produce a byte-identical ``FlowPath`` -- or the
  identical ``RoutingError`` message -- from the
  :class:`~repro.routing.cache.CachedRouter` under arbitrary link
  flips, switch failures and recoveries, across the HPN, DCN+ and
  rail-only architectures.
* :func:`run_routing_bench` -- the ``bench.routing`` experiment body: a
  15-segment HPN pod driving per-rail ring traffic (the rail-optimized
  collective pattern) for many steps with persistent per-connection
  five-tuples and periodic link flaps, timing the uncached per-call
  walker against :meth:`CachedRouter.route_many`. CI gates the speedup
  and the byte-level equivalence of every routed step.
"""

from __future__ import annotations

import gc
import random
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Tuple

from ..core.errors import RoutingError
from ..core.topology import Topology
from .cache import CachedRouter
from .ecmp import Router
from .hashing import FiveTuple

#: outcome of one routed query, comparable byte for byte
Outcome = Tuple[Any, ...]


def _query(router: Router, src, dst, ft: FiveTuple,
           plane: Optional[int]) -> Outcome:
    try:
        p = router.path_for(src, dst, ft, plane)
        return ("ok", tuple(p.nodes), tuple(p.dirlinks), p.plane)
    except RoutingError as err:
        return ("err", str(err))


class RoutingEquivalence:
    """Randomized cached-vs-oracle campaign over three architectures."""

    def __init__(self, seed: int = 0):
        self.seed = seed

    def _fabrics(self) -> List[Tuple[str, Topology]]:
        from ..topos import (
            DcnPlusSpec,
            HpnSpec,
            RailOnlySpec,
            build_dcnplus,
            build_hpn,
            build_railonly,
        )

        return [
            ("hpn", build_hpn(HpnSpec(
                segments_per_pod=2, hosts_per_segment=8,
                backup_hosts_per_segment=0, aggs_per_plane=4,
            ))),
            ("dcnplus", build_dcnplus(DcnPlusSpec(
                pods=2, segments_per_pod=2, hosts_per_segment=6,
            ))),
            ("railonly", build_railonly(RailOnlySpec(
                segments_per_pod=2, hosts_per_segment=6,
            ))),
        ]

    def run_random(self, cases: int = 50,
                   queries_per_case: int = 25) -> Dict[str, Any]:
        """Run ``cases`` randomized failure/repair cases; returns a report.

        Each case mutates one fabric (link flips, or a switch
        failure/recovery) and compares every query outcome. The cached
        routers persist across cases, so invalidation -- not a cold
        cache -- is what keeps them honest; ``recover_node`` cases are
        the stale-cache regression the paper's dual-ToR failover makes
        dangerous.
        """
        rng = random.Random(self.seed)
        fabrics = self._fabrics()
        oracles = {name: Router(topo) for name, topo in fabrics}
        cached = {name: CachedRouter(topo) for name, topo in fabrics}
        mismatches: List[str] = []
        checked = 0
        for case in range(cases):
            name, topo = fabrics[rng.randrange(len(fabrics))]
            # mutate: mostly link flips, sometimes a whole-switch event
            roll = rng.random()
            if roll < 0.2 and topo.switches:
                victim = rng.choice(sorted(topo.switches))
                if topo.switches[victim].up:
                    topo.fail_node(victim)
                else:
                    topo.recover_node(victim)
            else:
                for _ in range(rng.randint(1, 3)):
                    lid = rng.choice(list(topo.links))
                    topo.set_link_state(lid, rng.random() < 0.5)
            hosts = [h for h in topo.hosts.values() if not h.backup]
            for q in range(queries_per_case):
                a, b = rng.sample(hosts, 2)
                src = rng.choice(a.backend_nics())
                dst = rng.choice(b.backend_nics())
                plane = rng.choice([None, 0, 1])
                ft = FiveTuple(src.ip, dst.ip, 49152 + rng.randrange(4096), 4791)
                want = _query(oracles[name], src, dst, ft, plane)
                got = _query(cached[name], src, dst, ft, plane)
                checked += 1
                if want != got:
                    mismatches.append(
                        f"{name} case {case} query {q}: {src.name}->"
                        f"{dst.name} plane={plane}: oracle={want!r} "
                        f"cached={got!r}"
                    )
        stats = {name: r.stats.as_dict() for name, r in cached.items()}
        return {
            "ok": not mismatches,
            "cases": cases,
            "checked": checked,
            "mismatches": mismatches[:10],
            "mismatch_count": len(mismatches),
            "cache_stats": stats,
        }


# ----------------------------------------------------------------------
def _build_pod(params: Dict[str, Any]) -> Topology:
    from ..topos import HpnSpec, build_hpn

    return build_hpn(HpnSpec(
        segments_per_pod=int(params["segments"]),
        hosts_per_segment=int(params["hosts_per_segment"]),
        backup_hosts_per_segment=0,
        aggs_per_plane=int(params["aggs_per_plane"]),
    ))


def _build_schedule(
    topo: Topology, params: Dict[str, Any], seed: int
) -> List[Tuple[List[Tuple[int, bool]], List[Tuple[Any, Any, FiveTuple, Optional[int]]]]]:
    """Per step: ``(link events, route requests)``.

    The request list models persistent RDMA connections of per-rail
    rings: the same (NIC pair, sport, plane) set every step, which is
    exactly the reuse a pod-scale collective presents. Every
    ``flap_every`` steps one fabric link goes down (and comes back the
    step after), dirtying the routes that depend on it.
    """
    rng = random.Random(seed)
    hosts = sorted(h.name for h in topo.active_hosts())
    rails = [n.rail for n in topo.hosts[hosts[0]].backend_nics()]
    conns = int(params["conns"])
    steps = int(params["steps"])
    flap_every = int(params["flap_every"])

    # shuffle the ring so consecutive ranks land in different segments
    # (data-parallel rings span the pod; name order would keep nearly
    # every edge inside one ToR and never exercise the agg tier)
    rng.shuffle(hosts)
    requests = []
    for rail in rails:
        for i, src_host in enumerate(hosts):
            dst_host = hosts[(i + 1) % len(hosts)]
            src = topo.hosts[src_host].nic_for_rail(rail)
            dst = topo.hosts[dst_host].nic_for_rail(rail)
            for c in range(conns):
                ft = FiveTuple(src.ip, dst.ip, 49152 + c, 4791)
                requests.append((src, dst, ft, c % 2))

    # flap interior (switch-to-switch) links only so rings stay routable
    interior = [
        link.link_id for link in topo.links.values()
        if link.a.node in topo.switches and link.b.node in topo.switches
    ]
    schedule = []
    flapped: Optional[int] = None
    for step in range(steps):
        events: List[Tuple[int, bool]] = []
        if flapped is not None:
            events.append((flapped, True))
            flapped = None
        if flap_every and step and step % flap_every == 0 and interior:
            flapped = rng.choice(interior)
            events.append((flapped, False))
        schedule.append((events, requests))
    return schedule


@contextmanager
def _gc_paused() -> Iterator[None]:
    """Keep cyclic GC out of the timed phases.

    Collection debt accumulated by whatever ran earlier in the process
    (other benchmark modules, test fixtures) would otherwise be paid
    inside whichever timed region the collector happens to fire in,
    skewing the engine comparison by run order.
    """
    was_enabled = gc.isenabled()
    gc.collect()
    gc.disable()
    try:
        yield
    finally:
        if was_enabled:
            gc.enable()


def run_routing_bench(params: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """Benchmark cached/batched routing against the uncached walker.

    Returns a JSON-safe payload: workload shape, wall-clock for both
    engines, the speedup, a byte-level equivalence verdict over every
    step, the cache counters, and the randomized failure/repair
    campaign report.
    """
    topo = _build_pod(params)
    schedule = _build_schedule(topo, params, seed)
    total_requests = sum(len(reqs) for _events, reqs in schedule)

    def restore() -> None:
        for lid in list(topo.links):
            topo.set_link_state(lid, True)

    # --- uncached baseline: one hop-by-hop walk per request ----------
    # the timed regions hold routing work only; outcome tuples for the
    # equivalence diff are materialized after the clocks stop
    oracle = Router(topo)
    baseline_raw: List[List[Any]] = []
    with _gc_paused():
        t0 = time.perf_counter()
        for events, reqs in schedule:
            for lid, up in events:
                topo.set_link_state(lid, up)
            out: List[Any] = []
            for s, d, ft, p in reqs:
                try:
                    out.append(oracle.path_for(s, d, ft, p))
                except RoutingError as err:
                    out.append(("err", str(err)))
            baseline_raw.append(out)
        uncached_wall = time.perf_counter() - t0
    restore()

    # --- cached/batched engine ----------------------------------------
    router = CachedRouter(topo)
    cached_raw: List[List[Any]] = []
    with _gc_paused():
        t0 = time.perf_counter()
        for events, reqs in schedule:
            for lid, up in events:
                topo.set_link_state(lid, up)
            paths = router.route_many(reqs, strict=False)
            for i, path in enumerate(paths):
                if path is None:
                    # unroutable: re-ask (a cache hit) for the message,
                    # under this step's link state
                    s, d, ft, p = reqs[i]
                    paths[i] = _query(router, s, d, ft, p)
            cached_raw.append(paths)
        cached_wall = time.perf_counter() - t0
    restore()

    cached: List[List[Outcome]] = [
        [
            out if isinstance(out, tuple)
            else ("ok", tuple(out.nodes), tuple(out.dirlinks), out.plane)
            for out in step
        ]
        for step in cached_raw
    ]

    baseline: List[List[Outcome]] = [
        [
            out if isinstance(out, tuple)
            else ("ok", tuple(out.nodes), tuple(out.dirlinks), out.plane)
            for out in step
        ]
        for step in baseline_raw
    ]

    # --- byte-level equivalence over every step -----------------------
    mismatches = 0
    first: Optional[str] = None
    for step, (want_step, got_step) in enumerate(zip(baseline, cached)):
        for i, (want, got) in enumerate(zip(want_step, got_step)):
            if want != got:
                mismatches += 1
                if first is None:
                    first = (
                        f"step {step} request {i}: "
                        f"uncached={want!r} cached={got!r}"
                    )
    campaign = RoutingEquivalence(seed=seed + 1).run_random(
        cases=int(params.get("campaign_cases", 50))
    )

    stats = router.stats
    return {
        "segments": int(params["segments"]),
        "hosts": len(topo.active_hosts()),
        "steps": len(schedule),
        "requests_per_step": len(schedule[0][1]) if schedule else 0,
        "flows": total_requests,
        "uncached_wall_s": uncached_wall,
        "cached_wall_s": cached_wall,
        "speedup": uncached_wall / cached_wall if cached_wall > 0 else 0.0,
        "equivalence": {
            "ok": mismatches == 0,
            "checked": total_requests,
            "mismatches": mismatches,
            "first_mismatch": first,
        },
        "cache": dict(stats.as_dict(), hit_rate=stats.hit_rate),
        "campaign": campaign,
    }
