"""Flow paths through a topology.

A :class:`FlowPath` is the hop-by-hop trace produced by the router: the
node sequence plus the *directed* links traversed. Directed link ids
encode direction so the fluid simulator can account each direction of a
full-duplex cable separately::

    dirlink = link_id * 2 + (0 if traversing a->b else 1)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Set, Tuple

from ..core.entities import Link


def encode_dirlink(link: Link, from_node: str) -> int:
    """Directed link id for traversing ``link`` out of ``from_node``."""
    if link.a.node == from_node:
        return link.link_id * 2
    if link.b.node == from_node:
        return link.link_id * 2 + 1
    raise ValueError(f"{from_node} is not an endpoint of link {link.link_id}")


def decode_dirlink(dirlink: int) -> Tuple[int, int]:
    """Return ``(link_id, direction)`` where direction 0 means a->b."""
    return dirlink // 2, dirlink % 2


@dataclass
class FlowPath:
    """An end-to-end path: host, access ToR, (aggs/cores), dst ToR, host."""

    nodes: List[str] = field(default_factory=list)
    dirlinks: List[int] = field(default_factory=list)
    #: plane the path rides (None for non-plane architectures)
    plane: int = None  # type: ignore[assignment]
    #: cached dense form of ``dirlinks`` (see :meth:`dirlink_multiplicity`)
    _dl_mult: Optional[Tuple[Tuple[int, int], ...]] = field(
        init=False, default=None, repr=False, compare=False
    )

    @property
    def hops(self) -> int:
        return len(self.dirlinks)

    @property
    def src(self) -> str:
        return self.nodes[0]

    @property
    def dst(self) -> str:
        return self.nodes[-1]

    def switch_nodes(self) -> List[str]:
        """Interior nodes (everything but the two hosts)."""
        return self.nodes[1:-1]

    def core_dirlinks(self) -> List[int]:
        """Directed links excluding the first and last (access) hops.

        RePaC disjointness is about the fabric interior: two connections
        between the same NIC pair necessarily share access links.
        """
        if len(self.dirlinks) <= 2:
            return []
        return self.dirlinks[1:-1]

    def link_ids(self) -> Set[int]:
        return {d // 2 for d in self.dirlinks}

    def dirlink_multiplicity(self) -> Tuple[Tuple[int, int], ...]:
        """Deduplicated ``(dirlink, occurrences)`` pairs, cached.

        The dense-access form the incremental solver's incidence index
        consumes: a path that revisits a directed link (possible under
        injected mis-wirings) carries an occurrence count rather than a
        duplicate entry, so per-link bookkeeping is one update per
        distinct link. The cache assumes ``dirlinks`` is not mutated
        after first use -- paths are frozen once routed.
        """
        cached = self._dl_mult
        if cached is None:
            counts: dict = {}
            for dl in self.dirlinks:
                counts[dl] = counts.get(dl, 0) + 1
            cached = tuple(counts.items())
            self._dl_mult = cached
        return cached


def disjoint(a: FlowPath, b: FlowPath, ignore_access: bool = True) -> bool:
    """Whether two paths share no directed fabric link."""
    da = a.core_dirlinks() if ignore_access else a.dirlinks
    db = b.core_dirlinks() if ignore_access else b.dirlinks
    return not (set(da) & set(db))


def mutually_disjoint(paths: List[FlowPath], ignore_access: bool = True) -> bool:
    """Whether every pair in ``paths`` is disjoint."""
    seen: Set[int] = set()
    for p in paths:
        dl = set(p.core_dirlinks() if ignore_access else p.dirlinks)
        if seen & dl:
            return False
        seen |= dl
    return True
