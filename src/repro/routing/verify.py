"""Forwarding verification: no loops, no black holes, plane discipline.

A network-verification pass in the spirit of Alibaba's operational
tooling: sample (or exhaust) NIC pairs, walk each flow through the
router, and certify that

* every reachable pair is actually delivered (no black holes);
* no walk revisits a node (no forwarding loops);
* hop counts stay within the architecture's diameter;
* plane-isolated fabrics never leak a flow across planes.

Returns a :class:`ForwardingReport`; `ok` is the single go/no-go bit
the CLI's ``validate`` could gate deployments on.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..core.errors import RoutingError
from ..core.topology import Topology
from .ecmp import Router
from .hashing import FiveTuple

#: host-tor-agg-core-agg-tor-host
MAX_DIAMETER_HOPS = 6

#: staticcheck rule id for each violation kind (shared diagnostic model)
VIOLATION_RULE_IDS = {
    "loop": "FWD001",
    "blackhole": "FWD002",
    "diameter": "FWD003",
    "plane-leak": "FWD004",
}


@dataclass
class ForwardingViolation:
    kind: str            # "loop" | "blackhole" | "diameter" | "plane-leak"
    src: str
    dst: str
    detail: str

    @property
    def rule_id(self) -> str:
        return VIOLATION_RULE_IDS.get(self.kind, "FWD000")


@dataclass
class ForwardingReport:
    pairs_checked: int = 0
    flows_walked: int = 0
    violations: List[ForwardingViolation] = field(default_factory=list)
    unreachable_pairs: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_diagnostics(self):
        """Project the walk results into ``repro.staticcheck`` diagnostics.

        Returns a :class:`repro.staticcheck.Report` so forwarding
        verification composes with the topology analyzers in one gate.
        """
        from ..staticcheck import Diagnostic, Location, Report, Severity

        report = Report()
        report.stats["pairs_checked"] = self.pairs_checked
        report.stats["flows_walked"] = self.flows_walked
        report.stats["unreachable_pairs"] = self.unreachable_pairs
        for v in self.violations:
            report.add(
                Diagnostic(
                    rule_id=v.rule_id,
                    severity=Severity.ERROR,
                    message=f"{v.src} -> {v.dst}: {v.detail}",
                    location=Location(obj=f"{v.src}->{v.dst}"),
                )
            )
        return report


def verify_forwarding(
    topo: Topology,
    router: Optional[Router] = None,
    max_pairs: int = 64,
    sports_per_pair: int = 4,
    rail: int = 0,
    expect_reachable: bool = True,
) -> ForwardingReport:
    """Walk sampled flows and certify forwarding correctness.

    ``expect_reachable=False`` suppresses black-hole violations for
    fabrics where some pairs are legitimately unreachable (rail-only
    cross-rail traffic, partitioned failures).
    """
    if router is None:
        from .cache import shared_router

        router = shared_router(topo)
    report = ForwardingReport()
    hosts = sorted(h.name for h in topo.active_hosts())
    pairs = [
        (a, b) for a, b in itertools.combinations(hosts, 2)
    ][:max_pairs]

    for src_host, dst_host in pairs:
        report.pairs_checked += 1
        src = topo.hosts[src_host].nic_for_rail(rail)
        dst = topo.hosts[dst_host].nic_for_rail(rail)
        planes = router.usable_planes(src, dst)
        if not planes:
            report.unreachable_pairs += 1
            if expect_reachable:
                report.violations.append(
                    ForwardingViolation(
                        "blackhole", src_host, dst_host, "no usable plane"
                    )
                )
            continue
        for plane in planes:
            for i in range(sports_per_pair):
                ft = FiveTuple(src.ip, dst.ip, 49152 + i * 257, 4791)
                report.flows_walked += 1
                try:
                    path = router.path_for(src, dst, ft, plane=plane)
                except RoutingError as exc:
                    report.violations.append(
                        ForwardingViolation(
                            "blackhole", src_host, dst_host, str(exc)
                        )
                    )
                    continue
                _check_path(topo, report, src_host, dst_host, path)
    return report


def _check_path(topo: Topology, report: ForwardingReport,
                src: str, dst: str, path) -> None:
    if len(set(path.nodes)) != len(path.nodes):
        report.violations.append(
            ForwardingViolation("loop", src, dst, " -> ".join(path.nodes))
        )
    if path.hops > MAX_DIAMETER_HOPS:
        report.violations.append(
            ForwardingViolation(
                "diameter", src, dst, f"{path.hops} hops: {' -> '.join(path.nodes)}"
            )
        )
    if path.nodes[-1] != dst:
        report.violations.append(
            ForwardingViolation(
                "blackhole", src, dst, f"delivered to {path.nodes[-1]}"
            )
        )
    if int(topo.meta.get("planes", 1)) > 1 and path.plane is not None:
        for node in path.switch_nodes():
            sw = topo.switches.get(node)
            if sw is not None and sw.plane is not None and sw.plane != path.plane:
                report.violations.append(
                    ForwardingViolation(
                        "plane-leak", src, dst,
                        f"{node} is plane {sw.plane}, flow is plane {path.plane}",
                    )
                )
                break
