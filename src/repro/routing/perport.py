"""Core-layer per-port deterministic hashing (paper section 7).

To keep tier-3 free of hash polarization, each core switch forwards
traffic for pod ``i`` arriving on physical port ``j`` to a *fixed*
egress port ``k`` -- the 5-tuple plays no role, so upstream hash
outcomes cannot correlate with the core's choice. If the selected link
is down, the switch falls back to the default 5-tuple hash over the
surviving members ("potential small performance degradation only under
failure cases").
"""

from __future__ import annotations

from typing import Sequence, Tuple

from ..core.entities import Link, Port
from .hashing import FiveTuple, ecmp_index


def per_port_index(ingress_port_index: int, dst_pod: int, n_members: int) -> int:
    """Deterministic egress member for (ingress port, destination pod)."""
    if n_members <= 0:
        raise ValueError("ECMP group is empty")
    return (ingress_port_index + dst_pod) % n_members


def select_core_egress(
    candidates: Sequence[Tuple[Port, Link]],
    ingress_port_index: int,
    dst_pod: int,
    ft: FiveTuple,
    seed: int,
) -> Tuple[Port, Link]:
    """Per-port selection with 5-tuple fallback on link failure."""
    idx = per_port_index(ingress_port_index, dst_pod, len(candidates))
    port, link = candidates[idx]
    if link.up:
        return port, link
    alive = [(p, l) for p, l in candidates if l.up]
    if not alive:
        raise ValueError("no live core egress")
    return alive[ecmp_index(ft, seed, len(alive))]
