"""Routing: hash family, ECMP walker, FIB + route cache, RePaC, complexity."""

from .cache import (
    CachedRouter,
    RouteCache,
    RouteStats,
    active_shared_routers,
    evict_shared_router,
    reset_shared_router,
    shared_router,
)
from .complexity import (
    ComplexityRow,
    card_complexity,
    failure_recalc_scope,
    measured_complexity,
    table1,
)
from .ecmp import AccessLeg, Router
from .fib import Fib, SwitchFib
from .hashing import (
    FiveTuple,
    ecmp_index,
    ecmp_select,
    hash_five_tuple,
    polarization_coefficient,
)
from .path import FlowPath, decode_dirlink, disjoint, encode_dirlink, mutually_disjoint
from .perport import per_port_index, select_core_egress
from .repac import DisjointPathSet, PathProbe, find_paths, max_disjoint_paths
from .verify import ForwardingReport, ForwardingViolation, verify_forwarding

__all__ = [
    "ForwardingReport",
    "ForwardingViolation",
    "verify_forwarding",
    "AccessLeg",
    "CachedRouter",
    "ComplexityRow",
    "DisjointPathSet",
    "Fib",
    "FiveTuple",
    "FlowPath",
    "PathProbe",
    "RouteCache",
    "RouteStats",
    "Router",
    "SwitchFib",
    "active_shared_routers",
    "evict_shared_router",
    "reset_shared_router",
    "shared_router",
    "card_complexity",
    "decode_dirlink",
    "disjoint",
    "ecmp_index",
    "ecmp_select",
    "encode_dirlink",
    "failure_recalc_scope",
    "find_paths",
    "hash_five_tuple",
    "max_disjoint_paths",
    "measured_complexity",
    "mutually_disjoint",
    "per_port_index",
    "polarization_coefficient",
    "select_core_egress",
    "table1",
]
