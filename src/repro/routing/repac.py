"""Relative path control: source-port search for disjoint paths.

The paper's optimized path selection (section 6.1, Appendix B,
Algorithm 1) builds, for each logical connection request, a *set* of
RDMA connections whose network paths are mutually disjoint. Production
HPN uses RePaC [Zhang et al., ATC'21]: because switch hashing is
deterministic and its linearity is known, the host can predict every
per-hop egress port from the 5-tuple and pick source ports that land on
the paths it wants.

Our hash family is deterministic by construction, so ``find_paths``
reimplements the same contract: enumerate candidate source ports,
predict each path with the router, and greedily keep those that are
link-disjoint in the fabric interior. The search cost is bounded by the
architecture's path-selection complexity -- O(60) per ToR in HPN versus
O(10^3) in 3-tier fabrics (Table 1), which the complexity module
quantifies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Set

from ..core.entities import Nic
from ..core.errors import RoutingError
from ..obs import resolve as _obs_resolve
from .ecmp import Router
from .hashing import FiveTuple
from .path import FlowPath

#: ephemeral source-port range probed, mirroring RDMA CM behaviour
DEFAULT_SPORT_BASE = 49152
DEFAULT_SPORT_SPAN = 4096


@dataclass
class PathProbe:
    """One probed connection candidate."""

    sport: int
    five_tuple: FiveTuple
    path: FlowPath


@dataclass
class DisjointPathSet:
    """Result of Algorithm 1 (``EstablishConns``)."""

    probes: List[PathProbe] = field(default_factory=list)
    attempts: int = 0

    @property
    def sports(self) -> List[int]:
        return [p.sport for p in self.probes]

    @property
    def paths(self) -> List[FlowPath]:
        return [p.path for p in self.probes]


def find_paths(
    router: Router,
    src_nic: Nic,
    dst_nic: Nic,
    dport: int,
    num_paths: int,
    plane: Optional[int] = None,
    sport_base: int = DEFAULT_SPORT_BASE,
    sport_span: int = DEFAULT_SPORT_SPAN,
) -> DisjointPathSet:
    """Find up to ``num_paths`` mutually disjoint paths (Algorithm 1).

    Probes source ports in order; a candidate is kept when its interior
    links do not overlap any already-kept path. Stops early once
    ``num_paths`` are found or the span is exhausted.
    """
    if num_paths < 1:
        raise ValueError("num_paths must be >= 1")
    rec = _obs_resolve()
    result = DisjointPathSet()
    used: Set[int] = set()
    unroutable = overlapped = 0
    for offset in range(sport_span):
        sport = sport_base + offset
        ft = FiveTuple(src_nic.ip, dst_nic.ip, sport, dport)
        result.attempts += 1
        try:
            path = router.path_for(src_nic, dst_nic, ft, plane=plane)
        except RoutingError:
            unroutable += 1
            continue
        interior = set(path.core_dirlinks())
        if interior & used:
            overlapped += 1
            continue
        used |= interior
        result.probes.append(PathProbe(sport, ft, path))
        if len(result.probes) >= num_paths:
            break
    if rec is not None:
        m = rec.metrics
        m.counter("repac.probes", outcome="kept").inc(len(result.probes))
        m.counter("repac.probes", outcome="overlap").inc(overlapped)
        m.counter("repac.probes", outcome="unroutable").inc(unroutable)
        rec.events.instant(
            "repac.path_set", 0.0, track="routing",
            src=src_nic.name, dst=dst_nic.name,
            attempts=result.attempts, kept=len(result.probes),
        )
    if not result.probes:
        raise RoutingError(
            f"no path found from {src_nic.name} to {dst_nic.name}"
        )
    return result


def max_disjoint_paths(
    router: Router,
    src_nic: Nic,
    dst_nic: Nic,
    dport: int = 4791,
    plane: Optional[int] = None,
    sport_span: int = DEFAULT_SPORT_SPAN,
) -> int:
    """Upper-bound probe: how many disjoint paths exist for this pair."""
    found = find_paths(
        router,
        src_nic,
        dst_nic,
        dport,
        num_paths=1 << 16,
        plane=plane,
        sport_span=sport_span,
    )
    return len(found.probes)
