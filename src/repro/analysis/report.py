"""Experiment-report generator.

Runs a scaled-down version of the paper's headline comparisons and
renders a self-contained markdown report: architecture inventories,
Table 1/2/4, AllReduce/Multi-AllReduce sweeps, the end-to-end training
comparison and the fault drill. Intended for downstream users who
change a spec and want the full consequence picture in one command
(``examples/full_report.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..cluster import Cluster
from ..collective import allreduce, multi_allreduce
from ..core.units import GB, MB
from ..reliability import FaultInjector, link_failure_scenario
from ..routing import table1
from ..topos import DcnPlusSpec, HpnSpec, table1_cards
from ..training import GPT3_175B, LLAMA_13B, ParallelismPlan, Scheduler
from .scale import table2, table4


@dataclass
class ReportConfig:
    """Scale knobs for the report run (defaults: ~1 minute)."""

    hosts: int = 16
    hpn_spec: HpnSpec = field(
        default_factory=lambda: HpnSpec(
            segments_per_pod=1, hosts_per_segment=16,
            backup_hosts_per_segment=0, aggs_per_plane=16,
        )
    )
    dcn_spec: DcnPlusSpec = field(
        default_factory=lambda: DcnPlusSpec(
            pods=1, segments_per_pod=4, hosts_per_segment=4
        )
    )
    allreduce_sizes: List[float] = field(
        default_factory=lambda: [16 * MB, 256 * MB, 1 * GB]
    )
    microbatches: int = 12


def _md_table(headers: List[str], rows: List[List[str]]) -> List[str]:
    out = ["| " + " | ".join(headers) + " |",
           "|" + "|".join("---" for _ in headers) + "|"]
    for row in rows:
        out.append("| " + " | ".join(row) + " |")
    return out


def generate_report(config: Optional[ReportConfig] = None) -> str:
    """Run the comparisons and return a markdown document."""
    cfg = config or ReportConfig()
    hpn = Cluster.hpn(cfg.hpn_spec)
    dcn = Cluster.dcnplus(cfg.dcn_spec)
    h_hosts = hpn.place(cfg.hosts)
    d_hosts = Scheduler(dcn.topo).place(cfg.hosts)

    lines: List[str] = ["# HPN reproduction report", ""]

    # --- inventories -----------------------------------------------------
    lines += ["## Fabrics", ""]
    rows = []
    for name, cluster in (("HPN", hpn), ("DCN+", dcn)):
        s = cluster.topo.summary()
        rows.append([
            name, str(s["gpus"]),
            str(s["switches"].get("tor", 0)),
            str(s["switches"].get("agg", 0)),
            str(s["links"]),
        ])
    lines += _md_table(["fabric", "GPUs", "ToRs", "Aggs", "links"], rows) + [""]

    # --- tables ----------------------------------------------------------
    lines += ["## Table 1: path-selection complexity", ""]
    rows = [
        [r.name, str(r.supported_gpus), str(r.tiers), f"O({r.complexity})"]
        for r in table1(table1_cards())
    ]
    lines += _md_table(["architecture", "GPUs", "tiers", "search space"], rows) + [""]

    lines += ["## Table 2: scale mechanisms", ""]
    rows = [
        [r.mechanism, str(r.tier1_gpus), str(r.tier2_gpus)] for r in table2()
    ]
    lines += _md_table(["mechanism", "tier-1 GPUs", "tier-2 GPUs"], rows) + [""]

    lines += ["## Table 4: tier-2 design", ""]
    rows = [
        [r.design, str(r.tier2_planes), str(r.gpus_per_pod),
         r.communication_limitation]
        for r in table4()
    ]
    lines += _md_table(["design", "planes", "GPUs/pod", "limitation"], rows) + [""]

    # --- collectives -----------------------------------------------------
    lines += ["## Collectives (HPN vs DCN+)", ""]
    h_comm = hpn.communicator(h_hosts)
    d_comm = dcn.communicator(d_hosts)
    rows = []
    for size in cfg.allreduce_sizes:
        h = allreduce(h_comm, size)
        d = allreduce(d_comm, size)
        gain = h.busbw_gb_per_sec / d.busbw_gb_per_sec - 1
        rows.append([
            f"AllReduce {size / MB:.0f} MB",
            f"{h.busbw_gb_per_sec:.1f}",
            f"{d.busbw_gb_per_sec:.1f}",
            f"{gain:+.1%}",
        ])
    h_mar = multi_allreduce(h_comm, 256 * MB)
    d_mar = multi_allreduce(d_comm, 256 * MB)
    rows.append([
        "Multi-AllReduce 256 MB",
        f"{h_mar.busbw_gb_per_sec:.1f}",
        f"{d_mar.busbw_gb_per_sec:.1f}",
        f"{h_mar.busbw_gb_per_sec / d_mar.busbw_gb_per_sec - 1:+.1%}",
    ])
    lines += _md_table(
        ["operation", "HPN GB/s", "DCN+ GB/s", "HPN gain"], rows
    ) + [""]

    # --- end-to-end training ----------------------------------------------
    lines += ["## End-to-end training", ""]
    plan = ParallelismPlan(tp=8, pp=4, dp=cfg.hosts * 8 // (8 * 4))
    rows = []
    sps = {}
    for name, cluster, hosts in (("HPN", hpn, h_hosts), ("DCN+", dcn, d_hosts)):
        job = cluster.train(GPT3_175B, plan, hosts, microbatches=cfg.microbatches)
        it = job.iteration()
        sps[name] = it.samples_per_sec
        rows.append([
            name, f"{it.total_seconds:.3f}", f"{it.samples_per_sec:.1f}",
            f"{it.dp_seconds:.3f}", f"{it.dp_exposed_seconds:.3f}",
        ])
    rows.append(["HPN gain", "", f"{sps['HPN'] / sps['DCN+'] - 1:+.1%}", "", ""])
    lines += _md_table(
        ["fabric", "iter (s)", "samples/s", "dp sync (s)", "exposed (s)"], rows
    ) + [""]

    # --- fault drill -------------------------------------------------------
    lines += ["## Fault drill (access-link failure)", ""]
    job = hpn.train(
        LLAMA_13B, ParallelismPlan(tp=8, pp=1, dp=cfg.hosts), h_hosts,
        microbatches=cfg.microbatches,
    )
    result = FaultInjector(job).run(
        link_failure_scenario(h_hosts[0], 0, fail_at=10.0, repair_at=60.0), 120.0
    )
    rows = [
        [f"{p.time:.2f}", f"{p.samples_per_sec:.1f}", p.note]
        for p in result.timeline
    ]
    lines += _md_table(["t (s)", "samples/s", "event"], rows)
    lines += ["", f"crashed: {result.crashed}", ""]
    return "\n".join(lines)
