"""Scale accounting: Tables 2 and 4.

Table 2 decomposes how each HPN mechanism multiplies the number of
GPUs one tier can cover; Table 4 contrasts the deployed any-to-any
tier-2 with the rail-only alternative. Both are closed-form functions
of the architecture parameters, checked against built topologies in the
test suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..topos.spec import HpnSpec, RailOnlySpec


@dataclass(frozen=True)
class ScaleRow:
    """One row of Table 2."""

    mechanism: str
    tier1_gpus: int
    tier2_gpus: int
    note: str = ""


def table2(spec: HpnSpec = HpnSpec()) -> List[ScaleRow]:
    """Reproduce Table 2's build-up at any parameterization.

    The progression at paper scale: 64 -> 128 (x2 dual-ToR) -> 1K (x8
    rail-optimized) for tier 1; 2K -> 4K (x2) -> 8K (x2 dual-plane) ->
    15K (x1.875 via 15:1 oversubscription) for tier 2.
    """
    # a 51.2T chip with plain Clos: half ports down at 400G, one GPU each
    ports_400g = int(spec.tor_chip_gbps / 400.0)
    base_t1 = ports_400g // 2
    # tier-2 baseline: agg chip fan-out over single-homed ToRs
    base_t2 = base_t1 * (ports_400g // 2) // 2

    rows = [ScaleRow("51.2Tbps Clos", base_t1, base_t2)]

    t1 = base_t1 * 2
    t2 = base_t2 * 2
    rows.append(ScaleRow("Dual-ToR", t1, t2, "x2: two 200G ports per NIC"))

    t1 *= spec.rails
    rows.append(
        ScaleRow("Rail-optimized", t1, t2, f"x{spec.rails}: one ToR set per rail")
    )

    t2 *= 2
    rows.append(ScaleRow("Dual-plane", t1, t2, "x2: half the ToR-Agg links"))

    oversub = spec.agg_core_oversubscription
    if oversub != float("inf"):
        factor = 2 * oversub / (oversub + 1)
        t2 = int(t2 * factor)
        rows.append(
            ScaleRow(
                f"Oversubscription of {oversub:.0f}:1",
                t1,
                t2,
                f"x{factor:.3f}: ports freed from the core",
            )
        )
    return rows


def hpn_pod_gpus(spec: HpnSpec = HpnSpec()) -> int:
    return spec.gpus_per_pod


@dataclass(frozen=True)
class Table4Row:
    design: str
    tier2_planes: int
    gpus_per_pod: int
    communication_limitation: str


def table4(
    hpn: HpnSpec = HpnSpec(), railonly: RailOnlySpec = RailOnlySpec()
) -> Tuple[Table4Row, Table4Row]:
    """Any-to-any tier-2 vs rail-only tier-2 (paper Table 4)."""
    any_to_any = Table4Row(
        design="Any-to-any tier2",
        tier2_planes=2,
        gpus_per_pod=hpn.gpus_per_pod,
        communication_limitation="None",
    )
    # rail-only: each of the 16 (rail, side) planes keeps the full agg
    # fan-out to itself, so a pod covers 8x the segments
    rail_pod = hpn.gpus_per_pod * railonly.rails
    rail = Table4Row(
        design="Rail-only tier2",
        tier2_planes=railonly.planes,
        gpus_per_pod=rail_pod,
        communication_limitation="Rail-only",
    )
    return any_to_any, rail
