"""Analysis: polarization, load imbalance, scale accounting."""

from .imbalance import (
    PortBalanceReport,
    mean_port_ratio,
    nic_port_balance,
    queue_reduction,
)
from .polarization import (
    effective_choice_entropy,
    link_flow_histogram,
    path_concentration,
    stage_choice_correlation,
    stage_choices,
)
from .scale import ScaleRow, Table4Row, hpn_pod_gpus, table2, table4
from .sweep import (
    SWEEP_KNOBS,
    SweepPoint,
    aggs_per_plane_spec,
    evaluate_point,
    knee_point,
    oversubscription_spec,
    run_sweep,
    sweep_aggs_per_plane,
    sweep_oversubscription,
)

__all__ = [
    "SWEEP_KNOBS",
    "SweepPoint",
    "aggs_per_plane_spec",
    "evaluate_point",
    "knee_point",
    "oversubscription_spec",
    "run_sweep",
    "sweep_aggs_per_plane",
    "sweep_oversubscription",
    "PortBalanceReport",
    "ScaleRow",
    "Table4Row",
    "effective_choice_entropy",
    "hpn_pod_gpus",
    "link_flow_histogram",
    "mean_port_ratio",
    "nic_port_balance",
    "path_concentration",
    "queue_reduction",
    "stage_choice_correlation",
    "stage_choices",
    "table2",
    "table4",
]
