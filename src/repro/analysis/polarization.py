"""Hash-polarization measurement (paper 2.2, 6.1).

Polarization is the correlation between a flow's ECMP choices at
successive tiers: when every chip hashes the same unchanged 5-tuple
with the same function, the aggregation layer sees a *filtered*
population (all flows arriving at agg ``a`` made the same tier-1
choice) and re-hashing them yields degenerate spreading.

``stage_choice_correlation`` quantifies it directly on a population of
synthetic flows; ``path_concentration`` measures the downstream effect
on a built topology: how unevenly a flow population lands on the
candidate links of a switch.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Dict, Iterable, List, Sequence, Tuple

from ..fabric.flow import Flow
from ..routing.hashing import FiveTuple, ecmp_index


def stage_choices(
    flows: Sequence[FiveTuple], seeds: Sequence[int], members: int
) -> List[List[int]]:
    """ECMP member index per flow at each hashing stage."""
    return [[ecmp_index(ft, seed, members) for ft in flows] for seed in seeds]


def stage_choice_correlation(
    flows: Sequence[FiveTuple], seed_a: int, seed_b: int, members: int
) -> float:
    """Fraction of flows repeating their stage-A member at stage B.

    1.0 = full polarization; ~1/members = independent hashing.
    """
    if not flows:
        raise ValueError("need at least one flow")
    same = sum(
        1
        for ft in flows
        if ecmp_index(ft, seed_a, members) == ecmp_index(ft, seed_b, members)
    )
    return same / len(flows)


def effective_choice_entropy(indices: Sequence[int], members: int) -> float:
    """Normalized entropy of member usage in [0, 1]; 1 = perfectly even."""
    import math

    if members <= 1:
        return 1.0
    counts = Counter(indices)
    n = len(indices)
    h = -sum((c / n) * math.log(c / n) for c in counts.values())
    return h / math.log(members)


def link_flow_histogram(flows: Iterable[Flow], node: str) -> Dict[int, int]:
    """How many flows egress each directed link out of ``node``."""
    hist: Dict[int, int] = defaultdict(int)
    for f in flows:
        for i, n in enumerate(f.path.nodes[:-1]):
            if n == node:
                hist[f.path.dirlinks[i]] += 1
    return dict(hist)


def path_concentration(flows: Iterable[Flow], node: str) -> float:
    """Max share of ``node``'s egress flows landing on one link."""
    hist = link_flow_histogram(flows, node)
    total = sum(hist.values())
    if not total:
        return 0.0
    return max(hist.values()) / total
