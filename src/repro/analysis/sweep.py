"""Design-space sweeps over architecture parameters.

The paper fixes its design points (60 aggs/plane, 15:1 core
oversubscription) from operational constraints; the sweep utilities let
a user re-derive those choices: vary one knob, rebuild the fabric, and
measure the consequences (pod size, cost, path diversity, cross-pod
bandwidth per GPU).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, List, Optional, Sequence

from ..core.topology import Topology
from ..hardware.cost import network_cost
from ..topos.hpn import build_hpn
from ..topos.spec import HpnSpec, TOR_UP_GBPS


@dataclass
class SweepPoint:
    """One evaluated design point."""

    value: float
    gpus_per_pod: int
    tor_oversubscription: float
    agg_core_oversubscription: float
    path_diversity: int
    relative_cost: float
    cross_pod_gbps_per_gpu: float
    #: independent aggregation switches per plane -- the fault domains a
    #: single switch failure can take out of the disjoint-path pool
    agg_fault_domains: int = 0


def _evaluate(spec: HpnSpec, value: float, build: bool) -> SweepPoint:
    topo: Optional[Topology] = build_hpn(spec) if build else None
    cost = network_cost(topo) if topo is not None else float("nan")
    core_up = spec.aggs_per_plane * spec.agg_core_uplinks * 2 * TOR_UP_GBPS
    cross_bw = core_up / spec.gpus_per_pod if spec.agg_core_uplinks else 0.0
    return SweepPoint(
        value=value,
        gpus_per_pod=spec.gpus_per_pod,
        tor_oversubscription=spec.tor_oversubscription,
        agg_core_oversubscription=spec.agg_core_oversubscription,
        path_diversity=spec.tor_uplinks,
        relative_cost=cost,
        cross_pod_gbps_per_gpu=cross_bw,
        agg_fault_domains=spec.aggs_per_plane,
    )


def sweep_oversubscription(
    base: HpnSpec = HpnSpec(),
    uplink_counts: Sequence[int] = (4, 8, 16, 30, 60),
    build: bool = False,
) -> List[SweepPoint]:
    """Vary the agg->core uplink count (the §7 trade-off).

    More uplinks = more cross-pod bandwidth but fewer ports left for
    segments: each extra uplink costs one downlink, shrinking the pod.
    """
    points = []
    for uplinks in uplink_counts:
        # a 128-port agg chip: down + up = 128 at 400G
        downlinks = 128 - uplinks
        segments = max(1, downlinks // (base.rails * base.tor_agg_links))
        spec = replace(
            base,
            agg_core_uplinks=uplinks,
            segments_per_pod=segments,
            cores_per_plane=0,
        )
        points.append(_evaluate(spec, float(uplinks), build))
    return points


def sweep_aggs_per_plane(
    base: HpnSpec = HpnSpec(),
    counts: Sequence[int] = (15, 30, 60),
    build: bool = False,
) -> List[SweepPoint]:
    """Vary plane width: fault domains vs switch count.

    The ToR's 60 x 400G uplink budget is fixed, so the link-disjoint
    path pool stays 60 regardless; what narrows with fewer aggs is the
    number of independent *fault domains* -- one agg failure removes
    ``tor_agg_links`` paths at once instead of one (the paper's "59
    surviving aggs keep balancing" property).
    """
    points = []
    for count in counts:
        links = max(1, 60 // count)
        spec = replace(base, aggs_per_plane=count, tor_agg_links=links,
                       agg_core_uplinks=0, cores_per_plane=0, pods=1)
        points.append(_evaluate(spec, float(count), build))
    return points


def knee_point(points: List[SweepPoint],
               metric: Callable[[SweepPoint], float]) -> SweepPoint:
    """The point after which the metric's marginal gain halves --
    a simple knee heuristic for picking a design value."""
    if not points:
        raise ValueError("empty sweep")
    if len(points) < 3:
        return points[-1]
    best = points[0]
    prev_gain = None
    for a, b in zip(points, points[1:]):
        gain = metric(b) - metric(a)
        if prev_gain is not None and prev_gain > 0 and gain < prev_gain / 2:
            return a
        prev_gain = gain
        best = b
    return best
