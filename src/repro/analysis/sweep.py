"""Design-space sweeps over architecture parameters.

The paper fixes its design points (60 aggs/plane, 15:1 core
oversubscription) from operational constraints; the sweep utilities let
a user re-derive those choices: vary one knob, rebuild the fabric, and
measure the consequences (pod size, cost, path diversity, cross-pod
bandwidth per GPU).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, List, Optional, Sequence

from ..core.topology import Topology
from ..hardware.cost import network_cost
from ..topos.hpn import build_hpn
from ..topos.spec import HpnSpec, TOR_UP_GBPS


@dataclass
class SweepPoint:
    """One evaluated design point."""

    value: float
    gpus_per_pod: int
    tor_oversubscription: float
    agg_core_oversubscription: float
    path_diversity: int
    relative_cost: float
    cross_pod_gbps_per_gpu: float
    #: independent aggregation switches per plane -- the fault domains a
    #: single switch failure can take out of the disjoint-path pool
    agg_fault_domains: int = 0


def evaluate_point(spec: HpnSpec, value: float,
                   build: bool = False) -> SweepPoint:
    """Evaluate one design point (optionally building the full fabric).

    Pure in (spec, value, build) -- this is the unit of work the
    experiment engine parallelizes, so it must not read or mutate any
    shared state.
    """
    topo: Optional[Topology] = build_hpn(spec) if build else None
    cost = network_cost(topo) if topo is not None else float("nan")
    core_up = spec.aggs_per_plane * spec.agg_core_uplinks * 2 * TOR_UP_GBPS
    cross_bw = core_up / spec.gpus_per_pod if spec.agg_core_uplinks else 0.0
    return SweepPoint(
        value=value,
        gpus_per_pod=spec.gpus_per_pod,
        tor_oversubscription=spec.tor_oversubscription,
        agg_core_oversubscription=spec.agg_core_oversubscription,
        path_diversity=spec.tor_uplinks,
        relative_cost=cost,
        cross_pod_gbps_per_gpu=cross_bw,
        agg_fault_domains=spec.aggs_per_plane,
    )


_evaluate = evaluate_point  # compatibility alias for older callers


def oversubscription_spec(base: HpnSpec, uplinks: int) -> HpnSpec:
    """The derived spec for one agg->core uplink count (§7 trade-off).

    More uplinks = more cross-pod bandwidth but fewer ports left for
    segments: each extra uplink costs one downlink, shrinking the pod.
    """
    # a 128-port agg chip: down + up = 128 at 400G
    downlinks = 128 - uplinks
    segments = max(1, downlinks // (base.rails * base.tor_agg_links))
    return replace(
        base,
        agg_core_uplinks=uplinks,
        segments_per_pod=segments,
        cores_per_plane=0,
    )


def aggs_per_plane_spec(base: HpnSpec, count: int) -> HpnSpec:
    """The derived spec for one plane-width value (fault-domain knob)."""
    links = max(1, 60 // count)
    return replace(base, aggs_per_plane=count, tor_agg_links=links,
                   agg_core_uplinks=0, cores_per_plane=0, pods=1)


#: sweepable knobs: name -> (spec derivation, default value list)
SWEEP_KNOBS = {
    "oversubscription": (oversubscription_spec, (4, 8, 16, 30, 60)),
    "aggs-per-plane": (aggs_per_plane_spec, (15, 30, 60)),
}


def sweep_oversubscription(
    base: HpnSpec = HpnSpec(),
    uplink_counts: Sequence[int] = (4, 8, 16, 30, 60),
    build: bool = False,
) -> List[SweepPoint]:
    """Vary the agg->core uplink count (the §7 trade-off).

    More uplinks = more cross-pod bandwidth but fewer ports left for
    segments: each extra uplink costs one downlink, shrinking the pod.
    """
    return [
        evaluate_point(oversubscription_spec(base, uplinks),
                       float(uplinks), build)
        for uplinks in uplink_counts
    ]


def sweep_aggs_per_plane(
    base: HpnSpec = HpnSpec(),
    counts: Sequence[int] = (15, 30, 60),
    build: bool = False,
) -> List[SweepPoint]:
    """Vary plane width: fault domains vs switch count.

    The ToR's 60 x 400G uplink budget is fixed, so the link-disjoint
    path pool stays 60 regardless; what narrows with fewer aggs is the
    number of independent *fault domains* -- one agg failure removes
    ``tor_agg_links`` paths at once instead of one (the paper's "59
    surviving aggs keep balancing" property).
    """
    return [
        evaluate_point(aggs_per_plane_spec(base, count), float(count), build)
        for count in counts
    ]


def run_sweep(
    knob: str,
    values: Optional[Sequence[int]] = None,
    build: bool = False,
    runner: Optional[object] = None,
    base_seed: int = 0,
) -> List[SweepPoint]:
    """Execute a design sweep through the experiment engine.

    Each design point becomes one cached, seeded experiment
    (``sweep.<knob>``), fanned out by the runner's backend -- pass a
    ``repro.engine.Runner(backend="process")`` to evaluate points
    across cores; the default is a plain serial engine run. Results
    are identical to :func:`sweep_oversubscription` /
    :func:`sweep_aggs_per_plane` on the same values.
    """
    from ..engine import Runner, specs_for_grid

    if knob not in SWEEP_KNOBS:
        known = ", ".join(sorted(SWEEP_KNOBS))
        raise ValueError(f"unknown sweep knob {knob!r} (known: {known})")
    if values is None:
        values = SWEEP_KNOBS[knob][1]
    engine_runner = runner if runner is not None else Runner()
    specs = specs_for_grid(
        f"sweep.{knob}",
        {"value": list(values)},
        base_seed=base_seed,
        fixed={"build": build},
    )
    result = engine_runner.run(specs)  # type: ignore[attr-defined]
    points = []
    for payload in result.payloads:
        data = dict(payload)
        if data.get("relative_cost") is None:  # JSON has no NaN
            data["relative_cost"] = float("nan")
        points.append(SweepPoint(**data))
    return points


def knee_point(points: List[SweepPoint],
               metric: Callable[[SweepPoint], float]) -> SweepPoint:
    """The point after which the metric's marginal gain halves --
    a simple knee heuristic for picking a design value."""
    if not points:
        raise ValueError("empty sweep")
    if len(points) < 3:
        return points[-1]
    best = points[0]
    prev_gain = None
    for a, b in zip(points, points[1:]):
        gain = metric(b) - metric(a)
        if prev_gain is not None and prev_gain > 0 and gain < prev_gain / 2:
            return a
        prev_gain = gain
        best = b
    return best
