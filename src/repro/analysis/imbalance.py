"""Load-imbalance summaries over simulated traffic.

Thin analysis layer over :mod:`repro.fabric.telemetry`: the
architecture-level comparisons (Figure 13's 3x port skew, the 91.8%
queue reduction) are computed here from flow populations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List

from ..core.topology import Topology
from ..fabric.flow import Flow
from ..fabric.queues import QueueTracker
from ..fabric.telemetry import imbalance_ratio, jain_fairness, tor_ports_towards_nic


@dataclass
class PortBalanceReport:
    """Figure 13's quantity for one NIC."""

    host: str
    rail: int
    per_tor_gbps: Dict[str, float]

    @property
    def ratio(self) -> float:
        return imbalance_ratio(self.per_tor_gbps.values())

    @property
    def fairness(self) -> float:
        return jain_fairness(self.per_tor_gbps.values())


def nic_port_balance(
    topo: Topology, flows: Iterable[Flow], host: str, rail: int
) -> PortBalanceReport:
    loads = tor_ports_towards_nic(topo, flows, host, rail)
    return PortBalanceReport(host=host, rail=rail, per_tor_gbps=loads)


def mean_port_ratio(
    topo: Topology, flows: List[Flow], hosts: List[str], rail: int = 0
) -> float:
    """Average dual-ToR downlink imbalance over many NICs."""
    ratios = []
    for host in hosts:
        report = nic_port_balance(topo, flows, host, rail)
        values = [v for v in report.per_tor_gbps.values() if v > 0]
        if len(values) >= 2:
            ratios.append(max(values) / min(values))
    return sum(ratios) / len(ratios) if ratios else 1.0


def queue_reduction(
    baseline: QueueTracker, improved: QueueTracker
) -> float:
    """Fractional reduction of the peak standing queue (paper: 91.8%)."""
    base = baseline.max_queue()
    if base <= 0:
        return 0.0
    return 1.0 - improved.max_queue() / base
