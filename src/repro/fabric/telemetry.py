"""Port counters and imbalance metrics.

These mirror the switch statistics the paper collects in production:
per-port traffic towards a NIC (Figure 13), aggregation-switch ingress
(Figure 15b), and load-imbalance summaries.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.entities import PortKind, SwitchRole
from ..core.topology import Topology
from .flow import Flow


def dirlink_loads(flows: Iterable[Flow], use_rate: bool = True) -> Dict[int, float]:
    """Load per directed link: current rate (Gbps) or flow count.

    A flow contributes to each directed link on its path **once**, even
    if the path revisits a link -- possible when mis-wirings injected
    with :func:`~repro.telemetry.probes.swap_access_links` bend a walk
    back on itself. A flow's rate occupies such a link once, not per
    visit, so duplicates are collapsed (in first-traversal order).
    """
    loads: Dict[int, float] = defaultdict(float)
    for f in flows:
        weight = f.rate_gbps if use_rate else 1.0
        for dl in dict.fromkeys(f.path.dirlinks):
            loads[dl] += weight
    return dict(loads)


def port_egress_gbps(topo: Topology, flows: Iterable[Flow], node: str) -> Dict[int, float]:
    """Egress rate per port index of ``node``."""
    loads = dirlink_loads(flows)
    out: Dict[int, float] = {}
    for port in topo.ports[node]:
        if port.link_id is None:
            continue
        link = topo.links[port.link_id]
        direction = 0 if link.a.node == node else 1
        out[port.ref.index] = loads.get(link.link_id * 2 + direction, 0.0)
    return out


def tor_ports_towards_nic(
    topo: Topology, flows: Iterable[Flow], host: str, rail: int
) -> Dict[str, float]:
    """Figure 13's quantity: egress Gbps of each dual-ToR downlink
    serving one NIC, keyed by ToR name."""
    nic = topo.hosts[host].nic_for_rail(rail)
    loads = dirlink_loads(flows)
    out: Dict[str, float] = {}
    for pref in nic.ports:
        port = topo.port(pref)
        if port.link_id is None:
            continue
        link = topo.links[port.link_id]
        tor = link.other(host).node
        direction = 0 if link.a.node == tor else 1
        out[tor] = loads.get(link.link_id * 2 + direction, 0.0)
    return out


def agg_ingress_gbps(topo: Topology, flows: Iterable[Flow]) -> float:
    """Total traffic entering the aggregation layer (Figure 15b)."""
    total = 0.0
    agg_names = {s.name for s in topo.switches_by_role(SwitchRole.AGG)}
    loads = dirlink_loads(flows)
    for link in topo.links.values():
        for direction, into in ((0, link.b.node), (1, link.a.node)):
            if into in agg_names:
                total += loads.get(link.link_id * 2 + direction, 0.0)
    return total


def imbalance_ratio(values: Iterable[float]) -> float:
    """max/min over positive values; inf when some port starves."""
    vals = list(values)
    if not vals:
        return 1.0
    hi = max(vals)
    lo = min(vals)
    if lo <= 0:
        return float("inf") if hi > 0 else 1.0
    return hi / lo


def uplink_spread(topo: Topology, flows: Iterable[Flow], switch: str) -> List[float]:
    """Flow count per uplink of a switch -- the raw ECMP spread."""
    counts: Dict[int, float] = defaultdict(float)
    for f in flows:
        for dl in f.path.dirlinks:
            link = topo.links[dl // 2]
            src_node = link.a.node if dl % 2 == 0 else link.b.node
            if src_node == switch:
                port = topo.port(link.a if dl % 2 == 0 else link.b)
                if port.kind is PortKind.UP:
                    counts[port.ref.index] += 1
    ups = [p.ref.index for p in topo.up_ports(switch)]
    return [counts.get(i, 0.0) for i in ups]


def jain_fairness(values: Iterable[float]) -> float:
    """Jain's fairness index in [1/n, 1]; 1.0 is perfectly even."""
    vals = [v for v in values]
    if not vals:
        return 1.0
    num = sum(vals) ** 2
    den = len(vals) * sum(v * v for v in vals)
    if den == 0:
        return 1.0
    return num / den


# ----------------------------------------------------------------------
# derived metric views (repro.obs)
# ----------------------------------------------------------------------
def record_fabric_metrics(
    recorder,
    topo: Topology,
    flows: Iterable[Flow],
    ts_s: float = 0.0,
    switches: Optional[Sequence[str]] = None,
) -> None:
    """Fold this module's imbalance summaries into a recorder.

    The one-off helpers above stay usable standalone; this view renders
    them as labeled gauge series -- the paper's Figure 13/15b panels as
    metrics: total aggregation ingress, and per-switch uplink spread
    imbalance (max/min ratio) + Jain fairness for every switch named in
    ``switches`` (default: all aggregation switches).
    """
    from ..obs import resolve as _obs_resolve

    rec = _obs_resolve(recorder)
    if rec is None:
        return
    flows = list(flows)
    reg = rec.metrics
    reg.gauge("fabric.agg_ingress_gbps").set(
        agg_ingress_gbps(topo, flows), ts_s=ts_s
    )
    if switches is None:
        switches = sorted(
            s.name for s in topo.switches_by_role(SwitchRole.AGG)
        )
    for name in switches:
        spread = uplink_spread(topo, flows, name)
        reg.gauge("fabric.uplink_imbalance", switch=name).set(
            imbalance_ratio(spread), ts_s=ts_s
        )
        reg.gauge("fabric.jain_fairness", switch=name).set(
            jain_fairness(spread), ts_s=ts_s
        )
