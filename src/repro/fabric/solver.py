"""Incremental max-min solver: dirty-set re-solve over a persistent index.

The progressive-filling allocation decomposes over connected components
of the flow<->link incidence graph: two flows that share no link (even
transitively) cannot influence each other's fair share. The
:class:`IncrementalMaxMinSolver` exploits that -- events (flow arrival,
completion, link state change) mark flows/links *dirty*, and the next
solve re-runs progressive filling only on the connected component
reachable from the dirty set, splicing frozen rates for the untouched
remainder. When the dirty component covers most of the graph the solver
falls back to one array-backed full solve (no dict rebuild either way:
the :class:`~repro.fabric.incidence.IncidenceIndex` persists across
events).

The legacy :func:`repro.fabric.simulator.max_min_rates` stays intact as
the differential-testing oracle; :class:`SolverEquivalence` drives both
through randomized topologies, flow sets, and failure scripts and
asserts the rates agree to ``1e-9``.
"""

from __future__ import annotations

import random
from array import array
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from .flow import Flow
from .incidence import IncidenceIndex

#: numerical guard for "rate/capacity is zero"
_EPS = 1e-12


@dataclass
class SolverStats:
    """Counters the solver keeps; mirrored into obs by the simulator."""

    full_solves: int = 0
    incremental_solves: int = 0
    noop_solves: int = 0
    #: flows re-solved, summed over boundaries (vs. flows active)
    resolved_flows: int = 0
    active_flow_boundaries: int = 0
    #: progressive-filling iterations, summed over fills/shards
    kernel_iters: int = 0
    #: component shards dispatched (sharded engine; 0 otherwise)
    shard_solves: int = 0

    @property
    def solves(self) -> int:
        return self.full_solves + self.incremental_solves

    @property
    def mean_dirty_frac(self) -> float:
        """Average fraction of active flows re-solved per boundary."""
        if not self.active_flow_boundaries:
            return 0.0
        return self.resolved_flows / self.active_flow_boundaries


@dataclass
class SolveOutcome:
    """What one :meth:`IncrementalMaxMinSolver.solve` call did."""

    #: "noop" (nothing dirty), "incremental", or "full"
    mode: str
    #: flow ids whose rate may have changed this solve
    touched: FrozenSet[int]
    #: |touched| / |active| for this boundary (0.0 on noop)
    dirty_frac: float
    #: progressive-filling iterations this solve ran (all shards)
    kernel_iters: int = 0
    #: component shards this solve dispatched (sharded engine only)
    shards: int = 0


_NOOP = SolveOutcome("noop", frozenset(), 0.0)


class IncrementalMaxMinSolver:
    """Event-maintained max-min fairness over an incidence index.

    ``link_gbps(raw_dirlink)`` supplies capacities (0 marks a link
    down). ``full_threshold`` is the dirty-component size (as a
    fraction of active flows) beyond which a full solve is cheaper
    than BFS + component fill; 0 forces every solve full, 1 never
    falls back on size alone. ``on_bottleneck(raw_dirlink, share,
    flows_fixed)`` fires per progressive-filling iteration, exactly
    like the oracle's hook.
    """

    def __init__(
        self,
        link_gbps: Callable[[int], float],
        full_threshold: float = 0.5,
        on_bottleneck: Optional[Callable[[int, float, int], None]] = None,
    ):
        if not 0.0 <= full_threshold <= 1.0:
            raise ValueError("full_threshold must be within [0, 1]")
        self.index = IncidenceIndex()
        self.full_threshold = full_threshold
        self.on_bottleneck = on_bottleneck
        self.stats = SolverStats()
        #: committed rate (Gbps) per active flow id -- the splice target
        self.rates: Dict[int, float] = {}
        self._link_gbps = link_gbps
        self._dirty_flows: Set[int] = set()
        self._dirty_links: Set[int] = set()

    # -- event notifications -------------------------------------------
    def activate(self, flow: Flow) -> None:
        """A flow became active: index it and mark it dirty."""
        self.index.add(flow, self._link_gbps)
        self._dirty_flows.add(flow.flow_id)

    def finish(self, flow: Flow) -> None:
        """A flow completed: remove it and dirty the links it vacates."""
        dense_links = self.index.remove(flow)
        self._dirty_links.update(dense for dense, _m in dense_links)
        self.rates.pop(flow.flow_id, None)

    def mark_link_dirty(self, raw_dirlink: int) -> None:
        """Explicitly dirty a link (capacity sweeps catch this anyway)."""
        dense = self.index.dense_of.get(raw_dirlink)
        if dense is not None:
            self._dirty_links.add(dense)

    # ------------------------------------------------------------------
    def solve(self) -> SolveOutcome:
        """Bring :attr:`rates` up to date; returns what was re-solved."""
        self._dirty_links.update(
            self.index.refresh_capacities(self._link_gbps)
        )
        n_active = len(self.index.flows)
        if not self._dirty_flows and not self._dirty_links:
            self.stats.noop_solves += 1
            return _NOOP
        stats = self.stats
        stats.active_flow_boundaries += n_active
        limit = int(self.full_threshold * n_active)
        comp = self.index.component(
            self._dirty_flows, self._dirty_links, limit
        )
        self._dirty_flows.clear()
        self._dirty_links.clear()
        if comp is None:
            touched = frozenset(self.index.flows)
            iters = self._fill(touched)
            stats.full_solves += 1
            stats.resolved_flows += n_active
            stats.kernel_iters += iters
            return SolveOutcome("full", touched, 1.0, kernel_iters=iters)
        comp_flows, _comp_links = comp
        touched = frozenset(comp_flows)
        iters = self._fill(touched)
        stats.incremental_solves += 1
        stats.resolved_flows += len(touched)
        stats.kernel_iters += iters
        frac = len(touched) / n_active if n_active else 0.0
        return SolveOutcome("incremental", touched, frac,
                            kernel_iters=iters)

    # ------------------------------------------------------------------
    def _fill(self, flow_ids: FrozenSet[int]) -> int:
        """Progressive filling over ``flow_ids``, splicing into rates.

        Exact for any union of connected components: every flow on a
        participating link is in ``flow_ids`` (BFS closure), so link
        capacities need no adjustment for frozen outside flows.

        The fill follows the **canonical order** the vectorized and
        sharded engines reproduce bit-for-bit (see
        :mod:`repro.fabric.kernel`): flows enumerate ascending by flow
        id, bottleneck ties break to the smallest dense link id, newly
        fixed flows debit flow-major in ascending-id order with each
        flow's links in path order. Returns the iteration count.
        """
        idx = self.index
        flow_links = idx.flow_links
        link_flows = idx.link_flows
        rates = self.rates
        # scratch vectors: C-speed copies of the persistent arrays
        residual = array("d", idx.cap)
        unfixed = array("q", idx.weight)
        fixed: Set[int] = set()

        # dead-link pass, per-flow-first-fix: each flow crossing any
        # dead link is zeroed once and debited along its own links by
        # its own occurrence counts (never once per dead link crossed)
        participating: Set[int] = set()
        for fid in sorted(flow_ids):
            links = flow_links[fid]
            dead = False
            for dense, _mult in links:
                participating.add(dense)
                if residual[dense] <= _EPS:
                    dead = True
            if dead:
                rates[fid] = 0.0
                fixed.add(fid)
                for dense, mult in links:
                    unfixed[dense] -= mult

        active = {
            dense for dense in participating
            if unfixed[dense] > 0 and residual[dense] > _EPS
        }
        on_bottleneck = self.on_bottleneck
        dirlinks = idx.dirlinks
        iterations = 0
        while active:
            # bottleneck: the link offering the smallest fair share
            # (ties -> smallest dense id, matching the kernels)
            share = float("inf")
            bottleneck = -1
            for dense in active:
                s = residual[dense] / unfixed[dense]
                if s < share or (s == share and dense < bottleneck):
                    share = s
                    bottleneck = dense
            newly = sorted(
                fid for fid in link_flows[bottleneck] if fid not in fixed
            )
            iterations += 1
            if on_bottleneck is not None:
                on_bottleneck(dirlinks[bottleneck], share, len(newly))
            if not newly:
                # only drained-to-zero flows remain on this link: it
                # can make no further progress -- retire it (liveness
                # guard, mirrored exactly in the kernels)
                active.discard(bottleneck)
                continue
            for fid in newly:
                rates[fid] = share
                fixed.add(fid)
                for dense, mult in flow_links[fid]:
                    residual[dense] -= share * mult
                    unfixed[dense] -= mult
            drained = [
                dense for dense in active
                if unfixed[dense] <= 0 or residual[dense] <= _EPS
            ]
            for dense in drained:
                if unfixed[dense] > 0:
                    # capacity exhausted with flows still unfixed: they
                    # get ~0 (mirrors the oracle: no further debits)
                    for fid in link_flows[dense]:
                        if fid not in fixed:
                            rates[fid] = 0.0
                            fixed.add(fid)
                active.discard(dense)
            active = {
                dense for dense in active
                if unfixed[dense] > 0 and residual[dense] > _EPS
            }
        # flows never constrained by any link (e.g. empty paths) match
        # the oracle's terminal setdefault: rate 0
        for fid in flow_ids:
            if fid not in fixed:
                rates[fid] = 0.0
        return iterations


class VectorizedMaxMinSolver(IncrementalMaxMinSolver):
    """The incremental solver with the flat-array waterfill kernel.

    Same event machinery, dirty-set tracking, and full-solve fallback
    as the base class; only :meth:`_fill` is replaced -- it snapshots
    the touched component into CSR arrays
    (:func:`repro.fabric.kernel.build_snapshot`) and runs the
    numpy-vectorized kernel (pure-Python twin when numpy is absent).
    Both kernels implement the base class's canonical fill order, so
    spliced rates are byte-identical to the interpreted engine --
    asserted by :class:`SolverEquivalence`.
    """

    def _fill(self, flow_ids: FrozenSet[int]) -> int:
        from .kernel import build_snapshot, waterfill

        snap = build_snapshot(self.index, flow_ids)
        kernel_rates, iterations = waterfill(snap, self.on_bottleneck)
        rates = self.rates
        for fid, rate in zip(snap.flow_ids, kernel_rates):
            rates[fid] = rate
        return iterations


# ======================================================================
# differential-testing harness: incremental engine vs the full oracle
# ======================================================================
@dataclass
class EquivalenceReport:
    """Outcome of one randomized equivalence campaign."""

    cases: int = 0
    solves_checked: int = 0
    flows_checked: int = 0
    max_rate_err: float = 0.0
    max_finish_err: float = 0.0
    failures: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def to_jsonable(self) -> Dict[str, object]:
        return {
            "cases": self.cases,
            "solves_checked": self.solves_checked,
            "flows_checked": self.flows_checked,
            "max_rate_err": self.max_rate_err,
            "max_finish_err": self.max_finish_err,
            "failures": list(self.failures),
            "ok": self.ok,
        }


class SolverEquivalence:
    """Asserts incremental == full (oracle) to ``tol`` everywhere.

    Two layers of checking:

    * :meth:`check_rates` -- drive one solver through a scripted event
      sequence, comparing its spliced rates against a from-scratch
      oracle solve after every step;
    * :meth:`check_run` -- run a full :class:`FluidSimulator` twice
      over the same flow objects (reset in between), once per engine,
      and compare ``SimResult.flow_finish``;
    * :meth:`run_random` -- a seeded campaign of randomized topologies,
      flow sets, and failure scripts through both layers.
    """

    def __init__(self, tol: float = 1e-9):
        self.tol = tol

    # ------------------------------------------------------------------
    def check_rates(
        self,
        flows: Sequence[Flow],
        link_gbps: Callable[[int], float],
        script: Sequence[Tuple[str, object]] = (),
        report: Optional[EquivalenceReport] = None,
        label: str = "case",
    ) -> EquivalenceReport:
        """Differential-test the solver state machine.

        ``script`` is a sequence of ``("activate", flow)``,
        ``("finish", flow)``, and ``("cap", (dirlink, gbps))`` steps
        applied on top of activating ``flows``; after every solve the
        spliced rates are compared to the oracle on the live set.
        """
        from .simulator import max_min_rates

        report = report if report is not None else EquivalenceReport()
        caps: Dict[int, float] = {}

        def capacity(dl: int) -> float:
            return caps.get(dl, link_gbps(dl))

        solver = IncrementalMaxMinSolver(capacity)
        for f in flows:
            solver.activate(f)

        def compare(step: str) -> None:
            solver.solve()
            live = list(solver.index.flows.values())
            oracle = max_min_rates(live, capacity)
            report.solves_checked += 1
            for f in live:
                err = abs(solver.rates[f.flow_id] - oracle[f.flow_id])
                report.flows_checked += 1
                if err > report.max_rate_err:
                    report.max_rate_err = err
                if err > self.tol:
                    report.failures.append(
                        f"{label}/{step}: flow {f.flow_id} incremental="
                        f"{solver.rates[f.flow_id]!r} oracle="
                        f"{oracle[f.flow_id]!r} (err {err:.3e})"
                    )

        compare("initial")
        for i, (op, arg) in enumerate(script):
            if op == "activate":
                solver.activate(arg)  # type: ignore[arg-type]
            elif op == "finish":
                solver.finish(arg)  # type: ignore[arg-type]
            elif op == "cap":
                dl, gbps = arg  # type: ignore[misc]
                caps[dl] = gbps
            else:
                raise ValueError(f"unknown script op {op!r}")
            compare(f"step{i}:{op}")
        return report

    # ------------------------------------------------------------------
    def check_run(
        self,
        topo,
        flows: Sequence[Flow],
        events: Sequence[Tuple[float, int, bool]] = (),
        report: Optional[EquivalenceReport] = None,
        label: str = "case",
        full_threshold: float = 0.5,
        modes: Sequence[str] = ("full", "incremental"),
    ) -> EquivalenceReport:
        """End-to-end: every engine over identical flows and failures.

        ``events`` are ``(time, link_id, up)`` link-state transitions.
        ``modes`` names the engines to compare -- the first is the
        baseline; ``"sharded:process"`` selects the sharded engine over
        the process-pool backend. Link states are restored and flows
        reset between (and after) the runs, so callers keep reusable
        inputs.
        """
        from .simulator import FluidSimulator

        report = report if report is not None else EquivalenceReport()
        initial_up = {lid: link.up for lid, link in topo.links.items()}

        def one_run(mode: str) -> Dict[int, float]:
            engine, _, backend = mode.partition(":")
            kwargs: Dict[str, object] = {}
            if engine == "sharded" and backend:
                kwargs["shard_backend"] = backend
                kwargs["shard_workers"] = 2
            sim = FluidSimulator(topo, solver=engine,
                                 full_solve_threshold=full_threshold,
                                 **kwargs)  # type: ignore[arg-type]
            sim.add_flows(flows)
            for t, lid, up in events:
                sim.schedule(
                    t, lambda s, l=lid, u=up: s.topo.set_link_state(l, u)
                )
            try:
                return sim.run().flow_finish
            finally:
                for lid, up in initial_up.items():
                    topo.set_link_state(lid, up)
                for f in flows:
                    f.reset()

        base_mode = modes[0]
        finish_base = one_run(base_mode)
        report.cases += 1
        for mode in modes[1:]:
            finish_other = one_run(mode)
            for f in flows:
                a = finish_base.get(f.flow_id)
                b = finish_other.get(f.flow_id)
                report.flows_checked += 1
                if (a is None) != (b is None):
                    report.failures.append(
                        f"{label}: flow {f.flow_id} finished in one "
                        f"engine only ({base_mode}={a!r} {mode}={b!r})"
                    )
                    continue
                if a is None or b is None:
                    continue
                err = abs(a - b)
                if err > report.max_finish_err:
                    report.max_finish_err = err
                if err > self.tol * max(1.0, abs(a)):
                    report.failures.append(
                        f"{label}: flow {f.flow_id} finish "
                        f"{base_mode}={a!r} {mode}={b!r} (err {err:.3e})"
                    )
        return report

    # ------------------------------------------------------------------
    def run_random(self, cases: int = 50, seed: int = 0,
                   max_flows: int = 60,
                   modes: Optional[Sequence[str]] = None,
                   ) -> EquivalenceReport:
        """A seeded campaign of randomized topology/flow/failure cases.

        ``modes`` defaults to every engine -- full (the oracle),
        incremental, vectorized, and sharded -- and every fifth case
        additionally runs the sharded engine over the process-pool
        backend, so cross-process pickling of shard payloads is
        exercised without paying pool startup on all 50 cases.
        """
        from ..routing import FiveTuple, shared_router
        from ..topos import (
            HpnSpec,
            RailOnlySpec,
            SingleTorSpec,
            build_hpn,
            build_railonly,
            build_singletor,
        )

        rng = random.Random(seed)
        report = EquivalenceReport()
        for case in range(cases):
            shape = rng.random()
            if shape < 0.55:
                topo = build_hpn(HpnSpec(
                    segments_per_pod=rng.choice([1, 2]),
                    hosts_per_segment=rng.choice([4, 6, 8]),
                    backup_hosts_per_segment=0,
                    aggs_per_plane=rng.choice([2, 4]),
                    agg_core_uplinks=0,
                ))
            elif shape < 0.75:
                topo = build_railonly(RailOnlySpec(
                    segments_per_pod=rng.choice([1, 2]),
                    hosts_per_segment=rng.choice([4, 8]),
                    aggs_per_plane=rng.choice([2, 4]),
                ))
            else:
                topo = build_singletor(SingleTorSpec(
                    segments=rng.choice([1, 2]),
                    hosts_per_segment=rng.choice([4, 8]),
                ))
            router = shared_router(topo)
            hosts = sorted(topo.hosts)
            rails = [n.rail for n in topo.hosts[hosts[0]].backend_nics()]
            flows: List[Flow] = []
            n_flows = rng.randrange(8, max_flows)
            requests = []
            for i in range(n_flows):
                src, dst = rng.sample(hosts, 2)
                rail = rng.choice(rails) if rails else 0
                a = topo.hosts[src].nic_for_rail(rail)
                b = topo.hosts[dst].nic_for_rail(rail)
                requests.append((a, b, FiveTuple(a.ip, b.ip, 49152 + i, 4791), None))
            paths = router.route_many(requests, strict=False)
            for (a, b, ft, _plane), path in zip(requests, paths):
                if path is None:
                    continue
                f = Flow(ft, rng.uniform(1e6, 5e8), path,
                         start_time=rng.choice([0.0, 0.0, rng.uniform(0, 0.01)]),
                         tag=f"eqv{case}")
                flows.append(f)
            if len(flows) < 2:
                continue
            events: List[Tuple[float, int, bool]] = []
            if rng.random() < 0.6:
                victim = rng.choice(flows)
                lid = rng.choice(victim.path.dirlinks) // 2
                t_down = rng.uniform(0.0001, 0.005)
                events.append((t_down, lid, False))
                events.append((t_down + rng.uniform(0.001, 0.01), lid, True))
            case_modes = list(
                modes if modes is not None
                else ("full", "incremental", "vectorized", "sharded")
            )
            if modes is None and case % 5 == 0:
                case_modes.append("sharded:process")
            self.check_run(topo, flows, events, report=report,
                           label=f"case{case}", modes=case_modes)
            # scripted solver-state check on a subset of the same flows
            sample = rng.sample(flows, min(len(flows), 12))
            script: List[Tuple[str, object]] = []
            for f in sample[: len(sample) // 2]:
                script.append(("finish", f))
            if events:
                script.insert(
                    rng.randrange(len(script) + 1),
                    ("cap", (events[0][1] * 2, 0.0)),
                )
            self.check_rates(
                flows,
                lambda dl: topo.links[dl // 2].gbps
                if topo.links[dl // 2].up else 0.0,
                script,
                report=report,
                label=f"case{case}/rates",
            )
            report.cases += 0  # check_run counted the case already
        return report
