"""Plane-sharded max-min solves through the engine process pool.

Progressive filling decomposes exactly over connected components of
the flow<->link incidence graph (the invariant the incremental solver
already exploits): flows in disjoint components cannot influence each
other, and the canonical fill order (:mod:`repro.fabric.kernel`) makes
per-component solves *byte-identical* to a merged solve -- within a
component the same IEEE-double operations run in the same sequence
regardless of interleaving.

The paper's fabric hands us the components: the two tier-2 planes are
physically disjoint (§6), and a rail-optimized collective keeps every
rail's traffic on its own plane -- so a full-Pod workload naturally
splits into per-plane / per-segment shards. :class:`ShardedSolver`
partitions the dirty set into its disjoint components
(:meth:`IncidenceIndex.components`), snapshots each into flat CSR
arrays, and solves them either in-process (``backend="serial"``) or by
dispatching ``solver.shard`` experiments through the engine
:class:`~repro.engine.runner.Runner` process pool
(``backend="process"``). Shard payloads are pure values and the kernel
is deterministic, so both backends splice byte-identical rates --
asserted by the three-engine equivalence campaign.

Stats keep the *serial solver's* accounting: one
``active_flow_boundaries`` bump per solve boundary (never per shard),
with ``resolved_flows`` summed across shards, so
:attr:`SolverStats.mean_dirty_frac` aggregates to the same global
fraction the unsharded engines report.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from .kernel import ComponentSnapshot, build_snapshot, waterfill
from .solver import _NOOP, IncrementalMaxMinSolver, SolveOutcome

BACKENDS = ("serial", "process")


class ShardedSolver(IncrementalMaxMinSolver):
    """Component-sharded solver over the vectorized kernel.

    Same event machinery and full-solve threshold semantics as the
    base class, but :meth:`solve` keeps the dirty set's disjoint
    components separate and solves each as its own shard. On full
    fallback the *entire* active set is partitioned into its natural
    components -- at Pod scale that is where sharding wins, since a
    15-segment allreduce is hundreds of independent rings.

    ``backend="process"`` routes shards through the engine Runner's
    process pool (``max_workers``); per-iteration ``on_bottleneck``
    hooks cannot cross process boundaries and are skipped there
    (iteration *counts* still aggregate exactly).
    """

    def __init__(
        self,
        link_gbps: Callable[[int], float],
        full_threshold: float = 0.5,
        on_bottleneck: Optional[Callable[[int, float, int], None]] = None,
        backend: str = "serial",
        max_workers: Optional[int] = None,
    ):
        if backend not in BACKENDS:
            raise ValueError(
                f"unknown shard backend {backend!r} "
                f"(expected one of {', '.join(BACKENDS)})"
            )
        super().__init__(link_gbps, full_threshold, on_bottleneck)
        self.backend = backend
        self.max_workers = max_workers

    # ------------------------------------------------------------------
    def solve(self) -> SolveOutcome:
        self._dirty_links.update(
            self.index.refresh_capacities(self._link_gbps)
        )
        n_active = len(self.index.flows)
        if not self._dirty_flows and not self._dirty_links:
            self.stats.noop_solves += 1
            return _NOOP
        stats = self.stats
        stats.active_flow_boundaries += n_active
        comps = self.index.components(
            self._dirty_flows, self._dirty_links
        )
        self._dirty_flows.clear()
        self._dirty_links.clear()
        limit = int(self.full_threshold * n_active)
        total = sum(len(flows) for flows, _links in comps)
        mode = "incremental"
        if total > limit:
            # full fallback, still sharded: the whole active set
            # partitioned into its natural components (same decision
            # boundary as the serial solver's BFS abort)
            comps = self.index.components(self.index.flows, ())
            mode = "full"
        snaps = [
            build_snapshot(self.index, flows) for flows, _links in comps
        ]
        touched = frozenset(
            fid for snap in snaps for fid in snap.flow_ids
        )
        iters = self._solve_shards(snaps)
        if mode == "full":
            stats.full_solves += 1
        else:
            stats.incremental_solves += 1
        stats.resolved_flows += len(touched)
        stats.kernel_iters += iters
        stats.shard_solves += len(snaps)
        frac = 1.0 if mode == "full" else (
            len(touched) / n_active if n_active else 0.0
        )
        return SolveOutcome(mode, touched, frac, kernel_iters=iters,
                            shards=len(snaps))

    # ------------------------------------------------------------------
    def _solve_shards(self, snaps: List[ComponentSnapshot]) -> int:
        """Solve every shard, splice rates; returns total iterations."""
        rates = self.rates
        if self.backend == "serial" or len(snaps) <= 1:
            iters = 0
            for snap in snaps:
                shard_rates, shard_iters = waterfill(
                    snap, self.on_bottleneck
                )
                for fid, rate in zip(snap.flow_ids, shard_rates):
                    rates[fid] = rate
                iters += shard_iters
            return iters
        return self._solve_shards_process(snaps)

    def _solve_shards_process(
        self, snaps: List[ComponentSnapshot]
    ) -> int:
        """Dispatch shards as ``solver.shard`` experiments.

        Payloads are pure values (the kernel sees exactly the floats
        the snapshot holds -- pickle round-trips doubles exactly), and
        the Runner returns payloads in spec order, so the splice below
        is deterministic and byte-identical to the serial path.
        """
        from ..engine.runner import Runner
        from ..engine.spec import ExperimentSpec

        specs = [
            ExperimentSpec("solver.shard", {"shard": snap.payload()})
            for snap in snaps
        ]
        runner = Runner(cache=None, backend="process",
                        max_workers=self.max_workers)
        result = runner.run(specs)
        rates = self.rates
        iters = 0
        for payload in result.payloads:
            for fid, rate in zip(payload["flow_ids"], payload["rates"]):
                rates[fid] = rate
            iters += int(payload["iterations"])
        return iters
