"""Per-port queue-length estimation (paper Figures 13-14).

The fluid simulator allocates *equilibrium* rates; standing queues form
where the demand arriving at a port persistently exceeds its drain
rate. We estimate them with a two-pass fluid model stepped over time:

1. every flow demands its access-limited rate (the NIC port speed);
2. each directed link computes a scale factor ``min(1, cap/arrival)``;
3. a flow's arrival rate at link *i* is its demand throttled by the
   scale factors of all *upstream* links (congestion back-pressure);
4. queue growth at a link is ``max(0, arrival - capacity) * dt``, and
   queues drain at ``capacity - arrival`` when underloaded.

Pass 3 uses pass-2 factors, which is the first Jacobi iteration of the
fixed point; ``refine`` extra iterations tighten it. The paper's
comparison (267 KB standing queue on the hot ToR port under polarized
Clos vs ~20 KB under dual-plane) depends only on *which ports are
persistently overloaded*, which this model captures.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from ..core.topology import Topology
from ..core.units import gbps_to_bytes_per_sec
from ..obs import RingBuffer
from ..obs import resolve as _obs_resolve
from .flow import Flow


@dataclass
class QueueTracker:
    """Integrates queue lengths (bytes) per directed link over time."""

    topo: Topology
    refine: int = 2
    queues: Dict[int, float] = field(default_factory=lambda: defaultdict(float))
    #: ``(time, {dirlink: bytes})`` snapshots, newest-N retained
    history: RingBuffer = field(default_factory=RingBuffer)
    #: bound on retained history snapshots (None = unbounded); long
    #: engine-driven runs set this so memory stays flat -- oldest
    #: snapshots roll off and are counted in ``rolled_up_entries``
    max_entries: Optional[int] = None
    #: injectable recorder; None defers to the process-wide one
    recorder: Optional[object] = None
    _now: float = 0.0

    @property
    def rolled_up_entries(self) -> int:
        """Snapshots that aged past ``max_entries`` and were dropped."""
        return self.history.rolled_off

    def link_capacity(self, dirlink: int) -> float:
        link = self.topo.links[dirlink // 2]
        return link.gbps if link.up else 0.0

    # ------------------------------------------------------------------
    def arrivals(self, flows: Iterable[Flow]) -> Dict[int, float]:
        """Per-dirlink arrival rate (Gbps) under upstream throttling."""
        flows = list(flows)
        # capacities are fetched once per distinct dirlink per call --
        # the refine loop below touches every path hop per iteration,
        # and the topology attribute walk dominated its profile
        cap_of: Dict[int, float] = {}
        link_capacity = self.link_capacity
        demand: Dict[int, float] = {}
        for f in flows:
            # a flow can never demand more than its first (access) link
            first = f.path.dirlinks[0]
            cap = cap_of.get(first)
            if cap is None:
                cap = cap_of[first] = link_capacity(first)
            demand[f.flow_id] = cap

        # compound per-link throttle factors until the shaped arrivals
        # fit everywhere they are applied (fixed point of the fluid
        # back-pressure system)
        scale: Dict[int, float] = defaultdict(lambda: 1.0)
        for _ in range(max(1, self.refine)):
            arrival: Dict[int, float] = defaultdict(float)
            for f in flows:
                rate = demand[f.flow_id]
                for dl in f.path.dirlinks:
                    rate *= scale[dl]
                    arrival[dl] += rate
            for dl, arr in arrival.items():
                cap = cap_of.get(dl)
                if cap is None:
                    cap = cap_of[dl] = link_capacity(dl)
                if arr > cap > 0:
                    scale[dl] *= cap / arr
        # final arrivals with *upstream-only* throttling; the first
        # (source access) link is shaped by the host itself, so it
        # applies its own scale -- NIC backlog lives in host memory,
        # not in a switch queue
        out: Dict[int, float] = defaultdict(float)
        for f in flows:
            first = f.path.dirlinks[0]
            rate = demand[f.flow_id] * scale[first]
            out[first] += rate
            for dl in f.path.dirlinks[1:]:
                out[dl] += rate
                rate *= scale[dl]
        return dict(out)

    def step(self, flows: Iterable[Flow], dt: float) -> None:
        """Advance ``dt`` seconds with the given active flow set."""
        arrival = self.arrivals(flows)
        touched = set(arrival) | set(self.queues)
        for dl in touched:
            cap = self.link_capacity(dl)
            arr = arrival.get(dl, 0.0)
            delta = gbps_to_bytes_per_sec(arr - cap) * dt
            q = self.queues[dl] + delta
            self.queues[dl] = max(0.0, q)
        self._now += dt
        # the shared ring buffer owns the bounding logic; sync the bound
        # each step so callers may tighten max_entries mid-run
        self.history.max_entries = self.max_entries
        self.history.append((self._now, dict(self.queues)))
        rec = _obs_resolve(self.recorder)
        if rec is not None:
            rec.metrics.counter("queue.steps").inc()
            rec.metrics.gauge("queue.total_bytes").set(
                sum(self.queues.values()), ts_s=self._now
            )
            rec.metrics.gauge("queue.max_bytes").set(
                self.max_queue(), ts_s=self._now
            )

    # ------------------------------------------------------------------
    def queue_of_port(self, node: str, port_index: int) -> float:
        """Current egress-queue bytes at a node's port."""
        port = self.topo.ports[node][port_index]
        if port.link_id is None:
            return 0.0
        link = self.topo.links[port.link_id]
        direction = 0 if link.a.node == node else 1
        return self.queues.get(link.link_id * 2 + direction, 0.0)

    def series_of_port(self, node: str, port_index: int) -> List[Tuple[float, float]]:
        """Time series of one port's egress queue."""
        port = self.topo.ports[node][port_index]
        if port.link_id is None:
            return []
        link = self.topo.links[port.link_id]
        direction = 0 if link.a.node == node else 1
        dl = link.link_id * 2 + direction
        return [(t, snap.get(dl, 0.0)) for t, snap in self.history]

    def max_queue(self) -> float:
        return max(self.queues.values(), default=0.0)
