"""Flows: the unit of traffic in the fluid simulator.

A flow is one RDMA connection's worth of data moving along a fixed
:class:`~repro.routing.path.FlowPath`. The simulator assigns it a rate
(max-min fair share) that changes whenever the set of active flows or
the link state changes.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

from ..routing.hashing import FiveTuple
from ..routing.path import FlowPath

_flow_ids = itertools.count()


@dataclass
class Flow:
    """One unidirectional transfer."""

    five_tuple: FiveTuple
    size_bytes: float
    path: FlowPath
    #: simulation time the flow becomes active
    start_time: float = 0.0
    #: free-form label ("dp-allreduce/ring3/…") for telemetry grouping
    tag: str = ""
    flow_id: int = field(default_factory=lambda: next(_flow_ids))

    # -- simulator state -------------------------------------------------
    remaining_bytes: float = field(init=False)
    rate_gbps: float = field(init=False, default=0.0)
    finish_time: Optional[float] = field(init=False, default=None)
    #: obs emit-once guard: the ``flow.start`` instant fires at most
    #: once per (reset-delimited) lifetime, even if the same object is
    #: re-activated across runs (replay reuses flow objects)
    _start_emitted: bool = field(init=False, default=False, repr=False,
                                 compare=False)
    #: sim time ``remaining_bytes`` was last materialized at -- the
    #: incremental engine accounts progress lazily between rate changes
    _progress_t: float = field(init=False, default=0.0, repr=False,
                               compare=False)
    #: completion-heap epoch: bumped on every rate change so stale heap
    #: entries are recognized and discarded (lazy invalidation)
    _heap_epoch: int = field(init=False, default=0, repr=False,
                             compare=False)

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError("flow size must be positive")
        self.remaining_bytes = float(self.size_bytes)

    @property
    def done(self) -> bool:
        return self.remaining_bytes <= 1e-9

    def reset(self) -> None:
        """Rewind the flow for reuse across simulation runs."""
        self.remaining_bytes = float(self.size_bytes)
        self.rate_gbps = 0.0
        self.finish_time = None
        self._start_emitted = False
        self._progress_t = 0.0
        self._heap_epoch += 1
