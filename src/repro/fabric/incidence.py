"""Persistent flow<->dirlink incidence for the incremental solver.

The legacy solver (:func:`repro.fabric.simulator.max_min_rates`)
rebuilds a ``dirlink -> [flows]`` dict from scratch at every solve
boundary -- O(flows x path length) of allocation and hashing even when
a single flow finished. The :class:`IncidenceIndex` keeps that mapping
*alive across events*: flows are spliced in on activation and out on
completion, directed links get contiguous dense integer ids, and the
per-link state the solver consumes (capacity, total incident flow
weight) lives in flat ``array`` vectors keyed by dense id instead of
per-solve dicts.

Dense ids also make the dirty-set machinery cheap: connected-component
walks and capacity-refresh sweeps touch plain list/array slots, not
hash tables keyed by sparse dirlink ids.
"""

from __future__ import annotations

from array import array
from typing import Callable, Dict, Iterable, List, Optional, Set, Tuple

from .flow import Flow

#: numerical guard shared with the solver ("capacity is zero")
_EPS = 1e-12


class IncidenceIndex:
    """Mutable flow<->dirlink incidence with dense link ids.

    * ``dense_of[raw_dirlink] -> dense id`` (grow-only);
    * ``dirlinks[dense] -> raw dirlink`` (the inverse);
    * ``cap[dense]`` -- last-seen capacity in Gbps (``array('d')``);
    * ``weight[dense]`` -- total occurrence count of incident active
      flows (``array('q')``; a flow crossing a link twice counts 2);
    * ``link_flows[dense] -> {flow_id: occurrences}``;
    * ``flow_links[flow_id] -> ((dense, occurrences), ...)``.

    The index never forgets a link (dense ids stay valid for the life
    of the simulator); links whose flows all finished simply carry
    weight 0.

    Two monotonic epochs stamp every observable mutation so flat-array
    snapshots (:class:`repro.fabric.kernel.ComponentSnapshot`) held by
    solver shards can detect staleness without diffing arrays:

    * ``capacity_epoch`` -- bumped when :meth:`refresh_capacities`
      observes any change (out-of-band ``transient_state()`` capacity
      edits land here at the next sweep) and when a new link registers;
    * ``membership_epoch`` -- bumped on every flow :meth:`add` /
      :meth:`remove`.
    """

    __slots__ = ("dense_of", "dirlinks", "cap", "weight", "link_flows",
                 "flow_links", "flows", "capacity_epoch",
                 "membership_epoch")

    def __init__(self) -> None:
        self.dense_of: Dict[int, int] = {}
        self.dirlinks: List[int] = []
        self.cap = array("d")
        self.weight = array("q")
        self.link_flows: List[Dict[int, int]] = []
        self.flow_links: Dict[int, Tuple[Tuple[int, int], ...]] = {}
        self.flows: Dict[int, Flow] = {}
        self.capacity_epoch = 0
        self.membership_epoch = 0

    def __len__(self) -> int:
        return len(self.flows)

    @property
    def num_links(self) -> int:
        return len(self.dirlinks)

    # ------------------------------------------------------------------
    def dense(self, dirlink: int, link_gbps: Callable[[int], float]) -> int:
        """Dense id of a raw dirlink, registering it on first sight."""
        dense = self.dense_of.get(dirlink)
        if dense is None:
            dense = len(self.dirlinks)
            self.dense_of[dirlink] = dense
            self.dirlinks.append(dirlink)
            self.cap.append(link_gbps(dirlink))
            self.weight.append(0)
            self.link_flows.append({})
            self.capacity_epoch += 1
        return dense

    def add(self, flow: Flow, link_gbps: Callable[[int], float]) -> None:
        """Splice an activated flow into the index."""
        fid = flow.flow_id
        if fid in self.flows:
            raise ValueError(f"flow {fid} already indexed")
        dense_links = tuple(
            (self.dense(dl, link_gbps), mult)
            for dl, mult in flow.path.dirlink_multiplicity()
        )
        self.flows[fid] = flow
        self.flow_links[fid] = dense_links
        self.membership_epoch += 1
        weight = self.weight
        link_flows = self.link_flows
        for dense, mult in dense_links:
            weight[dense] += mult
            link_flows[dense][fid] = mult

    def remove(self, flow: Flow) -> Tuple[Tuple[int, int], ...]:
        """Splice a finished flow out; returns its dense links."""
        fid = flow.flow_id
        dense_links = self.flow_links.pop(fid)
        del self.flows[fid]
        self.membership_epoch += 1
        weight = self.weight
        link_flows = self.link_flows
        for dense, mult in dense_links:
            weight[dense] -= mult
            del link_flows[dense][fid]
        return dense_links

    # ------------------------------------------------------------------
    def refresh_capacities(
        self, link_gbps: Callable[[int], float]
    ) -> List[int]:
        """Re-read every indexed link's capacity; return changed ids.

        This is the sweep that picks up out-of-band topology mutation
        (failure injection toggling ``link.up``, capacity edits) --
        O(distinct links), which is far below O(flows) on every
        workload the benchmarks run.
        """
        changed: List[int] = []
        cap = self.cap
        for dense, raw in enumerate(self.dirlinks):
            now_gbps = link_gbps(raw)
            # exact compare on purpose: any observable change (incl.
            # down -> 0.0) must dirty the link; tolerance would let
            # sub-eps capacity edits leak stale rates
            if now_gbps != cap[dense]:  # repro: noqa[LINT001]
                cap[dense] = now_gbps
                changed.append(dense)
        if changed:
            self.capacity_epoch += 1
        return changed

    # ------------------------------------------------------------------
    def component(
        self,
        seed_flows: Iterable[int],
        seed_links: Iterable[int],
        flow_limit: int,
    ) -> Optional[Tuple[Set[int], Set[int]]]:
        """Connected component of the incidence graph from the seeds.

        Walks flow->links->flows alternately until closed. Returns
        ``(flow_ids, dense_links)``, or ``None`` as soon as more than
        ``flow_limit`` flows are reached -- the caller's cue to fall
        back to a full solve instead of paying BFS for most of the
        graph and a component solve on top.
        """
        flows = self.flows
        flow_links = self.flow_links
        link_flows = self.link_flows
        comp_flows: Set[int] = set()
        comp_links: Set[int] = set()
        todo_flows: List[int] = []
        todo_links: List[int] = []
        for fid in seed_flows:
            if fid in flows and fid not in comp_flows:
                comp_flows.add(fid)
                todo_flows.append(fid)
        for dense in seed_links:
            if dense not in comp_links:
                comp_links.add(dense)
                todo_links.append(dense)
        if len(comp_flows) > flow_limit:
            return None
        while todo_flows or todo_links:
            while todo_flows:
                fid = todo_flows.pop()
                for dense, _mult in flow_links[fid]:
                    if dense not in comp_links:
                        comp_links.add(dense)
                        todo_links.append(dense)
            while todo_links:
                dense = todo_links.pop()
                for fid in link_flows[dense]:
                    if fid not in comp_flows:
                        comp_flows.add(fid)
                        todo_flows.append(fid)
                        if len(comp_flows) > flow_limit:
                            return None
        return comp_flows, comp_links

    # ------------------------------------------------------------------
    def components(
        self,
        seed_flows: Iterable[int],
        seed_links: Iterable[int],
    ) -> List[Tuple[Set[int], Set[int]]]:
        """Partition the seeds into *disjoint* connected components.

        Unlike :meth:`component` (one merged walk from all seeds), the
        result keeps independent components separate -- the shard unit
        of the sharded solver. Components are ordered by their smallest
        flow id, deterministically; seed links whose flows all finished
        (weight 0) yield no component.
        """
        flows = self.flows
        flow_links = self.flow_links
        link_flows = self.link_flows
        visited_flows: Set[int] = set()
        visited_links: Set[int] = set()
        out: List[Tuple[Set[int], Set[int]]] = []

        def walk(fid0: int) -> Tuple[Set[int], Set[int]]:
            comp_flows: Set[int] = {fid0}
            comp_links: Set[int] = set()
            todo = [fid0]
            while todo:
                fid = todo.pop()
                for dense, _mult in flow_links[fid]:
                    if dense in comp_links:
                        continue
                    comp_links.add(dense)
                    for nfid in link_flows[dense]:
                        if nfid not in comp_flows:
                            comp_flows.add(nfid)
                            todo.append(nfid)
            return comp_flows, comp_links

        seeds: List[int] = sorted(
            fid for fid in seed_flows if fid in flows
        )
        for dense in sorted(set(seed_links)):
            for fid in sorted(link_flows[dense]):
                seeds.append(fid)
        for fid in seeds:
            if fid in visited_flows:
                continue
            comp_flows, comp_links = walk(fid)
            visited_flows.update(comp_flows)
            visited_links.update(comp_links)
            out.append((comp_flows, comp_links))
        out.sort(key=lambda c: min(c[0]))
        return out
