"""Fluid flow-level network simulator.

Rates are allocated by **progressive filling** (max-min fairness): all
flows grow together until some link saturates; flows through that link
are frozen at the fair share, the link's capacity is removed, and the
process repeats. This is the standard fluid abstraction for congestion-
controlled traffic and reproduces precisely the effect the paper
measures: when ECMP lands k elephant flows on one 400G link, each gets
400/k Gbps while other links idle.

The event loop advances simulation time between *flow completions* and
externally scheduled events (failure injection, new flow batches),
re-solving rates at each boundary. Two solver engines are available:

* ``solver="incremental"`` (default) -- the
  :class:`~repro.fabric.solver.IncrementalMaxMinSolver`: a persistent
  flow<->link incidence index, dirty-set re-solve of only the
  connected component an event touched, a completion-time heap with
  lazy invalidation, and lazy per-flow progress accounting. Per
  boundary this costs O(dirty component), not O(active flows).
* ``solver="full"`` -- the original from-scratch
  :func:`max_min_rates` at every boundary. Kept as the
  differential-testing oracle (see
  :class:`~repro.fabric.solver.SolverEquivalence`) and as the perf
  baseline the ``bench.simcore`` suite gates against.

See ``docs/simulator.md`` for the architecture and complexity table.
"""

from __future__ import annotations

import heapq
import itertools
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from ..core.errors import SimulationError
from ..core.topology import Topology
from ..core.units import gbps_to_bytes_per_sec
from ..obs import FRACTION_BUCKETS as _FRACTION_BUCKETS
from ..obs import resolve as _obs_resolve
from .flow import Flow
from .solver import IncrementalMaxMinSolver, SolveOutcome

#: numerical guard for "rate is zero"
_EPS = 1e-12


def max_min_rates(
    flows: Iterable[Flow],
    link_gbps: Callable[[int], float],
    on_bottleneck: Optional[Callable[[int, float, int], None]] = None,
) -> Dict[int, float]:
    """Max-min fair rate (Gbps) per flow id.

    ``link_gbps(dirlink)`` must return the capacity of a directed link;
    returning 0 marks the link down (its flows get rate 0).
    ``on_bottleneck(dirlink, fair_share_gbps, flows_fixed)`` fires once
    per progressive-filling iteration, when that iteration's bottleneck
    link saturates -- the hook the simulator's observability rides.

    This is the from-scratch oracle; the event-driven simulator
    defaults to the incremental engine in :mod:`repro.fabric.solver`,
    which must (and is tested to) agree with this to 1e-9.
    """
    flows = list(flows)
    link_flows: Dict[int, List[Flow]] = defaultdict(list)
    for f in flows:
        for dl in f.path.dirlinks:
            link_flows[dl].append(f)

    remaining_cap: Dict[int, float] = {}
    unfixed_count: Dict[int, int] = {}
    for dl, fl in link_flows.items():
        remaining_cap[dl] = link_gbps(dl)
        unfixed_count[dl] = len(fl)

    rates: Dict[int, float] = {}
    # flows through a dead link are immediately fixed at zero --
    # per-flow-first-fix: each such flow is zeroed once and debited
    # along its *own* path occurrences, so a flow crossing two dead
    # links is not decremented twice on shared live links
    dead_links = {dl for dl, cap in remaining_cap.items() if cap <= _EPS}
    if dead_links:
        for f in flows:
            if f.flow_id in rates:
                continue
            if any(dl in dead_links for dl in f.path.dirlinks):
                rates[f.flow_id] = 0.0
                for dl in f.path.dirlinks:
                    unfixed_count[dl] -= 1

    active_links = {
        dl for dl, n in unfixed_count.items() if n > 0 and remaining_cap[dl] > _EPS
    }
    while active_links:
        # bottleneck: the link offering the smallest fair share; ties
        # break on the smallest dirlink id so fixing order (and with it
        # rates-dict insertion order and on_bottleneck callbacks) never
        # depends on set iteration order
        share, bottleneck = min(
            ((remaining_cap[dl] / unfixed_count[dl], dl)
             for dl in sorted(active_links)),
            key=lambda t: t[0],
        )
        newly_fixed = [
            f for f in link_flows[bottleneck] if f.flow_id not in rates
        ]
        if on_bottleneck is not None:
            on_bottleneck(bottleneck, share, len(newly_fixed))
        for f in newly_fixed:
            rates[f.flow_id] = share
            for dl in f.path.dirlinks:
                remaining_cap[dl] -= share
                unfixed_count[dl] -= 1
        drop = [
            dl
            for dl in sorted(active_links)
            if unfixed_count[dl] <= 0 or remaining_cap[dl] <= _EPS
        ]
        for dl in drop:
            if unfixed_count[dl] > 0:
                # capacity exhausted with flows still unfixed: fix at ~0
                for f in link_flows[dl]:
                    rates.setdefault(f.flow_id, 0.0)
            active_links.discard(dl)
        # remove links whose flows were all fixed elsewhere
        active_links = {
            dl
            for dl in sorted(active_links)
            if unfixed_count[dl] > 0 and remaining_cap[dl] > _EPS
        }
    for f in flows:
        rates.setdefault(f.flow_id, 0.0)
    return rates


@dataclass(order=True)
class _Event:
    time: float
    seq: int
    action: Callable[["FluidSimulator"], None] = field(compare=False)


@dataclass
class SimResult:
    """Outcome of one simulator run."""

    finish_time: float
    flow_finish: Dict[int, float]
    #: (time, dirlink -> Gbps) samples collected at rate-change boundaries
    samples: List[Tuple[float, Dict[int, float]]] = field(default_factory=list)

    def completion_time(self) -> float:
        return self.finish_time


class FluidSimulator:
    """Event-driven fluid simulator over one topology.

    ``solver`` selects the rate engine: ``"incremental"`` (default,
    dirty-set re-solve over a persistent incidence index), ``"full"``
    (the original per-boundary from-scratch solve, kept as oracle and
    perf baseline), ``"vectorized"`` (the incremental machinery with
    the flat-array waterfill kernel of :mod:`repro.fabric.kernel` --
    numpy when available, byte-identical pure-Python twin otherwise),
    or ``"sharded"`` (dirty components solved as independent shards;
    ``shard_backend="process"`` dispatches them through the engine
    Runner's process pool with ``shard_workers`` workers). All four
    engines produce byte-identical rates -- see docs/simulator.md,
    "Solver engines". ``full_solve_threshold`` tunes the incremental
    engines' fallback: when an event's dirty component exceeds this
    fraction of active flows, one full solve is cheaper than component
    BFS + fill.
    """

    def __init__(self, topo: Topology, sample_links: bool = False,
                 recorder=None, solver: str = "incremental",
                 full_solve_threshold: float = 0.5,
                 shard_backend: str = "serial",
                 shard_workers: Optional[int] = None):
        if solver not in ("incremental", "full", "vectorized", "sharded"):
            raise ValueError(f"unknown solver engine {solver!r}")
        self.topo = topo
        self.sample_links = sample_links
        self.solver_mode = solver
        self.now = 0.0
        self._active: Dict[int, Flow] = {}
        self._events: List[_Event] = []
        self._seq = itertools.count()
        self._flow_finish: Dict[int, float] = {}
        self._samples: List[Tuple[float, Dict[int, float]]] = []
        #: hook invoked after each rate solve: f(sim, rates)
        self.on_solve: Optional[Callable[["FluidSimulator", Dict[int, float]], None]] = None
        # observability: explicit recorder wins over the process-wide
        # one; disabled resolves to None so the hot loop pays one check
        self._rec = _obs_resolve(recorder)
        #: last committed solve's dirty fraction (health-hub sampled)
        self.last_dirty_frac: Optional[float] = None
        # health sampler hub, when a HealthEngine is attached to the
        # recorder; read once here, same discipline as _rec itself
        self._hub = self._rec.health if self._rec is not None else None
        if self._rec is not None:
            m = self._rec.metrics
            self._m_solves = m.counter("sim.solves")
            self._m_full_solves = m.counter("sim.full_solves")
            self._m_incremental_solves = m.counter("sim.incremental_solves")
            self._m_noop_solves = m.counter("sim.noop_solves")
            self._m_dirty_frac = m.histogram(
                "sim.dirty_frac", buckets=_FRACTION_BUCKETS)
            self._m_iterations = m.counter("sim.solver_iterations")
            self._m_started = m.counter("sim.flows_started")
            self._m_finished = m.counter("sim.flows_finished")
            self._m_rate_changes = m.counter("sim.rate_changes")
            self._m_kernel_iters = m.counter("sim.kernel_iters")
            self._m_shard_count = m.counter("sim.shard_count")
            self._tier_label: Dict[int, str] = {}
        self._solver: Optional[IncrementalMaxMinSolver] = None
        if solver != "full":
            hook = (
                self._record_bottleneck if self._rec is not None else None
            )
            if solver == "incremental":
                self._solver = IncrementalMaxMinSolver(
                    self.link_gbps,
                    full_threshold=full_solve_threshold,
                    on_bottleneck=hook,
                )
            elif solver == "vectorized":
                from .solver import VectorizedMaxMinSolver

                self._solver = VectorizedMaxMinSolver(
                    self.link_gbps,
                    full_threshold=full_solve_threshold,
                    on_bottleneck=hook,
                )
            else:
                from .sharded import ShardedSolver

                self._solver = ShardedSolver(
                    self.link_gbps,
                    full_threshold=full_solve_threshold,
                    on_bottleneck=hook,
                    backend=shard_backend,
                    max_workers=shard_workers,
                )
        #: (predicted finish time, flow heap epoch, flow id) entries;
        #: stale entries (epoch mismatch / flow gone) are discarded
        #: lazily on peek -- no O(active) completion scans
        self._completion_heap: List[Tuple[float, int, int]] = []

    # ------------------------------------------------------------------
    def link_gbps(self, dirlink: int) -> float:
        link = self.topo.links[dirlink // 2]
        return link.gbps if link.up else 0.0

    def add_flow(self, flow: Flow) -> None:
        """Inject a flow at ``flow.start_time`` (>= current time)."""
        if flow.start_time < self.now - _EPS:
            raise SimulationError(
                f"flow {flow.flow_id} starts in the past ({flow.start_time} < {self.now})"
            )
        self.schedule(flow.start_time, lambda sim, f=flow: sim._activate(f))

    def add_flows(self, flows: Iterable[Flow]) -> None:
        """Inject many flows, batching same-instant arrivals.

        Collective step boundaries emit hundreds of flows with one
        start time; scheduling one event per *batch* (instead of one
        per flow) keeps event-heap traffic O(distinct start times) and
        guarantees a single rate solve per arrival burst.
        """
        groups: Dict[float, List[Flow]] = {}
        for f in flows:
            if f.start_time < self.now - _EPS:
                raise SimulationError(
                    f"flow {f.flow_id} starts in the past "
                    f"({f.start_time} < {self.now})"
                )
            groups.setdefault(f.start_time, []).append(f)
        for t, batch in groups.items():
            self.schedule(t, lambda sim, b=batch: sim._activate_batch(b))

    def schedule(self, time: float, action: Callable[["FluidSimulator"], None]) -> None:
        heapq.heappush(self._events, _Event(time, next(self._seq), action))

    def _activate(self, flow: Flow) -> None:
        self._active[flow.flow_id] = flow
        flow._progress_t = self.now
        if self._solver is not None:
            self._solver.activate(flow)
        if self._rec is not None and not flow._start_emitted:
            flow._start_emitted = True
            self._m_started.inc()
            self._rec.events.instant(
                "flow.start", self.now, track="flows",
                flow_id=flow.flow_id, size_bytes=flow.size_bytes,
                tag=flow.tag,
            )

    def _activate_batch(self, flows: List[Flow]) -> None:
        for f in flows:
            self._activate(f)

    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None) -> SimResult:
        """Run until all flows complete (and events drain) or ``until``."""
        if self.solver_mode == "full":
            return self._run_full(until)
        return self._run_incremental(until)

    # -- incremental engine --------------------------------------------
    def _run_incremental(self, until: Optional[float]) -> SimResult:
        run_start_s = self.now
        solver = self._solver
        assert solver is not None
        try:
            while self._events or self._active:
                # release all events at the current frontier
                next_event_time = self._events[0].time if self._events else None
                if not self._active:
                    if next_event_time is None:
                        break
                    if until is not None and next_event_time > until:
                        self.now = until
                        break
                    self.now = max(self.now, next_event_time)
                    self._pop_due_events()
                    continue

                outcome = solver.solve()
                self._commit(outcome)
                if self._rec is not None:
                    self._record_link_util()
                if self.on_solve is not None:
                    self.on_solve(self, solver.rates)
                if self.sample_links:
                    self._samples.append((self.now, self._link_loads()))

                dt = self._next_completion_dt()
                if next_event_time is not None:
                    dt = min(dt, next_event_time - self.now)
                if until is not None:
                    dt = min(dt, until - self.now)
                if dt < 0:
                    dt = 0.0
                if dt == float("inf"):
                    raise SimulationError(
                        "deadlock: active flows all have zero rate and no "
                        "future event can change that"
                    )
                self._advance_incremental(dt)
                if until is not None and self.now >= until - _EPS:
                    break
                self._pop_due_events()
        finally:
            self._materialize_active()

        if self._rec is not None:
            self._rec.events.span(
                "sim.run", run_start_s, self.now, track="sim",
                flows_finished=len(self._flow_finish),
            )
        return SimResult(
            finish_time=self.now,
            flow_finish=dict(self._flow_finish),
            samples=self._samples,
        )

    def _commit(self, outcome: SolveOutcome) -> None:
        """Apply a solve: update touched flows' rates and heap entries.

        Only flows the solver re-solved can have changed rate, so the
        commit is O(dirty component), not O(active).
        """
        rec = self._rec
        if rec is not None:
            self._m_solves.inc()
            if outcome.kernel_iters:
                self._m_kernel_iters.inc(outcome.kernel_iters)
            if outcome.shards:
                self._m_shard_count.inc(outcome.shards)
            if outcome.mode == "full":
                self._m_full_solves.inc()
                self._m_dirty_frac.observe(1.0)
                self.last_dirty_frac = 1.0
            elif outcome.mode == "incremental":
                self._m_incremental_solves.inc()
                self._m_dirty_frac.observe(outcome.dirty_frac)
                self.last_dirty_frac = outcome.dirty_frac
            else:
                self._m_noop_solves.inc()
                self.last_dirty_frac = 0.0
        if not outcome.touched:
            return
        solver = self._solver
        assert solver is not None
        rates = solver.rates
        active = self._active
        heap = self._completion_heap
        now = self.now
        for fid in outcome.touched:
            flow = active.get(fid)
            if flow is None:
                continue
            new_rate = rates[fid]
            old_rate = flow.rate_gbps
            if new_rate == old_rate:
                continue
            # materialize progress at the old rate before switching
            if old_rate > _EPS and now > flow._progress_t:
                flow.remaining_bytes -= (
                    gbps_to_bytes_per_sec(old_rate) * (now - flow._progress_t)
                )
                if flow.remaining_bytes < 0.0:
                    flow.remaining_bytes = 0.0
            flow._progress_t = now
            flow.rate_gbps = new_rate
            flow._heap_epoch += 1
            if new_rate > _EPS:
                finish = now + flow.remaining_bytes / gbps_to_bytes_per_sec(
                    new_rate
                )
                heapq.heappush(heap, (finish, flow._heap_epoch, fid))
            if rec is not None and abs(new_rate - old_rate) > _EPS:
                self._m_rate_changes.inc()
                rec.events.instant(
                    "flow.rate", now, track="flows",
                    flow_id=fid, rate_gbps=new_rate,
                )

    def _next_completion_dt(self) -> float:
        """Time to the earliest completion, via the lazy heap."""
        heap = self._completion_heap
        active = self._active
        while heap:
            finish, epoch, fid = heap[0]
            flow = active.get(fid)
            if flow is None or flow._heap_epoch != epoch:
                heapq.heappop(heap)  # stale: finished or re-rated
                continue
            return finish - self.now
        return float("inf")

    def _advance_incremental(self, dt: float) -> None:
        """Advance time; complete exactly the flows the heap says."""
        self.now += dt
        now = self.now
        heap = self._completion_heap
        active = self._active
        solver = self._solver
        rec = self._rec
        while heap:
            finish, epoch, fid = heap[0]
            flow = active.get(fid)
            if flow is None or flow._heap_epoch != epoch:
                heapq.heappop(heap)
                continue
            if finish > now + _EPS:
                break
            heapq.heappop(heap)
            flow.remaining_bytes = 0.0
            flow._progress_t = now
            flow.finish_time = now
            self._flow_finish[fid] = now
            del active[fid]
            if solver is not None:
                solver.finish(flow)
            if rec is not None:
                self._m_finished.inc()
                rec.events.span(
                    "flow", flow.start_time, now, track="flows",
                    flow_id=fid, size_bytes=flow.size_bytes,
                    tag=flow.tag,
                )

    def _materialize_active(self) -> None:
        """Sync surviving flows' ``remaining_bytes`` to ``self.now``.

        The incremental engine accounts progress lazily (a flow's
        bytes are only materialized when its rate changes); callers
        that inspect flows after/between runs get exact state.
        """
        now = self.now
        for flow in self._active.values():
            rate = flow.rate_gbps
            if rate > _EPS and now > flow._progress_t:
                flow.remaining_bytes -= (
                    gbps_to_bytes_per_sec(rate) * (now - flow._progress_t)
                )
                if flow.remaining_bytes < 0.0:
                    flow.remaining_bytes = 0.0
            flow._progress_t = now

    # -- full (oracle) engine ------------------------------------------
    def _run_full(self, until: Optional[float]) -> SimResult:
        run_start_s = self.now
        while self._events or self._active:
            # release all events at the current frontier
            next_event_time = self._events[0].time if self._events else None
            if not self._active:
                if next_event_time is None:
                    break
                if until is not None and next_event_time > until:
                    self.now = until
                    break
                self.now = max(self.now, next_event_time)
                self._pop_due_events()
                continue

            rates = max_min_rates(
                self._active.values(), self.link_gbps,
                on_bottleneck=(
                    self._record_bottleneck if self._rec is not None else None
                ),
            )
            if self._rec is not None:
                self._m_solves.inc()
                self._m_full_solves.inc()
                self.last_dirty_frac = 1.0
                for fid, flow in self._active.items():
                    if abs(rates[fid] - flow.rate_gbps) > _EPS:
                        self._m_rate_changes.inc()
                        self._rec.events.instant(
                            "flow.rate", self.now, track="flows",
                            flow_id=fid, rate_gbps=rates[fid],
                        )
            for fid, flow in self._active.items():
                flow.rate_gbps = rates[fid]
            if self._rec is not None:
                self._record_link_util()
            if self.on_solve is not None:
                self.on_solve(self, rates)
            if self.sample_links:
                self._samples.append((self.now, self._link_loads()))

            dt_complete = self._min_completion_dt()
            candidates = [dt_complete]
            if next_event_time is not None:
                candidates.append(next_event_time - self.now)
            if until is not None:
                candidates.append(until - self.now)
            dt = min(c for c in candidates if c is not None)
            if dt < 0:
                dt = 0.0
            if dt == float("inf"):
                raise SimulationError(
                    "deadlock: active flows all have zero rate and no "
                    "future event can change that"
                )
            self._advance(dt)
            if until is not None and self.now >= until - _EPS:
                break
            self._pop_due_events()

        if self._rec is not None:
            self._rec.events.span(
                "sim.run", run_start_s, self.now, track="sim",
                flows_finished=len(self._flow_finish),
            )
        return SimResult(
            finish_time=self.now,
            flow_finish=dict(self._flow_finish),
            samples=self._samples,
        )

    # ------------------------------------------------------------------
    def _record_bottleneck(self, dirlink: int, share_gbps: float,
                           flows_fixed: int) -> None:
        """Solver hook: one progressive-filling iteration saturated."""
        self._m_iterations.inc()
        self._rec.events.instant(
            "link.saturated", self.now, track="links",
            dirlink=dirlink, fair_share_gbps=share_gbps,
            flows=flows_fixed,
        )

    def _dirlink_tier(self, dirlink: int) -> str:
        """Tier label of a directed link: access / agg / core / tierN."""
        label = self._tier_label.get(dirlink)
        if label is None:
            link = self.topo.links[dirlink // 2]
            sa = self.topo.switches.get(link.a.node)
            sb = self.topo.switches.get(link.b.node)
            if sa is None or sb is None:
                label = "access"
            else:
                top = max(sa.tier, sb.tier)
                label = {2: "agg", 3: "core"}.get(top, f"tier{top}")
            self._tier_label[dirlink] = label
        return label

    def _record_link_util(self) -> None:
        """Sample per-tier peak link utilization after a rate solve.

        When a health hub is attached the same pass also counts flows
        per directed link and hands both maps to the hub's samplers
        (decimated by ``hub.wants_sample()``), so health monitoring
        adds no extra traversal of the active set.
        """
        hub = self._hub
        counts: Optional[Dict[int, int]] = (
            {} if hub is not None and hub.wants_sample() else None
        )
        loads: Dict[int, float] = {}
        if counts is None:
            for flow in self._active.values():
                for dl in dict.fromkeys(flow.path.dirlinks):
                    loads[dl] = loads.get(dl, 0.0) + flow.rate_gbps
        else:
            for flow in self._active.values():
                for dl in dict.fromkeys(flow.path.dirlinks):
                    loads[dl] = loads.get(dl, 0.0) + flow.rate_gbps
                    counts[dl] = counts.get(dl, 0) + 1
        per_tier: Dict[str, float] = {}
        for dl, load in loads.items():
            cap = self.link_gbps(dl)
            if cap <= _EPS:
                continue
            tier = self._dirlink_tier(dl)
            util = load / cap
            if util > per_tier.get(tier, 0.0):
                per_tier[tier] = util
        for tier, util in per_tier.items():
            self._rec.metrics.gauge("link_util", tier=tier).set(
                util, ts_s=self.now
            )
        if counts is not None:
            hub.sample_fluid(self, loads, counts)

    def oracle_drift(self) -> float:
        """Max |committed - oracle| rate (Gbps) over active flows.

        One from-scratch :func:`max_min_rates` solve compared against
        the rates the running engine last committed -- the health
        engine's solver-drift spot check. Costs a full solve, so
        callers decide how often (``HealthConfig.drift_check_every``).
        """
        if not self._active:
            return 0.0
        rates = max_min_rates(self._active.values(), self.link_gbps)
        worst = 0.0
        for fid in sorted(self._active):
            worst = max(worst, abs(self._active[fid].rate_gbps - rates[fid]))
        return worst

    # ------------------------------------------------------------------
    def _min_completion_dt(self) -> float:
        """O(active) completion scan -- the full engine's original path
        (the incremental engine uses :meth:`_next_completion_dt`)."""
        best = float("inf")
        for flow in self._active.values():
            if flow.rate_gbps > _EPS:
                dt = flow.remaining_bytes / gbps_to_bytes_per_sec(flow.rate_gbps)
                best = min(best, dt)
        return best

    def _advance(self, dt: float) -> None:
        self.now += dt
        finished = []
        for fid, flow in self._active.items():
            flow.remaining_bytes -= gbps_to_bytes_per_sec(flow.rate_gbps) * dt
            if flow.done:
                flow.finish_time = self.now
                self._flow_finish[fid] = self.now
                finished.append(fid)
                if self._rec is not None:
                    self._m_finished.inc()
                    self._rec.events.span(
                        "flow", flow.start_time, self.now, track="flows",
                        flow_id=fid, size_bytes=flow.size_bytes,
                        tag=flow.tag,
                    )
        for fid in finished:
            del self._active[fid]

    def _pop_due_events(self) -> None:
        while self._events and self._events[0].time <= self.now + _EPS:
            event = heapq.heappop(self._events)
            event.action(self)

    def _link_loads(self) -> Dict[int, float]:
        loads: Dict[int, float] = defaultdict(float)
        for flow in self._active.values():
            for dl in flow.path.dirlinks:
                loads[dl] += flow.rate_gbps
        return dict(loads)

    # ------------------------------------------------------------------
    @property
    def active_flows(self) -> List[Flow]:
        if self.solver_mode == "incremental":
            self._materialize_active()
        return list(self._active.values())


def run_flows(topo: Topology, flows: Iterable[Flow], **kwargs) -> SimResult:
    """One-shot convenience: simulate a flow set to completion."""
    sim = FluidSimulator(topo, **kwargs)
    sim.add_flows(flows)
    return sim.run()
