"""Vectorized max-min waterfill kernels over CSR-style flat incidence.

The per-flow Python loops in :meth:`IncrementalMaxMinSolver._fill`
bound the solver well below full-Pod scale: every progressive-filling
iteration scans the active-link set and debits links flow by flow in
the interpreter. This module replaces that inner loop with a kernel
operating on flat arrays -- a :class:`ComponentSnapshot` holding the
component's flow<->link incidence in CSR form (flow-major and
link-major), dense local ids, and flat capacity/weight vectors --
iterating bottleneck-link argmin -> bulk rate assignment -> boolean
frozen masks until saturation.

Two implementations of the **same canonical fill order** exist:

* :func:`waterfill_numpy` -- numpy bulk ops (argmin, fancy-indexed
  gathers, unbuffered ``np.subtract.at`` scatter debits);
* :func:`waterfill_python` -- plain lists/sets, no dependencies.

Canonical order means byte-identical floats, not merely
tolerance-equal: flows enumerate ascending by flow id, links ascending
by dense id, bottleneck ties break to the smallest dense id, and
debits apply flow-major in newly-fixed order with each flow's links in
path order. ``np.subtract.at`` is unbuffered and applies updates in
index order, so both paths perform the *same sequence* of IEEE-double
operations. The differential campaign
(:class:`repro.fabric.solver.SolverEquivalence`) asserts the
equality; numpy is therefore a perf extra (``repro[fast]``), never a
correctness dependency (see :mod:`repro.fabric._np`).

:func:`solve_shard` wraps the kernel as a pure ``(params, seed)``
function over a JSON-safe shard payload -- the unit the
``solver.shard`` engine experiment (and with it the
:class:`~repro.fabric.sharded.ShardedSolver` process-pool backend)
dispatches to workers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from ._np import np as _np

#: numerical guard shared with the solver ("rate/capacity is zero")
_EPS = 1e-12

#: per-iteration bottleneck hook: (raw_dirlink, fair_share_gbps, fixed)
BottleneckHook = Optional[Callable[[int, float, int], None]]


def _link_major(
    f_indptr: List[int], f_links: List[int], num_flows: int, num_links: int
) -> Tuple[List[int], List[int]]:
    """Link-major CSR from flow-major, rows in ascending-flow order."""
    counts = [0] * num_links
    for local in f_links:
        counts[local] += 1
    l_indptr = [0] * (num_links + 1)
    for local in range(num_links):
        l_indptr[local + 1] = l_indptr[local] + counts[local]
    cursor = list(l_indptr[:num_links])
    l_flows = [0] * len(f_links)
    for fi in range(num_flows):
        for pos in range(f_indptr[fi], f_indptr[fi + 1]):
            local = f_links[pos]
            l_flows[cursor[local]] = fi
            cursor[local] += 1
    return l_indptr, l_flows


@dataclass
class ComponentSnapshot:
    """Flat-array view of one closed flow component, epoch-stamped.

    ``flow_ids`` ascend; local link ids are the rank of the dense id
    in ``dense_ids`` (ascending). ``caps``/``weights`` are the
    component slice of the index's flat vectors, copied at build time;
    the snapshot records the index epochs it was built against so
    holders can detect staleness (:meth:`stale`) after out-of-band
    capacity edits (``topo.transient_state()``) or membership churn.

    When numpy is available the CSR fields are ``ndarray``s; the pure
    fallback keeps plain lists. :meth:`payload` renders the JSON-safe
    shard dict either way.
    """

    flow_ids: List[int]
    dense_ids: List[int]
    raw_dirlinks: List[int]
    caps: Any  # float64[L]
    weights: Any  # int64[L]
    f_indptr: Any  # int64[F+1]
    f_links: Any  # int64[E] (local link ids, path order per flow)
    f_mults: Any  # int64[E]
    l_indptr: Any  # int64[L+1]
    l_flows: Any  # int64[E] (local flow ranks, ascending per row)
    capacity_epoch: int  # repro: noqa[LINT004]
    membership_epoch: int

    @property
    def num_flows(self) -> int:
        return len(self.flow_ids)

    @property
    def num_links(self) -> int:
        return len(self.dense_ids)

    def stale(self, index) -> bool:
        """Has the index moved past this snapshot's epochs?"""
        return (
            index.capacity_epoch != self.capacity_epoch
            or index.membership_epoch != self.membership_epoch
        )

    def payload(self) -> Dict[str, Any]:
        """JSON-safe shard dict for cross-process dispatch."""

        def plain(v: Any) -> List[Any]:
            return v.tolist() if hasattr(v, "tolist") else list(v)

        return {
            "flow_ids": list(self.flow_ids),
            "raw_dirlinks": list(self.raw_dirlinks),
            "caps": plain(self.caps),
            "weights": plain(self.weights),
            "f_indptr": plain(self.f_indptr),
            "f_links": plain(self.f_links),
            "f_mults": plain(self.f_mults),
        }


def build_snapshot(index, flow_ids: Iterable[int]) -> ComponentSnapshot:
    """Snapshot a *closed* flow set (every flow on a touched link).

    Closure is the caller's contract (BFS component or the full active
    set); it is what lets ``weights`` come straight from the index's
    global per-link totals.
    """
    fids = sorted(flow_ids)
    flow_links = index.flow_links
    seen: Dict[int, int] = {}
    for fid in fids:
        for dense, _mult in flow_links[fid]:
            if dense not in seen:
                seen[dense] = 0
    dense_ids = sorted(seen)
    for rank, dense in enumerate(dense_ids):
        seen[dense] = rank

    f_indptr: List[int] = [0]
    f_links: List[int] = []
    f_mults: List[int] = []
    for fid in fids:
        for dense, mult in flow_links[fid]:
            f_links.append(seen[dense])
            f_mults.append(mult)
        f_indptr.append(len(f_links))
    caps = [index.cap[dense] for dense in dense_ids]
    weights = [index.weight[dense] for dense in dense_ids]
    raw = [index.dirlinks[dense] for dense in dense_ids]
    l_indptr, l_flows = _link_major(
        f_indptr, f_links, len(fids), len(dense_ids)
    )
    if _np is not None:
        i64 = _np.int64
        return ComponentSnapshot(
            flow_ids=fids,
            dense_ids=dense_ids,
            raw_dirlinks=raw,
            caps=_np.array(caps, dtype=_np.float64),
            weights=_np.array(weights, dtype=i64),
            f_indptr=_np.array(f_indptr, dtype=i64),
            f_links=_np.array(f_links, dtype=i64),
            f_mults=_np.array(f_mults, dtype=i64),
            l_indptr=_np.array(l_indptr, dtype=i64),
            l_flows=_np.array(l_flows, dtype=i64),
            capacity_epoch=index.capacity_epoch,
            membership_epoch=index.membership_epoch,
        )
    return ComponentSnapshot(
        flow_ids=fids,
        dense_ids=dense_ids,
        raw_dirlinks=raw,
        caps=caps,
        weights=weights,
        f_indptr=f_indptr,
        f_links=f_links,
        f_mults=f_mults,
        l_indptr=l_indptr,
        l_flows=l_flows,
        capacity_epoch=index.capacity_epoch,
        membership_epoch=index.membership_epoch,
    )


# ----------------------------------------------------------------------
# the two kernels (canonical fill order; see module docstring)
# ----------------------------------------------------------------------
def waterfill_numpy(
    snap: ComponentSnapshot, on_bottleneck: BottleneckHook = None
) -> Tuple[List[float], int]:
    """Numpy waterfill; returns (rates aligned to flow_ids, iterations)."""
    np = _np
    assert np is not None, "waterfill_numpy requires numpy"
    F, L = snap.num_flows, snap.num_links
    residual = snap.caps.copy()
    unfixed = snap.weights.copy()
    f_indptr, f_links, f_mults = snap.f_indptr, snap.f_links, snap.f_mults
    l_indptr, l_flows = snap.l_indptr, snap.l_flows
    rates = np.zeros(F, dtype=np.float64)
    fixed = np.zeros(F, dtype=bool)
    raw = snap.raw_dirlinks

    # dead-link pass, per-flow-first-fix: every flow crossing a dead
    # link is zeroed once and its own occurrences debited (integer
    # ops only -- order-free, exact)
    if F:
        edge_flow = np.repeat(np.arange(F, dtype=np.int64),
                              np.diff(f_indptr))
        dead_edge = residual[f_links] <= _EPS
        if dead_edge.any():
            np.logical_or.at(fixed, edge_flow, dead_edge)
            sel = fixed[edge_flow]
            np.subtract.at(unfixed, f_links[sel], f_mults[sel])

    active = (unfixed > 0) & (residual > _EPS)
    iterations = 0
    shares = np.empty(L, dtype=np.float64)
    while active.any():
        shares.fill(np.inf)
        np.divide(residual, unfixed, out=shares, where=active)
        b = int(np.argmin(shares))  # ties -> smallest local (dense) id
        share = float(shares[b])
        row = l_flows[l_indptr[b]:l_indptr[b + 1]]
        newly = row[~fixed[row]]
        iterations += 1
        if on_bottleneck is not None:
            on_bottleneck(raw[b], share, int(newly.size))
        if newly.size == 0:
            # only drained-to-zero flows remain on this link: it can
            # make no further progress -- retire it (liveness guard,
            # mirrored exactly in the python kernel and _fill)
            active[b] = False
            continue
        rates[newly] = share
        fixed[newly] = True
        starts = f_indptr[newly]
        lens = f_indptr[newly + 1] - starts
        total = int(lens.sum())
        # ragged gather of the newly-fixed flows' edges, flow-major in
        # ascending-flow order, path order within each flow -- the
        # same debit sequence as the interpreted loop
        base = np.repeat(
            starts - (np.cumsum(lens) - lens), lens
        )
        pos = base + np.arange(total, dtype=np.int64)
        ls = f_links[pos]
        ms = f_mults[pos]
        np.subtract.at(residual, ls, share * ms)
        np.subtract.at(unfixed, ls, ms)
        exhausted = active & (residual <= _EPS) & (unfixed > 0)
        if exhausted.any():
            # capacity gone with flows still unfixed: they get ~0
            # (mirrors the oracle: no further debits)
            for lb in np.nonzero(exhausted)[0]:
                r = l_flows[l_indptr[lb]:l_indptr[lb + 1]]
                rz = r[~fixed[r]]
                rates[rz] = 0.0
                fixed[rz] = True
        active &= (unfixed > 0) & (residual > _EPS)
    return [float(r) for r in rates], iterations


def waterfill_python(
    snap: ComponentSnapshot, on_bottleneck: BottleneckHook = None
) -> Tuple[List[float], int]:
    """Pure-Python twin of :func:`waterfill_numpy` (same fill order)."""
    F, L = snap.num_flows, snap.num_links
    residual = [float(c) for c in snap.caps]
    unfixed = [int(w) for w in snap.weights]
    f_indptr = snap.f_indptr
    f_links = snap.f_links
    f_mults = snap.f_mults
    l_indptr = snap.l_indptr
    l_flows = snap.l_flows
    rates = [0.0] * F
    fixed = [False] * F
    raw = snap.raw_dirlinks

    for fi in range(F):
        lo, hi = f_indptr[fi], f_indptr[fi + 1]
        if any(residual[f_links[p]] <= _EPS for p in range(lo, hi)):
            fixed[fi] = True
            for p in range(lo, hi):
                unfixed[f_links[p]] -= f_mults[p]

    active = {
        local for local in range(L)
        if unfixed[local] > 0 and residual[local] > _EPS
    }
    iterations = 0
    while active:
        share = float("inf")
        bottleneck = -1
        for local in sorted(active):
            s = residual[local] / unfixed[local]
            if s < share:
                share = s
                bottleneck = local
        newly = [
            fi for fi in l_flows[l_indptr[bottleneck]:
                                 l_indptr[bottleneck + 1]]
            if not fixed[fi]
        ]
        iterations += 1
        if on_bottleneck is not None:
            on_bottleneck(raw[bottleneck], share, len(newly))
        if not newly:
            active.discard(bottleneck)  # liveness guard (see numpy twin)
            continue
        for fi in newly:
            rates[fi] = share
            fixed[fi] = True
            for p in range(f_indptr[fi], f_indptr[fi + 1]):
                local = f_links[p]
                residual[local] -= share * f_mults[p]
                unfixed[local] -= f_mults[p]
        drained = [
            local for local in sorted(active)
            if unfixed[local] <= 0 or residual[local] <= _EPS
        ]
        for local in drained:
            if residual[local] <= _EPS and unfixed[local] > 0:
                for fi in l_flows[l_indptr[local]:l_indptr[local + 1]]:
                    if not fixed[fi]:
                        rates[fi] = 0.0
                        fixed[fi] = True
            active.discard(local)
        active = {
            local for local in sorted(active)
            if unfixed[local] > 0 and residual[local] > _EPS
        }
    return rates, iterations


def waterfill(
    snap: ComponentSnapshot, on_bottleneck: BottleneckHook = None
) -> Tuple[List[float], int]:
    """Kernel dispatch: numpy when available, pure-Python otherwise."""
    if _np is not None and not isinstance(snap.caps, list):
        return waterfill_numpy(snap, on_bottleneck)
    return waterfill_python(snap, on_bottleneck)


# ----------------------------------------------------------------------
# shard unit: pure (params, seed) wrapper for the engine experiment
# ----------------------------------------------------------------------
def snapshot_from_payload(payload: Dict[str, Any]) -> ComponentSnapshot:
    """Rebuild a snapshot from :meth:`ComponentSnapshot.payload`."""
    flow_ids = [int(f) for f in payload["flow_ids"]]
    f_indptr = [int(v) for v in payload["f_indptr"]]
    f_links = [int(v) for v in payload["f_links"]]
    f_mults = [int(v) for v in payload["f_mults"]]
    caps = [float(c) for c in payload["caps"]]
    weights = [int(w) for w in payload["weights"]]
    raw = [int(r) for r in payload["raw_dirlinks"]]
    num_flows, num_links = len(flow_ids), len(caps)
    l_indptr, l_flows = _link_major(f_indptr, f_links, num_flows, num_links)
    if _np is not None:
        i64 = _np.int64
        return ComponentSnapshot(
            flow_ids=flow_ids,
            dense_ids=list(range(num_links)),
            raw_dirlinks=raw,
            caps=_np.array(caps, dtype=_np.float64),
            weights=_np.array(weights, dtype=i64),
            f_indptr=_np.array(f_indptr, dtype=i64),
            f_links=_np.array(f_links, dtype=i64),
            f_mults=_np.array(f_mults, dtype=i64),
            l_indptr=_np.array(l_indptr, dtype=i64),
            l_flows=_np.array(l_flows, dtype=i64),
            capacity_epoch=-1,
            membership_epoch=-1,
        )
    return ComponentSnapshot(
        flow_ids=flow_ids,
        dense_ids=list(range(num_links)),
        raw_dirlinks=raw,
        caps=caps,
        weights=weights,
        f_indptr=f_indptr,
        f_links=f_links,
        f_mults=f_mults,
        l_indptr=l_indptr,
        l_flows=l_flows,
        capacity_epoch=-1,
        membership_epoch=-1,
    )


def solve_shard(params: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """One shard solve as a pure engine experiment body.

    ``params["shard"]`` is a :meth:`ComponentSnapshot.payload` dict;
    the result carries rates aligned with the payload's ``flow_ids``.
    Pure in (params, seed) -- the kernel is deterministic and JSON
    float round-trips are exact -- so process-pool dispatch returns
    byte-identical rates to an in-process solve of the same snapshot.
    """
    snap = snapshot_from_payload(dict(params["shard"]))
    rates, iterations = waterfill(snap)
    return {
        "flow_ids": list(snap.flow_ids),
        "rates": rates,
        "iterations": iterations,
    }
