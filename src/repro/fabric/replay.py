"""Iteration replay: training traffic over wall-clock time.

Replays a training job's periodic communication phases through the
fluid simulator and records per-NIC egress over time -- the simulated
counterpart of the paper's production measurement in Figure 2 (the
workload generator in :mod:`repro.workloads.llm` produces the same
shape synthetically; this one derives it from first principles).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from ..core.topology import Topology
from .flow import Flow
from .simulator import FluidSimulator
from .telemetry import dirlink_loads


@dataclass
class NicSeries:
    """Egress samples of one NIC: (time, gbps) pairs."""

    host: str
    rail: int
    samples: List[Tuple[float, float]] = field(default_factory=list)

    def peak(self) -> float:
        return max((g for _t, g in self.samples), default=0.0)

    def duty_cycle(self, threshold_fraction: float = 0.5) -> float:
        if not self.samples:
            return 0.0
        peak = self.peak()
        if peak <= 0:
            return 0.0
        busy = sum(1 for _t, g in self.samples if g >= threshold_fraction * peak)
        return busy / len(self.samples)


@dataclass
class IterationReplay:
    """Replays N iterations: compute gap, then the burst flow set."""

    topo: Topology
    compute_seconds: float
    #: factory producing a fresh burst flow set (flows are consumed)
    make_burst_flows: "callable"
    sample_dt: float = 0.1

    def run(
        self,
        iterations: int,
        watch: Sequence[Tuple[str, int]],
    ) -> Dict[Tuple[str, int], NicSeries]:
        """Simulate ``iterations`` and sample the watched NICs' egress."""
        series = {
            (host, rail): NicSeries(host, rail) for host, rail in watch
        }
        now = 0.0
        for _i in range(iterations):
            # compute phase: NICs idle
            t = now
            while t < now + self.compute_seconds:
                for key in series:
                    series[key].samples.append((t, 0.0))
                t += self.sample_dt
            now += self.compute_seconds

            # burst phase: drive the flows, sampling every sample_dt
            flows: List[Flow] = self.make_burst_flows()
            for f in flows:
                f.start_time = now
            sim = FluidSimulator(self.topo)
            sim.now = now
            sim.add_flows(flows)
            now = self._burst_end(sim, series, now)
        return series

    def _burst_end(
        self,
        sim: FluidSimulator,
        series: Dict[Tuple[str, int], NicSeries],
        start: float,
    ) -> float:
        """Run the burst, sampling each watched NIC every sample_dt.

        Samples are taken from the most recent rate solve covering each
        sampling instant, so bursts shorter than ``sample_dt`` still
        register at their true rate.
        """
        current_loads: Dict[int, float] = {}

        def on_solve(s: FluidSimulator, _rates) -> None:
            current_loads.clear()
            current_loads.update(dirlink_loads(s.active_flows))

        sim.on_solve = on_solve
        t = start
        while True:
            result = sim.run(until=t + self.sample_dt)
            for (host, rail), ns in series.items():
                ns.samples.append((t, self._nic_egress(current_loads, host, rail)))
            t += self.sample_dt
            if not sim.active_flows:
                return max(t, result.finish_time)

    def _nic_egress(self, loads: Dict[int, float], host: str, rail: int) -> float:
        nic = self.topo.hosts[host].nic_for_rail(rail)
        total = 0.0
        for pref in nic.ports:
            port = self.topo.port(pref)
            if port.link_id is None:
                continue
            link = self.topo.links[port.link_id]
            direction = 0 if link.a.node == host else 1
            total += loads.get(link.link_id * 2 + direction, 0.0)
        return total
