"""Fluid flow-level fabric simulator, queue model and telemetry."""

from ._np import HAVE_NUMPY
from .flow import Flow
from .incidence import IncidenceIndex
from .kernel import ComponentSnapshot, build_snapshot, waterfill
from .queues import QueueTracker
from .replay import IterationReplay, NicSeries
from .sharded import ShardedSolver
from .simulator import FluidSimulator, SimResult, max_min_rates, run_flows
from .solver import (
    EquivalenceReport,
    IncrementalMaxMinSolver,
    SolveOutcome,
    SolverEquivalence,
    SolverStats,
    VectorizedMaxMinSolver,
)
from .telemetry import (
    agg_ingress_gbps,
    dirlink_loads,
    imbalance_ratio,
    jain_fairness,
    port_egress_gbps,
    record_fabric_metrics,
    tor_ports_towards_nic,
    uplink_spread,
)

__all__ = [
    "ComponentSnapshot",
    "EquivalenceReport",
    "HAVE_NUMPY",
    "IncidenceIndex",
    "IncrementalMaxMinSolver",
    "IterationReplay",
    "NicSeries",
    "Flow",
    "FluidSimulator",
    "QueueTracker",
    "ShardedSolver",
    "SimResult",
    "SolveOutcome",
    "SolverEquivalence",
    "SolverStats",
    "VectorizedMaxMinSolver",
    "agg_ingress_gbps",
    "build_snapshot",
    "waterfill",
    "dirlink_loads",
    "imbalance_ratio",
    "jain_fairness",
    "max_min_rates",
    "port_egress_gbps",
    "record_fabric_metrics",
    "run_flows",
    "tor_ports_towards_nic",
    "uplink_spread",
]
