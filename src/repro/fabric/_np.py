"""Optional-numpy import guard for the fabric solver kernels.

The vectorized waterfill kernel (:mod:`repro.fabric.kernel`) runs on
numpy when it is importable and falls back to a pure-Python
implementation of the *same* canonical fill order otherwise -- the two
paths are differentially tested to be byte-identical, so numpy is a
perf extra (``pip install repro[fast]``), never a correctness
dependency.

Importing this module never raises. ``np`` is the numpy module or
``None``; ``HAVE_NUMPY`` is the boolean gate hot paths branch on once.
Setting ``REPRO_NO_NUMPY=1`` in the environment forces the fallback
even when numpy is installed -- the CI leg proving the pure-Python
path stays green uses it, and tests monkeypatch the same switch.
"""

from __future__ import annotations

import os

np = None
if os.environ.get("REPRO_NO_NUMPY", "0") != "1":
    try:  # pragma: no cover - exercised via both CI legs
        import numpy as np  # type: ignore[no-redef]
    except ImportError:  # pragma: no cover
        np = None

HAVE_NUMPY = np is not None


def numpy_or_none():
    """The numpy module when usable, else ``None`` (call-site gate)."""
    return np
