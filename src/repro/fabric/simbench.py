"""Reference workload + harness for the solver-core perf benchmark.

The ``bench.simcore`` experiment (and the ``benchmarks/perf`` pytest
suite) measure the one hot path every figure funnels through:
:meth:`FluidSimulator.run`. The reference workload is the paper's
stress shape -- one HPN segment, a dual-plane rail-optimized AllReduce
driven for many collective steps (hundreds of simultaneous arrivals
per step boundary), an access-link failure/repair injected mid-run,
and per-flow size jitter so completions spread into tens of thousands
of distinct rate-solve boundaries.

Both engines run the *same* flow objects (reset in between):

* ``solver="full"`` -- the pre-existing from-scratch
  :func:`~repro.fabric.simulator.max_min_rates` at every boundary
  (the baseline the CI perf gate compares against);
* ``solver="incremental"`` -- the dirty-set engine.

The harness returns a JSON-safe payload with wall-clock for both,
the speedup, solver statistics, and a finish-time equivalence check
(CI fails if the engines drift beyond 1e-9 relative).
"""

from __future__ import annotations

import random
import time
from typing import Any, Dict, List, Tuple

from .flow import Flow
from .simulator import FluidSimulator

#: relative finish-time drift beyond which the engines "disagree"
EQUIVALENCE_TOL = 1e-9


def build_reference_workload(
    params: Dict[str, Any], seed: int
) -> Tuple[Any, List[Flow], List[Tuple[float, int, bool]]]:
    """Build ``(topology, flows, link_events)`` for the benchmark.

    ``params``: hosts, conns, steps, step_gap_s, edge_mb, jitter,
    fail_at_s, repair_at_s. Flows are reusable across runs via
    ``Flow.reset``; ``link_events`` are ``(time, link_id, up)``.
    """
    from ..cluster import Cluster
    from ..topos.spec import HpnSpec

    rng = random.Random(seed)
    hosts = int(params["hosts"])
    cluster = Cluster.hpn(HpnSpec(
        segments_per_pod=1,
        hosts_per_segment=max(8, hosts),
        backup_hosts_per_segment=0,
        aggs_per_plane=4,
    ))
    comm = cluster.communicator(
        cluster.place(hosts), num_conns=int(params["conns"])
    )
    steps = int(params["steps"])
    step_gap_s = float(params["step_gap_s"])
    per_edge = float(params["edge_mb"]) * 1e6
    jitter = float(params["jitter"])
    flows: List[Flow] = []
    for step in range(steps):
        batch = comm.all_rails_ring_flows(
            per_edge, tag=f"simcore/step{step}",
            start_time=step * step_gap_s,
        )
        for f in batch:
            if jitter > 0:
                f.size_bytes *= 1.0 + rng.uniform(-jitter, jitter)
                f.reset()
        flows.extend(batch)

    events: List[Tuple[float, int, bool]] = []
    fail_at = float(params["fail_at_s"])
    repair_at = float(params["repair_at_s"])
    if fail_at >= 0 and repair_at > fail_at:
        # victim: an access link some mid-pack flow enters the fabric on
        victim = flows[len(flows) // 2].path.dirlinks[0] // 2
        events.append((fail_at, victim, False))
        events.append((repair_at, victim, True))
    return cluster.topo, flows, events


def _timed_run(
    topo, flows: List[Flow], events, mode: str,
) -> Tuple[float, Dict[int, float], FluidSimulator]:
    sim = FluidSimulator(topo, solver=mode)
    t0 = time.perf_counter()
    sim.add_flows(flows)
    for t, lid, up in events:
        sim.schedule(t, lambda s, l=lid, u=up: s.topo.set_link_state(l, u))
    result = sim.run()
    wall = time.perf_counter() - t0
    return wall, result.flow_finish, sim


def run_simcore(params: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """Run the reference workload under both engines and compare.

    Wall-clock is min-of-``repeat`` per engine. The full engine runs
    first so the incremental engine pays its own (indexed) cache
    warm-up inside its measured window -- the reported speedup is
    conservative.
    """
    topo, flows, events = build_reference_workload(params, seed)
    initial_up = {lid: link.up for lid, link in topo.links.items()}
    repeat = max(1, int(params.get("repeat", 1)))

    def measure(mode: str):
        best_wall = float("inf")
        finish: Dict[int, float] = {}
        sim: FluidSimulator = None  # type: ignore[assignment]
        for _ in range(repeat):
            wall, finish, sim = _timed_run(topo, flows, events, mode)
            best_wall = min(best_wall, wall)
            for lid, up in initial_up.items():
                topo.set_link_state(lid, up)
            for f in flows:
                f.reset()
        return best_wall, finish, sim

    full_wall, full_finish, _ = measure("full")
    inc_wall, inc_finish, inc_sim = measure("incremental")

    max_err = 0.0
    missing = 0
    for f in flows:
        a = full_finish.get(f.flow_id)
        b = inc_finish.get(f.flow_id)
        if a is None or b is None:
            missing += int((a is None) != (b is None))
            continue
        err = abs(a - b) / max(1.0, abs(a))
        if err > max_err:
            max_err = err
    stats = inc_sim._solver.stats if inc_sim._solver is not None else None
    payload: Dict[str, Any] = {
        "workload": {
            "hosts": int(params["hosts"]),
            "conns": int(params["conns"]),
            "steps": int(params["steps"]),
            "step_gap_s": float(params["step_gap_s"]),
            "edge_mb": float(params["edge_mb"]),
            "jitter": float(params["jitter"]),
            "fail_at_s": float(params["fail_at_s"]),
            "repair_at_s": float(params["repair_at_s"]),
            "seed": seed,
        },
        "flows": len(flows),
        "full_wall_s": full_wall,
        "incremental_wall_s": inc_wall,
        "speedup": full_wall / inc_wall if inc_wall > 0 else float("inf"),
        "equivalence": {
            "max_finish_rel_err": max_err,
            "one_sided_finishes": missing,
            "tol": EQUIVALENCE_TOL,
            "ok": missing == 0 and max_err <= EQUIVALENCE_TOL,
        },
    }
    if stats is not None:
        payload["solver"] = {
            "full_solves": stats.full_solves,
            "incremental_solves": stats.incremental_solves,
            "noop_solves": stats.noop_solves,
            "mean_dirty_frac": stats.mean_dirty_frac,
        }
    return payload
