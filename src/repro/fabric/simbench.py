"""Reference workloads + harness for the solver-core perf benchmark.

The ``bench.simcore`` experiment (and the ``benchmarks/perf`` pytest
suite) measure the one hot path every figure funnels through:
:meth:`FluidSimulator.run`. Three tiers:

* **reference** (:func:`run_simcore`) -- the paper's single-segment
  stress shape: a dual-plane rail-optimized AllReduce driven for many
  collective steps, an access-link failure/repair mid-run, per-flow
  size jitter spreading completions into tens of thousands of
  rate-solve boundaries. Gates the incremental engine against the
  from-scratch full engine.
* **pod** (:func:`run_pod_tier`) -- the paper's headline scale: one
  full Pod (15 segments x 128 hosts x 8 rails = 15,360 GPUs, §6), a
  pod-wide inter-segment AllReduce ring per rail (every edge crosses
  the dual-plane aggregation layer), an access-link failure/repair
  inside the measured window. Gates the vectorized kernel against the
  incremental baseline (CI requires >=3x) and the committed rates
  against the legacy oracle per connected component (<=1e-9 drift).
* **multipod** (:func:`run_pod_tier`) -- the §7 shape: a 3-Pod
  pipeline-parallel job (whole stages per pod, PP activations crossing
  the oversubscribed core) with per-pod data-parallel rings, run to
  completion under all three incremental engines.

Every comparison runs the *same* flow objects (reset in between); the
payloads are JSON-safe and land in ``BENCH_simcore.json``.
"""

from __future__ import annotations

import random
import time
from typing import Any, Dict, List, Optional, Tuple

from .flow import Flow
from .simulator import FluidSimulator, max_min_rates

#: relative finish-time drift beyond which the engines "disagree"
EQUIVALENCE_TOL = 1e-9


def build_reference_workload(
    params: Dict[str, Any], seed: int
) -> Tuple[Any, List[Flow], List[Tuple[float, int, bool]]]:
    """Build ``(topology, flows, link_events)`` for the benchmark.

    ``params``: hosts, conns, steps, step_gap_s, edge_mb, jitter,
    fail_at_s, repair_at_s. Flows are reusable across runs via
    ``Flow.reset``; ``link_events`` are ``(time, link_id, up)``.
    """
    from ..cluster import Cluster
    from ..topos.spec import HpnSpec

    rng = random.Random(seed)
    hosts = int(params["hosts"])
    cluster = Cluster.hpn(HpnSpec(
        segments_per_pod=1,
        hosts_per_segment=max(8, hosts),
        backup_hosts_per_segment=0,
        aggs_per_plane=4,
    ))
    comm = cluster.communicator(
        cluster.place(hosts), num_conns=int(params["conns"])
    )
    steps = int(params["steps"])
    step_gap_s = float(params["step_gap_s"])
    per_edge = float(params["edge_mb"]) * 1e6
    jitter = float(params["jitter"])
    flows: List[Flow] = []
    for step in range(steps):
        batch = comm.all_rails_ring_flows(
            per_edge, tag=f"simcore/step{step}",
            start_time=step * step_gap_s,
        )
        for f in batch:
            if jitter > 0:
                f.size_bytes *= 1.0 + rng.uniform(-jitter, jitter)
                f.reset()
        flows.extend(batch)

    events: List[Tuple[float, int, bool]] = []
    fail_at = float(params["fail_at_s"])
    repair_at = float(params["repair_at_s"])
    if fail_at >= 0 and repair_at > fail_at:
        # victim: an access link some mid-pack flow enters the fabric on
        victim = flows[len(flows) // 2].path.dirlinks[0] // 2
        events.append((fail_at, victim, False))
        events.append((repair_at, victim, True))
    return cluster.topo, flows, events


def _timed_run(
    topo, flows: List[Flow], events, mode: str,
) -> Tuple[float, Dict[int, float], FluidSimulator]:
    sim = FluidSimulator(topo, solver=mode)
    t0 = time.perf_counter()
    sim.add_flows(flows)
    for t, lid, up in events:
        sim.schedule(t, lambda s, l=lid, u=up: s.topo.set_link_state(l, u))
    result = sim.run()
    wall = time.perf_counter() - t0
    return wall, result.flow_finish, sim


def run_simcore(params: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """Run the reference workload under both engines and compare.

    Wall-clock is min-of-``repeat`` per engine. The full engine runs
    first so the incremental engine pays its own (indexed) cache
    warm-up inside its measured window -- the reported speedup is
    conservative.
    """
    topo, flows, events = build_reference_workload(params, seed)
    initial_up = {lid: link.up for lid, link in topo.links.items()}
    repeat = max(1, int(params.get("repeat", 1)))

    def measure(mode: str):
        best_wall = float("inf")
        finish: Dict[int, float] = {}
        sim: FluidSimulator = None  # type: ignore[assignment]
        for _ in range(repeat):
            wall, finish, sim = _timed_run(topo, flows, events, mode)
            best_wall = min(best_wall, wall)
            for lid, up in initial_up.items():
                topo.set_link_state(lid, up)
            for f in flows:
                f.reset()
        return best_wall, finish, sim

    full_wall, full_finish, _ = measure("full")
    inc_wall, inc_finish, inc_sim = measure("incremental")

    max_err = 0.0
    missing = 0
    for f in flows:
        a = full_finish.get(f.flow_id)
        b = inc_finish.get(f.flow_id)
        if a is None or b is None:
            missing += int((a is None) != (b is None))
            continue
        err = abs(a - b) / max(1.0, abs(a))
        if err > max_err:
            max_err = err
    stats = inc_sim._solver.stats if inc_sim._solver is not None else None
    payload: Dict[str, Any] = {
        "workload": {
            "hosts": int(params["hosts"]),
            "conns": int(params["conns"]),
            "steps": int(params["steps"]),
            "step_gap_s": float(params["step_gap_s"]),
            "edge_mb": float(params["edge_mb"]),
            "jitter": float(params["jitter"]),
            "fail_at_s": float(params["fail_at_s"]),
            "repair_at_s": float(params["repair_at_s"]),
            "seed": seed,
        },
        "flows": len(flows),
        "full_wall_s": full_wall,
        "incremental_wall_s": inc_wall,
        "speedup": full_wall / inc_wall if inc_wall > 0 else float("inf"),
        "equivalence": {
            "max_finish_rel_err": max_err,
            "one_sided_finishes": missing,
            "tol": EQUIVALENCE_TOL,
            "ok": missing == 0 and max_err <= EQUIVALENCE_TOL,
        },
    }
    if stats is not None:
        payload["solver"] = {
            "full_solves": stats.full_solves,
            "incremental_solves": stats.incremental_solves,
            "noop_solves": stats.noop_solves,
            "mean_dirty_frac": stats.mean_dirty_frac,
            "kernel_iters": stats.kernel_iters,
        }
    return payload


# ======================================================================
# pod / multipod tiers: vectorized + sharded engines at paper scale
# ======================================================================
#: per-tier workload defaults (every key overridable via params)
POD_DEFAULTS: Dict[str, Any] = {
    "segments": 15, "hosts_per_segment": 128, "aggs_per_plane": 60,
    "conns": 1, "edge_mb": 64.0, "jitter": 0.05,
    "fail_at_s": 0.0005, "repair_at_s": 0.0012, "window_s": 0.002,
}
MULTIPOD_DEFAULTS: Dict[str, Any] = {
    "pods": 3, "segments": 2, "hosts_per_segment": 8,
    "aggs_per_plane": 8, "agg_core_uplinks": 2, "cores_per_plane": 4,
    "conns": 1, "edge_mb": 24.0, "pp_mb": 8.0, "steps": 2,
    "step_gap_s": 0.004, "jitter": 0.05,
    "fail_at_s": 0.0005, "repair_at_s": 0.0015, "window_s": 0.0,
}


def _tier_params(params: Dict[str, Any], tier: str) -> Dict[str, Any]:
    base = dict(POD_DEFAULTS if tier == "pod" else MULTIPOD_DEFAULTS)
    for key in base:
        if key in params:
            base[key] = params[key]
    return base


def build_pod_workload(
    params: Dict[str, Any], seed: int
) -> Tuple[Any, List[Flow], List[Tuple[float, int, bool]], Dict[str, Any]]:
    """Full-Pod AllReduce: one inter-segment ring per rail (§6 scale).

    Hosts are placed round-robin across the Pod's segments, so every
    ring edge crosses the aggregation layer -- the traffic that
    actually exercises the dual-plane tier-2 fabric (intra-segment
    edges would each own their access links and decompose into
    singleton components).
    """
    from ..cluster import Cluster
    from ..topos.spec import HpnSpec

    rng = random.Random(seed)
    spec = HpnSpec(
        segments_per_pod=int(params["segments"]),
        hosts_per_segment=int(params["hosts_per_segment"]),
        backup_hosts_per_segment=0,
        aggs_per_plane=int(params["aggs_per_plane"]),
    )
    cluster = Cluster.hpn(spec)
    hosts = cluster.place(
        spec.segments_per_pod * spec.hosts_per_segment, interleave=True
    )
    comm = cluster.communicator(hosts, num_conns=int(params["conns"]))
    per_edge = float(params["edge_mb"]) * 1e6
    jitter = float(params["jitter"])
    flows = comm.all_rails_ring_flows(per_edge, tag="pod/allreduce")
    for f in flows:
        if jitter > 0:
            f.size_bytes *= 1.0 + rng.uniform(-jitter, jitter)
            f.reset()
    events: List[Tuple[float, int, bool]] = []
    fail_at = float(params["fail_at_s"])
    repair_at = float(params["repair_at_s"])
    if fail_at >= 0 and repair_at > fail_at:
        victim = flows[len(flows) // 2].path.dirlinks[0] // 2
        events.append((fail_at, victim, False))
        events.append((repair_at, victim, True))
    meta = {
        "tier": "pod",
        "gpus": spec.total_gpus,
        "segments": spec.segments_per_pod,
        "hosts": len(hosts),
        "rails": spec.rails,
        "links": len(cluster.topo.links),
    }
    return cluster.topo, flows, events, meta


def build_multipod_workload(
    params: Dict[str, Any], seed: int
) -> Tuple[Any, List[Flow], List[Tuple[float, int, bool]], Dict[str, Any]]:
    """3-Pod §7 PP workload: whole stages per pod, DP rings inside.

    ``place_cross_pod`` enforces the paper's rule (only PP traffic
    crosses the oversubscribed core): each pod holds one pipeline
    stage; activations flow host i of stage s -> host i of stage s+1
    across the core, while each stage runs its own per-rail
    data-parallel ring.
    """
    from ..cluster import Cluster
    from ..topos.spec import HpnSpec

    rng = random.Random(seed)
    pods = int(params["pods"])
    spec = HpnSpec(
        pods=pods,
        segments_per_pod=int(params["segments"]),
        hosts_per_segment=int(params["hosts_per_segment"]),
        backup_hosts_per_segment=0,
        aggs_per_plane=int(params["aggs_per_plane"]),
        agg_core_uplinks=int(params["agg_core_uplinks"]),
        cores_per_plane=int(params["cores_per_plane"]),
    )
    cluster = Cluster.hpn(spec)
    per_stage = spec.segments_per_pod * spec.hosts_per_segment
    hosts = cluster.scheduler.place_cross_pod(
        hosts_per_stage=per_stage, pp=pods, pods=list(range(pods))
    )
    stages = [
        hosts[i * per_stage:(i + 1) * per_stage] for i in range(pods)
    ]
    comm = cluster.communicator(hosts, num_conns=int(params["conns"]))
    per_edge = float(params["edge_mb"]) * 1e6
    pp_bytes = float(params["pp_mb"]) * 1e6
    jitter = float(params["jitter"])
    steps = int(params["steps"])
    step_gap_s = float(params["step_gap_s"])
    flows: List[Flow] = []
    for step in range(steps):
        t = step * step_gap_s
        # per-stage DP rings, one per rail (stays inside each pod)
        for s, stage in enumerate(stages):
            for rail in range(spec.rails):
                flows.extend(comm.ring_flows(
                    rail, per_edge, tag=f"mp/step{step}/dp{s}",
                    hosts=stage, start_time=t,
                ))
        # PP activations: stage s -> stage s+1 across the core
        for s in range(pods - 1):
            for i, src in enumerate(stages[s]):
                dst = stages[s + 1][i]
                for rail in range(spec.rails):
                    flows.extend(comm.edge_flows(
                        src, dst, rail, pp_bytes,
                        tag=f"mp/step{step}/pp{s}", start_time=t,
                    ))
    for f in flows:
        if jitter > 0:
            f.size_bytes *= 1.0 + rng.uniform(-jitter, jitter)
            f.reset()
    events: List[Tuple[float, int, bool]] = []
    fail_at = float(params["fail_at_s"])
    repair_at = float(params["repair_at_s"])
    if fail_at >= 0 and repair_at > fail_at:
        victim = flows[len(flows) // 2].path.dirlinks[0] // 2
        events.append((fail_at, victim, False))
        events.append((repair_at, victim, True))
    meta = {
        "tier": "multipod",
        "gpus": spec.total_gpus,
        "pods": pods,
        "segments": spec.segments_per_pod * pods,
        "hosts": len(hosts),
        "rails": spec.rails,
        "links": len(cluster.topo.links),
    }
    return cluster.topo, flows, events, meta


def _timed_tier_run(
    topo, flows: List[Flow], events, mode: str, window_s: float,
) -> Tuple[float, Dict[int, float], Dict[int, float], FluidSimulator]:
    """One engine pass; returns (wall, finishes, final rates, sim).

    ``window_s > 0`` bounds simulated time (the pod tier measures a
    fixed window of the collective rather than running 15k completions
    under the slow baseline); 0 runs to completion. The caller resets
    flows and restores link states between engines -- restoring here
    would desynchronize the topology from the committed rates any
    oracle check reads.
    """
    sim = FluidSimulator(topo, solver=mode)
    t0 = time.perf_counter()
    sim.add_flows(flows)
    for t, lid, up in events:
        sim.schedule(t, lambda s, l=lid, u=up: s.topo.set_link_state(l, u))
    result = sim.run(until=window_s if window_s > 0 else None)
    wall = time.perf_counter() - t0
    rates = {f.flow_id: f.rate_gbps for f in sim.active_flows}
    return wall, result.flow_finish, rates, sim


def _oracle_component_drift(sim: FluidSimulator) -> Dict[str, Any]:
    """Max |committed - oracle| rate over every active flow.

    Runs the legacy :func:`max_min_rates` oracle per connected
    component (components are closed, so the restricted solve is
    exact) -- feasible even at Pod scale, where one flat oracle pass
    over 15k coupled dict entries would dominate the benchmark.
    """
    solver = sim._solver
    assert solver is not None
    index = solver.index
    comps = index.components(index.flows, ())
    worst = 0.0
    checked = 0
    for comp_flows, _links in comps:
        live = [index.flows[fid] for fid in sorted(comp_flows)]
        oracle = max_min_rates(live, sim.link_gbps)
        for f in live:
            drift = abs(f.rate_gbps - oracle[f.flow_id])
            if drift > worst:
                worst = drift
            checked += 1
    return {
        "flows_checked": checked,
        "components": len(comps),
        "max_rate_drift_gbps": worst,
        "tol": EQUIVALENCE_TOL,
        "ok": worst <= EQUIVALENCE_TOL,
    }


def run_pod_tier(
    params: Dict[str, Any], seed: int, tier: str = "pod"
) -> Dict[str, Any]:
    """Pod / multipod benchmark: incremental vs vectorized vs sharded.

    The incremental engine (PR 4's per-flow Python fill) is the
    baseline; the CI gate requires the vectorized kernel >=3x on the
    ``pod`` tier and <=1e-9 max committed-rate drift vs. the legacy
    oracle. The sharded engine runs serially here (wall reported for
    comparison) -- its process backend is covered byte-for-byte by the
    equivalence campaign, where pool startup is not being timed.
    """
    if tier not in ("pod", "multipod"):
        raise ValueError(f"unknown simcore tier {tier!r}")
    p = _tier_params(params, tier)
    if tier == "pod":
        topo, flows, events, meta = build_pod_workload(p, seed)
    else:
        topo, flows, events, meta = build_multipod_workload(p, seed)
    window_s = float(p["window_s"])
    initial_up = {lid: link.up for lid, link in topo.links.items()}

    def restore() -> None:
        for lid, up in initial_up.items():
            topo.set_link_state(lid, up)

    def measure(mode: str, until: float = window_s):
        for f in flows:
            f.reset()
        return _timed_tier_run(topo, flows, events, mode, until)

    inc_wall, inc_finish, inc_rates, _ = measure("incremental")
    restore()
    vec_wall, vec_finish, vec_rates, vec_sim = measure("vectorized")
    # oracle drift against the vectorized engine's committed rates --
    # read *before* restoring links, at the window boundary when one
    # is set, else at a mid-failure probe (completion runs end with
    # nothing active to check)
    if window_s > 0:
        oracle = _oracle_component_drift(vec_sim)
        restore()
    else:
        restore()
        probe_s = (float(p["fail_at_s"]) + float(p["repair_at_s"])) / 2.0
        _pw, _pf, _pr, probe_sim = measure("vectorized", until=probe_s)
        oracle = _oracle_component_drift(probe_sim)
        restore()
    shard_wall, _sh_finish, sh_rates, shard_sim = measure("sharded")
    restore()

    # equivalence: byte-compare finishes AND final committed rates
    mism = 0
    max_err = 0.0
    for fid in set(inc_finish) | set(vec_finish):
        a, b = inc_finish.get(fid), vec_finish.get(fid)
        if (a is None) != (b is None):
            mism += 1
            continue
        if a is not None and b is not None:
            err = abs(a - b) / max(1.0, abs(a))
            max_err = max(max_err, err)
    rate_err = 0.0
    for fid in set(inc_rates) | set(vec_rates) | set(sh_rates):
        a = inc_rates.get(fid)
        b = vec_rates.get(fid)
        c = sh_rates.get(fid)
        if a is None or b is None or c is None:
            mism += 1
            continue
        rate_err = max(rate_err, abs(a - b), abs(a - c))

    stats = vec_sim._solver.stats
    sstats = shard_sim._solver.stats
    payload: Dict[str, Any] = {
        "tier": tier,
        "workload": dict(meta, seed=seed, **{
            k: p[k] for k in sorted(p)
        }),
        "flows": len(flows),
        "incremental_wall_s": inc_wall,
        "vectorized_wall_s": vec_wall,
        "sharded_wall_s": shard_wall,
        "speedup": inc_wall / vec_wall if vec_wall > 0 else float("inf"),
        "sharded_speedup": (
            inc_wall / shard_wall if shard_wall > 0 else float("inf")
        ),
        "equivalence": {
            "max_finish_rel_err": max_err,
            "max_rate_err_gbps": rate_err,
            "one_sided_finishes": mism,
            "tol": EQUIVALENCE_TOL,
            "ok": (mism == 0 and max_err <= EQUIVALENCE_TOL
                   and rate_err <= EQUIVALENCE_TOL),
        },
        "oracle": oracle,
        "solver": {
            "full_solves": stats.full_solves,
            "incremental_solves": stats.incremental_solves,
            "noop_solves": stats.noop_solves,
            "mean_dirty_frac": stats.mean_dirty_frac,
            "kernel_iters": stats.kernel_iters,
        },
        "shards": {
            "shard_solves": sstats.shard_solves,
            "kernel_iters": sstats.kernel_iters,
            "mean_dirty_frac": sstats.mean_dirty_frac,
        },
    }
    return payload
