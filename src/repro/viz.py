"""Plain-text visualization of topologies, paths and link loads.

Terminal-friendly renderings for debugging and teaching: no plotting
dependency, just aligned ASCII. Used by the CLI and the examples.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Optional

from .core.entities import SwitchRole
from .core.topology import Topology
from .fabric.flow import Flow
from .fabric.telemetry import dirlink_loads
from .routing.path import FlowPath


def render_summary(topo: Topology) -> str:
    """One-paragraph inventory."""
    s = topo.summary()
    lines = [
        f"topology {s['name']!r} ({topo.meta.get('architecture', '?')})",
        f"  hosts: {s['hosts']} ({s['active_hosts']} active, "
        f"{s['gpus']} GPUs)",
        f"  switches: "
        + ", ".join(f"{count} {role}" for role, count in s["switches"].items()),
        f"  links: {s['links']}",
    ]
    return "\n".join(lines)


def render_tiers(topo: Topology, max_items: int = 8) -> str:
    """Tier-by-tier switch listing, elided for big fabrics."""
    by_tier: Dict[int, List[str]] = defaultdict(list)
    for sw in topo.switches.values():
        by_tier[sw.tier].append(sw.name)
    lines = []
    for tier in sorted(by_tier, reverse=True):
        names = sorted(by_tier[tier])
        shown = names[:max_items]
        extra = f" ... (+{len(names) - max_items})" if len(names) > max_items else ""
        label = {1: "tier1/ToR", 2: "tier2/Agg", 3: "tier3/Core"}.get(tier, f"tier{tier}")
        lines.append(f"{label:>10}: " + "  ".join(shown) + extra)
    hosts = sorted(topo.hosts)[:max_items]
    extra = (
        f" ... (+{len(topo.hosts) - max_items})" if len(topo.hosts) > max_items else ""
    )
    lines.append(f"{'hosts':>10}: " + "  ".join(hosts) + extra)
    return "\n".join(lines)


def render_path(path: FlowPath) -> str:
    """``host -(plane0)-> tor -> agg -> tor -> host`` style arrow line."""
    plane = f" [plane {path.plane}]" if path.plane is not None else ""
    return " -> ".join(path.nodes) + plane


def render_loads(
    topo: Topology,
    flows: Iterable[Flow],
    node: str,
    width: int = 40,
) -> str:
    """Horizontal bar chart of one node's per-port egress load."""
    loads = dirlink_loads(flows)
    rows = []
    for port in topo.ports[node]:
        if port.link_id is None:
            continue
        link = topo.links[port.link_id]
        direction = 0 if link.a.node == node else 1
        gbps = loads.get(link.link_id * 2 + direction, 0.0)
        frac = min(1.0, gbps / link.gbps) if link.gbps else 0.0
        bar = "#" * int(round(frac * width))
        peer = link.other(node).node
        rows.append(
            f"  port {port.ref.index:>3} -> {peer:<28} "
            f"|{bar:<{width}}| {gbps:7.1f}/{link.gbps:.0f} Gbps"
        )
    header = f"egress load at {node}:"
    return "\n".join([header] + (rows or ["  (no wired ports)"]))


def render_plane_usage(topo: Topology, flows: Iterable[Flow]) -> str:
    """Traffic split between planes (dual-plane fabrics)."""
    loads = dirlink_loads(flows)
    per_plane: Dict[Optional[int], float] = defaultdict(float)
    for dl, gbps in loads.items():
        link = topo.links[dl // 2]
        for end in (link.a.node, link.b.node):
            sw = topo.switches.get(end)
            if sw is not None and sw.plane is not None:
                per_plane[sw.plane] += gbps / 2
                break
    if not per_plane:
        return "no plane-tagged traffic"
    total = sum(per_plane.values())
    lines = ["plane usage:"]
    for plane in sorted(per_plane):
        share = per_plane[plane] / total if total else 0.0
        lines.append(f"  plane {plane}: {per_plane[plane]:9.1f} Gbps ({share:.0%})")
    return "\n".join(lines)


def render_oversubscription(topo: Topology) -> str:
    """Per-role down:up capacity table."""
    from .topos.validate import oversubscription_report

    report = oversubscription_report(topo)
    if not report:
        return "no multi-tier structure"
    lines = ["oversubscription (down:up):"]
    for role in (SwitchRole.TOR.value, SwitchRole.AGG.value, SwitchRole.CORE.value):
        if role in report:
            lines.append(f"  {role:>5}: {report[role]:.3f}:1")
    return "\n".join(lines)
