"""Composite failure scenarios.

Reusable multi-event drills built on the primitive fault events --
the situations operators actually debug, each returning the event list
a :class:`~repro.reliability.injector.FaultInjector` replays:

* :func:`rolling_upgrade` -- take each ToR of a dual-ToR set down in
  turn (the maintenance pattern non-stacked dual-ToR makes safe);
* :func:`cascading_flaps` -- flap storms hopping across hosts (the
  5K-60K daily flap reality of paper §2.3);
* :func:`tor_crash_with_slow_replacement` -- a ToR dies and hardware
  replacement takes hours; training must ride on the sibling plane;
* :func:`double_fault` -- the dual-ToR kill condition: both access
  legs of one NIC fail in overlapping windows.
"""

from __future__ import annotations

from typing import List, Sequence

from ..core.topology import Topology
from .failures import FaultEvent, FaultKind, link_flapping_scenario


def rolling_upgrade(
    topo: Topology,
    host: str,
    rail: int,
    start: float = 10.0,
    per_tor_downtime: float = 30.0,
    gap: float = 20.0,
) -> List[FaultEvent]:
    """Upgrade both ToRs of one dual-ToR set, one at a time."""
    tors = topo.tors_of_host(host)
    nic = topo.hosts[host].nic_for_rail(rail)
    serving = []
    for pref in nic.ports:
        port = topo.port(pref)
        if port.link_id is not None:
            serving.append(topo.links[port.link_id].other(host).node)
    events: List[FaultEvent] = []
    t = start
    for tor in serving:
        events.append(FaultEvent(t, FaultKind.TOR_DOWN, switch=tor))
        events.append(FaultEvent(t + per_tor_downtime, FaultKind.TOR_UP, switch=tor))
        t += per_tor_downtime + gap
    return events


def cascading_flaps(
    hosts: Sequence[str],
    rail: int = 0,
    start: float = 5.0,
    flaps_per_host: int = 2,
    stagger: float = 8.0,
) -> List[FaultEvent]:
    """Flap storms moving host to host (correlated optics degradation)."""
    events: List[FaultEvent] = []
    t = start
    for host in hosts:
        events.extend(
            link_flapping_scenario(
                host, rail, start=t, flaps=flaps_per_host,
                down_seconds=0.5, up_seconds=1.5,
            )
        )
        t += stagger
    return events


def tor_crash_with_slow_replacement(
    topo: Topology,
    host: str,
    rail: int,
    crash_at: float = 10.0,
    replacement_hours: float = 2.0,
) -> List[FaultEvent]:
    """One ToR of the set dies; replacement arrives hours later."""
    nic = topo.hosts[host].nic_for_rail(rail)
    port = topo.port(nic.ports[0])
    tor = topo.links[port.link_id].other(host).node
    return [
        FaultEvent(crash_at, FaultKind.TOR_DOWN, switch=tor),
        FaultEvent(
            crash_at + replacement_hours * 3600.0, FaultKind.TOR_UP, switch=tor
        ),
    ]


def double_fault(
    host: str,
    rail: int,
    first_at: float = 10.0,
    second_at: float = 20.0,
    repair_first: float = 60.0,
    repair_second: float = 90.0,
) -> List[FaultEvent]:
    """Both access legs of one NIC fail with overlapping outages --
    the only access pattern that halts a dual-ToR job."""
    return [
        FaultEvent(first_at, FaultKind.LINK_DOWN, host=host, rail=rail, nic_port=0),
        FaultEvent(second_at, FaultKind.LINK_DOWN, host=host, rail=rail, nic_port=1),
        FaultEvent(repair_first, FaultKind.LINK_UP, host=host, rail=rail, nic_port=0),
        FaultEvent(repair_second, FaultKind.LINK_UP, host=host, rail=rail, nic_port=1),
    ]
