"""Failure models, fault injection, and single-point-of-failure analysis."""

from .failures import (
    FaultEvent,
    FaultKind,
    link_failure_scenario,
    link_flapping_scenario,
    tor_crash_scenario,
)
from .injector import (
    DEFAULT_CRASH_TIMEOUT_S,
    DEFAULT_RECONNECT_STALL,
    FaultInjector,
    InjectionResult,
    TimelinePoint,
)
from .montecarlo import (
    FleetSimulation,
    JobFootprint,
    MonthOutcome,
    expected_crash_free_months,
)
from .scenarios import (
    cascading_flaps,
    double_fault,
    rolling_upgrade,
    tor_crash_with_slow_replacement,
)
from .singlepoint import (
    SpofReport,
    analyze_access_link_spof,
    analyze_tor_spof,
    disconnected_hosts_on_tor_failure,
)
from .stats import (
    DAILY_FLAP_RANGE,
    FleetFailureModel,
    MONTHLY_LINK_FAILURE_RATE,
    MONTHLY_TOR_FAILURE_RATE,
    expected_crashes_per_month,
    monthly_series,
)

__all__ = [
    "cascading_flaps",
    "double_fault",
    "rolling_upgrade",
    "tor_crash_with_slow_replacement",
    "FleetSimulation",
    "JobFootprint",
    "MonthOutcome",
    "expected_crash_free_months",
    "DAILY_FLAP_RANGE",
    "DEFAULT_CRASH_TIMEOUT_S",
    "DEFAULT_RECONNECT_STALL",
    "FaultEvent",
    "FaultInjector",
    "FaultKind",
    "FleetFailureModel",
    "InjectionResult",
    "MONTHLY_LINK_FAILURE_RATE",
    "MONTHLY_TOR_FAILURE_RATE",
    "SpofReport",
    "TimelinePoint",
    "analyze_access_link_spof",
    "analyze_tor_spof",
    "disconnected_hosts_on_tor_failure",
    "expected_crashes_per_month",
    "link_failure_scenario",
    "link_flapping_scenario",
    "monthly_series",
    "tor_crash_scenario",
]
