"""Failure event primitives: link down, link flap, ToR crash.

Events target topology elements by role, so the same scenario script
runs against HPN (dual-ToR) and single-ToR baselines; the injector
resolves them to concrete link ids at run time.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional

from ..core.topology import Topology


class FaultKind(enum.Enum):
    LINK_DOWN = "link-down"
    LINK_UP = "link-up"
    TOR_DOWN = "tor-down"
    TOR_UP = "tor-up"


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault/repair."""

    time: float
    kind: FaultKind
    #: access-link target: (host, rail, nic port); or switch name
    host: Optional[str] = None
    rail: Optional[int] = None
    nic_port: int = 0
    switch: Optional[str] = None

    def resolve_link(self, topo: Topology) -> int:
        """Link id of the targeted access link."""
        if self.host is None or self.rail is None:
            raise ValueError("event does not target an access link")
        nic = topo.hosts[self.host].nic_for_rail(self.rail)
        port = topo.port(nic.ports[self.nic_port])
        if port.link_id is None:
            raise ValueError(f"{nic.name} port {self.nic_port} is unwired")
        return port.link_id


def link_failure_scenario(
    host: str, rail: int, fail_at: float, repair_at: Optional[float] = None,
    nic_port: int = 0,
) -> List[FaultEvent]:
    """Figure 18a: one access link fails, optionally repaired later."""
    events = [FaultEvent(fail_at, FaultKind.LINK_DOWN, host=host, rail=rail,
                         nic_port=nic_port)]
    if repair_at is not None:
        events.append(FaultEvent(repair_at, FaultKind.LINK_UP, host=host,
                                 rail=rail, nic_port=nic_port))
    return events


def link_flapping_scenario(
    host: str, rail: int, start: float, flaps: int = 3,
    down_seconds: float = 0.5, up_seconds: float = 2.0, nic_port: int = 0,
) -> List[FaultEvent]:
    """Figure 18b: repeated short down/up cycles on one access link."""
    events = []
    t = start
    for _ in range(flaps):
        events.append(FaultEvent(t, FaultKind.LINK_DOWN, host=host, rail=rail,
                                 nic_port=nic_port))
        events.append(FaultEvent(t + down_seconds, FaultKind.LINK_UP, host=host,
                                 rail=rail, nic_port=nic_port))
        t += down_seconds + up_seconds
    return events


def tor_crash_scenario(switch: str, fail_at: float,
                       repair_at: Optional[float] = None) -> List[FaultEvent]:
    events = [FaultEvent(fail_at, FaultKind.TOR_DOWN, switch=switch)]
    if repair_at is not None:
        events.append(FaultEvent(repair_at, FaultKind.TOR_UP, switch=switch))
    return events
