"""Fault injection into a running training job (paper 9.3, Figure 18).

The injector replays a :class:`FaultEvent` script against a
:class:`~repro.training.job.TrainingJob` and produces the throughput
timeline the paper plots:

* **dual-ToR** -- a failed access leg halves that NIC's bandwidth; the
  job re-establishes connections on the surviving plane after the BGP
  convergence window and keeps training a few percent slower;
* **single-ToR** -- the host disappears; synchronous training halts
  immediately, survives short outages via NCCL reconnect (with a
  multi-second stall), and crashes outright when the outage exceeds the
  communicator timeout (rollback to checkpoint required).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..core.errors import ReproError, RoutingError
from ..obs import resolve as _obs_resolve
from ..training.job import TrainingJob
from .failures import FaultEvent, FaultKind

#: NCCL-style communicator timeout: outages longer than this crash the job
DEFAULT_CRASH_TIMEOUT_S = 120.0
#: stall after a surviving single-ToR link returns (reconnect storm)
DEFAULT_RECONNECT_STALL = 9.0
#: BGP /32 withdrawal + propagation window (dual-ToR failover)
DEFAULT_CONVERGENCE = 0.55


@dataclass
class TimelinePoint:
    time: float
    samples_per_sec: float
    note: str = ""


@dataclass
class InjectionResult:
    timeline: List[TimelinePoint]
    crashed: bool
    crash_time: Optional[float] = None

    def throughput_at(self, t: float) -> float:
        """Piecewise-constant lookup."""
        best = 0.0
        for point in self.timeline:
            if point.time <= t:
                best = point.samples_per_sec
            else:
                break
        return best

    def min_throughput(self, after: float = 0.0) -> float:
        vals = [p.samples_per_sec for p in self.timeline if p.time >= after]
        return min(vals) if vals else 0.0


@dataclass
class FaultInjector:
    """Replays fault events against one training job."""

    job: TrainingJob
    crash_timeout_s: float = DEFAULT_CRASH_TIMEOUT_S
    reconnect_stall: float = DEFAULT_RECONNECT_STALL
    convergence: float = DEFAULT_CONVERGENCE
    #: injectable recorder; None defers to the process-wide one
    recorder: Optional[object] = None

    def run(self, events: Sequence[FaultEvent], duration: float) -> InjectionResult:
        topo = self.job.topo
        rec = _obs_resolve(self.recorder)
        timeline: List[TimelinePoint] = []
        crashed = False
        crash_time: Optional[float] = None
        outage_since: Optional[float] = None
        #: a scheduled "recovered" point that later events may supersede
        pending_recovery_index: Optional[int] = None

        def throughput(note: str, t: float) -> None:
            # no explicit refresh_connections(): every injected fault
            # bumps Topology.state_epoch, and the Communicator drops its
            # connection sets on the epoch move -- the cached router
            # then re-walks only the routes the fault dirtied
            try:
                rate = self.job.samples_per_sec()
            except (RoutingError, ReproError):
                rate = 0.0
            timeline.append(TimelinePoint(t, rate, note))

        throughput("baseline", 0.0)
        for event in sorted(events, key=lambda e: e.time):
            if event.time > duration or crashed:
                break
            if event.kind is FaultKind.LINK_DOWN:
                link = event.resolve_link(topo)
                topo.set_link_state(link, up=False)
                if self._job_halted():
                    # a flap during an unfinished reconnect stall extends
                    # the halt: drop the superseded recovery point
                    if (
                        pending_recovery_index is not None
                        and timeline[pending_recovery_index].time > event.time
                    ):
                        del timeline[pending_recovery_index]
                        pending_recovery_index = None
                    if outage_since is None:
                        outage_since = event.time
                    timeline.append(TimelinePoint(event.time, 0.0, "halted"))
                else:
                    # blackhole window before BGP converges
                    if rec is not None:
                        rec.metrics.counter("inject.faults",
                                            kind="link_down").inc()
                        rec.events.span(
                            "failover.convergence", event.time,
                            event.time + self.convergence,
                            track="failover", link=str(link),
                        )
                    timeline.append(
                        TimelinePoint(event.time, 0.0, "convergence window")
                    )
                    throughput("degraded", event.time + self.convergence)
            elif event.kind is FaultKind.LINK_UP:
                link = event.resolve_link(topo)
                topo.set_link_state(link, up=True)
                if outage_since is not None:
                    outage = event.time - outage_since
                    if outage > self.crash_timeout_s:
                        crashed = True
                        crash_time = outage_since + self.crash_timeout_s
                        timeline.append(
                            TimelinePoint(crash_time, 0.0, "crashed (timeout)")
                        )
                        break
                    outage_since = None
                    if rec is not None:
                        rec.events.span(
                            "failover.reconnect", event.time,
                            event.time + self.reconnect_stall,
                            track="failover", link=str(link),
                        )
                    throughput(
                        "recovered after reconnect",
                        event.time + self.reconnect_stall,
                    )
                    pending_recovery_index = len(timeline) - 1
                else:
                    if rec is not None:
                        rec.events.span(
                            "failover.repair", event.time,
                            event.time + self.convergence,
                            track="failover", link=str(link),
                        )
                    throughput("repaired", event.time + self.convergence)
            elif event.kind is FaultKind.TOR_DOWN:
                topo.fail_node(event.switch)
                if self._job_halted():
                    outage_since = event.time
                    timeline.append(TimelinePoint(event.time, 0.0, "halted"))
                else:
                    throughput("tor lost", event.time + self.convergence)
            elif event.kind is FaultKind.TOR_UP:
                topo.recover_node(event.switch)
                throughput("tor restored", event.time + self.convergence)

        if not crashed and outage_since is not None:
            if duration - outage_since > self.crash_timeout_s:
                crashed = True
                crash_time = outage_since + self.crash_timeout_s
                timeline.append(TimelinePoint(crash_time, 0.0, "crashed (timeout)"))
        return InjectionResult(timeline, crashed, crash_time)

    # ------------------------------------------------------------------
    def _job_halted(self) -> bool:
        """Whether some job host lost all backend connectivity."""
        router = self.job.router
        topo = self.job.topo
        for host in self.job.placement.hosts:
            for nic in topo.hosts[host].backend_nics():
                alive = any(leg.usable for leg in router.access_legs(nic))
                if not alive:
                    return True
        return False
