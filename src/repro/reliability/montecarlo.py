"""Monte-Carlo fleet reliability simulation.

Extends the closed-form rates of :mod:`repro.reliability.stats` with a
month-long discrete simulation: link failures, ToR crashes and flap
episodes arrive as Poisson processes over a job's footprint, and each
event is classified by what it does to training under single-ToR vs
dual-ToR access. Regenerates the paper's operational claims ("a single
job sees 1-2 crashes per month"; "no single-point failure in eight
months of HPN") with confidence intervals instead of point estimates.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List, Optional

from .stats import (
    MONTHLY_LINK_FAILURE_RATE,
    MONTHLY_TOR_FAILURE_RATE,
    SECONDS_PER_MONTH,
)


@dataclass(frozen=True)
class JobFootprint:
    """Network elements one training job depends on."""

    access_links: int
    tors: int
    dual_tor: bool

    @classmethod
    def for_gpus(cls, gpus: int, dual_tor: bool) -> "JobFootprint":
        hosts = max(1, gpus // 8)
        links = hosts * 8 * (2 if dual_tor else 1)
        tors = max(1, gpus // (128 if dual_tor else 64))
        return cls(access_links=links, tors=tors, dual_tor=dual_tor)


@dataclass
class MonthOutcome:
    """One simulated month."""

    link_failures: int = 0
    tor_failures: int = 0
    crashes: int = 0
    degradations: int = 0


@dataclass
class FleetSimulation:
    """Poisson-arrival failure simulation over many months."""

    footprint: JobFootprint
    monthly_link_rate: float = MONTHLY_LINK_FAILURE_RATE
    monthly_tor_rate: float = MONTHLY_TOR_FAILURE_RATE
    #: probability a dual-ToR event still crashes the job (residual
    #: software faults, double failures inside the repair window)
    dual_tor_residual_crash: float = 0.01
    seed: int = 42

    def run(self, months: int = 12,
            seed: Optional[int] = None) -> List[MonthOutcome]:
        """Simulate ``months`` with one dedicated RNG stream.

        ``seed`` overrides the instance seed for this run only; every
        run owns its own :class:`random.Random`, so concurrent or
        reordered runs can never perturb each other's draws.
        """
        rng = random.Random(self.seed if seed is None else seed)
        out: List[MonthOutcome] = []
        link_lambda = self.footprint.access_links * self.monthly_link_rate
        tor_lambda = self.footprint.tors * self.monthly_tor_rate
        for _ in range(months):
            month = MonthOutcome()
            month.link_failures = _poisson(rng, link_lambda)
            month.tor_failures = _poisson(rng, tor_lambda)
            events = month.link_failures + month.tor_failures
            for _e in range(events):
                if self.footprint.dual_tor:
                    if rng.random() < self.dual_tor_residual_crash:
                        month.crashes += 1
                    else:
                        month.degradations += 1
                else:
                    month.crashes += 1
            out.append(month)
        return out

    # ------------------------------------------------------------------
    def summarize(self, months: int = 12,
                  seed: Optional[int] = None) -> Dict[str, float]:
        outcomes = self.run(months, seed=seed)
        crashes = [m.crashes for m in outcomes]
        return {
            "months": float(months),
            "mean_crashes_per_month": sum(crashes) / months,
            "max_crashes_in_a_month": float(max(crashes)),
            "months_without_crash": float(sum(1 for c in crashes if c == 0)),
            "mean_degradations_per_month": sum(m.degradations for m in outcomes)
            / months,
        }

    def run_trials(self, trials: int, months: int = 12,
                   base_seed: Optional[int] = None) -> List[Dict[str, float]]:
        """Independent repeated trials with explicit per-trial seeding.

        Trial ``t`` draws from its own ``random.Random(seed + t)``
        stream, so trial results are a pure function of (footprint,
        rates, seed, t): running trials in any order, in parallel, or
        individually (see the ``reliability.trial`` engine experiment)
        yields identical outcomes.
        """
        seed0 = self.seed if base_seed is None else base_seed
        return [
            self.summarize(months, seed=seed0 + t) for t in range(trials)
        ]


def _poisson(rng: random.Random, lam: float) -> int:
    """Knuth's algorithm; fine for the small lambdas involved."""
    if lam <= 0:
        return 0
    threshold = math.exp(-lam)
    k, p = 0, 1.0
    while True:
        p *= rng.random()
        if p <= threshold:
            return k
        k += 1


def expected_crash_free_months(gpus: int, dual_tor: bool, months: int = 8,
                               seed: int = 7) -> float:
    """Probability-style estimate of surviving ``months`` crash-free.

    The paper reports zero ToR-related single-point failures in eight
    months of HPN operation; this reproduces the estimate.
    """
    sim = FleetSimulation(JobFootprint.for_gpus(gpus, dual_tor), seed=seed)
    trials = 200
    survived = 0
    for t in range(trials):
        # each trial owns stream seed+t -- order-independent draws
        outcomes = sim.run(months, seed=seed + t)
        if all(m.crashes == 0 for m in outcomes):
            survived += 1
    return survived / trials
