"""Single-point-of-failure analysis over a topology (paper goal G3).

HPN's claim: no single ToR (or access link) failure disconnects a host.
The analyzer brute-forces it: fail each switch (or access link) in
turn and check whether any active host loses all backend connectivity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from ..core.entities import SwitchRole
from ..core.topology import Topology


@dataclass
class SpofReport:
    """Which elements are single points of failure."""

    spof_switches: List[str] = field(default_factory=list)
    spof_links: List[int] = field(default_factory=list)
    switches_checked: int = 0
    links_checked: int = 0

    @property
    def is_spof_free(self) -> bool:
        return not self.spof_switches and not self.spof_links


def _host_disconnected(topo: Topology, host: str) -> bool:
    """All backend NICs of a host lost every live access leg."""
    h = topo.hosts[host]
    for nic in h.backend_nics():
        alive = False
        for pref in nic.ports:
            port = topo.port(pref)
            if port.link_id is not None and topo.links[port.link_id].up:
                alive = True
                break
        if not alive:
            return True
    return False


def analyze_tor_spof(topo: Topology) -> SpofReport:
    """Fail every ToR in turn and test host connectivity."""
    report = SpofReport()
    for sw in topo.switches_by_role(SwitchRole.TOR):
        report.switches_checked += 1
        with topo.transient_state():
            topo.fail_node(sw.name)
            victims = [
                h for h in topo.hosts_of_tor(sw.name) if _host_disconnected(topo, h)
            ]
            if victims:
                report.spof_switches.append(sw.name)
    return report


def analyze_access_link_spof(topo: Topology, sample_every: int = 1) -> SpofReport:
    """Fail access links (host<->ToR) in turn; sampled for big fabrics."""
    report = SpofReport()
    count = 0
    for host in topo.hosts.values():
        for nic in host.backend_nics():
            for pref in nic.ports:
                port = topo.port(pref)
                if port.link_id is None:
                    continue
                count += 1
                if (count - 1) % sample_every:
                    continue
                report.links_checked += 1
                # through the mutator, not `link.up = False`: the state
                # epoch must bump so route caches see the what-if
                # failure (and the restore) instead of serving stale
                # paths ever after
                with topo.transient_state():
                    topo.set_link_state(port.link_id, up=False)
                    if _host_disconnected(topo, host.name):
                        report.spof_links.append(port.link_id)
    return report


def disconnected_hosts_on_tor_failure(topo: Topology, tor: str) -> List[str]:
    """Hosts that would lose connectivity if ``tor`` crashed."""
    with topo.transient_state():
        topo.fail_node(tor)
        return [h for h in topo.hosts_of_tor(tor) if _host_disconnected(topo, h)]
