"""Failure statistics (paper 2.3, Figure 5).

Production rates the paper reports, used both to regenerate Figure 5's
monthly series and to estimate how often a large job crashes:

* 0.057% of NIC-ToR links fail per month;
* 0.051% of ToR switches hit critical errors per month;
* 5K-60K link-flap events per day fleet-wide.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Tuple

#: paper-reported monthly rates
MONTHLY_LINK_FAILURE_RATE = 0.00057
MONTHLY_TOR_FAILURE_RATE = 0.00051
DAILY_FLAP_RANGE = (5_000, 60_000)

SECONDS_PER_MONTH = 30 * 24 * 3600.0


@dataclass(frozen=True)
class FleetFailureModel:
    """Poisson failure model for one job's footprint."""

    monthly_link_rate: float = MONTHLY_LINK_FAILURE_RATE
    monthly_tor_rate: float = MONTHLY_TOR_FAILURE_RATE

    def job_crash_rate_per_month(self, links: int, tors: int) -> float:
        """Expected fatal events per month for a single-ToR-style job
        where any link or ToR failure crashes training."""
        return links * self.monthly_link_rate + tors * self.monthly_tor_rate

    def job_mtbf_seconds(self, links: int, tors: int) -> float:
        rate = self.job_crash_rate_per_month(links, tors)
        if rate <= 0:
            return math.inf
        return SECONDS_PER_MONTH / rate


def monthly_series(
    months: int = 12,
    base_rate: float = MONTHLY_LINK_FAILURE_RATE,
    jitter: float = 0.35,
    seed: int = 23,
) -> List[Tuple[str, float]]:
    """Figure 5-style series: (month label, failure ratio)."""
    rng = random.Random(seed)
    labels = [f"{(1 + i) % 12 + 1:02d}/23" for i in range(months)]
    out = []
    for label in labels:
        ratio = base_rate * (1.0 + rng.uniform(-jitter, jitter))
        out.append((label, max(0.0, ratio)))
    return out


def expected_crashes_per_month(num_gpus: int,
                               links_per_gpu: float = 1.0,
                               gpus_per_tor: int = 128) -> float:
    """Paper's observation: a single large job sees 1-2 crashes/month.

    A 3K-GPU single-ToR job touches ~3K access links and ~dozens of
    ToRs; with the production rates that lands at one to two fatal
    events per month.
    """
    model = FleetFailureModel()
    links = int(num_gpus * links_per_gpu)
    tors = max(1, num_gpus // gpus_per_tor)
    return model.job_crash_rate_per_month(links, tors)
