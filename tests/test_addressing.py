"""IP/MAC assignment: uniqueness, subnet structure, lookup."""

import pytest

from repro.core.addressing import (
    SubnetKey,
    VIRTUAL_ROUTER_MAC,
    backend_ip,
    frontend_ip,
    iter_subnets,
    nic_by_ip,
)
from repro.core.errors import TopologyError


def test_backend_ip_structure():
    assert backend_ip(0, 0, 0, 0) == "10.0.0.1"
    assert backend_ip(1, 2, 3, 4) == "10.1.19.5"


def test_backend_ip_rejects_bad_rail():
    with pytest.raises(TopologyError):
        backend_ip(0, 0, 8, 0)
    with pytest.raises(TopologyError):
        backend_ip(0, 0, -1, 0)


def test_frontend_ip_distinct_space():
    assert frontend_ip(0, 0, 0).startswith("172.16.")


def test_all_nics_have_unique_ips(hpn_small):
    ips = set()
    for host in hpn_small.hosts.values():
        for nic in host.nics:
            assert nic.ip is not None
            assert nic.ip not in ips
            ips.add(nic.ip)


def test_all_nics_have_unique_macs(hpn_small):
    macs = set()
    for host in hpn_small.hosts.values():
        for nic in host.nics:
            assert nic.mac is not None
            assert nic.mac not in macs
            macs.add(nic.mac)


def test_no_nic_uses_virtual_router_mac(hpn_small):
    """4.2's requirement: the reserved MAC must never appear on a host."""
    for host in hpn_small.hosts.values():
        for nic in host.nics:
            assert nic.mac.lower() != VIRTUAL_ROUTER_MAC.lower()


def test_subnets_group_one_dual_tor_set(hpn_small):
    """Each (pod, segment, rail) subnet holds one NIC per host."""
    for key, nics in iter_subnets(hpn_small):
        assert isinstance(key, SubnetKey)
        hosts = {n.host for n in nics}
        assert len(hosts) == len(nics)
        assert all(n.rail == key.rail for n in nics)


def test_subnet_cidr_format():
    assert SubnetKey(0, 1, 2).cidr() == "10.0.10.0/24"


def test_nic_by_ip_lookup(hpn_small):
    nic = hpn_small.hosts["pod0/seg0/host0"].nic_for_rail(3)
    assert nic_by_ip(hpn_small, nic.ip) is nic
    with pytest.raises(KeyError):
        nic_by_ip(hpn_small, "203.0.113.9")


def test_same_rail_same_segment_shares_slash24(hpn_small):
    a = hpn_small.hosts["pod0/seg0/host0"].nic_for_rail(2)
    b = hpn_small.hosts["pod0/seg0/host1"].nic_for_rail(2)
    assert a.ip.rsplit(".", 1)[0] == b.ip.rsplit(".", 1)[0]


def test_different_rails_use_different_subnets(hpn_small):
    a = hpn_small.hosts["pod0/seg0/host0"].nic_for_rail(0)
    b = hpn_small.hosts["pod0/seg0/host0"].nic_for_rail(1)
    assert a.ip.rsplit(".", 1)[0] != b.ip.rsplit(".", 1)[0]
