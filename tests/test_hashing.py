"""Hash family: determinism, spread, polarization semantics."""

import pytest

from repro.routing import (
    FiveTuple,
    ecmp_index,
    ecmp_select,
    hash_five_tuple,
    polarization_coefficient,
)


def _flows(n, dst="10.0.1.1"):
    return [FiveTuple("10.0.0.1", dst, 49152 + i, 4791) for i in range(n)]


def test_hash_is_deterministic():
    ft = FiveTuple("10.0.0.1", "10.0.1.1", 50000, 4791)
    assert hash_five_tuple(ft, 7) == hash_five_tuple(ft, 7)


def test_hash_depends_on_every_field():
    base = FiveTuple("10.0.0.1", "10.0.1.1", 50000, 4791, 17)
    variants = [
        base._replace(src_ip="10.0.0.2"),
        base._replace(dst_ip="10.0.1.2"),
        base._replace(sport=50001),
        base._replace(dport=4792),
        base._replace(proto=6),
    ]
    h0 = hash_five_tuple(base)
    assert all(hash_five_tuple(v) != h0 for v in variants)


def test_hash_depends_on_seed():
    ft = FiveTuple("10.0.0.1", "10.0.1.1", 50000, 4791)
    assert hash_five_tuple(ft, 0) != hash_five_tuple(ft, 1)


def test_with_sport():
    ft = FiveTuple("a", "b", 1, 2)
    assert ft.with_sport(9).sport == 9
    assert ft.with_sport(9).dst_ip == "b"


def test_ecmp_index_in_range():
    for ft in _flows(100):
        assert 0 <= ecmp_index(ft, 0, 7) < 7


def test_ecmp_index_single_member():
    assert ecmp_index(_flows(1)[0], 0, 1) == 0


def test_ecmp_index_rejects_empty_group():
    with pytest.raises(ValueError):
        ecmp_index(_flows(1)[0], 0, 0)


def test_ecmp_select_returns_member():
    members = ["a", "b", "c"]
    assert ecmp_select(_flows(1)[0], 0, members) in members


def test_spread_roughly_uniform():
    """1000 flows over 8 members: each member gets a decent share."""
    counts = [0] * 8
    for ft in _flows(1000):
        counts[ecmp_index(ft, 0, 8)] += 1
    assert min(counts) > 1000 / 8 * 0.6
    assert max(counts) < 1000 / 8 * 1.5


def test_same_seed_fully_polarized():
    """Identical seed + identical member count = identical choices."""
    flows = _flows(200)
    a = [ecmp_index(ft, 0, 16) for ft in flows]
    b = [ecmp_index(ft, 0, 16) for ft in flows]
    assert polarization_coefficient(a, b) == 1.0


def test_different_seeds_decorrelate():
    flows = _flows(500)
    a = [ecmp_index(ft, 1, 16) for ft in flows]
    b = [ecmp_index(ft, 2, 16) for ft in flows]
    coeff = polarization_coefficient(a, b)
    # independent hashing: expectation 1/16, allow generous slack
    assert coeff < 0.25


def test_polarization_coefficient_validates_inputs():
    with pytest.raises(ValueError):
        polarization_coefficient([], [])
    with pytest.raises(ValueError):
        polarization_coefficient([1], [1, 2])
