"""CLI surface of the experiment engine: exp list / run / compare."""

from __future__ import annotations

import json
import os

import pytest

from repro.cli import main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestExpList:
    def test_lists_builtin_catalogue(self, capsys):
        code, out, _ = run_cli(capsys, "exp", "list")
        assert code == 0
        for kind in ("reliability.trials", "sweep.oversubscription",
                     "drill.link-failure", "bench.allreduce"):
            assert kind in out

    def test_verbose_shows_defaults(self, capsys):
        code, out, _ = run_cli(capsys, "exp", "list", "-v")
        assert code == 0
        assert "defaults:" in out
        assert "gpus=3000" in out


class TestExpRun:
    def _run(self, capsys, tmp_path, *extra):
        return run_cli(
            capsys, "exp", "run", "reliability.trial",
            "--grid", "gpus=256,512", "--set", "months=3",
            "--seed", "42",
            "--cache-dir", str(tmp_path / "cache"),
            "--manifest-dir", str(tmp_path / "manifests"),
            *extra,
        )

    def test_cold_then_warm(self, capsys, tmp_path):
        code, out, _ = self._run(capsys, tmp_path)
        assert code == 0
        assert "2 cache hit(s)" not in out
        assert "manifest:" in out
        code, out, _ = self._run(capsys, tmp_path)
        assert code == 0
        assert "2 cache hit(s), 0 executed" in out

    def test_json_format_prints_manifest(self, capsys, tmp_path):
        code, out, _ = self._run(capsys, tmp_path, "--format", "json")
        assert code == 0
        manifest = json.loads(out)
        assert len(manifest["records"]) == 2
        assert {r["params"]["gpus"] for r in manifest["records"]} == {256, 512}
        assert all(r["params"]["months"] == 3 for r in manifest["records"])

    def test_process_backend(self, capsys, tmp_path):
        code, out, _ = self._run(capsys, tmp_path, "--backend", "process",
                                 "--workers", "2", "--format", "json")
        assert code == 0
        assert json.loads(out)["backend"] == "process"

    def test_unknown_kind_fails_cleanly(self, capsys, tmp_path):
        code, _, err = run_cli(
            capsys, "exp", "run", "no.such.kind",
            "--cache-dir", str(tmp_path / "c"),
            "--manifest-dir", str(tmp_path / "m"),
        )
        assert code == 2
        assert "unknown experiment" in err

    def test_bad_assignment_rejected(self, capsys, tmp_path):
        with pytest.raises(SystemExit):
            main(["exp", "run", "reliability.trial", "--set", "oops"])


class TestExpCompare:
    def _manifest_paths(self, capsys, tmp_path, seed):
        run_cli(
            capsys, "exp", "run", "reliability.trial",
            "--set", "gpus=256", "--set", "months=3",
            "--seed", str(seed), "--no-cache",
            "--manifest-dir", str(tmp_path / f"m{seed}"),
        )
        mdir = tmp_path / f"m{seed}"
        return [str(mdir / f) for f in sorted(os.listdir(mdir))]

    def test_equivalent_runs_compare_equal(self, capsys, tmp_path):
        (first,) = self._manifest_paths(capsys, tmp_path / "a", 42)
        (second,) = self._manifest_paths(capsys, tmp_path / "b", 42)
        code, out, _ = run_cli(capsys, "exp", "compare", first, second)
        assert code == 0
        assert "equivalent" in out

    def test_different_seeds_compare_different(self, capsys, tmp_path):
        (first,) = self._manifest_paths(capsys, tmp_path / "a", 42)
        (second,) = self._manifest_paths(capsys, tmp_path / "b", 43)
        code, out, _ = run_cli(capsys, "exp", "compare", first, second)
        assert code == 1
        assert "difference" in out

    def test_missing_manifest_errors(self, capsys, tmp_path):
        code, _, err = run_cli(capsys, "exp", "compare",
                               str(tmp_path / "nope.json"),
                               str(tmp_path / "nope2.json"))
        assert code == 2
        assert "error" in err
