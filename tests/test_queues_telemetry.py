"""Queue model and port telemetry."""

import pytest

from repro.core.units import GB
from repro.fabric import (
    Flow,
    QueueTracker,
    agg_ingress_gbps,
    dirlink_loads,
    imbalance_ratio,
    jain_fairness,
    port_egress_gbps,
    tor_ports_towards_nic,
    uplink_spread,
)
from repro.fabric.simulator import max_min_rates
from repro.routing import FiveTuple


def _flows_to_one_nic(topo, router, n, dst="pod0/seg0/host0", rail=0):
    """Several hosts sending to one NIC -- incast onto its access links."""
    b = topo.hosts[dst].nic_for_rail(rail)
    flows = []
    for i in range(n):
        src = f"pod0/seg1/host{i}"
        a = topo.hosts[src].nic_for_rail(rail)
        ft = FiveTuple(a.ip, b.ip, 50000 + i, 4791)
        plane = i % 2
        flows.append(Flow(ft, GB, router.path_for(a, b, ft, plane=plane)))
    return flows


class TestQueueTracker:
    def test_no_queue_under_light_load(self, hpn_small, hpn_router):
        flows = _flows_to_one_nic(hpn_small, hpn_router, 1)
        qt = QueueTracker(hpn_small)
        qt.step(flows, 0.01)
        assert qt.max_queue() == 0.0

    def test_queue_grows_under_incast(self, hpn_small, hpn_router):
        # 4 hosts x 200G into one plane-0 access port (200G): overload
        b = hpn_small.hosts["pod0/seg0/host0"].nic_for_rail(0)
        flows = []
        for i in range(4):
            a = hpn_small.hosts[f"pod0/seg1/host{i}"].nic_for_rail(0)
            ft = FiveTuple(a.ip, b.ip, 50000 + i, 4791)
            flows.append(Flow(ft, GB, hpn_router.path_for(a, b, ft, plane=0)))
        qt = QueueTracker(hpn_small)
        qt.step(flows, 0.01)
        assert qt.max_queue() > 0.0

    def test_queue_drains_when_load_stops(self, hpn_small, hpn_router):
        b = hpn_small.hosts["pod0/seg0/host0"].nic_for_rail(0)
        flows = []
        for i in range(4):
            a = hpn_small.hosts[f"pod0/seg1/host{i}"].nic_for_rail(0)
            ft = FiveTuple(a.ip, b.ip, 50000 + i, 4791)
            flows.append(Flow(ft, GB, hpn_router.path_for(a, b, ft, plane=0)))
        qt = QueueTracker(hpn_small)
        qt.step(flows, 0.01)
        peak = qt.max_queue()
        for _ in range(50):
            qt.step([], 0.01)
        assert qt.max_queue() < peak
        assert qt.max_queue() == 0.0

    def test_queue_never_negative(self, hpn_small):
        qt = QueueTracker(hpn_small)
        for _ in range(5):
            qt.step([], 1.0)
        assert all(q >= 0 for q in qt.queues.values())

    def test_history_bounded_by_max_entries(self, hpn_small):
        qt = QueueTracker(hpn_small, max_entries=10)
        for _ in range(25):
            qt.step([], 0.01)
        assert len(qt.history) == 10
        assert qt.rolled_up_entries == 15
        # the retained snapshots are the most recent ones
        times = [t for t, _snap in qt.history]
        assert times == sorted(times)
        assert times[-1] == pytest.approx(0.25)

    def test_history_unbounded_by_default(self, hpn_small):
        qt = QueueTracker(hpn_small)
        for _ in range(25):
            qt.step([], 0.01)
        assert len(qt.history) == 25
        assert qt.rolled_up_entries == 0

    def test_series_of_port_history(self, hpn_small, hpn_router):
        flows = _flows_to_one_nic(hpn_small, hpn_router, 4)
        qt = QueueTracker(hpn_small)
        for _ in range(3):
            qt.step(flows, 0.01)
        tor = hpn_small.tors_of_host("pod0/seg0/host0")[0]
        # find the port index on the tor facing the host
        series = None
        for port in hpn_small.ports[tor]:
            s = qt.series_of_port(tor, port.ref.index)
            if s and any(v > 0 for _t, v in s):
                series = s
                break
        assert series is None or len(series) == 3


class TestTelemetry:
    def _rated_flows(self, topo, router, n=4):
        flows = _flows_to_one_nic(topo, router, n)
        rates = max_min_rates(flows, lambda dl: topo.links[dl // 2].gbps)
        for f in flows:
            f.rate_gbps = rates[f.flow_id]
        return flows

    def test_dirlink_loads_count_mode(self, hpn_small, hpn_router):
        flows = self._rated_flows(hpn_small, hpn_router)
        counts = dirlink_loads(flows, use_rate=False)
        assert all(v >= 1 for v in counts.values())

    def test_tor_ports_towards_nic_keys(self, hpn_small, hpn_router):
        flows = self._rated_flows(hpn_small, hpn_router)
        loads = tor_ports_towards_nic(hpn_small, flows, "pod0/seg0/host0", 0)
        assert set(loads) == set(hpn_small.tors_of_host("pod0/seg0/host0")[:2]) or len(loads) == 2

    def test_dual_plane_balances_nic_ports(self, hpn_small, hpn_router):
        """Alternating planes deliver even load to the two ToR downlinks."""
        flows = self._rated_flows(hpn_small, hpn_router, n=4)
        loads = tor_ports_towards_nic(hpn_small, flows, "pod0/seg0/host0", 0)
        values = sorted(loads.values())
        assert values[0] == pytest.approx(values[1])

    def test_agg_ingress_positive_for_cross_segment(self, hpn_small, hpn_router):
        flows = self._rated_flows(hpn_small, hpn_router)
        assert agg_ingress_gbps(hpn_small, flows) > 0

    def test_agg_ingress_zero_for_intra_segment(self, hpn_small, hpn_router):
        a = hpn_small.hosts["pod0/seg0/host1"].nic_for_rail(0)
        b = hpn_small.hosts["pod0/seg0/host2"].nic_for_rail(0)
        ft = FiveTuple(a.ip, b.ip, 50000, 4791)
        f = Flow(ft, GB, hpn_router.path_for(a, b, ft, plane=0))
        f.rate_gbps = 200.0
        assert agg_ingress_gbps(hpn_small, [f]) == 0.0

    def test_port_egress_gbps(self, hpn_small, hpn_router):
        flows = self._rated_flows(hpn_small, hpn_router)
        tor = hpn_small.tors_of_host("pod0/seg1/host0")[0]
        egress = port_egress_gbps(hpn_small, flows, tor)
        assert sum(egress.values()) > 0

    def test_uplink_spread_counts_flows(self, hpn_small, hpn_router):
        flows = self._rated_flows(hpn_small, hpn_router)
        # flows from seg1 plane0 hosts go up their rail-0 plane-0 ToR
        spread = uplink_spread(hpn_small, flows, "pod0/seg1/tor-r0p0")
        assert sum(spread) == 2.0  # plane-0 half of the 4 flows

    def test_imbalance_ratio(self):
        assert imbalance_ratio([100, 100]) == 1.0
        assert imbalance_ratio([300, 100]) == 3.0
        assert imbalance_ratio([100, 0]) == float("inf")
        assert imbalance_ratio([]) == 1.0

    def test_jain_fairness(self):
        assert jain_fairness([10, 10, 10]) == pytest.approx(1.0)
        assert jain_fairness([1, 0, 0]) == pytest.approx(1 / 3)
        assert jain_fairness([]) == 1.0
