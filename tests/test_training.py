"""Training model: configs, parallelism, traffic, iterations, jobs."""

import pytest

from repro.core.errors import PlacementError
from repro.core.units import GB, MB
from repro.training import (
    GPT3_175B,
    H800,
    LLAMA_13B,
    LLAMA_7B,
    ParallelismPlan,
    Placement,
    Scheduler,
    compute_seconds_per_sample,
    dp_gradient_bytes,
    iteration_traffic,
    make_job,
    pp_boundary_bytes,
    simulate_iteration,
    tp_activation_bytes,
)
from repro.collective import Communicator


def _hosts(n, seg=0):
    return [f"pod0/seg{seg}/host{i}" for i in range(n)]


class TestModels:
    def test_param_bytes_bf16(self):
        assert GPT3_175B.param_bytes == pytest.approx(350e9)

    def test_flops_6n_rule(self):
        assert LLAMA_7B.flops_per_token() == pytest.approx(42e9)
        assert LLAMA_7B.flops_per_sample() == pytest.approx(42e9 * 2048)

    def test_compute_seconds_scale_with_world(self):
        t1 = compute_seconds_per_sample(GPT3_175B, H800, 64)
        t2 = compute_seconds_per_sample(GPT3_175B, H800, 128)
        assert t1 == pytest.approx(2 * t2)

    def test_world_size_validation(self):
        with pytest.raises(ValueError):
            compute_seconds_per_sample(GPT3_175B, H800, 0)


class TestParallelismPlan:
    def test_world_and_hosts(self):
        plan = ParallelismPlan(tp=8, pp=8, dp=4)
        assert plan.world_size == 256
        assert plan.num_hosts == 32

    def test_tp_exceeding_host_rejected(self):
        with pytest.raises(PlacementError):
            ParallelismPlan(tp=16, pp=1, dp=1)

    def test_tp_must_divide_gpus(self):
        with pytest.raises(PlacementError):
            ParallelismPlan(tp=3, pp=1, dp=1)

    def test_nonhost_multiple_world_rejected(self):
        plan = ParallelismPlan(tp=2, pp=1, dp=1)
        with pytest.raises(PlacementError):
            _ = plan.num_hosts


class TestPlacement:
    @pytest.fixture()
    def placement(self):
        plan = ParallelismPlan(tp=8, pp=2, dp=2)
        return Placement(plan=plan, hosts=_hosts(4))

    def test_host_count_checked(self):
        plan = ParallelismPlan(tp=8, pp=2, dp=2)
        with pytest.raises(PlacementError):
            Placement(plan=plan, hosts=_hosts(3))

    def test_rank_coords_roundtrip(self, placement):
        for rank in range(placement.plan.world_size):
            d, p, t = placement.rank_coords(rank)
            assert placement.rank_of(d, p, t) == rank

    def test_tp_groups_intra_host(self, placement):
        assert placement.tp_groups_intra_host()
        assert len(placement.tp_groups()) == 4

    def test_dp_groups_one_per_pp_tp(self, placement):
        groups = placement.dp_groups()
        assert len(groups) == 2 * 8
        for group in groups:
            assert len(group) == 2

    def test_dp_group_hosts_ride_one_rail(self, placement):
        for rail, hosts in placement.dp_group_hosts():
            assert 0 <= rail < 8
            assert len(hosts) == 2
            assert len(set(hosts)) == 2

    def test_pp_groups_and_boundaries(self, placement):
        groups = placement.pp_groups()
        assert len(groups) == 2 * 8
        pairs = placement.pp_boundary_host_pairs()
        assert pairs  # pp=2 across distinct hosts
        for src, dst in pairs:
            assert src != dst


class TestTraffic:
    def test_table3_dp_volume(self):
        plan = ParallelismPlan(tp=8, pp=8, dp=512)
        assert dp_gradient_bytes(GPT3_175B, plan) == pytest.approx(5.47 * GB, rel=0.01)

    def test_table3_tp_volume(self):
        plan = ParallelismPlan(tp=8, pp=8, dp=512)
        tp = tp_activation_bytes(GPT3_175B, plan)
        assert 450 * MB < tp < 700 * MB  # paper: 560 MB

    def test_table3_pp_volume(self):
        plan = ParallelismPlan(tp=8, pp=8, dp=512)
        pp = pp_boundary_bytes(GPT3_175B, plan)
        assert 4 * MB < pp < 9 * MB  # paper: 6 MB

    def test_traffic_ordering_matches_paper(self):
        """Table 3: DP >> TP >> PP."""
        plan = ParallelismPlan(tp=8, pp=8, dp=512)
        tr = iteration_traffic(GPT3_175B, plan)
        assert tr.dp_bytes > tr.tp_bytes > tr.pp_bytes_per_boundary

    def test_pp_total_scales_with_microbatches(self):
        plan = ParallelismPlan(tp=8, pp=8, dp=512)
        tr = iteration_traffic(GPT3_175B, plan, microbatches=16)
        assert tr.pp_bytes_total == pytest.approx(16 * tr.pp_bytes_per_boundary)


class TestIteration:
    @pytest.fixture(scope="class")
    def comm(self, hpn_small, hpn_router):
        return Communicator(hpn_small, hpn_router, _hosts(8))

    def test_breakdown_consistency(self, comm):
        placement = Placement(plan=ParallelismPlan(tp=8, pp=2, dp=4), hosts=_hosts(8))
        it = simulate_iteration(comm, placement, LLAMA_13B)
        assert it.total_seconds >= it.compute_seconds
        assert it.dp_exposed_seconds <= it.dp_seconds
        assert it.samples_per_sec > 0

    def test_more_overlap_never_slower(self, comm):
        placement = Placement(plan=ParallelismPlan(tp=8, pp=2, dp=4), hosts=_hosts(8))
        lo = simulate_iteration(comm, placement, LLAMA_13B, overlap=0.0)
        hi = simulate_iteration(comm, placement, LLAMA_13B, overlap=0.9)
        assert hi.total_seconds <= lo.total_seconds

    def test_pp_traffic_present_with_pipeline(self, comm):
        placement = Placement(plan=ParallelismPlan(tp=8, pp=2, dp=4), hosts=_hosts(8))
        it = simulate_iteration(comm, placement, GPT3_175B)
        assert it.pp_seconds > 0

    def test_dp1_has_no_dp_traffic(self, hpn_small, hpn_router):
        comm = Communicator(hpn_small, hpn_router, _hosts(2))
        placement = Placement(plan=ParallelismPlan(tp=8, pp=2, dp=1), hosts=_hosts(2))
        it = simulate_iteration(comm, placement, LLAMA_7B)
        assert it.dp_seconds == 0.0


class TestJob:
    def test_job_runs_and_reports(self, hpn_small, hpn_router):
        job = make_job(
            hpn_small, hpn_router, LLAMA_7B,
            ParallelismPlan(tp=8, pp=1, dp=8), _hosts(8),
        )
        assert job.samples_per_sec() > 0
        assert job.segments_spanned() == 1

    def test_job_detects_degradation(self, hpn_mutable):
        from repro.routing import Router

        router = Router(hpn_mutable)
        hosts = _hosts(8)
        job = make_job(
            hpn_mutable, router, LLAMA_13B,
            ParallelismPlan(tp=8, pp=1, dp=8), hosts, overlap=0.0,
        )
        base = job.samples_per_sec()
        nic = hpn_mutable.hosts[hosts[0]].nic_for_rail(0)
        hpn_mutable.set_link_state(hpn_mutable.port(nic.ports[0]).link_id, False)
        job.refresh_connections()
        assert job.samples_per_sec() < base


class TestScheduler:
    def test_contiguous_fill(self, hpn_small):
        sched = Scheduler(hpn_small)
        hosts = sched.place(8)
        assert sched.segments_spanned(hosts) == 1

    def test_fragmented_spreads(self, hpn_small):
        sched = Scheduler(hpn_small)
        hosts = sched.place(8, max_hosts_per_segment=4)
        assert sched.segments_spanned(hosts) == 2

    def test_interleaved_order(self, hpn_small):
        sched = Scheduler(hpn_small)
        hosts = sched.place(4, max_hosts_per_segment=2, interleave=True)
        segs = [hpn_small.hosts[h].segment for h in hosts]
        assert segs == [0, 1, 0, 1]

    def test_occupancy_respected(self, hpn_small):
        sched = Scheduler(hpn_small)
        first = sched.place(8)
        second = sched.place(8)
        assert not set(first) & set(second)

    def test_over_allocation_rejected(self, hpn_small):
        sched = Scheduler(hpn_small)
        with pytest.raises(PlacementError):
            sched.place(1000)

    def test_release_returns_capacity(self, hpn_small):
        sched = Scheduler(hpn_small)
        hosts = sched.place(16)
        with pytest.raises(PlacementError):
            sched.place(16)
        sched.release(hosts)
        assert len(sched.place(16)) == 16

    def test_backup_hosts_not_allocated(self, hpn_small):
        sched = Scheduler(hpn_small)
        hosts = sched.place(16)
        assert all(not hpn_small.hosts[h].backup for h in hosts)

    def test_cross_pod_placement(self):
        from repro.topos import HpnSpec, build_hpn

        topo = build_hpn(
            HpnSpec(
                pods=2, segments_per_pod=1, hosts_per_segment=4,
                backup_hosts_per_segment=0, aggs_per_plane=2,
                agg_core_uplinks=2, cores_per_plane=2,
            )
        )
        sched = Scheduler(topo)
        hosts = sched.place_cross_pod(hosts_per_stage=2, pp=4, pods=[0, 1])
        pods = [topo.hosts[h].pod for h in hosts]
        assert pods == [0, 0, 0, 0, 1, 1, 1, 1]

    def test_cross_pod_divisibility(self, hpn_small):
        sched = Scheduler(hpn_small)
        with pytest.raises(PlacementError):
            sched.place_cross_pod(hosts_per_stage=1, pp=3, pods=[0, 1])
