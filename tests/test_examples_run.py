"""Smoke-run the example scripts: the documented entry points must not rot.

The two long-running examples (train_llm, failover_drill) are covered
by the equivalent benchmarks; here we execute the fast ones end to end
in a subprocess and sanity-check their output.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"

FAST_EXAMPLES = {
    "quickstart.py": ["AllReduce", "plane 1 path"],
    "design_explorer.py": ["O(60)", "Optimized VC", "cheaper"],
    "path_selection.py": ["disjoint paths", "WQE scheduler"],
    "verify_fabric.py": ["forwarding probes", "JSON round-trip: True"],
    "operations_lessons.py": ["INT wiring", "rail-only", "bottleneck"],
}


@pytest.mark.parametrize("script,expected", sorted(FAST_EXAMPLES.items()))
def test_example_runs_clean(script, expected):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    for needle in expected:
        assert needle in result.stdout, (
            f"{script} output missing {needle!r}:\n{result.stdout[-2000:]}"
        )


def test_full_report_example(tmp_path):
    out = tmp_path / "report.md"
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / "full_report.py"), str(out)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    report = out.read_text()
    assert "# HPN reproduction report" in report
    assert "Multi-AllReduce" in report
