"""Forwarding verifier, design sweeps, composite failure scenarios."""

import pytest

from repro import Cluster, HpnSpec, build_railonly, RailOnlySpec
from repro.analysis import (
    knee_point,
    sweep_aggs_per_plane,
    sweep_oversubscription,
)
from repro.reliability import (
    FaultInjector,
    cascading_flaps,
    double_fault,
    rolling_upgrade,
    tor_crash_with_slow_replacement,
)
from repro.routing import Router, verify_forwarding
from repro.training import LLAMA_7B, ParallelismPlan


class TestForwardingVerifier:
    def test_clean_hpn_verifies(self, hpn_small, hpn_router):
        report = verify_forwarding(hpn_small, hpn_router, max_pairs=30)
        assert report.ok
        assert report.pairs_checked == 30
        assert report.flows_walked == 30 * 2 * 4  # planes x sports
        assert report.unreachable_pairs == 0

    def test_clean_dcn_verifies(self, dcn_small, dcn_router):
        report = verify_forwarding(dcn_small, dcn_router, max_pairs=30)
        assert report.ok

    def test_blackhole_detected_when_both_legs_die(self, hpn_mutable):
        router = Router(hpn_mutable)
        nic = hpn_mutable.hosts["pod0/seg0/host0"].nic_for_rail(0)
        for pref in nic.ports:
            hpn_mutable.set_link_state(hpn_mutable.port(pref).link_id, False)
        report = verify_forwarding(hpn_mutable, router, max_pairs=10)
        assert not report.ok
        assert any(v.kind == "blackhole" for v in report.violations)

    def test_railonly_unreachable_tolerated_when_expected(self, railonly_small):
        router = Router(railonly_small)
        # rail 0 pairs are reachable; the verifier on rail 0 passes
        report = verify_forwarding(railonly_small, router, max_pairs=6)
        assert report.ok

    def test_partial_failure_keeps_verifying(self, hpn_mutable):
        """Losing one leg is not a violation -- the other plane serves."""
        router = Router(hpn_mutable)
        nic = hpn_mutable.hosts["pod0/seg0/host0"].nic_for_rail(0)
        hpn_mutable.set_link_state(hpn_mutable.port(nic.ports[0]).link_id, False)
        report = verify_forwarding(hpn_mutable, router, max_pairs=10)
        assert report.ok


class TestSweeps:
    def test_oversubscription_tradeoff_shape(self):
        """Section 7: more core uplinks = more cross-pod bandwidth but a
        smaller pod. Both monotonicities must hold."""
        points = sweep_oversubscription()
        bw = [p.cross_pod_gbps_per_gpu for p in points]
        pods = [p.gpus_per_pod for p in points]
        assert bw == sorted(bw)
        assert pods == sorted(pods, reverse=True)

    def test_paper_design_point_is_in_the_sweep(self):
        points = {p.value: p for p in sweep_oversubscription()}
        paper = points[8.0]
        assert paper.gpus_per_pod == 15360
        assert paper.agg_core_oversubscription == pytest.approx(15.0)

    def test_aggs_sweep_preserves_uplink_budget(self):
        """The ToR's 60x400G uplink budget is a constant; plane width
        only redistributes it."""
        for p in sweep_aggs_per_plane():
            assert p.path_diversity <= 60
            assert p.gpus_per_pod == 15360

    def test_aggs_sweep_fault_domains_grow_with_planes(self):
        points = sweep_aggs_per_plane(counts=(15, 30, 60))
        domains = [p.agg_fault_domains for p in points]
        assert domains == [15, 30, 60]
        # the link-disjoint pool itself is budget-fixed
        assert all(p.path_diversity == 60 for p in points)

    def test_knee_point_heuristic(self):
        from repro.analysis import SweepPoint

        def mk(v, m):
            return SweepPoint(v, 0, 0, 0, 0, 0, m, 0)

        # diminishing returns after the second point
        pts = [mk(1, 0.0), mk(2, 10.0), mk(3, 11.0), mk(4, 11.5)]
        knee = knee_point(pts, lambda p: p.cross_pod_gbps_per_gpu)
        assert knee.value == 2
        with pytest.raises(ValueError):
            knee_point([], lambda p: 0.0)


class TestScenarios:
    @pytest.fixture()
    def job(self):
        cluster = Cluster.hpn(
            HpnSpec(segments_per_pod=1, hosts_per_segment=8,
                    backup_hosts_per_segment=0, aggs_per_plane=4)
        )
        hosts = cluster.place(8)
        return cluster.train(
            LLAMA_7B, ParallelismPlan(tp=8, pp=1, dp=8), hosts, microbatches=18
        ), hosts

    def test_rolling_upgrade_never_halts_dual_tor(self, job):
        j, hosts = job
        events = rolling_upgrade(j.topo, hosts[0], rail=0)
        result = FaultInjector(j).run(events, duration=300.0)
        assert not result.crashed
        assert result.min_throughput(after=0.1) > 0

    def test_cascading_flaps_survivable(self, job):
        j, hosts = job
        events = cascading_flaps(hosts[:3], rail=0)
        result = FaultInjector(j).run(events, duration=120.0)
        assert not result.crashed
        base = result.timeline[0].samples_per_sec
        assert result.timeline[-1].samples_per_sec == pytest.approx(base)

    def test_slow_tor_replacement_rides_one_plane(self, job):
        """Hours on one plane: degraded but alive (the paper's 8-month
        no-single-point-failure record depends on this)."""
        j, hosts = job
        events = tor_crash_with_slow_replacement(
            j.topo, hosts[0], rail=0, replacement_hours=2.0
        )
        result = FaultInjector(j).run(events, duration=3 * 3600.0)
        assert not result.crashed
        base = result.timeline[0].samples_per_sec
        degraded = result.throughput_at(3600.0)
        assert 0 < degraded < base

    def test_double_fault_halts_then_recovers(self, job):
        """Both legs of one NIC down: the only access pattern that
        stops a dual-ToR job -- and repairing one leg restores it."""
        j, hosts = job
        events = double_fault(hosts[0], rail=0, first_at=10.0, second_at=20.0,
                              repair_first=60.0, repair_second=90.0)
        result = FaultInjector(j).run(events, duration=300.0)
        assert not result.crashed  # 40s < timeout
        assert result.throughput_at(30.0) == 0.0
        assert result.throughput_at(200.0) > 0
