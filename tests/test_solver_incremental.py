"""Incremental solver core: incidence index, dirty-set engine, heap loop.

Covers the pieces the rewrite added -- the persistent
:class:`~repro.fabric.IncidenceIndex`, the
:class:`~repro.fabric.IncrementalMaxMinSolver` dirty-set state machine
(noop / incremental / full-fallback modes), the simulator's
completion-heap event loop and batched arrivals -- plus regression
tests for the satellite fixes (``until`` with stalled flows, the
``flow.start`` emit-once guard, the oracle's dead-link pass).
"""

import pytest

from repro.core.units import GB, MB
from repro.fabric import (
    Flow,
    FluidSimulator,
    IncidenceIndex,
    IncrementalMaxMinSolver,
    max_min_rates,
    run_flows,
)
from repro.obs import Recorder
from repro.routing import FiveTuple, Router


def _edge_flow(topo, router, src, dst, rail, size, sport=50000, plane=0,
               start_time=0.0):
    a = topo.hosts[src].nic_for_rail(rail)
    b = topo.hosts[dst].nic_for_rail(rail)
    ft = FiveTuple(a.ip, b.ip, sport, 4791)
    path = router.path_for(a, b, ft, plane=plane)
    return Flow(ft, size, path, start_time=start_time)


def _cap_of(topo):
    def link_gbps(dl):
        link = topo.links[dl // 2]
        return link.gbps if link.up else 0.0
    return link_gbps


# ======================================================================
class TestIncidenceIndex:
    def test_add_remove_maintains_weights(self, hpn_small, hpn_router):
        idx = IncidenceIndex()
        cap = _cap_of(hpn_small)
        f1 = _edge_flow(hpn_small, hpn_router,
                        "pod0/seg0/host0", "pod0/seg0/host1", 0, GB)
        f2 = _edge_flow(hpn_small, hpn_router,
                        "pod0/seg0/host0", "pod0/seg0/host2", 0, GB,
                        sport=50001)
        idx.add(f1, cap)
        idx.add(f2, cap)
        assert len(idx) == 2
        shared = set(f1.path.dirlinks) & set(f2.path.dirlinks)
        assert shared  # same source NIC -> shared access dirlink
        dense = idx.dense_of[next(iter(shared))]
        assert idx.weight[dense] == 2
        idx.remove(f1)
        assert idx.weight[dense] == 1
        idx.remove(f2)
        assert idx.weight[dense] == 0
        assert len(idx) == 0
        # dense ids survive (the index never forgets a link)
        assert idx.num_links > 0

    def test_double_add_rejected(self, hpn_small, hpn_router):
        idx = IncidenceIndex()
        f = _edge_flow(hpn_small, hpn_router,
                       "pod0/seg0/host0", "pod0/seg0/host1", 0, GB)
        idx.add(f, _cap_of(hpn_small))
        with pytest.raises(ValueError):
            idx.add(f, _cap_of(hpn_small))

    def test_capacities_registered_and_refreshed(self, hpn_mutable):
        router = Router(hpn_mutable)
        idx = IncidenceIndex()
        cap = _cap_of(hpn_mutable)
        f = _edge_flow(hpn_mutable, router,
                       "pod0/seg0/host0", "pod0/seg0/host1", 0, GB)
        idx.add(f, cap)
        assert idx.refresh_capacities(cap) == []  # nothing changed
        victim = f.path.dirlinks[0]
        hpn_mutable.set_link_state(victim // 2, False)
        changed = idx.refresh_capacities(cap)
        assert idx.dense_of[victim] in changed
        assert idx.cap[idx.dense_of[victim]] == 0.0
        hpn_mutable.set_link_state(victim // 2, True)
        assert idx.dense_of[victim] in idx.refresh_capacities(cap)

    def test_component_closure_and_limit(self, hpn_small, hpn_router):
        idx = IncidenceIndex()
        cap = _cap_of(hpn_small)
        # two flows share host0's NIC; a third is disjoint (host4->5)
        f1 = _edge_flow(hpn_small, hpn_router,
                        "pod0/seg0/host0", "pod0/seg0/host1", 0, GB)
        f2 = _edge_flow(hpn_small, hpn_router,
                        "pod0/seg0/host0", "pod0/seg0/host2", 0, GB,
                        sport=50001)
        f3 = _edge_flow(hpn_small, hpn_router,
                        "pod0/seg0/host4", "pod0/seg0/host5", 1, GB,
                        sport=50002)
        for f in (f1, f2, f3):
            idx.add(f, cap)
        comp = idx.component([f1.flow_id], [], flow_limit=3)
        assert comp is not None
        comp_flows, comp_links = comp
        assert comp_flows == {f1.flow_id, f2.flow_id}  # f3 unreachable
        assert all(idx.weight[d] > 0 for d in comp_links)
        # the limit aborts the walk as soon as it is exceeded
        assert idx.component([f1.flow_id], [], flow_limit=1) is None

    def test_multiplicity_counted(self, hpn_small, hpn_router):
        f = _edge_flow(hpn_small, hpn_router,
                       "pod0/seg0/host0", "pod0/seg1/host0", 0, GB)
        mult = dict(f.path.dirlink_multiplicity())
        assert sum(mult.values()) == len(f.path.dirlinks)
        for dl in f.path.dirlinks:
            assert mult[dl] >= 1


# ======================================================================
class TestIncrementalSolver:
    def test_matches_oracle_on_shared_access(self, hpn_small, hpn_router):
        a = hpn_small.hosts["pod0/seg0/host0"].nic_for_rail(0)
        flows = []
        for i, dst in enumerate(["pod0/seg0/host1", "pod0/seg0/host2"]):
            b = hpn_small.hosts[dst].nic_for_rail(0)
            ft = FiveTuple(a.ip, b.ip, 50000 + i, 4791)
            flows.append(Flow(ft, GB, hpn_router.path_for(a, b, ft, plane=0)))
        solver = IncrementalMaxMinSolver(_cap_of(hpn_small))
        for f in flows:
            solver.activate(f)
        solver.solve()
        oracle = max_min_rates(flows, _cap_of(hpn_small))
        for f in flows:
            assert solver.rates[f.flow_id] == pytest.approx(
                oracle[f.flow_id], abs=1e-9
            )

    def test_noop_when_nothing_dirty(self, hpn_small, hpn_router):
        f = _edge_flow(hpn_small, hpn_router,
                       "pod0/seg0/host0", "pod0/seg0/host1", 0, GB)
        solver = IncrementalMaxMinSolver(_cap_of(hpn_small))
        solver.activate(f)
        first = solver.solve()
        assert first.mode in ("incremental", "full")
        again = solver.solve()
        assert again.mode == "noop"
        assert again.touched == frozenset()
        assert solver.stats.noop_solves == 1

    def test_disjoint_component_not_resolved(self, hpn_small, hpn_router):
        """An arrival re-solves its component, not the whole graph."""
        f1 = _edge_flow(hpn_small, hpn_router,
                        "pod0/seg0/host0", "pod0/seg0/host1", 0, GB)
        f3 = _edge_flow(hpn_small, hpn_router,
                        "pod0/seg0/host4", "pod0/seg0/host5", 1, GB,
                        sport=50002)
        solver = IncrementalMaxMinSolver(_cap_of(hpn_small),
                                         full_threshold=1.0)
        solver.activate(f1)
        solver.solve()
        solver.activate(f3)
        outcome = solver.solve()
        assert outcome.mode == "incremental"
        assert outcome.touched == frozenset({f3.flow_id})
        assert f1.flow_id in solver.rates  # frozen rate spliced, not lost

    def test_threshold_zero_forces_full(self, hpn_small, hpn_router):
        f = _edge_flow(hpn_small, hpn_router,
                       "pod0/seg0/host0", "pod0/seg0/host1", 0, GB)
        solver = IncrementalMaxMinSolver(_cap_of(hpn_small),
                                         full_threshold=0.0)
        solver.activate(f)
        outcome = solver.solve()
        assert outcome.mode == "full"
        assert solver.stats.full_solves == 1

    def test_finish_dirties_vacated_links(self, hpn_small, hpn_router):
        a = hpn_small.hosts["pod0/seg0/host0"].nic_for_rail(0)
        flows = []
        for i, dst in enumerate(["pod0/seg0/host1", "pod0/seg0/host2"]):
            b = hpn_small.hosts[dst].nic_for_rail(0)
            ft = FiveTuple(a.ip, b.ip, 50000 + i, 4791)
            flows.append(Flow(ft, GB, hpn_router.path_for(a, b, ft, plane=0)))
        solver = IncrementalMaxMinSolver(_cap_of(hpn_small))
        for f in flows:
            solver.activate(f)
        solver.solve()
        assert solver.rates[flows[1].flow_id] == pytest.approx(100.0)
        solver.finish(flows[0])
        outcome = solver.solve()
        assert flows[1].flow_id in outcome.touched
        assert solver.rates[flows[1].flow_id] == pytest.approx(200.0)
        assert flows[0].flow_id not in solver.rates

    def test_capacity_sweep_catches_out_of_band_failure(self, hpn_mutable):
        """No mark_link_dirty call needed: the refresh sweep sees it."""
        router = Router(hpn_mutable)
        f = _edge_flow(hpn_mutable, router,
                       "pod0/seg0/host0", "pod0/seg0/host1", 0, GB)
        solver = IncrementalMaxMinSolver(_cap_of(hpn_mutable))
        solver.activate(f)
        solver.solve()
        assert solver.rates[f.flow_id] == pytest.approx(200.0)
        hpn_mutable.set_link_state(f.path.dirlinks[0] // 2, False)
        outcome = solver.solve()
        assert outcome.mode != "noop"
        assert solver.rates[f.flow_id] == 0.0
        hpn_mutable.set_link_state(f.path.dirlinks[0] // 2, True)
        solver.solve()
        assert solver.rates[f.flow_id] == pytest.approx(200.0)

    def test_bad_threshold_rejected(self, hpn_small):
        with pytest.raises(ValueError):
            IncrementalMaxMinSolver(_cap_of(hpn_small), full_threshold=1.5)


# ======================================================================
class TestIncrementalEngineLoop:
    """The simulator's incremental event loop mirrors the legacy one."""

    def test_completion_time_of_one_flow(self, hpn_small, hpn_router):
        f = _edge_flow(hpn_small, hpn_router,
                       "pod0/seg0/host0", "pod0/seg0/host1", 0, GB)
        result = run_flows(hpn_small, [f], solver="incremental")
        assert result.finish_time == pytest.approx(0.04)
        assert f.finish_time == pytest.approx(0.04)

    def test_rate_rises_after_short_flow_finishes(self, hpn_small, hpn_router):
        a = hpn_small.hosts["pod0/seg0/host0"].nic_for_rail(0)
        b = hpn_small.hosts["pod0/seg0/host1"].nic_for_rail(0)
        short = Flow(FiveTuple(a.ip, b.ip, 50000, 4791), 100 * MB,
                     hpn_router.path_for(
                         a, b, FiveTuple(a.ip, b.ip, 50000, 4791), plane=0))
        long = Flow(FiveTuple(a.ip, b.ip, 50001, 4791), GB,
                    hpn_router.path_for(
                        a, b, FiveTuple(a.ip, b.ip, 50001, 4791), plane=0))
        result = run_flows(hpn_small, [short, long], solver="incremental")
        oracle = run_flows(hpn_small, [short.reset() or short,
                                       long.reset() or long], solver="full")
        assert result.flow_finish[short.flow_id] == pytest.approx(
            oracle.flow_finish[short.flow_id])
        assert result.flow_finish[long.flow_id] == pytest.approx(
            oracle.flow_finish[long.flow_id])

    def test_batched_arrivals_one_solve(self, hpn_small, hpn_router):
        """Simultaneous arrivals cost one rate solve, not one each."""
        flows = [
            _edge_flow(hpn_small, hpn_router,
                       f"pod0/seg0/host{i}", f"pod0/seg1/host{i}", 0, GB,
                       sport=50000 + i)
            for i in range(4)
        ]
        sim = FluidSimulator(hpn_small, solver="incremental")
        sim.add_flows(flows)
        sim.run()
        stats = sim._solver.stats
        # boundary 1: all four arrive (one solve); then one boundary
        # per completion wave -- never one solve per arriving flow
        assert stats.solves <= 1 + len(flows)

    def test_mid_run_failure_event(self, hpn_mutable):
        router = Router(hpn_mutable)
        f = _edge_flow(hpn_mutable, router,
                       "pod0/seg0/host0", "pod0/seg0/host1", 0, GB)
        link_id = f.path.dirlinks[0] // 2
        sim = FluidSimulator(hpn_mutable, solver="incremental")
        sim.add_flows([f])
        # down for 10 ms mid-transfer: finish slides out by exactly that
        sim.schedule(0.01, lambda s: s.topo.set_link_state(link_id, False))
        sim.schedule(0.02, lambda s: s.topo.set_link_state(link_id, True))
        result = sim.run()
        assert result.finish_time == pytest.approx(0.05)

    def test_deadlock_detection(self, hpn_mutable):
        from repro.core.errors import SimulationError

        router = Router(hpn_mutable)
        f = _edge_flow(hpn_mutable, router,
                       "pod0/seg0/host0", "pod0/seg0/host1", 0, GB)
        hpn_mutable.set_link_state(f.path.dirlinks[0] // 2, False)
        sim = FluidSimulator(hpn_mutable, solver="incremental")
        sim.add_flows([f])
        with pytest.raises(SimulationError, match="deadlock"):
            sim.run()
        hpn_mutable.set_link_state(f.path.dirlinks[0] // 2, True)

    def test_active_flows_materialized_mid_run(self, hpn_small, hpn_router):
        """Lazy progress accounting is invisible to observers."""
        f = _edge_flow(hpn_small, hpn_router,
                       "pod0/seg0/host0", "pod0/seg0/host1", 0, GB)
        sim = FluidSimulator(hpn_small, solver="incremental")
        sim.add_flows([f])
        sim.run(until=0.02)  # halfway through the 40 ms transfer
        [live] = sim.active_flows
        assert live.remaining_bytes == pytest.approx(GB / 2, rel=1e-6)

    def test_solver_mode_validated(self, hpn_small):
        with pytest.raises(ValueError):
            FluidSimulator(hpn_small, solver="quantum")

    def test_obs_counters_report_engine_mix(self, hpn_small, hpn_router):
        flows = [
            _edge_flow(hpn_small, hpn_router,
                       "pod0/seg0/host0", "pod0/seg0/host1", 0, GB),
            _edge_flow(hpn_small, hpn_router,
                       "pod0/seg0/host4", "pod0/seg0/host5", 1, GB,
                       sport=50001),
        ]
        rec = Recorder()
        run_flows(hpn_small, flows, solver="incremental", recorder=rec)
        m = rec.metrics
        total = m.counter("sim.solves").value
        assert total > 0
        assert (m.counter("sim.full_solves").value
                + m.counter("sim.incremental_solves").value
                + m.counter("sim.noop_solves").value) == total
        assert m.histogram("sim.dirty_frac").count > 0


# ======================================================================
class TestSatelliteRegressions:
    def test_until_with_stalled_flow_does_not_spin(self, hpn_mutable):
        """A zero-rate (stalled) flow + ``until`` before the repair
        event must stop at ``until`` -- not deadlock, not loop."""
        router = Router(hpn_mutable)
        f = _edge_flow(hpn_mutable, router,
                       "pod0/seg0/host0", "pod0/seg0/host1", 0, GB)
        link_id = f.path.dirlinks[0] // 2
        for mode in ("full", "incremental"):
            f.reset()
            hpn_mutable.set_link_state(link_id, False)
            sim = FluidSimulator(hpn_mutable, solver=mode)
            sim.add_flows([f])
            # the flow is stalled until the repair at t=1.0; until=0.5
            # lands strictly before it
            sim.schedule(1.0, lambda s: s.topo.set_link_state(link_id, True))
            result = sim.run(until=0.5)
            assert result.finish_time == pytest.approx(0.5)
            assert f.flow_id not in result.flow_finish
            hpn_mutable.set_link_state(link_id, True)

    def test_until_before_first_arrival(self, hpn_small, hpn_router):
        f = _edge_flow(hpn_small, hpn_router,
                       "pod0/seg0/host0", "pod0/seg0/host1", 0, GB,
                       start_time=1.0)
        for mode in ("full", "incremental"):
            f.reset()
            sim = FluidSimulator(hpn_small, solver=mode)
            sim.add_flows([f])
            result = sim.run(until=0.25)
            assert result.finish_time == pytest.approx(0.25)
            assert result.flow_finish == {}

    def test_flow_start_emitted_once_across_reactivation(
            self, hpn_small, hpn_router):
        """Replay re-activates the same Flow objects; the ``flow.start``
        instant fires once per reset-delimited lifetime."""
        f = _edge_flow(hpn_small, hpn_router,
                       "pod0/seg0/host0", "pod0/seg0/host1", 0, GB)
        rec = Recorder()
        sim = FluidSimulator(hpn_small, recorder=rec, solver="full")
        sim._activate(f)
        sim._activate(f)  # same object, re-activated (replay pattern)
        starts = [e for e in rec.events if e.name == "flow.start"]
        assert len(starts) == 1
        assert rec.metrics.counter("sim.flows_started").value == 1
        # a reset opens a new lifetime: the next activation emits again
        f.reset()
        rec2 = Recorder()
        run_flows(hpn_small, [f], recorder=rec2)
        assert len([e for e in rec2.events if e.name == "flow.start"]) == 1

    def test_oracle_two_dead_links_no_double_debit(self, hpn_mutable):
        """A flow crossing *two* dead links must be debited exactly once
        from each link it shares with live flows."""
        router = Router(hpn_mutable)
        # victim crosses the inter-segment fabric (many links)
        victim = _edge_flow(hpn_mutable, router,
                            "pod0/seg0/host0", "pod0/seg1/host0", 0, GB)
        # bystander shares the victim's first access link's ToR side
        bystander = _edge_flow(hpn_mutable, router,
                               "pod0/seg0/host0", "pod0/seg0/host1", 0, GB,
                               sport=50001)
        assert set(victim.path.dirlinks) & set(bystander.path.dirlinks)
        # kill two distinct links on the victim's path that the
        # bystander does NOT use
        victim_only = [dl for dl in victim.path.dirlinks
                       if dl not in set(bystander.path.dirlinks)]
        assert len(victim_only) >= 2
        dead = {victim_only[0] // 2, victim_only[-1] // 2}
        assert len(dead) == 2
        for lid in dead:
            hpn_mutable.set_link_state(lid, False)
        rates = max_min_rates([victim, bystander], _cap_of(hpn_mutable))
        assert rates[victim.flow_id] == 0.0
        # with a correct single debit the bystander owns the shared
        # access link alone: full 200G, not an inflated/corrupt share
        assert rates[bystander.flow_id] == pytest.approx(200.0)
        for lid in dead:
            hpn_mutable.set_link_state(lid, True)

    def test_incremental_two_dead_links_matches_oracle(self, hpn_mutable):
        router = Router(hpn_mutable)
        victim = _edge_flow(hpn_mutable, router,
                            "pod0/seg0/host0", "pod0/seg1/host0", 0, GB)
        bystander = _edge_flow(hpn_mutable, router,
                               "pod0/seg0/host0", "pod0/seg0/host1", 0, GB,
                               sport=50001)
        victim_only = [dl for dl in victim.path.dirlinks
                       if dl not in set(bystander.path.dirlinks)]
        dead = {victim_only[0] // 2, victim_only[-1] // 2}
        for lid in dead:
            hpn_mutable.set_link_state(lid, False)
        solver = IncrementalMaxMinSolver(_cap_of(hpn_mutable))
        solver.activate(victim)
        solver.activate(bystander)
        solver.solve()
        oracle = max_min_rates([victim, bystander], _cap_of(hpn_mutable))
        assert solver.rates[victim.flow_id] == oracle[victim.flow_id] == 0.0
        assert solver.rates[bystander.flow_id] == pytest.approx(
            oracle[bystander.flow_id])
        for lid in dead:
            hpn_mutable.set_link_state(lid, True)
